"""Ablations for the design choices DESIGN.md calls out.

A1 -- execution reductions (eager local actions).  The interpreters take
purely-local actions without branching because the generated partial
orders are unchanged.  Measured: run counts and exploration time with
the reduction on vs off, and the soundness claim itself -- the two
explorations generate exactly the same set of computation fingerprints.

A2 -- temporal checking modes.  The checker evaluates □/◇ either by
exact vhs enumeration (exponential) or over the memoised history
lattice.  Measured: agreement and relative cost on the Readers/Writers
priority restriction.

A3 -- entry-grant policy.  Nondeterministic granting ("any") explores
more service orders than FIFO granting; measured run counts quantify
the difference (and FIFO is the configuration under which eager calls
must stay off -- arrival order is semantics there).
"""

import pytest

from repro.core import check_restriction
from repro.langs.monitor import MonitorProgram, readers_writers_system
from repro.problems.readers_writers import (
    monitor_correspondence,
    readers_priority_restriction,
)
from repro.sim import explore
from repro.verify import project


def _fingerprints(program, max_runs=200_000):
    out = set()
    count = 0
    for run in explore(program, max_runs=max_runs):
        count += 1
        out.add(run.computation.fingerprint())
    return count, out


def test_a1_reduction_soundness_and_speedup(benchmark):
    """Reductions explore a representative subset of the partial orders.

    Two claims, both asserted:

    * every computation the reduced exploration produces is also
      produced unreduced (no inventions);
    * every problem-level verdict is identical: the full unreduced run
      set satisfies the Readers/Writers restrictions exactly as the
      reduced set does (the extra unreduced computations differ only in
      the placement of lock Req events within the lock's element order
      and in commuting independent actions -- no checked property reads
      either).
    """
    from repro.problems.readers_writers import rw_problem_spec
    from repro.verify import verify_program
    from repro.sim import ExplorationResult

    system = readers_writers_system(n_readers=1, n_writers=1)
    users = [c.name for c in system.callers]
    spec = rw_problem_spec(users, variant="readers-priority")
    correspondence = monitor_correspondence("rw")

    reduced_count, reduced = _fingerprints(MonitorProgram(system))
    reduced_report = verify_program(MonitorProgram(system), spec,
                                    correspondence)

    def unreduced():
        program = MonitorProgram(system, eager_reductions=False)
        runs = list(explore(program))
        report = verify_program(
            program, spec, correspondence,
            exploration=ExplorationResult(runs=runs, exhaustive=True))
        return runs, report

    runs, unreduced_report = benchmark.pedantic(unreduced, rounds=1,
                                                iterations=1)
    unreduced_fps = {r.computation.fingerprint() for r in runs}
    assert reduced <= unreduced_fps, "reduction invented a partial order"
    assert reduced_report.ok == unreduced_report.ok == True  # noqa: E712
    assert ({n for n, v in reduced_report.verdicts.items() if v.holds}
            == {n for n, v in unreduced_report.verdicts.items() if v.holds})
    print(f"\nA1: {len(runs)} runs ({len(unreduced_fps)} orders) unreduced "
          f"vs {reduced_count} reduced -- identical verdicts")


def test_a2_lattice_vs_exact_agreement(benchmark):
    """The two temporal modes agree on readers-priority; lattice is the
    default because exact vhs enumeration explodes."""
    system = readers_writers_system(n_readers=1, n_writers=1)
    restriction = readers_priority_restriction()
    correspondence = monitor_correspondence("rw")
    runs = list(explore(MonitorProgram(system)))
    spec_labelled = []
    from repro.problems.readers_writers import rw_problem_spec

    spec = rw_problem_spec([c.name for c in system.callers],
                           variant="readers-priority")
    projections = [
        spec.label_threads(project(r.computation, correspondence))
        for r in runs
    ]

    def lattice_all():
        return [check_restriction(p, restriction,
                                  temporal_mode="lattice").holds
                for p in projections]

    lattice = benchmark.pedantic(lattice_all, rounds=1, iterations=1)
    exact = [
        check_restriction(p, restriction, temporal_mode="exact",
                          vhs_cap=50_000).holds
        for p in projections
    ]
    assert lattice == exact
    assert all(lattice)
    print(f"\nA2: lattice and exact agree on all {len(runs)} projections")


@pytest.mark.parametrize("policy", ["any", "fifo"])
def test_a3_entry_grant_policy(benchmark, policy):
    system = readers_writers_system(n_readers=1, n_writers=1)
    program = MonitorProgram(system, entry_grant=policy)

    def run():
        return sum(1 for _ in explore(program))

    count = benchmark.pedantic(run, rounds=1, iterations=1)
    assert count >= 1
    print(f"\nA3: entry_grant={policy!r} -> {count} runs")


def test_a4_hoare_vs_mesa_semantics(benchmark):
    """A4 -- the §9 proof's semantic dependency, made executable.

    The paper's IF-based monitor is correct under Hoare semantics and
    loses mutual exclusion under Mesa; the WHILE-based variant restores
    mutual exclusion under Mesa but not readers' priority.
    """
    from repro.langs.monitor import (
        readers_writers_monitor_mesa,
        readers_writers_system,
    )
    from repro.problems.readers_writers import rw_problem_spec
    from repro.verify import verify_program

    def run():
        out = {}
        system = readers_writers_system(1, 2)
        users = [c.name for c in system.callers]
        spec = rw_problem_spec(users, variant="readers-priority")
        corr = monitor_correspondence("rw")
        for semantics in ("hoare", "mesa"):
            out[("if", semantics)] = verify_program(
                MonitorProgram(system, semantics=semantics), spec, corr)
        mesa_system = readers_writers_system(
            1, 2, monitor=readers_writers_monitor_mesa())
        out[("while", "mesa")] = verify_program(
            MonitorProgram(mesa_system, semantics="mesa"), spec, corr)
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    assert reports[("if", "hoare")].ok
    assert not reports[("if", "mesa")].verdict(
        "writers-exclude-readers").holds
    assert reports[("while", "mesa")].verdict(
        "writers-exclude-readers").holds
    assert not reports[("while", "mesa")].verdict("readers-priority").holds
    print("\nA4: IF+Hoare correct | IF+Mesa loses mutex | "
          "WHILE+Mesa regains mutex, not priority")
