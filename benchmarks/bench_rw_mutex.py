"""E2 -- the Mutual Exclusion Restriction (Section 8.3), all languages.

"Writers exclude readers, and writers exclude other writers" verified
for the Monitor, CSP, and ADA Readers/Writers solutions over all
bounded executions.
"""

import pytest

from repro.langs.ada import AdaProgram, rw_ada_system
from repro.langs.csp import CspProgram, rw_csp_system
from repro.langs.monitor import MonitorProgram, readers_writers_system
from repro.problems.readers_writers import (
    ada_correspondence,
    csp_correspondence,
    monitor_correspondence,
    rw_problem_spec,
)
from repro.verify import verify_program

MUTEX = ("writers-exclude-readers", "writers-exclude-writers")


def _check(report):
    for name in MUTEX:
        assert report.verdict(name).holds, report.summary()


def test_e2_monitor_mutex(benchmark):
    system = readers_writers_system(n_readers=2, n_writers=1)
    users = [c.name for c in system.callers]
    spec = rw_problem_spec(users, variant="weak")

    report = benchmark.pedantic(
        lambda: verify_program(MonitorProgram(system), spec,
                               monitor_correspondence("rw")),
        rounds=1, iterations=1)
    _check(report)
    print(f"\nE2 monitor: mutual exclusion over {report.runs_checked} runs")


def test_e2_csp_mutex(benchmark):
    system = rw_csp_system(n_readers=2, n_writers=1)
    readers, writers = ["reader1", "reader2"], ["writer1"]
    spec = rw_problem_spec(readers + writers, variant="weak")

    report = benchmark.pedantic(
        lambda: verify_program(CspProgram(system), spec,
                               csp_correspondence(readers, writers)),
        rounds=1, iterations=1)
    _check(report)
    print(f"\nE2 CSP: mutual exclusion over {report.runs_checked} runs")


def test_e2_ada_mutex(benchmark):
    system = rw_ada_system(n_readers=2, n_writers=1)
    users = ["reader1", "reader2", "writer1"]
    spec = rw_problem_spec(users, variant="weak")

    report = benchmark.pedantic(
        lambda: verify_program(AdaProgram(system), spec,
                               ada_correspondence()),
        rounds=1, iterations=1)
    _check(report)
    print(f"\nE2 ADA: mutual exclusion over {report.runs_checked} runs")
