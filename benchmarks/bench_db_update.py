"""E6 -- the distributed database update application (Section 11).

Verifies convergence (functional correctness), causality, monotonicity,
and full propagation over ALL message orderings for small
configurations, and over seeded samples for larger ones; the
no-timestamps mutant is the negative control.
"""

import pytest

from repro.core import check_computation
from repro.problems.db_update import (
    DbUpdateProgram,
    db_update_spec,
    standard_requests,
)
from repro.sim import explore, sample_runs


@pytest.mark.parametrize("n_sites,n_clients", [(2, 2), (3, 2)])
def test_e6_exhaustive_verification(benchmark, n_sites, n_clients):
    requests = standard_requests(n_clients=n_clients, n_sites=n_sites)
    spec = db_update_spec(n_sites, requests)
    program = DbUpdateProgram(n_sites, requests)

    def run():
        runs = list(explore(program))
        failures = sum(
            0 if check_computation(r.computation, spec).ok else 1
            for r in runs)
        deadlocks = sum(1 for r in runs if r.deadlocked)
        return len(runs), failures, deadlocks

    total, failures, deadlocks = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    assert failures == 0
    assert deadlocks == 0
    print(f"\nE6 ({n_sites} sites, {n_clients} clients): "
          f"{total} message orderings, all converge, no deadlock")


def test_e6_sampled_larger_configuration(benchmark):
    requests = standard_requests(n_clients=3, updates_per_client=2,
                                 n_sites=4)
    spec = db_update_spec(4, requests)
    program = DbUpdateProgram(4, requests)

    def run():
        runs = sample_runs(program, 50, seed=0)
        return sum(0 if check_computation(r.computation, spec).ok else 1
                   for r in runs)

    failures = benchmark.pedantic(run, rounds=1, iterations=1)
    assert failures == 0
    print("\nE6 (4 sites, 6 updates): 50 sampled orderings, all converge")


def test_e6_negative_control(benchmark):
    requests = standard_requests(n_clients=2, n_sites=3)
    spec = db_update_spec(3, requests)
    program = DbUpdateProgram(3, requests, broken_timestamps=True)

    def run():
        runs = list(explore(program))
        return len(runs), sum(
            0 if check_computation(r.computation, spec).ok else 1
            for r in runs)

    total, failures = benchmark.pedantic(run, rounds=1, iterations=1)
    assert failures > 0
    print(f"\nE6 negative control: mutant diverges in {failures}/{total} "
          "orderings")
