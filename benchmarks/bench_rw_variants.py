"""E5 -- the five Readers/Writers versions (Section 11).

One exploration of the paper's readers-priority monitor, checked against
all five problem variants.  The expected verdict pattern is the
experiment: the solution satisfies exactly the variants its signalling
discipline implements.
"""

import pytest

from repro.langs.monitor import MonitorProgram, readers_writers_system
from repro.problems.readers_writers import (
    VARIANTS,
    monitor_correspondence,
    rw_problem_spec,
)
from repro.sim import explore_or_sample
from repro.verify import verify_program

#: variant -> (distinguishing restriction, expected verdict for the
#: paper's readers-priority monitor)
EXPECTED = {
    "weak": (None, True),
    "readers-priority": ("readers-priority", True),
    "writers-priority": ("writers-priority", False),
    "fifo": ("fifo-service", False),
    "no-starvation": ("every-write-request-served", True),
}


@pytest.fixture(scope="module")
def exploration():
    system = readers_writers_system(n_readers=1, n_writers=2)
    users = [c.name for c in system.callers]
    return system, users, explore_or_sample(MonitorProgram(system))


@pytest.mark.parametrize("variant", VARIANTS)
def test_e5_variant_verdicts(benchmark, exploration, variant):
    system, users, runs = exploration
    spec = rw_problem_spec(users, variant=variant)
    correspondence = monitor_correspondence("rw")

    report = benchmark.pedantic(
        lambda: verify_program(MonitorProgram(system), spec, correspondence,
                               exploration=runs),
        rounds=1, iterations=1)

    key, expect = EXPECTED[variant]
    if key is None:
        assert report.ok == expect, report.summary()
    else:
        assert report.verdict(key).holds == expect, report.summary()
    verdict = "SATISFIED" if (report.ok if key is None
                              else report.verdict(key).holds) else "VIOLATED"
    print(f"\nE5: readers-priority monitor vs {variant!r}: {verdict}")


def test_e5_writers_priority_monitor_mirror(benchmark):
    """The complementary solution: a writers-priority monitor satisfies
    writers-priority and fails readers-priority."""
    from repro.langs.monitor import readers_writers_monitor_writers_priority

    system = readers_writers_system(
        n_readers=2, n_writers=1,
        monitor=readers_writers_monitor_writers_priority())
    users = [c.name for c in system.callers]
    correspondence = monitor_correspondence("rw")

    def run():
        runs = explore_or_sample(MonitorProgram(system))
        return {
            variant: verify_program(
                MonitorProgram(system),
                rw_problem_spec(users, variant=variant),
                correspondence, exploration=runs)
            for variant in ("writers-priority", "readers-priority")
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    assert reports["writers-priority"].ok
    assert not reports["readers-priority"].verdict("readers-priority").holds
    print("\nE5 mirror: writers-priority monitor satisfies its variant, "
          "fails readers-priority")
