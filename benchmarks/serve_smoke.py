"""CI serve-smoke: daemon-vs-one-shot byte-identity over the catalog.

Boots a real daemon (background thread, ephemeral port, resident
pool), submits the **whole catalog** as one batch, and asserts every
job's report signature byte-identical (canonical JSON) to a one-shot
engine run of the same case.  Then resubmits the catalog warm and
asserts the shared result cache actually served: zero restriction
checks, cache+dedupe hits > 0 on every non-degenerate case.

Run directly (CI) or locally::

    PYTHONPATH=src python benchmarks/serve_smoke.py
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, "src")

from repro.cli import case_catalog  # noqa: E402
from repro.engine import EngineConfig, run_verification  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.daemon import start_in_thread  # noqa: E402
from repro.serve.protocol import signature_json  # noqa: E402


def main() -> int:
    catalog = case_catalog()
    names = list(catalog)

    print(f"serve-smoke: one-shot baseline over {len(names)} case(s)")
    expected = {}
    for name in names:
        program, spec, corr, pspec = catalog[name].factory(False)
        report, _ = run_verification(program, spec, corr, pspec,
                                     EngineConfig(jobs=1))
        expected[name] = signature_json(report.signature())

    handle = start_in_thread(jobs=2, job_workers=2)
    try:
        client = ServeClient(port=handle.port)
        assert client.ping(), "daemon did not come up"
        assert client.cases() == [
            {"name": e.name, "language": e.language, "mutant": e.has_mutant}
            for e in catalog.values()
        ], "GET /cases differs from the CLI catalog"

        print(f"serve-smoke: cold batch via http://127.0.0.1:{handle.port}")
        t0 = time.perf_counter()
        ids = client.submit([{"case": name, "jobs": 2} for name in names])
        for name, job_id in zip(names, ids):
            snap = client.wait(job_id, timeout=600)
            assert snap["state"] == "done", f"{name}: ended {snap['state']}"
            assert snap["result"]["signature"] == expected[name], (
                f"{name}: daemon signature differs from one-shot CLI")
        cold_s = time.perf_counter() - t0
        print(f"serve-smoke: cold batch OK in {cold_s:.2f}s "
              f"(all signatures byte-identical)")

        t0 = time.perf_counter()
        ids = client.submit([{"case": name, "jobs": 2} for name in names])
        warm_hits = 0
        for name, job_id in zip(names, ids):
            snap = client.wait(job_id, timeout=600)
            assert snap["state"] == "done", f"{name}: ended {snap['state']}"
            assert snap["result"]["signature"] == expected[name], (
                f"{name}: warm signature differs from one-shot CLI")
            stats = snap["result"]["stats"]
            assert stats["checks_performed"] == 0, (
                f"{name}: warm resubmission recomputed "
                f"{stats['checks_performed']} outcome(s)")
            warm_hits += stats["cache_hits"] + stats["dedupe_hits"]
        warm_s = time.perf_counter() - t0
        assert warm_hits > 0, "warm pass reported no cache/dedupe hits"
        print(f"serve-smoke: warm batch OK in {warm_s:.2f}s "
              f"({warm_hits} cache/dedupe hit(s), 0 re-checks)")

        daemon_stats = client.stats()
        print(f"serve-smoke: daemon stats {daemon_stats}")
        assert daemon_stats["cache"]["hits"] > 0
    finally:
        handle.stop()
    print("serve-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
