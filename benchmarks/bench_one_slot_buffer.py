"""E3 -- the One-Slot Buffer verified in all three languages (Section 11)."""

import pytest

from repro.langs.ada import (
    AdaProgram,
    ada_program_spec,
    one_slot_buffer_ada_system,
)
from repro.langs.csp import (
    CspProgram,
    csp_program_spec,
    one_slot_buffer_csp_system,
)
from repro.langs.monitor import (
    MonitorProgram,
    monitor_program_spec,
    one_slot_buffer_monitor_unguarded,
    one_slot_buffer_system,
)
from repro.problems.one_slot_buffer import (
    ada_correspondence,
    csp_correspondence,
    monitor_correspondence,
    one_slot_buffer_spec,
)
from repro.verify import verify_program

ITEMS = (1, 2, 3)


def test_e3_monitor(benchmark):
    system = one_slot_buffer_system(items=ITEMS)
    report = benchmark.pedantic(
        lambda: verify_program(
            MonitorProgram(system),
            one_slot_buffer_spec(with_exclusion=True),
            monitor_correspondence("osb"),
            program_spec=monitor_program_spec(system)),
        rounds=1, iterations=1)
    assert report.ok, report.summary()
    print(f"\nE3 monitor: VERIFIED over {report.runs_checked} executions")


def test_e3_csp(benchmark):
    system = one_slot_buffer_csp_system(items=ITEMS)
    report = benchmark.pedantic(
        lambda: verify_program(
            CspProgram(system),
            one_slot_buffer_spec(temporal_safety=False),
            csp_correspondence(),
            program_spec=csp_program_spec(system)),
        rounds=1, iterations=1)
    assert report.ok, report.summary()
    print(f"\nE3 CSP: VERIFIED over {report.runs_checked} executions")


def test_e3_ada(benchmark):
    system = one_slot_buffer_ada_system(items=ITEMS)
    report = benchmark.pedantic(
        lambda: verify_program(
            AdaProgram(system),
            one_slot_buffer_spec(),
            ada_correspondence(),
            program_spec=ada_program_spec(system)),
        rounds=1, iterations=1)
    assert report.ok, report.summary()
    print(f"\nE3 ADA: VERIFIED over {report.runs_checked} executions")


def test_e3_negative_control(benchmark):
    system = one_slot_buffer_system(
        items=ITEMS, monitor=one_slot_buffer_monitor_unguarded())
    report = benchmark.pedantic(
        lambda: verify_program(
            MonitorProgram(system),
            one_slot_buffer_spec(),
            monitor_correspondence("osb")),
        rounds=1, iterations=1)
    assert not report.ok
    failed = {v.name for v in report.verdicts.values() if not v.holds}
    assert "capacity-1" in failed
    print(f"\nE3 negative control: unguarded Remove rejected "
          f"({sorted(failed)})")
