"""E8 -- properties of the Monitor primitive itself (Section 11).

"Various properties of the Monitor have been proved such as sequential
execution of monitor entries."  Checked here over all bounded
executions: total temporal ordering of in-entry events, lock
alternation, the Signal→Release prerequisite, and wait-before-release --
for all three monitor programs in the repository.
"""

import pytest

from repro.langs.monitor import (
    MonitorProgram,
    bounded_buffer_system,
    monitor_program_spec,
    one_slot_buffer_system,
    readers_writers_system,
)
from repro.sim import explore

SYSTEMS = {
    "readers-writers": lambda: readers_writers_system(1, 1),
    "one-slot-buffer": lambda: one_slot_buffer_system(items=(1, 2)),
    "bounded-buffer": lambda: bounded_buffer_system(capacity=2,
                                                    items=(1, 2)),
}


@pytest.mark.parametrize("name", sorted(SYSTEMS))
def test_e8_monitor_primitive_properties(benchmark, name):
    system = SYSTEMS[name]()
    spec = monitor_program_spec(system)
    program = MonitorProgram(system)

    def run():
        runs = list(explore(program))
        failures = [
            (i, result.failed_restrictions())
            for i, r in enumerate(runs)
            for result in [spec.check(r.computation)]
            if not result.ok
        ]
        return len(runs), failures

    total, failures = benchmark.pedantic(run, rounds=1, iterations=1)
    assert failures == [], failures
    key = f"{system.monitor.name}-entries-totally-ordered"
    assert any(r.name == key for r in spec.all_restrictions())
    print(f"\nE8 ({name}): sequential execution of monitor entries + lock "
          f"protocol verified over {total} executions")
