"""E7 -- the asynchronous Game of Life (Section 11).

Functional correctness (async == synchronous reference) and
deadlock-freedom on sampled schedules of the glider, plus a measurement
of the concurrency the event model exposes: the fraction of
same-generation cell pairs that are potentially concurrent.
"""

import pytest

from repro.core import check_computation
from repro.problems.game_of_life import (
    GLIDER_5X5,
    AsyncLifeProgram,
    blinker,
    cell_element,
    life_spec,
)
from repro.sim import run_random, sample_runs


@pytest.mark.parametrize("width,height,gens,pattern", [
    (3, 3, 2, "blinker"),
    (5, 5, 2, "glider"),
])
def test_e7_functional_correctness(benchmark, width, height, gens, pattern):
    init = blinker(width, height) if pattern == "blinker" else GLIDER_5X5
    spec = life_spec(init, width, height, gens)
    program = AsyncLifeProgram.make(init, width, height, gens)

    def run():
        runs = sample_runs(program, 10, seed=0)
        return sum(0 if check_computation(r.computation, spec).ok else 1
                   for r in runs), sum(1 for r in runs if not r.completed)

    failures, incomplete = benchmark.pedantic(run, rounds=1, iterations=1)
    assert failures == 0
    assert incomplete == 0
    print(f"\nE7 ({pattern} {width}x{height}x{gens}): 10 schedules, all "
          "match the synchronous reference, none deadlock")


def test_e7_negative_control(benchmark):
    init = blinker(3, 3)
    spec = life_spec(init, 3, 3, 2)
    program = AsyncLifeProgram.make(init, 3, 3, 2, skip_neighbor_wait=True)

    def run():
        runs = sample_runs(program, 10, seed=0)
        return sum(0 if check_computation(r.computation, spec).ok else 1
                   for r in runs)

    failures = benchmark.pedantic(run, rounds=1, iterations=1)
    assert failures > 0
    print(f"\nE7 negative control: stale-neighbour mutant rejected in "
          f"{failures}/10 schedules")


def test_e7_concurrency_width(benchmark):
    """How much genuine concurrency does the async grid expose?"""
    width = height = 6
    init = blinker(width, height)
    program = AsyncLifeProgram.make(init, width, height, 1)

    def measure():
        comp = run_random(program, seed=1).computation
        gen1 = [
            next(e for e in comp.events_at(cell_element(x, y))
                 if e.event_class == "Compute")
            for x in range(width) for y in range(height)
        ]
        pairs = concurrent = 0
        for i, a in enumerate(gen1):
            for b in gen1[i + 1:]:
                pairs += 1
                if comp.concurrent(a.eid, b.eid):
                    concurrent += 1
        return concurrent, pairs

    concurrent, pairs = benchmark.pedantic(measure, rounds=1, iterations=1)
    fraction = concurrent / pairs
    # neighbouring cells share causal ancestors but remain unordered;
    # expect a large majority of pairs to be potentially concurrent
    assert fraction > 0.5
    print(f"\nE7 concurrency: {concurrent}/{pairs} same-generation pairs "
          f"potentially concurrent ({fraction:.0%})")
