"""S1 -- checker scaling (added; the paper reports no measurements).

How the three core operations scale with computation size:

* building a computation (transitive closure over the event DAG);
* legality checking against a specification;
* temporal (lattice) checking of a □ safety formula.

Workload: chains-with-cross-talk -- P parallel chains of L events each,
with every k-th event cross-enabling its neighbour chain; mostly
sequential per chain, so the history lattice stays tractable while the
closure works over P·L events.
"""

import pytest

from repro.core import (
    ComputationBuilder,
    ElementDecl,
    EventClass,
    Exists,
    ForAll,
    Henceforth,
    Implies,
    LatticeChecker,
    Occurred,
    ParamSpec,
    Specification,
    check_legality,
)


def build_workload(chains: int, length: int, cross_every: int = 4):
    b = ComputationBuilder()
    rows = []
    for c in range(chains):
        row = []
        prev = None
        for i in range(length):
            ev = b.add_event(f"chain{c}", "Step", {"i": i})
            if prev is not None:
                b.add_enable(prev, ev)
            prev = ev
            row.append(ev)
        rows.append(row)
    for c in range(chains - 1):
        for i in range(0, length, cross_every):
            b.add_enable(rows[c][i], rows[c + 1][i])
    return b.freeze()


def spec_for(chains: int):
    elements = [
        ElementDecl.make(f"chain{c}",
                         [EventClass("Step", (ParamSpec("i", "INTEGER"),))])
        for c in range(chains)
    ]
    return Specification("scaling", elements=elements)


@pytest.mark.parametrize("chains,length", [(2, 50), (4, 100), (8, 200),
                                           (8, 400)])
def test_s1_build_scaling(benchmark, chains, length):
    comp = benchmark(lambda: build_workload(chains, length))
    assert len(comp) == chains * length


@pytest.mark.parametrize("chains,length", [(2, 50), (4, 100), (8, 200)])
def test_s1_legality_scaling(benchmark, chains, length):
    comp = build_workload(chains, length)
    spec = spec_for(chains)
    violations = benchmark(lambda: check_legality(comp, spec))
    assert violations == []


@pytest.mark.parametrize("chains,length", [(2, 10), (2, 20), (3, 10)])
def test_s1_lattice_safety_scaling(benchmark, chains, length):
    """□(last step of chain0 occurred ⊃ first step occurred)."""
    comp = build_workload(chains, length, cross_every=2)
    formula = Henceforth(ForAll(
        "x", "chain0.Step",
        Implies(Occurred("x"), Exists("y", "chain0.Step", Occurred("y")))))

    def check():
        return LatticeChecker(comp, history_cap=5_000_000).holds(formula)

    assert benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.parametrize("chains,length", [(2, 10), (2, 20), (3, 10)])
def test_s1_compiled_safety_scaling(benchmark, chains, length):
    """The same safety check through the compiled bitmask checker
    (repro.core.compile); see benchmarks/bench_compile.py for the full
    compiled-vs-interpreted comparison and the committed baseline."""
    from repro.core.checker import check_restriction
    from repro.core.formula import Restriction

    comp = build_workload(chains, length, cross_every=2)
    formula = Henceforth(ForAll(
        "x", "chain0.Step",
        Implies(Occurred("x"), Exists("y", "chain0.Step", Occurred("y")))))
    restriction = Restriction("s1-safety", formula)

    def check():
        return check_restriction(comp, restriction,
                                 temporal_mode="compiled",
                                 history_cap=5_000_000)

    assert benchmark.pedantic(check, rounds=1, iterations=1).holds


@pytest.mark.parametrize("chains,length", [(2, 8), (2, 12), (3, 8)])
def test_s1_history_count_growth(benchmark, chains, length):
    """Down-set counts: the measured blow-up that motivates the lattice
    checker's memoisation and the exact mode's caps."""
    from repro.core import all_histories

    comp = build_workload(chains, length, cross_every=2)
    histories = benchmark(lambda: all_histories(comp, cap=2_000_000))
    assert len(histories) >= length
    print(f"\nS1: {chains}x{length} -> {len(histories)} histories")
