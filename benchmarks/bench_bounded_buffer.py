"""E4 -- the Bounded Buffer verified in all three languages (Section 11),
plus a capacity sweep showing the spec's capacity bound is tight."""

import pytest

from repro.langs.ada import (
    AdaProgram,
    ada_program_spec,
    bounded_buffer_ada_system,
)
from repro.langs.csp import (
    CspProgram,
    bounded_buffer_csp_system,
    csp_program_spec,
)
from repro.langs.monitor import (
    MonitorProgram,
    bounded_buffer_system,
    monitor_program_spec,
)
from repro.problems.bounded_buffer import (
    ada_correspondence,
    bounded_buffer_spec,
    csp_correspondence,
    monitor_correspondence,
)
from repro.verify import verify_program

ITEMS = (1, 2, 3)


def test_e4_monitor(benchmark):
    system = bounded_buffer_system(capacity=2, items=ITEMS)
    report = benchmark.pedantic(
        lambda: verify_program(
            MonitorProgram(system),
            bounded_buffer_spec(2, with_exclusion=True),
            monitor_correspondence("bb"),
            program_spec=monitor_program_spec(system)),
        rounds=1, iterations=1)
    assert report.ok, report.summary()
    print(f"\nE4 monitor: VERIFIED over {report.runs_checked} executions")


def test_e4_csp(benchmark):
    system = bounded_buffer_csp_system(capacity=2, items=ITEMS)
    report = benchmark.pedantic(
        lambda: verify_program(
            CspProgram(system),
            bounded_buffer_spec(2, temporal_safety=False),
            csp_correspondence(),
            program_spec=csp_program_spec(system)),
        rounds=1, iterations=1)
    assert report.ok, report.summary()
    print(f"\nE4 CSP: VERIFIED over {report.runs_checked} executions")


def test_e4_ada(benchmark):
    system = bounded_buffer_ada_system(capacity=2, items=ITEMS)
    report = benchmark.pedantic(
        lambda: verify_program(
            AdaProgram(system),
            bounded_buffer_spec(2),
            ada_correspondence(),
            program_spec=ada_program_spec(system)),
        rounds=1, iterations=1)
    assert report.ok, report.summary()
    print(f"\nE4 ADA: VERIFIED over {report.runs_checked} executions")


@pytest.mark.parametrize("claimed_capacity,expect_ok", [(1, False), (2, True),
                                                        (3, True)])
def test_e4_capacity_bound_is_tight(benchmark, claimed_capacity, expect_ok):
    """A capacity-2 buffer satisfies capacity-k specs exactly for k ≥ 2.

    (k=3 passes because a 2-slot buffer never holds more than 3; the
    *occupancy* claim is an upper bound.)
    """
    system = bounded_buffer_system(capacity=2, items=ITEMS)
    report = benchmark.pedantic(
        lambda: verify_program(
            MonitorProgram(system),
            bounded_buffer_spec(claimed_capacity),
            monitor_correspondence("bb")),
        rounds=1, iterations=1)
    verdict = report.verdict(f"capacity-{claimed_capacity}")
    assert verdict.holds == expect_ok
    print(f"\nE4 sweep: capacity-2 buffer vs capacity-{claimed_capacity} "
          f"spec -> {'OK' if verdict.holds else 'REJECTED'}")
