"""T2 + E1 -- the Section 9 worked example.

Prints the correspondence table (T2) and verifies readers' priority for
the paper's ReadersWriters monitor over ALL bounded executions (E1),
timing the full verification pipeline.  The writers-first mutant is the
negative control: the same pipeline must reject it.
"""

import pytest

from repro.langs.monitor import (
    MonitorProgram,
    monitor_program_spec,
    readers_writers_monitor_writers_first,
    readers_writers_system,
)
from repro.problems.readers_writers import (
    monitor_correspondence,
    rw_problem_spec,
)
from repro.verify import verify_program


def test_t2_correspondence_table(benchmark):
    """T2: the PROBLEM ↔ PROGRAM significant-object table."""
    correspondence = benchmark(lambda: monitor_correspondence("rw"))
    control_rows = [
        r for r in correspondence.rules
        if r.target_element == "db.control"
    ]
    expected = {
        "ReqRead": ("rw.entry.StartRead", "Begin"),
        "StartRead": ("rw.var.readernum", "Assign"),
        "EndRead": ("rw.var.readernum", "Assign"),
        "ReqWrite": ("rw.entry.StartWrite", "Begin"),
        "StartWrite": ("rw.var.readernum", "Assign"),
        "EndWrite": ("rw.var.readernum", "Assign"),
    }
    print("\nT2: PROBLEM ↔ PROGRAM correspondence")
    for rule in control_rows:
        print(f"  {rule.target_class:12s} ↔ {rule.element}.{rule.event_class}")
        assert expected[rule.target_class] == (rule.element, rule.event_class)
    assert len(control_rows) == 6


@pytest.mark.parametrize("n_readers,n_writers", [(1, 2), (2, 1)])
def test_e1_readers_priority_verified(benchmark, n_readers, n_writers):
    system = readers_writers_system(n_readers=n_readers, n_writers=n_writers)
    users = [c.name for c in system.callers]
    spec = rw_problem_spec(users, variant="readers-priority")
    correspondence = monitor_correspondence("rw")

    def run():
        return verify_program(MonitorProgram(system), spec, correspondence,
                              program_spec=monitor_program_spec(system))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.ok, report.summary()
    assert report.exhaustive
    print(f"\nE1 ({n_readers}R{n_writers}W): readers-priority VERIFIED over "
          f"all {report.runs_checked} executions")


def test_e1_mutant_rejected(benchmark):
    system = readers_writers_system(
        n_readers=1, n_writers=2,
        monitor=readers_writers_monitor_writers_first())
    users = [c.name for c in system.callers]
    spec = rw_problem_spec(users, variant="readers-priority")
    correspondence = monitor_correspondence("rw")

    def run():
        return verify_program(MonitorProgram(system), spec, correspondence)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    verdict = report.verdict("readers-priority")
    assert not verdict.holds
    print(f"\nE1 negative control: mutant violates readers-priority in "
          f"{len(verdict.failing_runs)}/{report.runs_checked} executions")
