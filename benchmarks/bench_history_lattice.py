"""F1 -- Section 7's history-lattice example, and lattice scaling.

Regenerates the paper's worked example exactly -- five non-empty
histories, three valid history sequences, including the one that adds
e2 and e3 "at the same time" -- then measures history/vhs enumeration
on wider computations (fork-join ladders).
"""

import pytest

from repro.core import (
    ComputationBuilder,
    all_histories,
    count_maximal_history_sequences,
    maximal_history_sequences,
)


def paper_diamond():
    b = ComputationBuilder()
    e1 = b.add_event("E1", "A")
    e2 = b.add_event("E2", "A")
    e3 = b.add_event("E3", "A")
    e4 = b.add_event("E4", "A")
    b.add_enable(e1, e2)
    b.add_enable(e1, e3)
    b.add_enable(e2, e4)
    b.add_enable(e3, e4)
    return b.freeze(), (e1, e2, e3, e4)


def fork_join_ladder(width: int, rungs: int):
    """rungs sequential fork-join diamonds, each of the given width."""
    b = ComputationBuilder()
    prev = b.add_event("root", "Fork")
    for r in range(rungs):
        branches = []
        for w in range(width):
            ev = b.add_event(f"branch{w}", "Work")
            b.add_enable(prev, ev)
            branches.append(ev)
        join = b.add_event("root", "Join")
        for ev in branches:
            b.add_enable(ev, join)
        prev = join
    return b.freeze()


def test_f1_histories_match_paper(benchmark):
    comp, _events = paper_diamond()
    histories = benchmark(lambda: all_histories(comp, include_empty=False))
    assert len(histories) == 5  # the paper lists α0..α4
    print(f"\nF1: {len(histories)} non-empty histories (paper: 5)")


def test_f1_vhs_match_paper(benchmark):
    comp, (e1, e2, e3, e4) = paper_diamond()
    seqs = benchmark(
        lambda: list(maximal_history_sequences(comp, max_step=None)))
    assert len(seqs) == 3  # the paper lists exactly three
    simultaneous = [
        seq for seq in seqs
        if any(len(b.events - a.events) == 2
               for a, b in zip(seq.histories, seq.histories[1:]))
    ]
    assert len(simultaneous) == 1  # "e2 and e3 occur at the same time"
    print(f"\nF1: {len(seqs)} valid history sequences (paper: 3), "
          f"{len(simultaneous)} with a simultaneous step")


@pytest.mark.parametrize("width,rungs", [(2, 2), (3, 2), (2, 4)])
def test_f1_history_enumeration_scaling(benchmark, width, rungs):
    comp = fork_join_ladder(width, rungs)
    histories = benchmark(lambda: all_histories(comp, cap=500_000))
    # each diamond contributes (2^width + width) proper down-sets...
    # just sanity-check monotone growth and boundedness
    assert len(histories) >= (2 ** width) * rungs


@pytest.mark.parametrize("width,rungs", [(2, 2), (3, 2)])
def test_f1_vhs_counting_scaling(benchmark, width, rungs):
    comp = fork_join_ladder(width, rungs)
    linear = benchmark(
        lambda: count_maximal_history_sequences(comp, max_step=1))
    import math

    assert linear == math.factorial(width) ** rungs
