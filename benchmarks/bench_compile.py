"""S6 -- compiled restriction checking vs the lattice interpreter.

Benchmarks :mod:`repro.core.compile` (bitmask histories, quantifier
domain pruning, monotone latching) against the reference
``LatticeChecker`` on the S1 chains-with-cross-talk workload, and
end-to-end through the engine.  Every timing asserts verdict equality
first -- the bench is a correctness gate before it is a timer.

Two ways to run it::

    PYTHONPATH=src python -m pytest benchmarks/bench_compile.py   # pytest-benchmark
    PYTHONPATH=src python benchmarks/bench_compile.py [--quick] [--json FILE]

The second form delegates to ``repro.bench`` -- the same code path as
the ``repro bench`` CLI subcommand and the CI ``bench-smoke`` gate --
and writes/gates ``BENCH_checker.json`` (the committed baseline; see
docs/PERF.md).
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.bench import (  # noqa: E402
    CHECKER_WORKLOADS,
    build_chain_workload,
    safety_restriction,
)
from repro.core.checker import check_restriction  # noqa: E402

SIZES = [(c, l) for _, c, l, _ in CHECKER_WORKLOADS]


@pytest.mark.parametrize("chains,length", SIZES)
def test_s6_compiled_checker(benchmark, chains, length):
    """Compiled bitmask walk (includes compile + bind each round)."""
    comp = build_chain_workload(chains, length)
    restriction = safety_restriction()
    expected = check_restriction(comp, restriction, temporal_mode="lattice",
                                 history_cap=5_000_000)

    def check():
        fresh = build_chain_workload(chains, length)
        return check_restriction(fresh, restriction,
                                 temporal_mode="compiled",
                                 history_cap=5_000_000)

    got = benchmark.pedantic(check, rounds=3, iterations=1)
    assert (got.holds, got.detail) == (expected.holds, expected.detail)


@pytest.mark.parametrize("chains,length", SIZES)
def test_s6_interpreted_checker(benchmark, chains, length):
    """The reference interpreter on the same workloads, for the ratio."""
    comp = build_chain_workload(chains, length)
    restriction = safety_restriction()

    def check():
        return check_restriction(comp, restriction, temporal_mode="lattice",
                                 history_cap=5_000_000)

    got = benchmark.pedantic(check, rounds=3, iterations=1)
    assert got.holds


def test_s6_speedup_at_largest():
    """The tentpole claim: >=5x at the largest S1 size (recorded in
    BENCH_checker.json and EXPERIMENTS.md S6)."""
    from repro.bench import run_checker_bench

    results = run_checker_bench(quick=False, repeats=3)
    largest = results["checker:3x10"]
    print(f"\nS6: checker:3x10 speedup {largest['speedup']}x "
          f"(interpreted {largest['lattice_s']}s, "
          f"compiled {largest['compiled_s']}s)")
    assert largest["speedup"] >= 5.0, largest


if __name__ == "__main__":
    from repro.bench import main

    sys.exit(main())
