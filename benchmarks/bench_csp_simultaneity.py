"""E9 -- the CSP I/O simultaneity restriction (Section 8.2).

``(∀ inp:?, out:!)[inp.req ⊳ out.end ≡ out.req ⊳ inp.end]`` verified
over all bounded executions of the CSP programs, plus the paper's §5
data-transfer reading of the enable relation (message value equality)
and the observation that the two End events of one exchange are
potentially concurrent.
"""

import pytest

from repro.core import check_computation
from repro.langs.csp import (
    CspProgram,
    bounded_buffer_csp_system,
    csp_program_spec,
    one_slot_buffer_csp_system,
    rw_csp_system,
)
from repro.sim import explore

SYSTEMS = {
    "one-slot-buffer": lambda: one_slot_buffer_csp_system(items=(1, 2)),
    "bounded-buffer": lambda: bounded_buffer_csp_system(capacity=2,
                                                        items=(1, 2, 3)),
    "readers-writers": lambda: rw_csp_system(1, 1),
}


@pytest.mark.parametrize("name", sorted(SYSTEMS))
def test_e9_simultaneity_verified(benchmark, name):
    system = SYSTEMS[name]()
    spec = csp_program_spec(system)
    program = CspProgram(system)

    def run():
        runs = list(explore(program))
        failures = sum(
            0 if check_computation(r.computation, spec).ok else 1
            for r in runs)
        return len(runs), failures

    total, failures = benchmark.pedantic(run, rounds=1, iterations=1)
    assert failures == 0
    print(f"\nE9 ({name}): simultaneity + message values verified over "
          f"{total} executions")


def test_e9_ends_potentially_concurrent(benchmark):
    """The paper's point: End events of one exchange are unordered."""
    from repro.sim import run_random

    program = CspProgram(one_slot_buffer_csp_system(items=(1, 2)))

    def measure():
        comp = run_random(program, seed=0).computation
        out_ends = [e for e in comp.events_at("producer.out")
                    if e.event_class == "End"]
        in_ends = [e for e in comp.events_at("buffer.in")
                   if e.event_class == "End"]
        return [
            comp.concurrent(a.eid, b.eid)
            for a, b in zip(out_ends, in_ends)
        ]

    verdicts = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert verdicts and all(verdicts)
    print(f"\nE9: {len(verdicts)} exchanges, End events pairwise "
          "potentially concurrent in every one")
