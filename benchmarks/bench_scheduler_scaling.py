"""S2 -- interleaving-explorer scaling (added).

Executions explored per second, and how the run count grows with the
number of processes, for all three language interpreters on the
Readers/Writers workload.  Also measures the soundness-preserving
reductions' effect indirectly: every reported run is a distinct partial
order (fingerprints are deduplicated and counted).
"""

import pytest

from repro.langs.ada import AdaProgram, rw_ada_system
from repro.langs.csp import CspProgram, rw_csp_system
from repro.langs.monitor import MonitorProgram, readers_writers_system
from repro.sim import explore, sample_runs


@pytest.mark.parametrize("readers,writers", [(1, 1), (2, 1), (1, 2), (2, 2)])
def test_s2_monitor_exploration(benchmark, readers, writers):
    program = MonitorProgram(readers_writers_system(readers, writers))

    def run():
        fingerprints = set()
        count = 0
        for r in explore(program):
            count += 1
            fingerprints.add(r.computation.fingerprint())
        return count, len(fingerprints)

    count, unique = benchmark.pedantic(run, rounds=1, iterations=1)
    assert count == unique, "reductions should leave only distinct orders"
    print(f"\nS2 monitor {readers}R{writers}W: {count} runs, all distinct")


@pytest.mark.parametrize("readers,writers", [(1, 1), (1, 2), (2, 1)])
def test_s2_csp_exploration(benchmark, readers, writers):
    program = CspProgram(rw_csp_system(readers, writers))

    def run():
        return sum(1 for _ in explore(program))

    count = benchmark.pedantic(run, rounds=1, iterations=1)
    assert count >= 1
    print(f"\nS2 CSP {readers}R{writers}W: {count} runs")


@pytest.mark.parametrize("readers,writers", [(1, 1), (1, 2), (2, 1)])
def test_s2_ada_exploration(benchmark, readers, writers):
    program = AdaProgram(rw_ada_system(readers, writers))

    def run():
        return sum(1 for _ in explore(program))

    count = benchmark.pedantic(run, rounds=1, iterations=1)
    assert count >= 1
    print(f"\nS2 ADA {readers}R{writers}W: {count} runs")


def test_s2_random_run_throughput(benchmark):
    """Seeded-run throughput on a configuration too big to exhaust."""
    program = MonitorProgram(readers_writers_system(3, 3))
    runs = benchmark(lambda: sample_runs(program, 20, seed=0))
    assert all(r.completed for r in runs)
