"""S3 -- verification-engine bench: serial vs parallel vs warm cache.

Measures, for each workload, the same verification three ways through
`repro.engine`:

* **serial**   -- ``jobs=1``, no cache (the pre-engine baseline path);
* **parallel** -- ``jobs>=2``, frontier-sharded across worker processes;
* **cache**    -- ``jobs=1`` with a persistent cache, run twice: the
  cold pass populates it, the warm pass must perform **zero**
  restriction re-checks (asserted, not just reported).

Every pass asserts report-signature equality against the serial
baseline first -- the bench is a correctness gate before it is a timer
(same policy as every other bench in this directory).  Results
(timings, dedupe ratios, cache hit rates) are written to JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick]
        [--jobs N] [--out engine_bench.json]

``WORKLOADS`` is importable; `tests/test_engine.py` asserts parallel
determinism over every entry, so adding a workload here automatically
extends the determinism suite.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.verify import verify_program  # noqa: E402


def _monitor_rw():
    from repro.langs.monitor import (
        MonitorProgram,
        monitor_program_spec,
        readers_writers_system,
    )
    from repro.problems import readers_writers

    system = readers_writers_system(1, 2)
    users = [c.name for c in system.callers]
    return (
        MonitorProgram(system),
        readers_writers.rw_problem_spec(users, variant="readers-priority"),
        readers_writers.monitor_correspondence("rw"),
        monitor_program_spec(system),
    )


def _monitor_bb():
    from repro.langs.monitor import (
        MonitorProgram,
        bounded_buffer_system,
        monitor_program_spec,
    )
    from repro.problems import bounded_buffer

    system = bounded_buffer_system(capacity=2, items=(1, 2, 3))
    return (
        MonitorProgram(system),
        bounded_buffer.bounded_buffer_spec(2),
        bounded_buffer.monitor_correspondence("bb"),
        monitor_program_spec(system),
    )


def _ada_bb():
    from repro.langs.ada import (
        AdaProgram,
        ada_program_spec,
        bounded_buffer_ada_system,
    )
    from repro.problems import bounded_buffer

    system = bounded_buffer_ada_system(capacity=2, items=(1, 2, 3))
    return (
        AdaProgram(system),
        bounded_buffer.bounded_buffer_spec(2),
        bounded_buffer.ada_correspondence(),
        ada_program_spec(system),
    )


#: name -> factory() returning (program, problem_spec, correspondence,
#: program_spec).  The determinism tests iterate this dict.
WORKLOADS = {
    "monitor-readers-writers": _monitor_rw,
    "monitor-bounded-buffer": _monitor_bb,
    "ada-bounded-buffer": _ada_bb,
}

#: subset cheap enough for CI smoke runs
QUICK_WORKLOADS = ("monitor-bounded-buffer", "monitor-readers-writers")


def bench_workload(name: str, jobs: int) -> dict:
    program, spec, corr, pspec = WORKLOADS[name]()

    t0 = time.perf_counter()
    serial = verify_program(program, spec, corr, program_spec=pspec, jobs=1)
    serial_s = time.perf_counter() - t0
    assert serial.ok, f"{name}: baseline verification failed:\n{serial.summary()}"

    t0 = time.perf_counter()
    parallel = verify_program(program, spec, corr, program_spec=pspec,
                              jobs=jobs)
    parallel_s = time.perf_counter() - t0
    assert parallel.signature() == serial.signature(), (
        f"{name}: parallel report diverged from serial")

    with tempfile.TemporaryDirectory(prefix="gem-engine-bench-") as cache_dir:
        t0 = time.perf_counter()
        cold = verify_program(program, spec, corr, program_spec=pspec,
                              jobs=1, cache_dir=cache_dir)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = verify_program(program, spec, corr, program_spec=pspec,
                              jobs=1, cache_dir=cache_dir)
        warm_s = time.perf_counter() - t0

    assert cold.signature() == serial.signature()
    assert warm.signature() == serial.signature()
    warm_stats = warm.engine_stats
    assert warm_stats.checks_performed == 0, (
        f"{name}: warm cache still performed "
        f"{warm_stats.checks_performed} restriction checks")

    row = {
        "workload": name,
        "runs": serial.runs_checked,
        "distinct_computations": serial.distinct_computations,
        "dedupe_ratio": round(serial.dedupe_ratio, 3),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "parallel_jobs": parallel.engine_stats.jobs,
        "shards": parallel.engine_stats.shards,
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        "cold_cache_s": round(cold_s, 4),
        "warm_cache_s": round(warm_s, 4),
        "warm_speedup": round(serial_s / warm_s, 3) if warm_s > 0 else None,
        "warm_checks_performed": warm_stats.checks_performed,
        "warm_cache_hit_rate": round(warm_stats.cache_hit_rate, 3),
    }
    print(f"S3 {name}: {row['runs']} runs "
          f"({row['distinct_computations']} distinct), "
          f"serial {serial_s:.2f}s, "
          f"parallel[{row['parallel_jobs']}] {parallel_s:.2f}s "
          f"(x{row['speedup']}), warm cache {warm_s:.2f}s "
          f"(x{row['warm_speedup']}, 0 re-checks)")
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload subset (CI smoke)")
    parser.add_argument("--jobs", type=int,
                        default=max(2, min(4, os.cpu_count() or 1)),
                        help="parallel worker count (>= 2 so the sharded "
                             "path is always exercised; default: "
                             "clamp(cpus, 2, 4))")
    parser.add_argument("--out", default="engine_bench.json",
                        help="JSON output path")
    args = parser.parse_args(argv)

    names = QUICK_WORKLOADS if args.quick else tuple(WORKLOADS)
    rows = [bench_workload(name, args.jobs) for name in names]
    payload = {"bench": "S3-engine", "jobs": args.jobs, "quick": args.quick,
               "results": rows}
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
