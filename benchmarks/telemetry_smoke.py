"""CI telemetry-smoke: the daemon's production-telemetry surface.

Boots a real daemon (background thread, ephemeral port, history
database enabled), then asserts the acceptance criteria of the
telemetry stack end to end:

* ``GET /healthz`` answers and ``GET /readyz`` reports the pool
  primed;
* ``GET /metrics`` parses as Prometheus text and -- after a job --
  carries the engine, cache, POR and slice counters;
* every completed job leaves exactly one row in the run-history
  database, and an identical rerun leaves a second one;
* ``repro history regressions --tolerance 10x`` exits zero over those
  identical reruns (the CI gate must not cry wolf), and the seeded
  slowdown fixture makes it exit non-zero (the gate must actually
  fire);
* ``repro top --once`` renders a frame against the live daemon.

Run directly (CI) or locally::

    PYTHONPATH=src python benchmarks/telemetry_smoke.py
"""

from __future__ import annotations

import io
import os
import sys
import tempfile

sys.path.insert(0, "src")

from repro.cli import main as repro_main  # noqa: E402
from repro.obs import RunHistory, parse_prometheus, run_top  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.daemon import start_in_thread  # noqa: E402

CASE = "monitor-one-slot-buffer"


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="telemetry_smoke_")
    db = os.path.join(workdir, "history.sqlite")

    handle = start_in_thread(jobs=2, job_workers=2, history_db=db,
                             telemetry_interval=0.1)
    try:
        client = ServeClient(port=handle.port)
        assert client.ping(), "daemon did not come up"
        assert client.healthz(), "GET /healthz failed"
        assert client.readyz(), "GET /readyz says the pool is not primed"
        print(f"telemetry-smoke: daemon healthy on port {handle.port}")

        # a pre-job scrape must already parse (service gauges only)
        scrape = parse_prometheus(client.metrics_text())
        assert scrape.value("repro_serve_uptime_seconds") > 0

        # the same catalog job twice: two history rows, identical sigs
        signatures = []
        for i in (1, 2):
            snap = client.verify({"case": CASE, "jobs": 2})
            assert snap["state"] == "done", f"run {i}: {snap}"
            signatures.append(snap["result"]["signature"])
            rows = RunHistory(db).runs()
            assert len(rows) == i, (
                f"run {i}: expected {i} history row(s), found {len(rows)}")
            assert rows[0].case == CASE and rows[0].ok
            assert rows[0].wall_s > 0 and rows[0].stats["runs"] > 0
        assert signatures[0] == signatures[1], "reruns changed the signature"
        print(f"telemetry-smoke: 2 runs recorded in {db}, "
              "signatures identical")

        scrape = parse_prometheus(client.metrics_text())
        for family in ("repro_engine_runs", "repro_por_nodes",
                       "repro_serve_jobs_done"):
            assert scrape.value(family) > 0, f"{family} missing or zero"
        # gauge semantics: engine gauges describe the *latest* job, and
        # the warm rerun replayed everything from cache -- so fresh
        # checks are (correctly) zero while cache hits are not
        assert ("repro_engine_checks_performed", ()) in scrape.samples
        assert scrape.value("repro_engine_cache_hits") \
            + scrape.value("repro_engine_dedupe_hits") > 0, (
            "warm rerun reported no cache/dedupe hits")
        assert ("repro_checker_slice_hits", ()) in scrape.samples, (
            "slice counters missing from /metrics")
        assert ("repro_serve_cache_entries", ()) in scrape.samples, (
            "cache gauges missing from /metrics")
        print(f"telemetry-smoke: /metrics parses "
              f"({len(scrape)} sample(s), "
              f"{int(scrape.value('repro_engine_runs'))} engine run(s))")

        assert run_top(port=handle.port, once=True, out=io.StringIO()) == 0
        print("telemetry-smoke: repro top --once OK")
    finally:
        handle.stop()

    # identical reruns: the regression gate must pass
    code = repro_main(["history", "regressions", "--db", db,
                       "--tolerance", "10x"])
    assert code == 0, f"regression gate fired on identical reruns ({code})"
    print("telemetry-smoke: regression gate silent on identical reruns")

    # seeded slowdown: the gate must fire
    fixture = os.path.join(workdir, "slowdown.sqlite")
    history = RunHistory(fixture)
    for wall in (1.0, 1.0, 1.0, 1.0, 9.0):
        history.record(source="cli", case=CASE,
                       flags={"jobs": 1}, ok=True, mode="exhaustive",
                       signature=[], wall_s=wall, stats={"runs": 10})
    code = repro_main(["history", "regressions", "--db", fixture])
    assert code == 1, f"gate missed a 9x injected slowdown (exit {code})"
    print("telemetry-smoke: regression gate fires on injected slowdown")

    print("telemetry-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
