"""T1 -- Section 4's "allowed communications" table.

Regenerates the paper's 6-element / 4-group access table from the
``access``/``contained`` predicates and times access computation on
progressively deeper and wider group structures.
"""

import pytest

from repro.core import GroupDecl, GroupStructure

#: The paper's table, verbatim.
PAPER_TABLE = {
    "EL1": {"EL1", "EL6"},
    "EL2": {"EL2", "EL3", "EL6"},
    "EL3": {"EL2", "EL3", "EL4", "EL6"},
    "EL4": {"EL3", "EL4", "EL5", "EL6"},
    "EL5": {"EL4", "EL5", "EL6"},
    "EL6": {"EL6"},
}


def paper_structure() -> GroupStructure:
    return GroupStructure(
        [f"EL{i}" for i in range(1, 7)],
        [
            GroupDecl.make("G1", ["EL2", "EL3"]),
            GroupDecl.make("G2", ["EL4", "EL5"]),
            GroupDecl.make("G3", ["EL3", "EL4"]),
            GroupDecl.make("G4", ["EL1"]),
        ],
    )


def big_structure(width: int, depth: int) -> GroupStructure:
    """width chains of depth nested groups, one element per group."""
    elements = []
    groups = []
    for w in range(width):
        prev = None
        for d in range(depth):
            el = f"e{w}_{d}"
            elements.append(el)
            members = [el] + ([prev] if prev else [])
            name = f"g{w}_{d}"
            groups.append(GroupDecl.make(name, members))
            prev = name
    return GroupStructure(elements, groups)


def test_t1_table_matches_paper(benchmark):
    structure = paper_structure()
    table = benchmark(structure.access_table)
    assert {src: set(d) for src, d in table.items()} == PAPER_TABLE
    print("\nT1 regenerated access table:")
    for src in sorted(PAPER_TABLE):
        print(f"  {src}: {', '.join(sorted(table[src]))}")


@pytest.mark.parametrize("width,depth", [(4, 4), (8, 8), (12, 12)])
def test_t1_access_scaling(benchmark, width, depth):
    def build_and_tabulate():
        return big_structure(width, depth).access_table()

    table = benchmark(build_and_tabulate)
    # sanity: the innermost element can reach every element of its own
    # chain (they are global to it), but nothing inside other chains'
    # nested groups except the outermost
    deep = f"e0_0"
    assert f"e0_{depth - 1}" not in table[f"e1_{depth - 1}"] or width == 1
    assert deep in table[deep]
