"""S7 -- partial-order reduction bench: reduced vs full exploration.

Measures, for each workload, the same exploration twice through
``repro.sim.scheduler.explore``:

* **full** -- every enabled action expanded at every branch point (the
  pre-POR behaviour, ``--no-por``);
* **por**  -- ample-set reduction (:mod:`repro.engine.por`) expanding
  only one process's actions wherever its whole action set is
  independent of every other process's future.

Every pass asserts the soundness contract before any number is
reported (same policy as every other bench in this directory): the
reduced exploration's set of computation fingerprints -- and hence
every verdict downstream -- must equal the full exploration's exactly,
and the gated monitor workloads must show at least ``GATE_MIN`` times
fewer schedules.

The monitor workloads run with ``eager_reductions=False``: the eager
interpreter reductions (PR 1) already collapse those explorations to
one run per distinct computation, leaving a sound POR nothing to prune
-- which ``tests/test_por.py`` asserts separately.  POR's value is on
the raw interleaving explosion, and on interpreters (db-update) with
no eager reductions at all.

Usage::

    PYTHONPATH=src python benchmarks/bench_por.py [--quick]
        [--out por_bench.json]

``WORKLOADS`` is importable; ``tests/test_por.py`` runs the same
differential laws over every entry through the fuzz oracle, so adding
a workload here automatically extends the equivalence suite.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.engine.por import AmpleSelector  # noqa: E402
from repro.sim.scheduler import explore  # noqa: E402

#: Gated workloads must shed at least this factor of schedules.
GATE_MIN = 3.0

MAX_RUNS = 500_000


def _rw_noeager():
    from repro.langs.monitor import MonitorProgram, readers_writers_system

    return MonitorProgram(readers_writers_system(1, 1),
                          eager_reductions=False)


def _osb_noeager():
    from repro.langs.monitor import MonitorProgram, one_slot_buffer_system

    return MonitorProgram(one_slot_buffer_system(items=(1, 2)),
                          eager_reductions=False)


def _bb_noeager():
    from repro.langs.monitor import MonitorProgram, bounded_buffer_system

    return MonitorProgram(bounded_buffer_system(capacity=2, items=(1, 2)),
                          eager_reductions=False)


def _db_update():
    from repro.problems.db_update import DbUpdateProgram, standard_requests

    return DbUpdateProgram(3, standard_requests(n_clients=2, n_sites=3))


#: name -> (factory, gated).  db-update is reported but not gated: its
#: reduction ratio is real yet modest (delivers commute only in the
#: endgame, once no submit can still broadcast to the sites involved).
WORKLOADS = {
    "readers-writers": (_rw_noeager, True),
    "one-slot-buffer": (_osb_noeager, True),
    "bounded-buffer": (_bb_noeager, True),
    "db-update": (_db_update, False),
}

#: subset cheap enough for CI smoke runs
QUICK_WORKLOADS = ("readers-writers", "db-update")


def bench_workload(name: str) -> dict:
    factory, gated = WORKLOADS[name]

    t0 = time.perf_counter()
    full = list(explore(factory(), max_runs=MAX_RUNS))
    full_s = time.perf_counter() - t0

    selector = AmpleSelector()
    t0 = time.perf_counter()
    reduced = list(explore(factory(), max_runs=MAX_RUNS, por=selector))
    por_s = time.perf_counter() - t0

    full_fps = {r.computation.stable_fingerprint() for r in full}
    por_fps = {r.computation.stable_fingerprint() for r in reduced}
    assert full_fps == por_fps, (
        f"{name}: reduced fingerprint set differs from full "
        f"(missing {len(full_fps - por_fps)}, extra {len(por_fps - full_fps)})")

    ratio = len(full) / len(reduced)
    assert not gated or ratio >= GATE_MIN, (
        f"{name}: reduction {ratio:.1f}x is below the {GATE_MIN:.0f}x floor")

    return {
        "workload": name,
        "gate": gated,
        "full_runs": len(full),
        "por_runs": len(reduced),
        "distinct": len(full_fps),
        "pruned_branches": selector.pruned,
        "reduced_nodes": selector.reduced_nodes,
        "branch_nodes": selector.nodes,
        "proviso_expansions": selector.proviso_expansions,
        "full_s": round(full_s, 4),
        "por_s": round(por_s, 4),
        "reduction": round(ratio, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="cheap workloads only (CI smoke)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write rows as JSON")
    args = parser.parse_args(argv)

    names = QUICK_WORKLOADS if args.quick else tuple(WORKLOADS)
    rows = []
    for name in names:
        row = bench_workload(name)
        rows.append(row)
        print(f"{name:18s} full {row['full_runs']:>6} runs "
              f"({row['full_s']:8.3f}s)   por {row['por_runs']:>4} runs "
              f"({row['por_s']:6.3f}s)   reduction {row['reduction']:>6.1f}x"
              f"{'   [gated]' if row['gate'] else ''}")

    if args.out:
        with open(args.out, "w") as fh:
            json.dump({"schema": 1, "bench": "por", "rows": rows}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
