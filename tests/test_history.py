"""Unit tests for histories and valid history sequences (Section 7).

The Section 7 worked example (the diamond computation) is reproduced in
full: its five non-empty histories and its three valid history
sequences.
"""

import pytest

from repro.core import (
    ComputationBuilder,
    History,
    HistorySequence,
    all_histories,
    count_maximal_history_sequences,
    empty_history,
    full_history,
    maximal_history_sequences,
)
from repro.core.errors import ComputationError


def paper_diamond():
    """The Section 7 computation: e1 ⊳ e2, e1 ⊳ e3, e2 ⊳ e4, e3 ⊳ e4."""
    b = ComputationBuilder()
    e1 = b.add_event("E1", "A")
    e2 = b.add_event("E2", "A")
    e3 = b.add_event("E3", "A")
    e4 = b.add_event("E4", "A")
    b.add_enable(e1, e2)
    b.add_enable(e1, e3)
    b.add_enable(e2, e4)
    b.add_enable(e3, e4)
    return b.freeze(), (e1, e2, e3, e4)


class TestHistoryBasics:
    def test_empty_and_full(self):
        c, (e1, e2, e3, e4) = paper_diamond()
        assert len(empty_history(c)) == 0
        assert full_history(c).is_complete()

    def test_down_closure_enforced(self):
        c, (e1, e2, e3, e4) = paper_diamond()
        with pytest.raises(ComputationError, match="downward closed"):
            History(c, {e2.eid})  # e1 missing

    def test_unknown_event_rejected(self):
        from repro.core import EventId

        c, _ = paper_diamond()
        with pytest.raises(ComputationError):
            History(c, {EventId("Nope", 1)})

    def test_prefix_relation(self):
        c, (e1, e2, e3, e4) = paper_diamond()
        a0 = History(c, {e1.eid})
        a1 = History(c, {e1.eid, e2.eid})
        assert a0 <= a1
        assert a0 < a1
        assert not (a1 <= a0)

    def test_prefix_across_computations_rejected(self):
        c, (e1, *_p) = paper_diamond()
        c2, (f1, *_q) = paper_diamond()
        with pytest.raises(ComputationError):
            History(c, {e1.eid}) <= History(c2, {f1.eid})

    def test_equality_and_hash(self):
        c, (e1, *_r) = paper_diamond()
        assert History(c, {e1.eid}) == History(c, {e1.eid})
        assert len({History(c, {e1.eid}), History(c, {e1.eid})}) == 1

    def test_extend(self):
        c, (e1, e2, *_r) = paper_diamond()
        h = History(c, {e1.eid}).extend([e2.eid])
        assert e2.eid in h


class TestHistoryPredicates:
    def test_occurred(self):
        c, (e1, e2, *_r) = paper_diamond()
        h = History(c, {e1.eid})
        assert h.occurred(e1.eid)
        assert not h.occurred(e2.eid)

    def test_addable_and_potential(self):
        c, (e1, e2, e3, e4) = paper_diamond()
        h = History(c, {e1.eid})
        assert h.addable() == {e2.eid, e3.eid}
        assert h.potential(e2.eid)
        assert not h.potential(e4.eid)
        assert not h.potential(e1.eid)  # already occurred

    def test_frontier(self):
        c, (e1, e2, e3, e4) = paper_diamond()
        h = History(c, {e1.eid, e2.eid, e3.eid})
        assert h.frontier() == {e2.eid, e3.eid}

    def test_new(self):
        c, (e1, e2, e3, e4) = paper_diamond()
        h = History(c, {e1.eid, e2.eid})
        assert h.new(e2.eid)
        assert not h.new(e1.eid)  # e2 followed it
        assert not h.new(e4.eid)  # hasn't occurred

    def test_at(self):
        c, (e1, e2, e3, e4) = paper_diamond()
        h1 = History(c, {e1.eid})
        # e1 has not yet enabled e2 or e3 within h1
        assert h1.at(e1.eid, [e2.eid, e3.eid])
        h2 = History(c, {e1.eid, e2.eid})
        assert not h2.at(e1.eid, [e2.eid])
        assert h2.at(e1.eid, [e3.eid])


class TestSection7Example:
    def test_five_nonempty_histories(self):
        c, _ = paper_diamond()
        hs = all_histories(c, include_empty=False)
        assert len(hs) == 5

    def test_history_sets_match_paper(self):
        c, (e1, e2, e3, e4) = paper_diamond()
        expected = [
            {e1.eid},
            {e1.eid, e2.eid},
            {e1.eid, e3.eid},
            {e1.eid, e2.eid, e3.eid},
            {e1.eid, e2.eid, e3.eid, e4.eid},
        ]
        got = [set(h.events) for h in all_histories(c, include_empty=False)]
        for e in expected:
            assert e in got

    def test_three_vhs_from_alpha0(self):
        """The paper lists exactly three vhs starting at α₀ = {e1}."""
        c, _ = paper_diamond()
        seqs = list(maximal_history_sequences(c, max_step=None))
        # sequences start at the empty history; drop it and the α₀ step
        # remains first in each
        assert len(seqs) == 3
        assert count_maximal_history_sequences(c, max_step=None) == 3

    def test_simultaneous_step_present(self):
        """One vhs jumps α₀ → α₃, adding e2 and e3 'at the same time'."""
        c, (e1, e2, e3, e4) = paper_diamond()
        jumps = [
            seq
            for seq in maximal_history_sequences(c, max_step=None)
            if any(
                len(b.events - a.events) == 2
                for a, b in zip(seq.histories, seq.histories[1:])
            )
        ]
        assert len(jumps) == 1
        (seq,) = jumps
        steps = [b.events - a.events for a, b in zip(seq.histories, seq.histories[1:])]
        assert {e2.eid, e3.eid} in steps

    def test_linear_vhs_are_two(self):
        c, _ = paper_diamond()
        assert count_maximal_history_sequences(c, max_step=1) == 2


class TestHistorySequence:
    def test_monotonicity_enforced(self):
        c, (e1, e2, *_r) = paper_diamond()
        h0 = History(c, {e1.eid, e2.eid})
        h1 = History(c, {e1.eid})
        with pytest.raises(ComputationError, match="monotonically"):
            HistorySequence([h0, h1])

    def test_ordered_simultaneous_events_rejected(self):
        c, (e1, e2, e3, e4) = paper_diamond()
        h0 = empty_history(c)
        h1 = History(c, {e1.eid, e2.eid})  # e1 ⇒ e2: cannot be one step
        with pytest.raises(ComputationError, match="concurrent"):
            HistorySequence([h0, h1])

    def test_stuttering_allowed(self):
        c, (e1, *_r) = paper_diamond()
        h = History(c, {e1.eid})
        seq = HistorySequence([h, h])
        assert len(seq) == 2

    def test_empty_sequence_rejected(self):
        with pytest.raises(ComputationError):
            HistorySequence([])

    def test_tail_closure(self):
        c, _ = paper_diamond()
        seq = next(iter(maximal_history_sequences(c, max_step=None)))
        for i in range(len(seq)):
            tail = seq.tail(i)
            assert isinstance(tail, HistorySequence)
            assert tail[0] == seq[i]
        with pytest.raises(IndexError):
            seq.tail(len(seq))

    def test_maximal_and_initial(self):
        c, _ = paper_diamond()
        seq = next(iter(maximal_history_sequences(c)))
        assert seq.is_maximal()
        assert seq.is_initial()
        assert not seq.tail(1).is_initial() or len(seq[1]) == 0

    def test_cross_computation_rejected(self):
        c, (e1, *_p) = paper_diamond()
        c2, (f1, *_q) = paper_diamond()
        with pytest.raises(ComputationError):
            HistorySequence([empty_history(c), History(c2, {f1.eid})])


class TestCapsAndCounts:
    def test_all_histories_cap(self):
        c, _ = paper_diamond()
        with pytest.raises(ComputationError, match="histories"):
            all_histories(c, cap=2)

    def test_vhs_cap(self):
        c, _ = paper_diamond()
        seqs = list(maximal_history_sequences(c, cap=1, max_step=None))
        assert len(seqs) == 1

    def test_count_matches_enumeration_wider(self):
        b = ComputationBuilder()
        events = [b.add_event(f"E{i}", "A") for i in range(4)]
        c = b.freeze()  # four concurrent events
        n_linear = count_maximal_history_sequences(c, max_step=1)
        assert n_linear == 24
        n_anti = count_maximal_history_sequences(c, max_step=None)
        assert n_anti == len(list(maximal_history_sequences(c, max_step=None)))
        assert n_anti == 75  # ordered set partitions (Fubini number a(4))
