"""Unit tests for the verification method: correspondence, projection, sat."""

import pytest

from repro.core import ComputationBuilder, Event
from repro.core.errors import VerificationError
from repro.verify import (
    Correspondence,
    SignificantEvents,
    by_param,
    process_from_param,
    process_from_param_or_element,
    project,
    verify_program,
)


def rule(name="r", element="A", event_class="X", target_element="P",
         target_class="Y", **kw):
    return SignificantEvents(name, element, event_class, target_element,
                             target_class, **kw)


class TestSignificantEvents:
    def test_exact_match(self):
        r = rule()
        assert r.matches(Event.make("A", 1, "X"))
        assert not r.matches(Event.make("B", 1, "X"))
        assert not r.matches(Event.make("A", 1, "Z"))

    def test_prefix_wildcard(self):
        r = rule(element="db.data[*")
        assert r.matches(Event.make("db.data[3]", 1, "X"))
        assert not r.matches(Event.make("db.control", 1, "X"))

    def test_star_matches_everything(self):
        r = rule(element="*")
        assert r.matches(Event.make("anything.at.all", 1, "X"))

    def test_where_predicate(self):
        r = rule(where=by_param("site", "s1"))
        assert r.matches(Event.make("A", 1, "X", {"site": "s1"}))
        assert not r.matches(Event.make("A", 1, "X", {"site": "s2"}))
        assert not r.matches(Event.make("A", 1, "X"))

    def test_callable_target_element(self):
        r = rule(target_element=lambda ev: ev.element.upper())
        assert r.target_element_for(Event.make("abc", 1, "X")) == "ABC"

    def test_params_transform(self):
        r = rule(params=lambda ev: {"item": ev.param("newval")})
        assert r.params_for(Event.make("A", 1, "X", {"newval": 9})) == {"item": 9}
        assert rule().params_for(Event.make("A", 1, "X")) == {}


class TestCorrespondence:
    def test_first_matching_rule_wins(self):
        c = Correspondence((
            rule(name="specific", where=by_param("k", 1), target_class="S"),
            rule(name="general", target_class="G"),
        ))
        ev1 = Event.make("A", 1, "X", {"k": 1})
        ev2 = Event.make("A", 2, "X", {"k": 2})
        assert c.rule_for(ev1).name == "specific"
        assert c.rule_for(ev2).name == "general"
        assert c.rule_for(Event.make("Z", 1, "Q")) is None

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(VerificationError):
            Correspondence((rule(name="a"), rule(name="a")))

    def test_default_edge_policy_keeps_all(self):
        c = Correspondence((rule(),))
        assert c.keeps_edge(Event.make("A", 1, "X"), Event.make("A", 2, "X"))

    def test_same_process_edge_policy(self):
        c = Correspondence((rule(),), process_of=process_from_param("by"))
        a = Event.make("A", 1, "X", {"by": "p"})
        b = Event.make("A", 2, "X", {"by": "p"})
        z = Event.make("A", 3, "X", {"by": "q"})
        n = Event.make("A", 4, "X")  # no process: edges kept
        assert c.keeps_edge(a, b)
        assert not c.keeps_edge(a, z)
        assert c.keeps_edge(a, n)

    def test_process_from_param_or_element(self):
        extract = process_from_param_or_element("by")
        assert extract(Event.make("el", 1, "X", {"by": "p"})) == "p"
        assert extract(Event.make("el", 1, "X")) == "el"

    def test_explicit_edge_filter_overrides(self):
        c = Correspondence((rule(),), edge_filter=lambda a, b: False)
        assert not c.keeps_edge(Event.make("A", 1, "X"), Event.make("A", 2, "X"))


class TestProjection:
    def chain_computation(self):
        """sig(A) -> hidden(H) -> sig(B); plus sig(C) unreachable."""
        b = ComputationBuilder()
        a = b.add_event("A", "X", {"by": "p"})
        h = b.add_event("H", "Mid", {"by": "p"})
        bb = b.add_event("B", "X", {"by": "p"})
        c = b.add_event("C", "X", {"by": "q"})
        b.add_enable(a, h)
        b.add_enable(h, bb)
        return b.freeze()

    def correspondence(self, **kw):
        return Correspondence((
            SignificantEvents("a", "A", "X", "P", "Ev"),
            SignificantEvents("b", "B", "X", "P", "Ev"),
            SignificantEvents("c", "C", "X", "Q", "Ev"),
        ), **kw)

    def test_events_renamed_and_renumbered(self):
        proj = project(self.chain_computation(), self.correspondence())
        assert len(proj) == 3
        assert len(proj.events_at("P")) == 2
        assert len(proj.events_at("Q")) == 1
        assert all(e.event_class == "Ev" for e in proj.events)

    def test_path_induced_edge_through_hidden(self):
        proj = project(self.chain_computation(), self.correspondence())
        p1, p2 = proj.events_at("P")
        assert proj.enables(p1.eid, p2.eid)

    def test_edge_blocked_by_significant_intermediate(self):
        b = ComputationBuilder()
        a = b.add_event("A", "X")
        mid = b.add_event("B", "X")  # significant!
        z = b.add_event("C", "X")
        b.add_enable(a, mid)
        b.add_enable(mid, z)
        proj = project(b.freeze(), self.correspondence())
        pa = proj.events_at("P")[0]
        pz = proj.events_at("Q")[0]
        assert not proj.enables(pa.eid, pz.eid)

    def test_edge_filter_applies(self):
        comp = self.chain_computation()
        corr = self.correspondence(process_of=process_from_param("by"))
        proj = project(comp, corr)
        p1, p2 = proj.events_at("P")
        assert proj.enables(p1.eid, p2.eid)  # same process p

        corr2 = self.correspondence(edge_filter=lambda a, b: False)
        proj2 = project(comp, corr2)
        q1, q2 = proj2.events_at("P")
        assert not proj2.enables(q1.eid, q2.eid)

    def test_threads_preserved(self):
        from repro.core import ThreadId

        comp = self.chain_computation()
        t = ThreadId("pi", 1)
        first = comp.events[0]
        labelled = comp.relabel_threads({first.eid: frozenset({t})})
        proj = project(labelled, self.correspondence())
        assert any(t in e.threads for e in proj.events)

    def test_empty_projection(self):
        b = ComputationBuilder()
        b.add_event("Zed", 0 or "K")
        comp = b.freeze()
        proj = project(comp, self.correspondence())
        assert len(proj) == 0

    def test_element_order_follows_temporal_order(self):
        b = ComputationBuilder()
        # two events at different elements, causally ordered second-first
        first = b.add_event("B", "X")
        second = b.add_event("A", "X")
        b.add_enable(first, second)
        comp = b.freeze()
        proj = project(comp, self.correspondence())
        p = proj.events_at("P")
        # B's event precedes A's event temporally, so it gets index 1
        assert p[0].index == 1
        assert proj.temporally_precedes(p[0].eid, p[1].eid)

    def test_strict_element_order_rejects_invented_order(self):
        b = ComputationBuilder()
        b.add_event("A", "X")
        b.add_event("B", "X")  # concurrent with A's event
        comp = b.freeze()
        with pytest.raises(VerificationError, match="invent"):
            project(comp, self.correspondence(), strict_element_order=True)

    def test_lenient_element_order_linearises(self):
        b = ComputationBuilder()
        b.add_event("A", "X")
        b.add_event("B", "X")
        proj = project(b.freeze(), self.correspondence())
        assert len(proj.events_at("P")) == 2


class TestVerifyProgramReporting:
    def test_report_on_rw_monitor(self):
        from repro.langs.monitor import MonitorProgram, readers_writers_system
        from repro.problems.readers_writers import (
            monitor_correspondence,
            rw_problem_spec,
        )

        sysx = readers_writers_system(1, 1)
        spec = rw_problem_spec(["reader1", "writer1"], variant="weak")
        report = verify_program(
            MonitorProgram(sysx), spec, monitor_correspondence("rw"))
        assert report.ok
        assert report.exhaustive
        assert report.runs_checked == 6
        assert report.deadlocks == 0
        assert "VERIFIED" in report.summary()
        assert report.verdict("writers-exclude-readers").holds
        with pytest.raises(VerificationError):
            report.verdict("no-such-restriction")

    def test_failing_report_details(self):
        from repro.langs.monitor import (
            MonitorProgram,
            one_slot_buffer_monitor_unguarded,
            one_slot_buffer_system,
        )
        from repro.problems.one_slot_buffer import (
            monitor_correspondence,
            one_slot_buffer_spec,
        )

        sysx = one_slot_buffer_system(
            items=(1, 2), monitor=one_slot_buffer_monitor_unguarded())
        report = verify_program(
            MonitorProgram(sysx), one_slot_buffer_spec(),
            monitor_correspondence("osb"))
        assert not report.ok
        failed = [v for v in report.verdicts.values() if not v.holds]
        assert failed
        assert all(v.failing_runs for v in failed)
        assert "FAIL" in report.summary()


class TestCheckProjection:
    def test_check_projection_convenience(self):
        from repro.langs.monitor import (
            MonitorProgram,
            one_slot_buffer_system,
        )
        from repro.problems.one_slot_buffer import (
            monitor_correspondence,
            one_slot_buffer_spec,
        )
        from repro.sim import run_random
        from repro.verify import check_projection

        run = run_random(MonitorProgram(one_slot_buffer_system(items=(1,))),
                         seed=0)
        result = check_projection(
            run.computation, monitor_correspondence("osb"),
            one_slot_buffer_spec())
        assert result.ok, result.summary()
