"""Integration tests: the paper's Section 11 verification claims.

"GEM can also be used as a verification tool. ... Monitor, CSP, and ADA
solutions to the One-Slot Buffer, Bounded Buffer, and Reader's Priority
Readers/Writers problems have been verified.  Properties such as
progress and functional correctness have been proved of the two
distributed problems."

Each test reproduces one cell of that matrix: verify the solution in
language L against problem P over all bounded executions, and (for the
negative controls) confirm that a deliberately broken solution is
rejected.  Small configurations keep tests fast; benchmarks run bigger
ones.
"""

import pytest

from repro.langs.ada import (
    AdaProgram,
    ada_program_spec,
    bounded_buffer_ada_system,
    one_slot_buffer_ada_system,
    rw_ada_system,
)
from repro.langs.csp import (
    CspProgram,
    bounded_buffer_csp_system,
    csp_program_spec,
    one_slot_buffer_csp_system,
    rw_csp_system,
)
from repro.langs.monitor import (
    MonitorProgram,
    bounded_buffer_system,
    monitor_program_spec,
    one_slot_buffer_monitor_unguarded,
    one_slot_buffer_system,
    readers_writers_monitor_writers_first,
    readers_writers_system,
)
from repro.problems import bounded_buffer, one_slot_buffer, readers_writers
from repro.verify import verify_program


class TestOneSlotBuffer:
    """E3: One-Slot Buffer verified in all three languages."""

    def test_monitor_solution(self):
        sysx = one_slot_buffer_system(items=(1, 2))
        report = verify_program(
            MonitorProgram(sysx),
            one_slot_buffer.one_slot_buffer_spec(with_exclusion=True),
            one_slot_buffer.monitor_correspondence("osb"),
            program_spec=monitor_program_spec(sysx),
        )
        assert report.ok, report.summary()
        assert report.exhaustive

    def test_csp_solution(self):
        sysx = one_slot_buffer_csp_system(items=(1, 2))
        report = verify_program(
            CspProgram(sysx),
            one_slot_buffer.one_slot_buffer_spec(temporal_safety=False),
            one_slot_buffer.csp_correspondence(),
            program_spec=csp_program_spec(sysx),
        )
        assert report.ok, report.summary()

    def test_ada_solution(self):
        sysx = one_slot_buffer_ada_system(items=(1, 2))
        report = verify_program(
            AdaProgram(sysx),
            one_slot_buffer.one_slot_buffer_spec(),
            one_slot_buffer.ada_correspondence(),
            program_spec=ada_program_spec(sysx),
        )
        assert report.ok, report.summary()

    def test_unguarded_monitor_mutant_rejected(self):
        sysx = one_slot_buffer_system(
            items=(1, 2), monitor=one_slot_buffer_monitor_unguarded())
        report = verify_program(
            MonitorProgram(sysx),
            one_slot_buffer.one_slot_buffer_spec(),
            one_slot_buffer.monitor_correspondence("osb"),
        )
        assert not report.ok
        assert not report.verdict("capacity-1").holds


class TestBoundedBuffer:
    """E4: Bounded Buffer verified in all three languages."""

    def test_monitor_solution(self):
        sysx = bounded_buffer_system(capacity=2, items=(1, 2, 3))
        report = verify_program(
            MonitorProgram(sysx),
            bounded_buffer.bounded_buffer_spec(2, with_exclusion=True),
            bounded_buffer.monitor_correspondence("bb"),
            program_spec=monitor_program_spec(sysx),
        )
        assert report.ok, report.summary()

    def test_csp_solution(self):
        sysx = bounded_buffer_csp_system(capacity=2, items=(1, 2, 3))
        report = verify_program(
            CspProgram(sysx),
            bounded_buffer.bounded_buffer_spec(2, temporal_safety=False),
            bounded_buffer.csp_correspondence(),
            program_spec=csp_program_spec(sysx),
        )
        assert report.ok, report.summary()

    def test_ada_solution(self):
        sysx = bounded_buffer_ada_system(capacity=2, items=(1, 2, 3))
        report = verify_program(
            AdaProgram(sysx),
            bounded_buffer.bounded_buffer_spec(2),
            bounded_buffer.ada_correspondence(),
            program_spec=ada_program_spec(sysx),
        )
        assert report.ok, report.summary()

    def test_wrong_capacity_rejected(self):
        """A capacity-2 buffer does NOT satisfy the capacity-1 spec."""
        sysx = bounded_buffer_system(capacity=2, items=(1, 2, 3))
        report = verify_program(
            MonitorProgram(sysx),
            bounded_buffer.bounded_buffer_spec(1),
            bounded_buffer.monitor_correspondence("bb"),
        )
        assert not report.ok
        assert not report.verdict("capacity-1").holds


class TestReadersWritersPriority:
    """E1/E2: the Section 9 worked example, in all three languages."""

    def test_monitor_solution(self):
        sysx = readers_writers_system(n_readers=1, n_writers=2)
        users = [c.name for c in sysx.callers]
        report = verify_program(
            MonitorProgram(sysx),
            readers_writers.rw_problem_spec(users, variant="readers-priority"),
            readers_writers.monitor_correspondence("rw"),
            program_spec=monitor_program_spec(sysx),
        )
        assert report.ok, report.summary()
        assert report.verdict("readers-priority").holds
        assert report.verdict("writers-exclude-readers").holds
        assert report.verdict("writers-exclude-writers").holds

    def test_monitor_mutant_loses_priority_not_mutex(self):
        sysx = readers_writers_system(
            n_readers=1, n_writers=2,
            monitor=readers_writers_monitor_writers_first())
        users = [c.name for c in sysx.callers]
        report = verify_program(
            MonitorProgram(sysx),
            readers_writers.rw_problem_spec(users, variant="readers-priority"),
            readers_writers.monitor_correspondence("rw"),
        )
        assert not report.verdict("readers-priority").holds
        assert report.verdict("writers-exclude-readers").holds
        assert report.verdict("writers-exclude-writers").holds

    def test_csp_solution(self):
        sysx = rw_csp_system(n_readers=1, n_writers=2)
        readers, writers = ["reader1"], ["writer1", "writer2"]
        report = verify_program(
            CspProgram(sysx),
            readers_writers.rw_problem_spec(readers + writers,
                                            variant="readers-priority"),
            readers_writers.csp_correspondence(readers, writers),
            program_spec=csp_program_spec(sysx),
        )
        assert report.ok, report.summary()

    def test_csp_mutant_rejected(self):
        sysx = rw_csp_system(n_readers=1, n_writers=2, writers_first=True)
        readers, writers = ["reader1"], ["writer1", "writer2"]
        report = verify_program(
            CspProgram(sysx),
            readers_writers.rw_problem_spec(readers + writers,
                                            variant="readers-priority"),
            readers_writers.csp_correspondence(readers, writers),
        )
        assert not report.verdict("readers-priority").holds
        assert report.verdict("writers-exclude-readers").holds

    def test_ada_solution(self):
        sysx = rw_ada_system(n_readers=1, n_writers=2)
        users = ["reader1", "writer1", "writer2"]
        report = verify_program(
            AdaProgram(sysx),
            readers_writers.rw_problem_spec(users, variant="readers-priority"),
            readers_writers.ada_correspondence(),
            program_spec=ada_program_spec(sysx),
        )
        assert report.ok, report.summary()

    def test_ada_mutant_rejected(self):
        sysx = rw_ada_system(n_readers=1, n_writers=2, writers_first=True)
        users = ["reader1", "writer1", "writer2"]
        report = verify_program(
            AdaProgram(sysx),
            readers_writers.rw_problem_spec(users, variant="readers-priority"),
            readers_writers.ada_correspondence(),
        )
        assert not report.verdict("readers-priority").holds


class TestFiveVariants:
    """E5: the five Readers/Writers versions tell solutions apart."""

    @pytest.fixture(scope="class")
    def monitor_exploration(self):
        from repro.sim import explore_or_sample

        sysx = readers_writers_system(n_readers=1, n_writers=2)
        users = [c.name for c in sysx.callers]
        return sysx, users, explore_or_sample(MonitorProgram(sysx))

    def _verdicts(self, monitor_exploration, variant):
        sysx, users, exploration = monitor_exploration
        report = verify_program(
            MonitorProgram(sysx),
            readers_writers.rw_problem_spec(users, variant=variant),
            readers_writers.monitor_correspondence("rw"),
            exploration=exploration,
        )
        return report

    def test_variant_names(self):
        assert set(readers_writers.VARIANTS) == {
            "weak", "readers-priority", "writers-priority", "fifo",
            "no-starvation",
        }
        with pytest.raises(ValueError):
            readers_writers.rw_problem_spec(["u"], variant="nope")

    def test_weak_holds(self, monitor_exploration):
        assert self._verdicts(monitor_exploration, "weak").ok

    def test_readers_priority_holds(self, monitor_exploration):
        report = self._verdicts(monitor_exploration, "readers-priority")
        assert report.verdict("readers-priority").holds

    def test_writers_priority_fails(self, monitor_exploration):
        """The readers-priority monitor must NOT satisfy writers priority."""
        report = self._verdicts(monitor_exploration, "writers-priority")
        assert not report.verdict("writers-priority").holds

    def test_fifo_fails(self, monitor_exploration):
        """Readers overtake earlier writers, so FIFO service fails."""
        report = self._verdicts(monitor_exploration, "fifo")
        assert not report.verdict("fifo-service").holds

    def test_no_starvation_holds_on_finite_runs(self, monitor_exploration):
        """With finite workloads every request completes."""
        report = self._verdicts(monitor_exploration, "no-starvation")
        assert report.verdict("every-read-request-served").holds
        assert report.verdict("every-write-request-served").holds
        assert report.verdict("every-read-finishes").holds
        assert report.verdict("every-write-finishes").holds


class TestDistributedApplications:
    """E6/E7: the two distributed applications."""

    def test_db_update_verified(self):
        from repro.core import check_computation
        from repro.problems.db_update import (
            DbUpdateProgram,
            db_update_spec,
            standard_requests,
        )
        from repro.sim import explore

        reqs = standard_requests(n_clients=2, n_sites=2)
        spec = db_update_spec(2, reqs)
        runs = list(explore(DbUpdateProgram(2, reqs)))
        assert runs
        for run in runs:
            assert run.completed
            result = check_computation(run.computation, spec)
            assert result.ok, result.summary()

    def test_db_update_mutant_diverges(self):
        from repro.core import check_computation
        from repro.problems.db_update import (
            DbUpdateProgram,
            db_update_spec,
            standard_requests,
        )
        from repro.sim import explore

        reqs = standard_requests(n_clients=2, n_sites=2)
        spec = db_update_spec(2, reqs)
        failures = 0
        for run in explore(DbUpdateProgram(2, reqs, broken_timestamps=True)):
            if not check_computation(run.computation, spec).ok:
                failures += 1
        assert failures > 0

    def test_async_life_matches_synchronous_reference(self):
        from repro.core import check_computation
        from repro.problems.game_of_life import (
            AsyncLifeProgram,
            blinker,
            life_spec,
        )
        from repro.sim import sample_runs

        init = blinker(3, 3)
        spec = life_spec(init, 3, 3, 2)
        for run in sample_runs(AsyncLifeProgram.make(init, 3, 3, 2), 5,
                               seed=0):
            assert run.completed
            result = check_computation(run.computation, spec)
            assert result.ok, result.summary()

    def test_async_life_mutant_rejected(self):
        from repro.core import check_computation
        from repro.problems.game_of_life import (
            AsyncLifeProgram,
            blinker,
            life_spec,
        )
        from repro.sim import sample_runs

        init = blinker(3, 3)
        spec = life_spec(init, 3, 3, 2)
        failures = 0
        for run in sample_runs(
                AsyncLifeProgram.make(init, 3, 3, 2,
                                      skip_neighbor_wait=True), 5, seed=0):
            if not check_computation(run.computation, spec).ok:
                failures += 1
        assert failures > 0

    def test_async_life_distant_cells_concurrent(self):
        """The async grid exhibits real concurrency: distant cells'
        same-generation computations are temporally unordered."""
        from repro.problems.game_of_life import AsyncLifeProgram, blinker, cell_element
        from repro.sim import run_random

        init = blinker(5, 5)
        run = run_random(AsyncLifeProgram.make(init, 5, 5, 1), seed=1)
        comp = run.computation
        a = [e for e in comp.events_at(cell_element(0, 0))
             if e.event_class == "Compute"][0]
        b = [e for e in comp.events_at(cell_element(2, 2))
             if e.event_class == "Compute"][0]
        assert comp.concurrent(a.eid, b.eid)

    def test_life_glider_reference(self):
        """The synchronous reference translates the glider (sanity)."""
        from repro.problems.game_of_life import (
            GLIDER_5X5,
            synchronous_reference,
        )

        grids = synchronous_reference(GLIDER_5X5, 5, 5, 4)
        live0 = {c for c, v in grids[0].items() if v}
        live4 = {c for c, v in grids[4].items() if v}
        # after 4 generations a glider has moved one cell diagonally
        moved = {((x + 1) % 5, (y + 1) % 5) for (x, y) in live0}
        assert live4 == moved


class TestWritersPriorityMonitor:
    """The other corner of the E5 matrix: a true writers-priority monitor
    satisfies the writers-priority variant and fails readers-priority."""

    @pytest.fixture(scope="class")
    def exploration(self):
        from repro.langs.monitor import (
            readers_writers_monitor_writers_priority,
        )
        from repro.sim import explore_or_sample

        system = readers_writers_system(
            n_readers=2, n_writers=1,
            monitor=readers_writers_monitor_writers_priority())
        users = [c.name for c in system.callers]
        return system, users, explore_or_sample(MonitorProgram(system))

    def _report(self, exploration, variant):
        system, users, runs = exploration
        return verify_program(
            MonitorProgram(system),
            readers_writers.rw_problem_spec(users, variant=variant),
            readers_writers.monitor_correspondence("rw"),
            exploration=runs,
        )

    def test_satisfies_writers_priority(self, exploration):
        report = self._report(exploration, "writers-priority")
        assert report.ok, report.summary()

    def test_fails_readers_priority(self, exploration):
        report = self._report(exploration, "readers-priority")
        assert report.failed_restrictions() == ["readers-priority"]

    def test_keeps_mutual_exclusion(self, exploration):
        report = self._report(exploration, "weak")
        assert report.ok, report.summary()
