"""Unit tests for the restriction language (repro.core.formula)."""

import pytest

from repro.core import (
    AllEvents,
    AtControl,
    AtElement,
    AtMostOne,
    ClassAnywhere,
    ClassAt,
    ComputationBuilder,
    Concurrent,
    Const,
    DataCmp,
    DataEq,
    DistinctThreads,
    ElementPrecedes,
    Enables,
    EventClassRef,
    EventEq,
    Eventually,
    Exists,
    ExistsUnique,
    FalseF,
    ForAll,
    Henceforth,
    History,
    HistorySequence,
    Iff,
    Implies,
    New,
    Not,
    Occurred,
    Or,
    Param,
    Potential,
    PyPred,
    Restriction,
    SameThread,
    TemporallyPrecedes,
    ThreadId,
    TrueF,
    UnionDomain,
    domain,
    empty_history,
    full_history,
    maximal_history_sequences,
    term,
)
from repro.core.errors import SpecificationError


def var_computation():
    """Assign(1), Getval(1), Assign(2), Getval(2) at element Var, with
    each Getval enabled by the matching Assign."""
    b = ComputationBuilder()
    a1 = b.add_event("Var", "Assign", {"newval": 1})
    g1 = b.add_event("Var", "Getval", {"oldval": 1})
    a2 = b.add_event("Var", "Assign", {"newval": 2})
    g2 = b.add_event("Var", "Getval", {"oldval": 2})
    b.add_enable(a1, g1)
    b.add_enable(a2, g2)
    return b.freeze(), (a1, g1, a2, g2)


def fork_computation():
    b = ComputationBuilder()
    f = b.add_event("P", "Fork")
    w1 = b.add_event("Q", "Work")
    w2 = b.add_event("R", "Work")
    b.add_enable(f, w1)
    b.add_enable(f, w2)
    return b.freeze(), (f, w1, w2)


class TestDomains:
    def test_class_at(self):
        c, _ = var_computation()
        d = ClassAt(EventClassRef("Var", "Assign"))
        assert len(d.events(c)) == 2

    def test_class_anywhere(self):
        c, _ = fork_computation()
        assert len(ClassAnywhere("Work").events(c)) == 2

    def test_union_deduplicates(self):
        c, _ = var_computation()
        d = UnionDomain((ClassAnywhere("Assign"), ClassAt(EventClassRef("Var", "Assign"))))
        assert len(d.events(c)) == 2

    def test_all_events(self):
        c, _ = var_computation()
        assert len(AllEvents().events(c)) == 4

    def test_domain_coercion(self):
        assert isinstance(domain("Var.Assign"), ClassAt)
        assert isinstance(domain("Assign"), ClassAnywhere)
        assert isinstance(domain(["Assign", "Getval"]), UnionDomain)
        d = domain("Assign")
        assert domain(d) is d
        with pytest.raises(SpecificationError):
            domain(42)

    def test_describe(self):
        assert domain("Var.Assign").describe() == "Var.Assign"
        assert "{" in domain(["A", "B"]).describe()


class TestAtoms:
    def test_occurred(self):
        c, (a1, g1, a2, g2) = var_computation()
        h = History(c, {a1.eid})
        f = Occurred("e")
        assert f.holds_at(h, {"e": a1})
        assert not f.holds_at(h, {"e": g1})

    def test_at_element(self):
        c, (a1, *_r) = var_computation()
        h = full_history(c)
        assert AtElement("e", "Var").holds_at(h, {"e": a1})
        assert not AtElement("e", "Other").holds_at(h, {"e": a1})

    def test_enables_requires_occurrence(self):
        c, (a1, g1, *_r) = var_computation()
        f = Enables("a", "g")
        env = {"a": a1, "g": g1}
        assert f.holds_at(full_history(c), env)
        assert not f.holds_at(History(c, {a1.eid}), env)

    def test_element_precedes(self):
        c, (a1, g1, a2, g2) = var_computation()
        f = ElementPrecedes("x", "y")
        assert f.holds_at(full_history(c), {"x": a1, "y": g2})
        assert not f.holds_at(full_history(c), {"x": g2, "y": a1})

    def test_temporally_precedes(self):
        c, (f_, w1, w2) = fork_computation()
        h = full_history(c)
        assert TemporallyPrecedes("a", "b").holds_at(h, {"a": f_, "b": w1})
        assert not TemporallyPrecedes("a", "b").holds_at(h, {"a": w1, "b": w2})

    def test_concurrent(self):
        c, (f_, w1, w2) = fork_computation()
        h = full_history(c)
        assert Concurrent("a", "b").holds_at(h, {"a": w1, "b": w2})
        assert not Concurrent("a", "b").holds_at(h, {"a": f_, "b": w1})

    def test_event_eq(self):
        c, (a1, g1, *_r) = var_computation()
        h = full_history(c)
        assert EventEq("x", "y").holds_at(h, {"x": a1, "y": a1})
        assert not EventEq("x", "y").holds_at(h, {"x": a1, "y": g1})

    def test_data_eq(self):
        c, (a1, g1, *_r) = var_computation()
        h = full_history(c)
        f = DataEq(Param("a", "newval"), Param("g", "oldval"))
        assert f.holds_at(h, {"a": a1, "g": g1})
        f2 = DataEq(Param("a", "newval"), Const(1))
        assert f2.holds_at(h, {"a": a1})

    def test_data_cmp(self):
        c, (a1, g1, a2, g2) = var_computation()
        h = full_history(c)
        assert DataCmp(Param("a", "newval"), "<", Const(2)).holds_at(h, {"a": a1})
        assert DataCmp(Param("a", "newval"), ">=", Const(2)).holds_at(h, {"a": a2})
        assert DataCmp(Const(1), "!=", Const(2)).holds_at(h, {})
        with pytest.raises(SpecificationError):
            DataCmp(Const(1), "~", Const(2)).holds_at(h, {})

    def test_term_coercion(self):
        assert isinstance(term(5), Const)
        p = Param("a", "x")
        assert term(p) is p

    def test_new_and_potential(self):
        c, (a1, g1, a2, g2) = var_computation()
        h = History(c, {a1.eid})
        assert New("e").holds_at(h, {"e": a1})
        assert Potential("e").holds_at(h, {"e": g1})
        assert not Potential("e").holds_at(h, {"e": a1})

    def test_at_control(self):
        c, (a1, g1, *_r) = var_computation()
        f = AtControl("a", "Var.Getval")
        assert not f.holds_at(full_history(c), {"a": a1})
        assert f.holds_at(History(c, {a1.eid}), {"a": a1})

    def test_threads(self):
        c, (a1, g1, *_r) = var_computation()
        t = ThreadId("pi", 1)
        c2 = c.relabel_threads({a1.eid: frozenset({t}), g1.eid: frozenset({t})})
        h = full_history(c2)
        ea, eg = c2.event(a1.eid), c2.event(g1.eid)
        other = c2.events_of_class("Assign")[1]
        assert SameThread("x", "y").holds_at(h, {"x": ea, "y": eg})
        assert DistinctThreads("x", "y").holds_at(h, {"x": ea, "y": other})

    def test_pypred(self):
        c, _ = var_computation()
        f = PyPred("two-assigns", lambda h, env: len(
            [e for e in h.computation.events_of_class("Assign") if h.occurred(e.eid)]
        ) == 2)
        assert f.holds_at(full_history(c))
        assert not f.holds_at(empty_history(c))
        assert "two-assigns" in f.describe()


class TestConnectives:
    def test_boolean_table(self):
        c, _ = var_computation()
        h = full_history(c)
        t, f = TrueF(), FalseF()
        assert (t & t).holds_at(h)
        assert not (t & f).holds_at(h)
        assert (t | f).holds_at(h)
        assert not (f | f).holds_at(h)
        assert (~f).holds_at(h)
        assert (f >> t).holds_at(h)
        assert (f >> f).holds_at(h)
        assert not (t >> f).holds_at(h)
        assert Iff(t, t).holds_at(h)
        assert Iff(f, f).holds_at(h)
        assert not Iff(t, f).holds_at(h)

    def test_describe_unicode(self):
        f = Implies(Occurred("a"), Not(Occurred("b")))
        assert "⊃" in f.describe()
        assert "¬" in f.describe()


class TestQuantifiers:
    def test_forall(self):
        c, _ = var_computation()
        f = ForAll("a", "Var.Assign", Occurred("a"))
        assert f.holds_at(full_history(c))
        assert not f.holds_at(empty_history(c))

    def test_exists(self):
        c, (a1, *_r) = var_computation()
        f = Exists("a", "Assign", Occurred("a"))
        assert f.holds_at(History(c, {a1.eid}))
        assert not f.holds_at(empty_history(c))

    def test_exists_unique(self):
        c, (a1, g1, a2, g2) = var_computation()
        # exactly one Assign enables g1
        f = ExistsUnique("a", "Assign", Enables("a", "g"))
        assert f.holds_at(full_history(c), {"g": g1})

    def test_exists_unique_fails_on_two(self):
        c, _ = var_computation()
        f = ExistsUnique("a", "Assign", Occurred("a"))
        assert not f.holds_at(full_history(c))

    def test_at_most_one(self):
        c, (a1, g1, a2, g2) = var_computation()
        f = AtMostOne("g", "Getval", Enables("a", "g"))
        assert f.holds_at(full_history(c), {"a": a1})
        f2 = AtMostOne("a", "Assign", Occurred("a"))
        assert not f2.holds_at(full_history(c))
        assert AtMostOne("a", "Assign", FalseF()).holds_at(full_history(c))

    def test_nested_quantifiers(self):
        c, _ = var_computation()
        # every Getval is enabled by some Assign with equal value
        f = ForAll(
            "g", "Var.Getval",
            Implies(
                Occurred("g"),
                Exists(
                    "a", "Var.Assign",
                    Enables("a", "g")
                    & DataEq(Param("a", "newval"), Param("g", "oldval")),
                ),
            ),
        )
        assert f.holds_at(full_history(c))

    def test_quantifier_equality_and_hash(self):
        f1 = ForAll("a", "Assign", Occurred("a"))
        f2 = ForAll("a", "Assign", Occurred("a"))
        f3 = Exists("a", "Assign", Occurred("a"))
        assert f1 == f2
        assert hash(f1) == hash(f2)
        assert f1 != f3


class TestTemporal:
    def test_temporal_on_history_raises(self):
        c, _ = var_computation()
        with pytest.raises(SpecificationError):
            Henceforth(TrueF()).holds_at(full_history(c))
        with pytest.raises(SpecificationError):
            Eventually(TrueF()).holds_at(full_history(c))

    def test_is_temporal(self):
        assert Henceforth(TrueF()).is_temporal()
        assert Eventually(TrueF()).is_temporal()
        assert Not(Henceforth(TrueF())).is_temporal()
        assert ForAll("a", "X", Eventually(Occurred("a"))).is_temporal()
        assert not ForAll("a", "X", Occurred("a")).is_temporal()

    def test_henceforth_over_sequence(self):
        c, (a1, g1, a2, g2) = var_computation()
        seq = next(iter(maximal_history_sequences(c)))
        # "once a2 occurred it stays occurred" - monotone so □ holds
        f = Henceforth(
            Implies(
                PyPred("a2-in", lambda h, env: h.occurred(a2.eid)),
                PyPred("a2-in2", lambda h, env: h.occurred(a2.eid)),
            )
        )
        assert f.holds_on(seq)

    def test_eventually_over_sequence(self):
        c, (a1, g1, a2, g2) = var_computation()
        for seq in maximal_history_sequences(c):
            assert Eventually(Occurred("e")).holds_on(seq, {"e": g2})
        # something that never happens
        assert not Eventually(FalseF()).holds_on(
            next(iter(maximal_history_sequences(c)))
        )

    def test_immediate_on_sequence_uses_first_history(self):
        c, (a1, *_r) = var_computation()
        seq = next(iter(maximal_history_sequences(c)))
        # first history is empty, so nothing occurred
        assert not Occurred("e").holds_on(seq, {"e": a1})
        assert Occurred("e").holds_on(seq.tail(1), {"e": a1}) == seq[1].occurred(a1.eid)

    def test_nested_temporal(self):
        c, (a1, g1, a2, g2) = var_computation()
        # □(occurred(a1) ⊃ ◇occurred(g1)) on every maximal vhs
        f = Henceforth(Implies(Occurred("a"), Eventually(Occurred("g"))))
        for seq in maximal_history_sequences(c):
            assert f.holds_on(seq, {"a": a1, "g": g1})


class TestRestriction:
    def test_describe(self):
        r = Restriction("r1", TrueF(), comment="always holds")
        assert "r1" in r.describe()
        assert "always holds" in r.describe()

    def test_restriction_is_frozen(self):
        r = Restriction("r1", TrueF())
        with pytest.raises(Exception):
            r.name = "r2"
