"""Unit tests for groups, scope, access/contained, and ports.

Includes a faithful regeneration of the Section 4 example: four groups
over six elements, with the paper's "allowed communications" table as
the expected access relation.
"""

import pytest

from repro.core import (
    ElementDecl,
    EventClass,
    EventClassRef,
    GroupDecl,
    GroupStructure,
    ROOT_GROUP,
)
from repro.core.errors import SpecificationError


def section4_structure():
    """ELEMENTS EL1..EL6; G1=(EL2,EL3) G2=(EL4,EL5) G3=(EL3,EL4) G4=(EL1)."""
    elements = [f"EL{i}" for i in range(1, 7)]
    groups = [
        GroupDecl.make("G1", ["EL2", "EL3"]),
        GroupDecl.make("G2", ["EL4", "EL5"]),
        GroupDecl.make("G3", ["EL3", "EL4"]),
        GroupDecl.make("G4", ["EL1"]),
    ]
    return GroupStructure(elements, groups)


#: The paper's table: "An event in <row> may enable any event in <cols>".
SECTION4_TABLE = {
    "EL1": {"EL1", "EL6"},
    "EL2": {"EL2", "EL3", "EL6"},
    "EL3": {"EL2", "EL3", "EL4", "EL6"},
    "EL4": {"EL3", "EL4", "EL5", "EL6"},
    "EL5": {"EL4", "EL5", "EL6"},
    "EL6": {"EL6"},
}


class TestSection4Example:
    def test_access_table_matches_paper(self):
        gs = section4_structure()
        assert {src: set(dsts) for src, dsts in gs.access_table().items()} == (
            SECTION4_TABLE
        )

    def test_may_enable_follows_access(self):
        gs = section4_structure()
        assert gs.may_enable("EL2", "EL3")
        assert not gs.may_enable("EL2", "EL4")
        assert gs.may_enable("EL5", "EL6")
        assert not gs.may_enable("EL6", "EL1")


class TestContainedAndAccess:
    def test_self_access_via_shared_group(self):
        gs = GroupStructure(["A", "B"], [GroupDecl.make("G", ["A", "B"])])
        assert gs.access("A", "A")
        assert gs.access("A", "B")

    def test_global_access(self):
        # B at top level is global to nested A
        gs = GroupStructure(["A", "B"], [GroupDecl.make("G", ["A"])])
        assert gs.access("A", "B")   # B is global
        assert not gs.access("B", "A")  # A is hidden inside G

    def test_nested_containment(self):
        gs = GroupStructure(
            ["X"],
            [GroupDecl.make("Outer", ["Inner"]), GroupDecl.make("Inner", ["X"])],
        )
        assert gs.contained("X", "Inner")
        assert gs.contained("X", "Outer")
        assert gs.contained("Inner", "Outer")
        assert not gs.contained("Outer", "Inner")
        assert gs.contained("X", ROOT_GROUP)

    def test_overlapping_groups(self):
        gs = GroupStructure(
            ["A", "B", "C"],
            [GroupDecl.make("G1", ["A", "B"]), GroupDecl.make("G2", ["B", "C"])],
        )
        assert gs.access("A", "B")
        assert gs.access("C", "B")
        assert not gs.access("A", "C")

    def test_direct_groups_of_root_membership(self):
        gs = GroupStructure(["A", "B"], [GroupDecl.make("G", ["A"])])
        assert gs.direct_groups_of("B") == frozenset({ROOT_GROUP})
        assert gs.direct_groups_of("A") == frozenset({"G"})
        assert gs.direct_groups_of("G") == frozenset({ROOT_GROUP})


class TestPorts:
    def structure_with_port(self):
        """Abstraction = GROUP(Datum, Oper) PORTS(Oper.Start)."""
        return GroupStructure(
            ["Datum", "Oper", "Client"],
            [
                GroupDecl.make(
                    "Abstraction",
                    ["Datum", "Oper"],
                    ports=[EventClassRef("Oper", "Start")],
                )
            ],
        )

    def test_outside_may_enable_port_only(self):
        gs = self.structure_with_port()
        assert gs.may_enable("Client", "Oper", "Start")
        assert not gs.may_enable("Client", "Oper", "Other")
        assert not gs.may_enable("Client", "Datum", "Assign")

    def test_inside_unaffected(self):
        gs = self.structure_with_port()
        assert gs.may_enable("Oper", "Datum", "Assign")
        assert gs.may_enable("Datum", "Oper", "Other")

    def test_port_groups(self):
        gs = self.structure_with_port()
        assert gs.port_groups("Oper", "Start") == frozenset({"Abstraction"})
        assert gs.port_groups("Oper", "Other") == frozenset()

    def test_port_at_unknown_element_rejected(self):
        with pytest.raises(SpecificationError):
            GroupStructure(
                ["A"],
                [GroupDecl.make("G", ["A"], ports=[EventClassRef("Zed", "Go")])],
            )

    def test_port_outside_group_rejected(self):
        with pytest.raises(SpecificationError):
            GroupStructure(
                ["A", "B"],
                [GroupDecl.make("G", ["A"], ports=[EventClassRef("B", "Go")])],
            )

    def test_events_visible_outside(self):
        gs = self.structure_with_port()
        assert gs.events_visible_outside("Abstraction") == frozenset(
            {EventClassRef("Oper", "Start")}
        )


class TestValidation:
    def test_unknown_member_rejected(self):
        with pytest.raises(SpecificationError):
            GroupStructure(["A"], [GroupDecl.make("G", ["A", "Nope"])])

    def test_duplicate_group_rejected(self):
        with pytest.raises(SpecificationError):
            GroupStructure(["A"], [GroupDecl.make("G", ["A"]), GroupDecl.make("G", [])])

    def test_duplicate_elements_rejected(self):
        with pytest.raises(SpecificationError):
            GroupStructure(["A", "A"], [])

    def test_duplicate_members_rejected(self):
        with pytest.raises(SpecificationError):
            GroupDecl.make("G", ["A", "A"])

    def test_containment_cycle_rejected(self):
        with pytest.raises(SpecificationError, match="cycle"):
            GroupStructure(
                [],
                [GroupDecl.make("G1", ["G2"]), GroupDecl.make("G2", ["G1"])],
            )

    def test_root_name_reserved(self):
        with pytest.raises(SpecificationError):
            GroupStructure([], [GroupDecl.make(ROOT_GROUP, [])])

    def test_unknown_group_lookup(self):
        gs = GroupStructure(["A"], [])
        with pytest.raises(SpecificationError):
            gs.group("nope")

    def test_empty_group_name_rejected(self):
        with pytest.raises(SpecificationError):
            GroupDecl.make("", [])


class TestElementDecl:
    def test_duplicate_event_classes_rejected(self):
        with pytest.raises(SpecificationError):
            ElementDecl.make("E", [EventClass("A"), EventClass("A")])

    def test_lookup(self):
        decl = ElementDecl.make("E", [EventClass("A"), EventClass("B")])
        assert decl.event_class("A").name == "A"
        assert decl.declares("B")
        assert not decl.declares("C")
        with pytest.raises(SpecificationError):
            decl.event_class("C")

    def test_renamed_and_refined(self):
        decl = ElementDecl.make("E", [EventClass("A")])
        r = decl.renamed("F").with_event_classes([EventClass("B")])
        assert r.name == "F"
        assert r.class_names() == ("A", "B")

    def test_event_class_ref_parse(self):
        ref = EventClassRef.parse("db.control.ReqRead")
        assert ref.element == "db.control"
        assert ref.event_class == "ReqRead"
        with pytest.raises(SpecificationError):
            EventClassRef.parse("nodots")
