"""Tests for the ``python -m repro`` command-line interface.

Each test drives :func:`repro.cli.main` with an argv list and asserts
on the exit code and captured output -- the same surface a shell user
sees.  ``monitor-one-slot-buffer`` is the workhorse case because it is
the cheapest exhaustive verification in the catalogue.
"""

import os

import pytest

from repro.cli import main

CASE = "monitor-one-slot-buffer"


class TestList:
    def test_lists_all_cases(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert len(out) == 15
        assert out == sorted(out)
        assert CASE in out
        assert {line.split("-")[0] for line in out} == {"monitor", "csp",
                                                        "ada", "db_update",
                                                        "objects"}


class TestVerify:
    def test_verifies_a_case(self, capsys):
        assert main(["verify", CASE]) == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out
        assert "distinct computations" in out

    def test_unknown_case_is_an_error(self, capsys):
        assert main(["verify", "no-such-case"]) == 2
        assert "unknown case" in capsys.readouterr().err

    def test_parallel_jobs_flag(self, capsys):
        assert main(["verify", CASE]) == 0
        serial = capsys.readouterr().out
        assert main(["verify", CASE, "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial  # byte-identical report

    def test_stats_flag(self, capsys):
        assert main(["verify", CASE, "--jobs", "2", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "engine:" in out
        assert "dedupe ratio" in out

    def test_cache_flag_creates_and_reuses_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["verify", CASE, "--cache", cache]) == 0
        cold = capsys.readouterr().out
        files = os.listdir(cache)
        assert any(f.startswith("gem-cache-") for f in files)
        assert main(["verify", CASE, "--cache", cache, "--stats"]) == 0
        warm = capsys.readouterr().out
        assert cold.splitlines()[0] in warm  # identical summary line
        assert "from cache" in warm

    def test_cache_path_that_is_a_file_errors_cleanly(self, tmp_path,
                                                      capsys):
        not_a_dir = tmp_path / "cachefile"
        not_a_dir.write_text("")
        assert main(["verify", CASE, "--cache", str(not_a_dir)]) == 2
        err = capsys.readouterr().err
        assert "not a directory" in err

    def test_mutant_fails_and_exits_zero(self, capsys):
        # --mutant inverts the exit code: the negative control is
        # *expected* to fail verification
        assert main(["verify", CASE, "--mutant"]) == 0
        out = capsys.readouterr().out
        assert "FAILED" in out

    def test_mutant_witness(self, capsys):
        assert main(["verify", CASE, "--mutant", "--witness"]) == 0
        out = capsys.readouterr().out
        assert "counterexample for" in out

    def test_mutant_through_parallel_engine(self, capsys):
        assert main(["verify", CASE, "--mutant", "--jobs", "2"]) == 0
        assert "FAILED" in capsys.readouterr().out


class TestPorFlag:
    def test_flag_matrix_is_byte_identical(self, capsys):
        # CASE's eager exploration is already canonical (runs ==
        # distinct computations), so a sound POR prunes nothing there:
        # every combination of --por/--no-por, --no-compile and --jobs
        # must print the exact same report
        outputs = set()
        for por in (["--por"], ["--no-por"]):
            for compile_ in ([], ["--no-compile"]):
                for jobs in (["--jobs", "1"], ["--jobs", "4"]):
                    argv = ["verify", CASE, *por, *compile_, *jobs]
                    assert main(argv) == 0
                    outputs.add(capsys.readouterr().out)
        assert len(outputs) == 1

    def test_no_por_counts_all_interleavings(self, capsys):
        # db_update has genuinely redundant interleavings; --no-por
        # counts them all, --por (the default) prunes them -- both
        # verify, over the same distinct computations
        assert main(["verify", "db_update"]) == 0
        reduced = capsys.readouterr().out
        assert main(["verify", "db_update", "--no-por"]) == 0
        full = capsys.readouterr().out
        assert "VERIFIED" in reduced and "VERIFIED" in full
        distinct = [line.split("runs, ")[1]
                    for line in (reduced, full)]
        assert distinct[0] == distinct[1]
        runs = [int(out.split("(all ")[1].split(" runs")[0])
                for out in (reduced, full)]
        assert runs[0] < runs[1]

    def test_no_por_jobs_invariant(self, capsys):
        assert main(["verify", "db_update", "--no-por"]) == 0
        serial = capsys.readouterr().out
        assert main(["verify", "db_update", "--no-por", "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_stats_name_the_reduction(self, capsys):
        assert main(["verify", "db_update", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "pruned at" in out
        assert main(["verify", "db_update", "--no-por", "--stats"]) == 0
        assert "por: disabled" in capsys.readouterr().out


class TestTrace:
    def test_trace_writes_schema_valid_jsonl(self, tmp_path, capsys):
        from repro.obs import iter_spans, read_trace

        path = str(tmp_path / "t.jsonl")
        assert main(["verify", CASE, "--trace", path]) == 0
        out = capsys.readouterr().out
        assert f"record(s) written to {path}" in out
        data = read_trace(path)  # raises TraceSchemaError if malformed
        names = {s.name for s in iter_spans(data.spans)}
        assert {"verify", "task", "check"} <= names
        assert any(r["name"] == "engine.runs" for r in data.metric_records)

    def test_trace_structure_identical_across_jobs(self, tmp_path, capsys):
        from repro.obs import read_trace, structure_dump

        p1, p4 = str(tmp_path / "t1.jsonl"), str(tmp_path / "t4.jsonl")
        assert main(["verify", "db_update", "--trace", p1]) == 0
        assert main(["verify", "db_update", "--trace", p4,
                     "--jobs", "4"]) == 0
        capsys.readouterr()
        assert structure_dump(read_trace(p1).spans) \
            == structure_dump(read_trace(p4).spans)

    def test_mutant_trace_carries_explanation(self, tmp_path, capsys):
        from repro.obs import read_trace

        path = str(tmp_path / "t.jsonl")
        assert main(["verify", CASE, "--mutant", "--witness",
                     "--trace", path]) == 0
        out = capsys.readouterr().out
        assert "counterexample for" in out
        assert "explanation for restriction" in out
        data = read_trace(path)
        assert data.explanations  # the why-trace rode along in the file

    def test_witness_dot_file(self, tmp_path, capsys):
        dot = tmp_path / "w.dot"
        assert main(["verify", CASE, "--mutant", "--witness-dot",
                     str(dot)]) == 0
        capsys.readouterr()
        assert dot.read_text().startswith("digraph")

    def test_profile_renders_report(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        assert main(["verify", CASE, "--trace", path, "--jobs", "2"]) == 0
        capsys.readouterr()
        assert main(["profile", path]) == 0
        out = capsys.readouterr().out
        assert "phases:" in out
        assert "workers:" in out

    def test_profile_rejects_malformed_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "nonsense"}\n')
        assert main(["profile", str(bad)]) == 2
        assert "unknown record type" in capsys.readouterr().err

    def test_profile_salvages_truncated_trace(self, tmp_path, capsys):
        # default is tolerant: a stream the daemon died mid-write on
        # still profiles, with a truncation warning up front
        path = tmp_path / "t.jsonl"
        assert main(["verify", CASE, "--trace", str(path)]) == 0
        capsys.readouterr()
        # a proper prefix of a JSON line is never valid JSON, so this
        # always leaves a torn final record
        path.write_text(path.read_text()[:-10])
        assert main(["profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "WARNING: stream truncated" in out
        assert "phases:" in out

    def test_profile_strict_rejects_truncated_trace(self, tmp_path,
                                                    capsys):
        path = tmp_path / "t.jsonl"
        assert main(["verify", CASE, "--trace", str(path)]) == 0
        capsys.readouterr()
        # a proper prefix of a JSON line is never valid JSON, so this
        # always leaves a torn final record
        path.write_text(path.read_text()[:-10])
        assert main(["profile", str(path), "--strict"]) == 2
        assert capsys.readouterr().err

    def test_fuzz_trace(self, tmp_path, capsys):
        from repro.obs import read_trace

        path = str(tmp_path / "f.jsonl")
        assert main(["fuzz", "--iterations", "4",
                     "--oracle", "order-laws",
                     "--trace", path]) == 0
        capsys.readouterr()
        data = read_trace(path)
        assert any(s.name == "fuzz-iteration" for s in data.spans)
        assert any(r["name"] == "fuzz.iterations"
                   for r in data.metric_records)


class TestDrawing:
    def test_dot_prints_digraph(self, capsys):
        assert main(["dot", CASE]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_dot_unknown_case(self, capsys):
        assert main(["dot", "nope"]) == 2
        assert "unknown case" in capsys.readouterr().err

    def test_lattice(self, capsys):
        assert main(["lattice"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_examples(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "(paper: 5)" in out
        assert "(paper: 3)" in out


class TestArgparseErrors:
    def test_no_command_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2
