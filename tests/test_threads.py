"""Unit tests for the thread mechanism (Section 8.3)."""

import pytest

from repro.core import ClassPattern, ComputationBuilder, Path, ThreadId, ThreadType, label_all
from repro.core.errors import SpecificationError


def rw_like_computation(n_transactions=2):
    """n chains: u.Read -> ctl.ReqRead -> ctl.StartRead -> data[i].Getval
    -> ctl.EndRead -> u.FinishRead."""
    b = ComputationBuilder()
    chains = []
    for i in range(n_transactions):
        r = b.add_event("u", "Read", {"loc": i + 1})
        rq = b.add_event("db.control", "ReqRead", {"loc": i + 1})
        sr = b.add_event("db.control", "StartRead", {"loc": i + 1})
        gv = b.add_event(f"db.data[{i + 1}]", "Getval", {"oldval": 0})
        er = b.add_event("db.control", "EndRead", {"info": 0})
        fr = b.add_event("u", "FinishRead", {"info": 0})
        for x, y in zip([r, rq, sr, gv, er], [rq, sr, gv, er, fr]):
            b.add_enable(x, y)
        chains.append((r, rq, sr, gv, er, fr))
    return b.freeze(), chains


READ_PATH = Path.parse(
    "u.Read :: db.control.ReqRead :: db.control.StartRead :: "
    "db.data[*].Getval :: db.control.EndRead :: u.FinishRead"
)


class TestParsing:
    def test_class_pattern_parse(self):
        p = ClassPattern.parse(" db.control.ReqRead ")
        assert p.element_pattern == "db.control"
        assert p.event_class == "ReqRead"

    def test_class_pattern_bad(self):
        with pytest.raises(SpecificationError):
            ClassPattern.parse("nodot")

    def test_path_parse(self):
        assert len(READ_PATH.stages) == 6
        assert str(READ_PATH.stages[3]) == "db.data[*].Getval"

    def test_empty_path_rejected(self):
        with pytest.raises(SpecificationError):
            Path(())

    def test_thread_type_needs_paths(self):
        with pytest.raises(SpecificationError):
            ThreadType("pi", [])

    def test_repr(self):
        tt = ThreadType("pi", [READ_PATH])
        assert "pi" in repr(tt)


class TestWildcards:
    def test_wildcard_matches_indexed_element(self):
        from repro.core import Event

        pat = ClassPattern("db.data[*]", "Getval")
        assert pat.matches(Event.make("db.data[3]", 1, "Getval", {"oldval": 0}))
        assert not pat.matches(Event.make("db.data[3]", 1, "Assign", {"newval": 0}))
        assert not pat.matches(Event.make("other", 1, "Getval", {"oldval": 0}))


class TestLabelling:
    def test_each_transaction_gets_own_thread(self):
        c, chains = rw_like_computation(2)
        tt = ThreadType("pi_RW", [READ_PATH])
        labelled = tt.label(c)
        tids = labelled.thread_ids()
        assert len(tids) == 2
        assert all(t.thread_type == "pi_RW" for t in tids)

    def test_labels_follow_chain(self):
        c, chains = rw_like_computation(1)
        tt = ThreadType("pi_RW", [READ_PATH])
        labelled = tt.label(c)
        (tid,) = labelled.thread_ids()
        for ev in chains[0]:
            assert tid in labelled.event(ev.eid).threads

    def test_labels_do_not_cross_transactions(self):
        c, chains = rw_like_computation(2)
        tt = ThreadType("pi_RW", [READ_PATH])
        labelled = tt.label(c)
        t1_events = {e.eid for e in labelled.events_of_thread(ThreadId("pi_RW", 1))}
        t2_events = {e.eid for e in labelled.events_of_thread(ThreadId("pi_RW", 2))}
        assert not (t1_events & t2_events)
        assert len(t1_events) == 6
        assert len(t2_events) == 6

    def test_serials_assigned_in_temporal_order(self):
        c, chains = rw_like_computation(2)
        tt = ThreadType("pi_RW", [READ_PATH])
        labelled = tt.label(c)
        # the first transaction's Read is ReqRead^1 on db.control: its
        # initiating event is at u^1, which tops the topological order
        first_read = chains[0][0]
        assert ThreadId("pi_RW", 1) in labelled.event(first_read.eid).threads

    def test_chain_stops_when_pattern_breaks(self):
        b = ComputationBuilder()
        r = b.add_event("u", "Read", {"loc": 1})
        rq = b.add_event("db.control", "ReqRead", {"loc": 1})
        odd = b.add_event("elsewhere", "Odd")
        b.add_enable(r, rq)
        b.add_enable(rq, odd)  # not the prescribed next stage
        c = b.freeze()
        tt = ThreadType("pi_RW", [READ_PATH])
        labelled = tt.label(c)
        (tid,) = labelled.thread_ids()
        assert tid in labelled.event(rq.eid).threads
        assert tid not in labelled.event(odd.eid).threads

    def test_alternative_paths(self):
        b = ComputationBuilder()
        w = b.add_event("u", "Write", {"loc": 1, "info": 9})
        rq = b.add_event("db.control", "ReqWrite", {"loc": 1, "info": 9})
        b.add_enable(w, rq)
        c = b.freeze()
        tt = ThreadType(
            "pi_RW",
            [READ_PATH, Path.parse("u.Write :: db.control.ReqWrite")],
        )
        labelled = tt.label(c)
        (tid,) = labelled.thread_ids()
        assert tid in labelled.event(rq.eid).threads

    def test_existing_labels_preserved(self):
        c, chains = rw_like_computation(1)
        tt1 = ThreadType("pi_A", [Path.parse("u.Read")])
        tt2 = ThreadType("pi_B", [Path.parse("db.control.ReqRead")])
        labelled = label_all(c, [tt1, tt2])
        types = {t.thread_type for t in labelled.thread_ids()}
        assert types == {"pi_A", "pi_B"}

    def test_start_serial(self):
        c, chains = rw_like_computation(1)
        tt = ThreadType("pi_RW", [READ_PATH])
        labelled = tt.label(c, start_serial=5)
        assert labelled.thread_ids() == (ThreadId("pi_RW", 5),)

    def test_instances(self):
        c, _ = rw_like_computation(3)
        tt = ThreadType("pi_RW", [READ_PATH])
        labelled = tt.label(c)
        assert len(tt.instances(labelled)) == 3
        other = ThreadType("pi_X", [Path.parse("u.Read")])
        assert other.instances(labelled) == ()
