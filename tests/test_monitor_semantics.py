"""Hoare vs. Mesa monitor semantics: the checker tells them apart.

The paper's Section 9 proof leans on Hoare semantics ("all waiting
readers will be signalled before any other process executes in the
monitor").  These tests demonstrate, mechanically, that the dependency
is real:

* under Hoare semantics the IF-based ReadersWriters monitor satisfies
  mutual exclusion and readers' priority (the paper's claims);
* under Mesa (signal-and-continue) semantics the *same program*
  violates mutual exclusion -- a signalled waiter resumes without
  re-testing while a barger has changed the state;
* the WHILE-based Mesa-correct variant restores mutual exclusion under
  Mesa, but not readers' priority (barging).
"""

import pytest

from repro.core.errors import SpecificationError
from repro.langs.monitor import (
    MonitorProgram,
    readers_writers_monitor_mesa,
    readers_writers_system,
)
from repro.problems.readers_writers import (
    monitor_correspondence,
    rw_problem_spec,
)
from repro.verify import verify_program

MUTEX = ("writers-exclude-readers", "writers-exclude-writers")


def _verify(system, semantics):
    users = [c.name for c in system.callers]
    return verify_program(
        MonitorProgram(system, semantics=semantics),
        rw_problem_spec(users, variant="readers-priority"),
        monitor_correspondence("rw"),
    )


class TestHoareVsMesa:
    def test_paper_monitor_correct_under_hoare(self):
        report = _verify(readers_writers_system(1, 2), "hoare")
        assert report.ok, report.summary()

    def test_paper_monitor_breaks_under_mesa(self):
        """The IF-based monitor loses mutual exclusion under Mesa."""
        report = _verify(readers_writers_system(1, 2), "mesa")
        assert not report.verdict("writers-exclude-readers").holds
        assert not report.verdict("writers-exclude-writers").holds

    def test_while_monitor_restores_mutex_under_mesa(self):
        system = readers_writers_system(
            1, 2, monitor=readers_writers_monitor_mesa())
        report = _verify(system, "mesa")
        for name in MUTEX:
            assert report.verdict(name).holds, report.summary()
        assert report.deadlocks == 0

    def test_while_monitor_loses_priority_under_mesa(self):
        """Barging: Mesa gives no ordering guarantee between a signalled
        reader and a newly arriving writer."""
        system = readers_writers_system(
            1, 2, monitor=readers_writers_monitor_mesa())
        report = _verify(system, "mesa")
        assert not report.verdict("readers-priority").holds

    def test_while_monitor_also_correct_under_hoare(self):
        """WHILE re-tests are harmless under Hoare (they just pass)."""
        system = readers_writers_system(
            1, 1, monitor=readers_writers_monitor_mesa())
        report = _verify(system, "hoare")
        for name in MUTEX:
            assert report.verdict(name).holds, report.summary()

    def test_unknown_semantics_rejected(self):
        system = readers_writers_system(1, 1)
        with pytest.raises(SpecificationError):
            MonitorProgram(system, semantics="java").initial_state()

    def test_mesa_release_enabled_by_signal(self):
        """Mesa Releases still satisfy the Signal→Release prerequisite."""
        from repro.core import EventClassRef
        from repro.sim import explore

        system = readers_writers_system(1, 1)
        for run in explore(MonitorProgram(system, semantics="mesa")):
            comp = run.computation
            for cond in ("readqueue", "writequeue"):
                el = f"rw.cond.{cond}"
                for release in comp.events_of(EventClassRef(el, "Release")):
                    enablers = [e for e in comp.enabled_by(release.eid)
                                if e.event_class == "Signal"]
                    assert len(enablers) == 1
