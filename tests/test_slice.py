"""Computation slicing (repro.core.slice): exactness, laws, routing.

Four layers, mirroring how the slice earns its default-on position:

* a 200-seed differential sweep -- slice-routed checking must be
  byte-equal (verdict *and* detail) to the lattice interpreter on every
  CLI catalog case and on randomly generated restrictions, in both
  checker modes;
* hypothesis properties of the slice representation itself -- each
  :class:`SliceCube` is a join/meet-closed sublattice, every cut in the
  predicate's cubes satisfies the predicate, and the union of cubes is
  exactly the satisfying subset of the full history lattice;
* classifier pinning -- which GEM restriction shapes are regular /
  linear / non-regular is part of the contract, not an accident;
* routing and provenance -- engine counters, sampled-census exactness
  (the workloads that flip from walk-sampled to slice-exact under a
  run cap), the ``slice-differential`` fuzz oracle and its mutant kill.
"""

import random
from itertools import islice

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import case_catalog
from repro.core import all_histories
from repro.core.checker import (
    RestrictionOutcome,
    check_computation,
    check_restriction,
)
from repro.core.formula import Henceforth, Not, PyPred, Restriction
from repro.core.slice import (
    SliceChecker,
    SliceError,
    classify_restriction,
    predicate_cubes,
)
from repro.core.evalcore import event_index
from repro.engine import EngineConfig, run_verification
from repro.fuzz import (
    CheckerArtifact,
    check_slice_agrees,
    oracle_names,
    random_computation,
)
from repro.sim.scheduler import explore, explore_or_sample, run_random
from repro.verify import verify_program
from repro.verify.projection import project

COMMON = settings(max_examples=25, deadline=None, derandomize=True)

#: Seeds for the differential sweep -- ISSUE asks for >= 200 cases.
DIFFERENTIAL_SEEDS = range(200)

CATALOG_CASES = (
    "monitor-readers-writers", "csp-readers-writers", "ada-readers-writers",
    "monitor-one-slot-buffer", "csp-one-slot-buffer", "ada-one-slot-buffer",
    "monitor-bounded-buffer", "csp-bounded-buffer", "ada-bounded-buffer",
    "db_update",
)


def case_projections(name: str, n: int, seed: int = 0):
    """(spec, [projected computations]) for ``n`` seeded runs of a case."""
    entry = case_catalog()[name]
    program, spec, corr, _pspec = entry.factory(False)
    seen = set()
    projections = []
    for i in range(n):
        run = run_random(program, seed + i)
        fp = run.computation.stable_fingerprint()
        if fp in seen:
            continue
        seen.add(fp)
        projections.append(spec.label_threads(project(run.computation, corr)))
    return spec, projections


# -- differential sweep: slice == walk, byte for byte ------------------------


class TestDifferentialSweep:
    def test_catalog_cases_agree_in_every_mode(self):
        """Slice-routed check_computation equals the plain walk on every
        catalog case, both checker modes, verdicts and details."""
        mismatches = []
        for name in CATALOG_CASES:
            spec, projections = case_projections(name, 6)
            for comp in projections:
                for mode in ("compiled", "lattice"):
                    walked = spec.check(comp, temporal_mode=mode)
                    sliced = spec.check(comp, temporal_mode=mode,
                                        use_slice=True)
                    a = [(o.name, o.holds, o.detail) for o in walked.outcomes]
                    b = [(o.name, o.holds, o.detail) for o in sliced.outcomes]
                    if a != b:
                        mismatches.append((name, mode, a, b))
        assert not mismatches, mismatches[:3]

    def test_random_restrictions_200_seeds(self):
        """The fuzz oracle's law over 200 generated (computation,
        restriction) pairs: slice == lattice == exact."""
        failures = []
        checked = 0
        for seed in DIFFERENTIAL_SEEDS:
            rng = random.Random(seed)
            recipe = random_computation(rng, max_elements=3, max_events=6,
                                        with_groups=False)
            art = CheckerArtifact(recipe, rng.randrange(2 ** 32))
            comp = recipe.build()
            message = check_slice_agrees(comp, art.restriction(comp))
            checked += 1
            if message is not None:
                failures.append((seed, message))
        assert checked >= 200
        assert not failures, failures[:5]

    def test_eventually_shapes_agree(self):
        """◇-rooted formulas exercise the EG certification path (the
        artifact generator above only roots at □)."""
        from repro.core.formula import Eventually

        failures = []
        for seed in range(40):
            rng = random.Random(1000 + seed)
            recipe = random_computation(rng, max_elements=3, max_events=5,
                                        with_groups=False)
            art = CheckerArtifact(recipe, rng.randrange(2 ** 32))
            comp = recipe.build()
            body = art.restriction(comp).formula.body
            restriction = Restriction("fuzz-eventually", Eventually(body))
            message = check_slice_agrees(comp, restriction)
            if message is not None:
                failures.append((seed, message))
        assert not failures, failures[:5]


# -- hypothesis: slice lattice laws ------------------------------------------


@st.composite
def immediate_predicates(draw):
    """(computation, closed immediate formula) from the fuzz generators."""
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    rng = random.Random(seed)
    recipe = random_computation(rng, max_elements=3, max_events=6,
                                with_groups=False)
    art = CheckerArtifact(recipe, rng.randrange(2 ** 32))
    comp = recipe.build()
    # the artifact's restriction is Henceforth(body); the body is the
    # immediate predicate the slice represents as cubes
    return comp, art.restriction(comp).formula.body


def _cube_cuts(comp, formula):
    """The cubes of ``formula`` with their cut sets, or None if the
    formula is outside the immediate sliceable fragment."""
    try:
        cubes = predicate_cubes(comp, formula)
        index = event_index(comp)
        return index, [(c, set(c.cuts(index, cap=4096))) for c in cubes]
    except SliceError:
        return None


@COMMON
@given(immediate_predicates())
def test_cubes_are_join_and_meet_closed(drawn):
    """Each cube's cut set is a sublattice: closed under ∪ and ∩."""
    comp, formula = drawn
    got = _cube_cuts(comp, formula)
    if got is None:
        return
    _index, cube_cuts = got
    for _cube, cuts in cube_cuts:
        sample = sorted(cuts)[:12]
        for a in sample:
            for b in sample:
                assert (a | b) in cuts
                assert (a & b) in cuts


@COMMON
@given(immediate_predicates())
def test_every_cube_cut_satisfies_the_predicate(drawn):
    """Soundness: every cut inside a cube satisfies the formula."""
    comp, formula = drawn
    got = _cube_cuts(comp, formula)
    if got is None:
        return
    index, cube_cuts = got
    for _cube, cuts in cube_cuts:
        for mask in sorted(cuts)[:32]:
            history = index.history_of(mask)
            assert formula.holds_at(history), (
                f"cut {mask:b} in a cube but formula false")


@COMMON
@given(immediate_predicates())
def test_cubes_cover_exactly_the_satisfying_histories(drawn):
    """Completeness: the union of cube cuts is the satisfying subset of
    the full history lattice (slice ⊆ lattice, and nothing missed)."""
    comp, formula = drawn
    got = _cube_cuts(comp, formula)
    if got is None:
        return
    index, cube_cuts = got
    union = set()
    for _cube, cuts in cube_cuts:
        union |= cuts
    lattice = {}
    for history in all_histories(comp, cap=4096):
        lattice[index.mask_of(history.events)] = history
    assert union <= set(lattice), "slice contains a non-history cut"
    satisfying = {m for m, h in lattice.items() if formula.holds_at(h)}
    assert union == satisfying


# -- classifier pinning ------------------------------------------------------


def projected_case(name: str, seed: int = 0):
    entry = case_catalog()[name]
    program, spec, corr, _pspec = entry.factory(False)
    run = run_random(program, seed)
    return spec, spec.label_threads(project(run.computation, corr))


class TestClassifier:
    """Which GEM shapes slice how is part of the contract."""

    def _kinds(self, case: str):
        spec, comp = projected_case(case)
        checker = SliceChecker(comp)
        return {r.name: checker.analyze(r) for r in spec.all_restrictions()}

    def test_readers_writers_shapes(self):
        for case in ("monitor-readers-writers", "csp-readers-writers",
                     "ada-readers-writers"):
            kinds = self._kinds(case)
            # pairwise □(implication) restrictions: unions of two cubes
            assert kinds["readers-priority"].kind == "linear", case
            assert kinds["writers-exclude-readers"].kind == "linear", case
            assert kinds["writers-exclude-writers"].kind == "linear", case
            # chain restrictions carry no temporal operator
            assert kinds["read-chain"].kind == "immediate", case
            assert kinds["write-chain"].kind == "immediate", case
            # every sliced verdict is exact
            for name, analysis in kinds.items():
                assert analysis.exact == (
                    analysis.kind in ("regular", "linear")), (case, name)

    def test_one_slot_buffer_shapes(self):
        kinds = self._kinds("monitor-one-slot-buffer")
        # progress restrictions ◇-ground to single-cube regions
        assert kinds["every-deposit-completes"].kind == "regular"
        assert kinds["every-remove-completes"].kind == "regular"
        # PyPred bodies cannot be grounded: fall back to the walk
        for name in ("capacity-1", "fifo-values", "strict-alternation"):
            assert kinds[name].kind == "non-regular"
            assert kinds[name].verdict is None
            assert "PyPred" in kinds[name].detail

    def test_pypred_classifies_non_regular(self):
        comp = random_computation(
            random.Random(0), max_elements=3, max_events=5,
            with_groups=False).build()
        restriction = Restriction(
            "opaque", Henceforth(PyPred("always-true", lambda h, e: True)))
        assert classify_restriction(comp, restriction) == "non-regular"

    def test_immediate_restriction_declined(self):
        comp = random_computation(
            random.Random(1), max_elements=2, max_events=4,
            with_groups=False).build()
        eid = comp.events[0].eid
        restriction = Restriction(
            "immediate",
            Not(PyPred("no-events", lambda h, e: False)))
        analysis = SliceChecker(comp).analyze(restriction)
        assert analysis.kind == "immediate"
        assert analysis.verdict is None
        assert eid  # the computation is non-empty


# -- routing and provenance --------------------------------------------------


class TestRouting:
    def test_outcome_provenance_marks_slice_vs_walk(self):
        spec, comp = projected_case("monitor-one-slot-buffer")
        result = check_computation(comp, spec, temporal_mode="lattice",
                                   use_slice=True)
        by_name = {o.name: o for o in result.outcomes}
        assert by_name["every-deposit-completes"].provenance == "slice"
        assert by_name["capacity-1"].provenance == "walk"
        assert by_name["deposit-chain"].provenance == ""
        assert result.slice_hits == 2
        assert result.slice_fallbacks == 3

    def test_provenance_is_excluded_from_outcome_equality(self):
        a = RestrictionOutcome("r", True, provenance="slice")
        b = RestrictionOutcome("r", True, provenance="walk")
        assert a == b
        assert str(a) == str(b)

    def test_slice_off_leaves_counters_zero(self):
        spec, comp = projected_case("monitor-one-slot-buffer")
        result = check_computation(comp, spec, temporal_mode="lattice")
        assert result.slice_hits == 0
        assert result.slice_fallbacks == 0
        assert all(o.provenance == "" for o in result.outcomes)

    def test_cap_error_mentions_the_slice_remedy(self):
        spec, comp = projected_case("monitor-one-slot-buffer")
        with pytest.raises(Exception, match="--slice"):
            check_computation(comp, spec, temporal_mode="lattice",
                              history_cap=1, use_slice=False)


class TestEngineCounters:
    def test_stats_carry_slice_counts_and_describe_them(self):
        entry = case_catalog()["monitor-readers-writers"]
        program, spec, corr, pspec = entry.factory(False)
        report, stats = run_verification(program, spec, corr, pspec,
                                         EngineConfig())
        assert report.ok
        assert stats.slice_enabled
        assert stats.slice_hits > 0
        assert stats.slice_fallbacks == 0
        assert "slice-exact" in stats.describe()

    def test_no_slice_reports_disabled(self):
        entry = case_catalog()["monitor-readers-writers"]
        program, spec, corr, pspec = entry.factory(False)
        report, stats = run_verification(program, spec, corr, pspec,
                                         EngineConfig(slice=False))
        assert report.ok
        assert not stats.slice_enabled
        assert stats.slice_hits == 0
        assert "slice: disabled" in stats.describe()

    def test_slice_does_not_change_the_signature(self):
        entry = case_catalog()["monitor-one-slot-buffer"]
        program, spec, corr, pspec = entry.factory(False)
        on, _ = run_verification(program, spec, corr, pspec, EngineConfig())
        off, _ = run_verification(program, spec, corr, pspec,
                                  EngineConfig(slice=False))
        assert on.signature() == off.signature()


class TestExactnessRegression:
    """Workloads that flip from walk-sampled to slice-exact provenance.

    Under a run cap the census is sampled, but every temporal verdict on
    these cases is still decided exactly on the slice under the default
    ``history_cap`` -- zero fallbacks -- and the report is byte-stable
    across job counts.
    """

    CASES = ("monitor-readers-writers", "ada-readers-writers")

    def test_sampled_census_slice_exact_verdicts(self):
        for case in self.CASES:
            entry = case_catalog()[case]
            program, spec, corr, pspec = entry.factory(False)
            report, stats = run_verification(program, spec, corr, pspec,
                                             EngineConfig(max_runs=16))
            assert stats.mode == "sampled", case
            assert stats.slice_hits > 0, case
            assert stats.slice_fallbacks == 0, case
            assert "slice-exact" in stats.describe(), case

    def test_byte_stable_across_jobs(self):
        """A seeded sampled census checks slice-exact and byte-stable
        across worker counts.  (Unshared sampling across shard layouts
        legitimately draws different run totals, so the determinism
        contract is stated over the same sampled exploration.)"""
        for case in self.CASES:
            entry = case_catalog()[case]
            program, spec, corr, pspec = entry.factory(False)
            serial, sstats = run_verification(
                program, spec, corr, pspec,
                EngineConfig(max_runs=16, jobs=1),
                exploration=explore_or_sample(program, max_runs=16,
                                              sample=24))
            parallel, pstats = run_verification(
                program, spec, corr, pspec,
                EngineConfig(max_runs=16, jobs=4),
                exploration=explore_or_sample(program, max_runs=16,
                                              sample=24))
            assert serial.signature() == parallel.signature(), case
            assert sstats.slice_hits == pstats.slice_hits > 0, case
            assert sstats.slice_fallbacks == pstats.slice_fallbacks == 0

    def test_exploration_describe_surfaces_slice_provenance(self):
        entry = case_catalog()["monitor-readers-writers"]
        program, spec, corr, pspec = entry.factory(False)
        exploration = explore_or_sample(program, max_runs=16, sample=24)
        assert not exploration.exhaustive
        assert "slice-exact" not in exploration.describe()
        report = verify_program(program, spec, corr, program_spec=pspec,
                                exploration=exploration)
        assert report.ok
        assert exploration.slice_hits > 0
        assert exploration.slice_fallbacks == 0
        assert "checks slice-exact" in exploration.describe()


# -- the standing fuzz oracle ------------------------------------------------


class TestSliceOracle:
    def test_registered_in_the_catalog(self):
        assert "slice-differential" in oracle_names()

    def test_clean_pass_on_a_catalog_projection(self):
        spec, comp = projected_case("monitor-readers-writers")
        for r in spec.all_restrictions():
            if r.formula.is_temporal():
                assert check_slice_agrees(comp, r) is None, r.name

    def test_kills_a_lying_slice_mutant(self):
        rng = random.Random(5)
        recipe = random_computation(rng, max_elements=3, max_events=6,
                                    with_groups=False)
        art = CheckerArtifact(recipe, rng.randrange(2 ** 32))
        comp = recipe.build()
        restriction = art.restriction(comp)

        def lying(c, r):
            honest = check_restriction(c, r, temporal_mode="lattice")
            return RestrictionOutcome(r.name, not honest.holds,
                                      "mutant verdict")

        message = check_slice_agrees(comp, restriction, slice_check=lying)
        assert message is not None and "disagrees" in message


# -- small structural guarantees --------------------------------------------


class TestSliceChecker:
    def test_analysis_is_cached_per_restriction(self):
        spec, comp = projected_case("monitor-readers-writers")
        checker = SliceChecker(comp)
        r = spec.restriction("readers-priority")
        first = checker.analyze(r)
        assert checker.analyze(r) is first

    def test_cube_cap_degrades_to_non_regular(self):
        spec, comp = projected_case("monitor-readers-writers")
        checker = SliceChecker(comp, cube_cap=1)
        analysis = checker.analyze(spec.restriction("readers-priority"))
        assert analysis.kind == "non-regular"
        assert analysis.verdict is None

    def test_slice_agrees_on_exhaustive_exploration(self):
        """Every distinct computation of a small exhaustive exploration:
        slice verdicts equal walked verdicts (not just on samples)."""
        entry = case_catalog()["ada-one-slot-buffer"]
        program, spec, corr, _pspec = entry.factory(False)
        for run in islice(explore(program, max_runs=10_000_000), 12):
            comp = spec.label_threads(project(run.computation, corr))
            walked = spec.check(comp, temporal_mode="lattice")
            sliced = spec.check(comp, temporal_mode="lattice",
                                use_slice=True)
            assert ([(o.name, o.holds, o.detail) for o in walked.outcomes]
                    == [(o.name, o.holds, o.detail)
                        for o in sliced.outcomes])
