"""Unit tests for the problem-specification modules themselves
(structure, restrictions on hand-crafted computations, correspondences)."""

import pytest

from repro.core import (
    ComputationBuilder,
    ThreadId,
    check_safety_at_all_histories,
    empty_history,
    full_history,
)
from repro.problems import (
    bounded_buffer,
    buffer_base,
    db_update,
    game_of_life,
    one_slot_buffer,
    readers_writers,
    variable,
)


class TestVariableProblem:
    def build(self, ops):
        b = ComputationBuilder()
        for kind, value in ops:
            if kind == "assign":
                b.add_event("V", "Assign", {"newval": value})
            else:
                b.add_event("V", "Getval", {"oldval": value})
        return b.freeze()

    def test_getval_yields_last_assign(self):
        comp = self.build([("assign", 1), ("get", 1), ("assign", 2),
                           ("get", 2)])
        r = variable.variable_semantics_restriction("V", initial=0)
        assert r.formula.holds_at(full_history(comp))

    def test_stale_read_detected(self):
        comp = self.build([("assign", 1), ("assign", 2), ("get", 1)])
        r = variable.variable_semantics_restriction("V", initial=0)
        assert not r.formula.holds_at(full_history(comp))

    def test_initial_value_readable(self):
        comp = self.build([("get", 0)])
        assert variable.variable_semantics_restriction(
            "V", initial=0).formula.holds_at(full_history(comp))
        assert not variable.variable_semantics_restriction(
            "V", initial=9).formula.holds_at(full_history(comp))

    def test_read_before_any_assign_without_initial_rejected(self):
        comp = self.build([("get", 0)])
        r = variable.variable_semantics_restriction("V")
        assert not r.formula.holds_at(full_history(comp))

    def test_empty_history_vacuous(self):
        comp = self.build([("assign", 1), ("get", 1)])
        r = variable.variable_semantics_restriction("V", initial=0)
        assert r.formula.holds_at(empty_history(comp))

    def test_integer_variable_type_rejects_strings(self):
        decl = variable.variable_element("V", initial=0, integer=True)
        spec_param = decl.event_class("Assign").params[0]
        assert not spec_param.accepts("nope")
        assert spec_param.accepts(3)

    def test_element_carries_restriction(self):
        decl = variable.variable_element("V", initial=0)
        assert any("getval-yields-last-assign" in r.name
                   for r in decl.restrictions)


class TestBufferBase:
    def control_events(self, seq):
        """seq of (class, item) events at buf.control."""
        b = ComputationBuilder()
        for cls, item in seq:
            b.add_event(buffer_base.CONTROL, cls, {"item": item})
        return b.freeze()

    def test_capacity_counts_end_events(self):
        comp = self.control_events([
            ("EndDeposit", None), ("EndDeposit", None), ("EndRemove", None),
        ])
        assert buffer_base.capacity_restriction(
            2, temporal=False).formula.holds_at(full_history(comp))
        assert not buffer_base.capacity_restriction(
            1, temporal=False).formula.holds_at(full_history(comp))

    def test_remove_before_deposit_rejected(self):
        comp = self.control_events([("EndRemove", None),
                                    ("EndDeposit", None)])
        assert not buffer_base.capacity_restriction(
            3, temporal=False).formula.holds_at(full_history(comp))

    def test_fifo_resolves_item_from_start_or_end(self):
        comp = self.control_events([
            ("StartDeposit", 7), ("EndDeposit", None),
            ("StartRemove", None), ("EndRemove", 7),
        ])
        assert buffer_base.fifo_value_restriction(
            temporal=False).formula.holds_at(full_history(comp))

    def test_fifo_detects_wrong_order(self):
        comp = self.control_events([
            ("StartDeposit", 1), ("EndDeposit", None),
            ("StartDeposit", 2), ("EndDeposit", None),
            ("StartRemove", 2), ("EndRemove", None),
        ])
        assert not buffer_base.fifo_value_restriction(
            temporal=False).formula.holds_at(full_history(comp))

    def test_temporal_capacity_checked_at_histories(self):
        # an interleaving that overshoots mid-way but balances at the end
        comp = self.control_events([
            ("EndDeposit", None), ("EndDeposit", None),
            ("EndRemove", None), ("EndRemove", None),
        ])
        r1 = buffer_base.capacity_restriction(1, temporal=True)
        # the element order fixes the overshoot: even at the complete
        # computation the walk sees occupancy 2
        from repro.core import LatticeChecker

        assert not LatticeChecker(comp).holds(r1.formula)

    def test_spec_structure(self):
        spec = buffer_base.buffer_problem_spec(
            "b", 2, ["p"], ["c"], with_progress=False)
        names = {r.name for r in spec.all_restrictions()}
        assert {"deposit-chain", "remove-chain", "capacity-2",
                "fifo-values"} <= names
        assert "every-deposit-completes" not in names
        spec2 = buffer_base.buffer_problem_spec(
            "b", 2, ["p"], ["c"], with_exclusion=True)
        assert "deposits-exclude-removes" in {
            r.name for r in spec2.all_restrictions()}


class TestOneSlotBufferSpec:
    def test_alternation_detects_double_deposit(self):
        b = ComputationBuilder()
        b.add_event(buffer_base.CONTROL, "EndDeposit", {"item": None})
        b.add_event(buffer_base.CONTROL, "EndDeposit", {"item": None})
        comp = b.freeze()
        r = one_slot_buffer.alternation_restriction(temporal=False)
        assert not r.formula.holds_at(full_history(comp))

    def test_spec_includes_alternation(self):
        spec = one_slot_buffer.one_slot_buffer_spec()
        assert "strict-alternation" in {
            r.name for r in spec.all_restrictions()}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            bounded_buffer.bounded_buffer_spec(0)


class TestReadersWritersSpec:
    def test_variants_differ_in_restrictions(self):
        base = {r.name for r in readers_writers.rw_problem_spec(
            ["u"], variant="weak").all_restrictions()}
        rp = {r.name for r in readers_writers.rw_problem_spec(
            ["u"], variant="readers-priority").all_restrictions()}
        assert rp - base == {"readers-priority"}
        ns = {r.name for r in readers_writers.rw_problem_spec(
            ["u"], variant="no-starvation").all_restrictions()}
        assert "every-read-request-served" in ns

    def test_thread_type_attached(self):
        spec = readers_writers.rw_problem_spec(["u"])
        assert any(t.name == "pi_RW" for t in spec.thread_types)

    def test_db_ports_are_requests(self):
        spec = readers_writers.rw_problem_spec(["u"])
        db = next(g for g in spec.groups if g.name == "db")
        ports = {(p.element, p.event_class) for p in db.ports}
        assert ports == {("db.control", "ReqRead"), ("db.control", "ReqWrite")}

    def test_mutual_exclusion_restriction_on_crafted_computation(self):
        """Hand-build overlapping write/read intervals; □-check fails."""
        b = ComputationBuilder()
        t1, t2 = ThreadId("pi_RW", 1), ThreadId("pi_RW", 2)
        sw = b.add_event("db.control", "StartWrite", threads=[t1])
        sr = b.add_event("db.control", "StartRead", threads=[t2])
        ew = b.add_event("db.control", "EndWrite", threads=[t1])
        er = b.add_event("db.control", "EndRead", threads=[t2])
        comp = b.freeze()
        (mutex_rw, _mutex_ww) = readers_writers.mutual_exclusion_restrictions()
        from repro.core import LatticeChecker

        assert not LatticeChecker(comp).holds(mutex_rw.formula)

    def test_correspondence_builders(self):
        mc = readers_writers.monitor_correspondence("rw")
        assert len(mc.rules) == 12
        cc = readers_writers.csp_correspondence(["r1"], ["w1"])
        assert any("ReqRead" in r.name for r in cc.rules)
        ac = readers_writers.ada_correspondence()
        assert any(r.target_class == "StartWrite" for r in ac.rules)


class TestDbUpdateSpec:
    def test_winning_value_replays_stamping(self):
        reqs = (
            db_update.UpdateRequest("c1", 111, 0),
            db_update.UpdateRequest("c2", 222, 1),
            db_update.UpdateRequest("c1", 333, 0),
        )
        # stamps: (1,0), (1,1), (2,0) -> winner (2,0) = 333
        assert db_update.winning_value(reqs, 2) == 333

    def test_monotonic_timestamps_restriction(self):
        b = ComputationBuilder()
        b.add_event("site[0]", "Apply", {"value": 1, "ts": [2, 0],
                                         "origin": 0})
        b.add_event("site[0]", "Apply", {"value": 2, "ts": [1, 0],
                                         "origin": 0})
        comp = b.freeze()
        r = db_update.timestamps_monotonic_restriction("site[0]")
        from repro.core import LatticeChecker

        assert not LatticeChecker(comp).holds(r.formula)

    def test_spec_elements_cover_sites_and_clients(self):
        reqs = db_update.standard_requests(2, 1, 2)
        spec = db_update.db_update_spec(2, reqs)
        assert "site[0]" in spec.element_names()
        assert "client1" in spec.element_names()

    def test_site_count_validated(self):
        with pytest.raises(ValueError):
            db_update.DbUpdateState(0, [])


class TestGameOfLifeHelpers:
    def test_life_rule(self):
        assert game_of_life.life_rule(False, 3)
        assert game_of_life.life_rule(True, 2)
        assert not game_of_life.life_rule(True, 1)
        assert not game_of_life.life_rule(True, 4)
        assert not game_of_life.life_rule(False, 2)

    def test_neighbours_toroidal(self):
        ns = game_of_life.neighbours(0, 0, 3, 3)
        assert len(ns) == 8
        assert (2, 2) in ns  # wraps both ways

    def test_blinker_oscillates(self):
        init = game_of_life.blinker(5, 5)
        grids = game_of_life.synchronous_reference(init, 5, 5, 2)
        assert grids[2] == grids[0]
        assert grids[1] != grids[0]

    def test_spec_restriction_names(self):
        init = game_of_life.blinker(3, 3)
        spec = game_of_life.life_spec(init, 3, 3, 1)
        names = {r.name for r in spec.all_restrictions()}
        assert names == {"compute-join", "generations-in-order",
                         "functional-correctness", "all-cells-finish"}


class TestDbUpdateMutants:
    def _failures(self, program, spec):
        from repro.core import check_computation
        from repro.sim import explore

        failures = set()
        for run in explore(program):
            result = check_computation(run.computation, spec)
            failures.update(result.failed_restrictions())
        return failures

    def test_lossy_mutant_fails_propagation(self):
        reqs = db_update.standard_requests(2, 1, 2)
        spec = db_update.db_update_spec(2, reqs)
        program = db_update.DbUpdateProgram(2, reqs, lossy=True)
        failures = self._failures(program, spec)
        # the winning update happens to originate at the lossy site, so
        # replicas still converge -- but propagation is provably broken,
        # which is exactly what the progress restriction is for
        assert "full-propagation" in failures

    def test_lossy_mutant_can_also_diverge(self):
        # three clients: the winner originates at site 0 and never
        # reaches the lossy site -> convergence fails too
        reqs = db_update.standard_requests(3, 1, 2)
        spec = db_update.db_update_spec(2, reqs)
        program = db_update.DbUpdateProgram(2, reqs, lossy=True)
        failures = self._failures(program, spec)
        assert "full-propagation" in failures
        assert "convergence" in failures

    def test_broken_timestamps_fail_convergence_not_propagation(self):
        reqs = db_update.standard_requests(2, 1, 2)
        spec = db_update.db_update_spec(2, reqs)
        program = db_update.DbUpdateProgram(2, reqs, broken_timestamps=True)
        failures = self._failures(program, spec)
        assert "convergence" in failures
        assert "full-propagation" not in failures


class TestLifeCausalCone:
    def test_light_cone_bound(self):
        from repro.sim import run_random

        init = game_of_life.blinker(5, 5)
        prog = game_of_life.AsyncLifeProgram.make(init, 5, 5, 2)
        comp = run_random(prog, seed=2).computation
        for (x, y) in [(0, 0), (2, 2), (4, 1)]:
            for gen in (1, 2):
                assert game_of_life.cone_radius_holds(comp, x, y, gen, 5, 5)

    def test_cone_sizes_grow_with_generation(self):
        from repro.sim import run_random

        init = game_of_life.blinker(7, 7)
        prog = game_of_life.AsyncLifeProgram.make(init, 7, 7, 2)
        comp = run_random(prog, seed=0).computation
        c1 = game_of_life.causal_cone(comp, 3, 3, 1)
        c2 = game_of_life.causal_cone(comp, 3, 3, 2)
        # gen 1 depends on the 3x3 neighbourhood (9 events + itself)
        assert len(c1) == 10
        # gen 2 depends on the 5x5 neighbourhood of gen 0 plus the 3x3
        # of gen 1 plus itself: 25 + 9 + 1
        assert len(c2) == 35
        assert c1 < c2


class TestSpecDescribe:
    def test_rw_spec_listing(self):
        spec = readers_writers.rw_problem_spec(["u"],
                                               variant="readers-priority")
        text = spec.describe()
        assert "SPECIFICATION readers-writers-readers-priority" in text
        assert "db.control = ELEMENT" in text
        assert "ReqRead()" in text
        assert "PORTS(db.control.ReqRead, db.control.ReqWrite)" in text
        assert "THREAD pi_RW" in text
        assert "readers-priority" in text

    def test_element_restrictions_listed(self):
        spec = readers_writers.rw_problem_spec(["u"])
        assert "getval-yields-last-assign" in spec.describe()
