"""Restriction automata (``repro.core.automata``): the DFA compile route.

Four layers of guarantees:

* **Classification** -- the four automaton kinds (box-reject,
  dia-accept, dia-leaf, inert) land exactly where the transfer-stability
  analysis says they may, with honest inert reasons and refined input
  alphabets.
* **Soundness** -- a guard verdict decided on a *prefix* equals the
  restriction's verdict on every completion; the monitor is a pure
  observer (exploration census byte-identical with and without it).
* **Determinism** -- report signatures are byte-identical with ``--dfa``
  on/off, across ``--jobs 1/4`` and through the serve daemon, and the
  failing-run witnesses of an early-cut violation match the walked ones.
* **The standing oracle** -- ``dfa-differential`` is registered, passes
  clean on random programs, and kills an injected lying monitor.
"""

from __future__ import annotations

import io
import json
import random

import pytest

from repro.bench import run_bench, _suite_selected
from repro.cli import _build_cases
from repro.core.automata import (
    BOX_REJECT,
    DIA_ACCEPT,
    DIA_LEAF,
    INERT,
    REJECT,
    WATCH,
    AutomatonMonitor,
    _alphabet,
    _occ_guarded,
    _transfers,
    _vacuous,
    automata_plan_for,
    classify_restriction,
    spec_fingerprint,
)
from repro.core.checker import check_computation
from repro.core.compile import plan_for
from repro.core.formula import (
    And,
    Eventually,
    Exists,
    ForAll,
    Henceforth,
    Implies,
    Not,
    Occurred,
    PyPred,
    Restriction,
)
from repro.fuzz import check_dfa_agrees, oracle_names
from repro.fuzz.programs import random_program_spec
from repro.problems.readers_writers import rw_problem_spec
from repro.problems.ring import (
    MARK,
    RingProgram,
    mark_correspondence,
    ring_restriction,
    ring_spec,
    tally_spec,
)
from repro.sim.scheduler import explore, explore_or_sample
from repro.verify.sat import verify_program

CASE = "monitor-tally-mesa"


def ring_monitor(spec):
    return AutomatonMonitor(automata_plan_for(spec), spec)


# -- classification ----------------------------------------------------------


class TestClassification:
    def test_ring_budget_is_box_reject(self):
        automaton = classify_restriction(ring_restriction())
        assert automaton.kind == BOX_REJECT
        assert automaton.monitorable
        assert not automaton.leaf_resolvable
        assert automaton.states() == (WATCH, REJECT)
        # three ∀ over Mark, history-independent guard, monotone
        # consequent: only Mark arrivals can move this machine
        assert automaton.alphabet == frozenset({"Mark"})

    def test_eventually_occurred_is_dia_accept(self):
        r = Restriction("some-mark",
                        Eventually(Exists("x", MARK, Occurred("x"))))
        automaton = classify_restriction(r)
        assert automaton.kind == DIA_ACCEPT
        assert automaton.monitorable and automaton.leaf_resolvable
        assert automaton.stripped is not None
        assert automaton.alphabet == frozenset({"Mark"})

    def test_non_transferring_eventually_is_dia_leaf(self):
        # ∀ truth does not transfer (new bindings are not vacuous), but
        # the monotone body still resolves ◇ at the full-history top
        r = Restriction("all-marks",
                        Eventually(ForAll("x", MARK, Occurred("x"))))
        automaton = classify_restriction(r)
        assert automaton.kind == DIA_LEAF
        assert not automaton.monitorable
        assert automaton.leaf_resolvable

    def test_unstable_box_body_is_inert(self):
        # □∃¬occurred: falsity at a prefix cut can be cured by a new
        # binding, so an early REJECT would be unsound
        r = Restriction("unstable",
                        Henceforth(Exists("x", MARK, Not(Occurred("x")))))
        automaton = classify_restriction(r)
        assert automaton.kind == INERT
        assert "extension-stable" in automaton.reason

    def test_pypred_body_is_inert(self):
        r = Restriction("opaque",
                        Henceforth(PyPred("closure", lambda h, e: True)))
        automaton = classify_restriction(r)
        assert automaton.kind == INERT
        assert "PyPred" in automaton.reason

    def test_non_temporal_is_inert(self):
        automaton = classify_restriction(
            Restriction("flat", Exists("x", MARK, Occurred("x"))))
        assert automaton.kind == INERT
        assert automaton.reason == "not temporal"

    def test_quantifier_cap_declines_grounding_blowup(self):
        body = Henceforth(Occurred("x0"))
        f = body
        for i in range(9):
            f = ForAll(f"x{i}", MARK, f)
        automaton = classify_restriction(Restriction("wide", f))
        assert automaton.kind == INERT
        assert "quantifiers" in automaton.reason

    def test_describe_names_kind_and_reason(self):
        assert classify_restriction(ring_restriction()).describe() == (
            "ring-mark-budget: box-reject")
        assert "inert (not temporal)" in classify_restriction(
            Restriction("flat", Occurred("x"))).describe()

    def test_readers_writers_monitorable_census(self):
        plan = automata_plan_for(rw_problem_spec(("u1", "u2")))
        assert plan.temporal == len(plan.automata)
        assert plan.monitorable >= 1
        assert "monitorable" in plan.describe()
        for automaton in plan.automata.values():
            assert automaton.kind in (BOX_REJECT, DIA_ACCEPT, DIA_LEAF,
                                      INERT)


class TestTransferAnalysis:
    def test_occurred_guards_its_variable(self):
        assert _occ_guarded(Occurred("x"), "x")
        assert not _occ_guarded(Occurred("y"), "x")
        assert _occ_guarded(And((Occurred("x"), Occurred("y"))), "x")
        # negation gives no positive occurrence guarantee
        assert not _occ_guarded(Not(Occurred("x")), "x")
        # an inner quantifier shadowing the variable breaks the guard
        assert not _occ_guarded(Exists("x", MARK, Occurred("x")), "x")

    def test_vacuous_bodies(self):
        # an unoccurred binding falsifies occurred(x), so ¬occurred(x)
        # and occurred(x) ⊃ ψ are both vacuously true of it
        assert _vacuous(Not(Occurred("x")), "x")
        assert _vacuous(Implies(Occurred("x"), Occurred("y")), "x")
        assert not _vacuous(Occurred("x"), "x")

    def test_transfer_directions(self):
        # monotone atoms transfer both ways at a fixed cut
        assert _transfers(Occurred("x"), True)
        assert _transfers(Occurred("x"), False)
        # ∃ transfers truth always, falsity only when occ-guarded
        assert _transfers(Exists("x", MARK, Not(Occurred("x"))), True)
        assert not _transfers(Exists("x", MARK, Not(Occurred("x"))), False)
        assert _transfers(Exists("x", MARK, Occurred("x")), False)
        # ∀ transfers falsity always, truth only when vacuous
        body = ForAll("x", MARK, Occurred("x"))
        assert _transfers(body, False)
        assert not _transfers(body, True)
        assert _transfers(ForAll("x", MARK, Not(Occurred("x"))), True)

    def test_alphabet_is_the_union_of_domain_classes(self):
        assert _alphabet(ring_restriction().formula) == frozenset({"Mark"})
        assert _alphabet(Eventually(Exists("x", MARK, Occurred("x")))) == (
            frozenset({"Mark"}))


# -- probe soundness and the monitor -----------------------------------------


def labelled(spec, computation):
    return spec.label_threads(computation)


class TestProbeAndMonitor:
    def test_box_reject_probe_fires_exactly_on_violation(self):
        spec = ring_spec()
        automaton = automata_plan_for(spec).automaton("ring-mark-budget")
        over, = explore(RingProgram(workers=1, rounds=3))
        under, = explore(RingProgram(workers=1, rounds=2))
        assert automaton.probe(labelled(spec, over.computation),
                               "compiled", 2_000_000) is False
        assert automaton.probe(labelled(spec, under.computation),
                               "compiled", 2_000_000) is None

    def test_monitor_is_a_pure_observer(self):
        """Law zero: the census with the monitor is byte-identical."""
        spec = ring_spec()
        program = RingProgram(workers=2, rounds=3)
        monitor = ring_monitor(spec)
        plain = [(r.choices, r.computation.stable_fingerprint(),
                  r.deadlocked, r.truncated, r.blocked)
                 for r in explore(program)]
        watched = [(r.choices, r.computation.stable_fingerprint(),
                    r.deadlocked, r.truncated, r.blocked)
                   for r in explore(program, dfa=monitor)]
        assert plain == watched
        assert len(plain) == 20  # C(6, 3): every interleaving distinct
        assert monitor.cuts > 0
        assert monitor.probes <= monitor.projections

    def test_early_verdicts_match_completed_computations(self):
        spec = ring_spec()
        for run in explore(RingProgram(workers=2, rounds=3),
                           dfa=ring_monitor(spec)):
            truth = {o.name: o.holds for o in check_computation(
                run.computation, spec, temporal_mode="lattice").outcomes}
            for name, holds in run.decided:
                assert truth[name] == holds
            # 2 workers x 3 rounds always exceeds the 3-mark budget
            assert dict(run.decided)["ring-mark-budget"] is False

    def test_checker_routes_decided_verdicts(self):
        spec = ring_spec()
        run = next(iter(explore(RingProgram(workers=2, rounds=3),
                                dfa=ring_monitor(spec))))
        routed = check_computation(run.computation, spec, use_dfa=True,
                                   decided=dict(run.decided))
        plain = check_computation(run.computation, spec)
        assert not routed.ok and not plain.ok
        assert routed.dfa_hits == 1
        assert [(o.name, o.holds) for o in routed.outcomes] == (
            [(o.name, o.holds) for o in plain.outcomes])

    def test_budget_exhaustion_leaves_decisions_valid(self):
        spec = ring_spec()
        plan = automata_plan_for(spec)
        monitor = AutomatonMonitor(plan, spec, probe_budget=0)
        runs = list(explore(RingProgram(workers=2, rounds=3), dfa=monitor))
        assert monitor.probes == 0 and monitor.cuts == 0
        assert all(run.decided == () for run in runs)


# -- plan and fingerprint memoisation ----------------------------------------


class TestPlanMemo:
    def test_fingerprint_is_instance_independent(self):
        assert spec_fingerprint(tally_spec(2)) == spec_fingerprint(
            tally_spec(2))
        assert spec_fingerprint(ring_spec()) != spec_fingerprint(
            tally_spec(2))

    def test_automata_plan_shared_across_instances(self):
        first, second = tally_spec(2), tally_spec(2)
        assert automata_plan_for(first) is automata_plan_for(second)
        # and the instance-attribute fast path returns the same object
        assert automata_plan_for(first) is automata_plan_for(first)

    def test_compile_plan_shared_across_instances(self):
        first, second = tally_spec(2), tally_spec(2)
        assert plan_for(first) is plan_for(second)


# -- determinism: signatures with the route on and off -----------------------


@pytest.fixture(scope="module")
def tally_reports():
    """The mutant tally case verified with and without the automata."""
    reports = {}
    for dfa in (False, True):
        program, spec, corr, pspec = _build_cases()[CASE](True)
        reports[dfa] = verify_program(program, spec, corr,
                                      program_spec=pspec, dfa=dfa)
    return reports


class TestDeterminism:
    def test_signature_identical_dfa_on_off(self, tally_reports):
        off, on = tally_reports[False], tally_reports[True]
        assert off.signature() == on.signature()
        assert not on.ok

    def test_early_cut_witnesses_match_walked_ones(self, tally_reports):
        """An early-cut violation names the same failing runs and replay
        choices as the full lattice walk."""
        off, on = tally_reports[False], tally_reports[True]
        assert on.engine_stats.dfa_cuts > 0
        v_off = off.verdicts["ring-mark-budget"]
        v_on = on.verdicts["ring-mark-budget"]
        assert not v_on.holds and not v_off.holds
        assert v_on.failing_runs == v_off.failing_runs
        assert on.failing_run_choices == off.failing_run_choices
        assert on.summary() == off.summary()

    def test_stats_and_describe_surface_provenance(self, tally_reports):
        on, off = tally_reports[True], tally_reports[False]
        assert on.engine_stats.dfa_probes > 0
        assert on.engine_stats.dfa_hits > 0
        assert off.engine_stats.dfa_cuts == 0
        assert off.engine_stats.dfa_hits == 0

    def test_signature_identical_across_jobs(self, tally_reports):
        program, spec, corr, pspec = _build_cases()[CASE](True)
        sharded = verify_program(program, spec, corr, program_spec=pspec,
                                 jobs=4, dfa=True)
        assert sharded.signature() == tally_reports[True].signature()

    def test_exploration_describe_surfaces_dfa_provenance(self):
        spec = ring_spec()
        exploration = explore_or_sample(RingProgram(workers=2, rounds=3),
                                        dfa=ring_monitor(spec))
        assert exploration.exhaustive
        assert exploration.dfa_cuts > 0
        assert "cut early by dfa" in exploration.describe()


class TestServeDeterminism:
    @pytest.fixture(scope="class")
    def daemon(self):
        from repro.serve.client import ServeClient
        from repro.serve.daemon import start_in_thread

        handle = start_in_thread(jobs=1, job_workers=1)
        client = ServeClient(port=handle.port)
        assert client.ping()
        yield client
        handle.stop()

    def test_daemon_signatures_identical_dfa_on_off(self, daemon,
                                                    tally_reports):
        dumps = lambda s: json.dumps(s, sort_keys=True)  # noqa: E731
        local = dumps(json.loads(json.dumps(
            tally_reports[True].signature())))
        # dfa=True first: the daemon's shared check cache means later
        # jobs perform no fresh checks, so only the first job's
        # dfa_hits tally is meaningful
        for dfa in (True, False):
            snap = daemon.verify({"case": CASE, "mutant": True, "dfa": dfa})
            assert dumps(snap["result"]["signature"]) == local
            stats = snap["result"]["stats"]
            if dfa:
                assert stats["dfa_cuts"] > 0 and stats["dfa_hits"] > 0
            else:
                assert stats["dfa_cuts"] == 0 and stats["dfa_hits"] == 0


# -- the standing fuzz oracle ------------------------------------------------


class LyingMonitor(AutomatonMonitor):
    """Injectable mutant: every decided guard verdict is flipped."""

    def _guard(self, automaton, prefix, fp):
        verdict = super()._guard(automaton, prefix, fp)
        return verdict if verdict is None else not verdict


class TestDfaOracle:
    def test_registered_in_the_catalog(self):
        assert "dfa-differential" in oracle_names()

    def test_clean_pass_over_seeds(self):
        for seed in range(6):
            spec = random_program_spec(random.Random(seed), max_procs=3,
                                       max_steps_per_proc=2,
                                       dep_density=0.5)
            assert check_dfa_agrees(spec) is None, f"seed {seed}"

    def test_kills_a_lying_monitor(self):
        from repro.fuzz.programs import dfa_problem_spec

        killed = []
        for seed in range(6):
            spec = random_program_spec(random.Random(seed), max_procs=3,
                                       max_steps_per_proc=2,
                                       dep_density=0.5)
            problem = dfa_problem_spec(spec)
            plan = automata_plan_for(problem)
            message = check_dfa_agrees(
                spec, monitor_factory=lambda: LyingMonitor(plan, problem))
            if message is not None:
                killed.append((seed, message))
        assert killed, "no seed produced a decidable prefix"
        assert any("decided" in m or "disagrees" in m for _, m in killed)


# -- the bench rows and the --only filter ------------------------------------


class TestBenchFilter:
    def test_suite_selection_is_prefix_bidirectional(self):
        assert _suite_selected(None, "dfa:")
        assert _suite_selected("dfa", "dfa:")
        assert _suite_selected("dfa:early-violation", "dfa:")
        assert not _suite_selected("por", "dfa:")

    def test_unknown_prefix_is_a_distinct_exit(self):
        buf = io.StringIO()
        assert run_bench(quick=True, only="zzz", out=buf) == 2
        assert "no bench rows match" in buf.getvalue()

    def test_quick_dfa_row_is_gated_and_wins(self):
        buf = io.StringIO()
        assert run_bench(quick=True, only="dfa:", out=buf) == 0
        text = buf.getvalue()
        assert "dfa:early-violation" in text
        assert "[gated]" in text
        assert "1 gated workload(s), 0 informational" in text
