"""Tests for the telemetry stack (PR 8's tentpole + satellites).

Covers, in layer order:

* the Prometheus text exposition: render/parse round-trip, label
  escaping, family typing (counter/gauge/summary/untyped);
* registry kind discipline: sticky kind per key, mismatching writes
  raise, gauges survive the records/merge transport;
* the label-cardinality guard: warn once per name, fold the overflow
  into one ``{overflow="true"}`` series;
* :class:`TelemetryHub`: background sampling, the warn-once-and-
  disable contract for raising samplers;
* :class:`RunHistory`: sqlite round-trip, schema versioning, trends,
  and the median-of-last-N regression gate (wall time and POR prune
  ratio), including the tolerance parser;
* the ``repro history`` CLI: list/show/trends, non-zero exit on an
  injected slowdown, zero exit on identical reruns, ``--tolerance
  10x``;
* the serve daemon: ``/metrics`` parses and carries engine/cache/POR/
  slice counters after a job, ``/healthz``/``/readyz``, the ``GET
  /jobs`` listing, one history row per completed job, and -- the
  determinism criterion -- report signatures byte-identical with
  telemetry/history on vs off across ``--jobs 1/4``;
* ``repro top``: the pure renderer and the ``--once`` loop against a
  live daemon.
"""

import io
import json
import os
import sqlite3
import sys
import threading
import time
import warnings

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

from repro.cli import _build_cases, main
from repro.core.errors import VerificationError
from repro.obs import (
    MetricKindError,
    MetricsRegistry,
    PrometheusParseError,
    RunHistory,
    TelemetryHub,
    metric_name,
    parse_prometheus,
    parse_tolerance,
    record_report,
    render_prometheus,
    render_top,
    run_top,
)
from repro.obs.runhistory import HistorySchemaError, flags_key
from repro.serve.client import ServeClient
from repro.serve.daemon import start_in_thread
from repro.serve.protocol import signature_json
from repro.verify import verify_program

CASE = "monitor-one-slot-buffer"

FLAGS = {"jobs": 1, "por": True, "slice": True, "dfa": True,
         "compile": True, "mutant": False}


def oneshot_report(jobs=1):
    program, spec, corr, pspec = _build_cases()[CASE](False)
    return verify_program(program, spec, corr, program_spec=pspec,
                          jobs=jobs)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """One daemon (with history) shared by the serve-side tests."""
    db = str(tmp_path_factory.mktemp("hist") / "history.sqlite")
    handle = start_in_thread(jobs=2, job_workers=2, history_db=db,
                             telemetry_interval=0.05)
    client = ServeClient(port=handle.port)
    assert client.ping()
    yield handle, client, db
    handle.stop()


# -- Prometheus exposition ---------------------------------------------------


class TestPrometheusFormat:
    def test_metric_name_mangling(self):
        assert metric_name("engine.runs") == "repro_engine_runs"
        assert metric_name("serve.queue.depth") == "repro_serve_queue_depth"

    def test_render_parse_round_trip(self):
        r = MetricsRegistry()
        r.inc("checker.evals", 42, restriction="mutex-rw")
        r.inc("checker.evals", 7, restriction="other")
        r.set("serve.queue.depth", 3)
        r.observe("checker.seconds", 0.25, restriction="mutex-rw")
        r.observe("checker.seconds", 0.75, restriction="mutex-rw")
        scrape = parse_prometheus(render_prometheus(r))
        assert scrape.value("repro_checker_evals",
                            restriction="mutex-rw") == 42
        assert scrape.value("repro_checker_evals", restriction="other") == 7
        assert scrape.value("repro_serve_queue_depth") == 3
        assert scrape.value("repro_checker_seconds_count",
                            restriction="mutex-rw") == 2
        assert scrape.value("repro_checker_seconds_sum",
                            restriction="mutex-rw") == 1.0
        assert scrape.value("repro_checker_seconds_max",
                            restriction="mutex-rw") == 0.75
        assert scrape.types["repro_checker_evals"] == "counter"
        assert scrape.types["repro_serve_queue_depth"] == "gauge"
        assert scrape.types["repro_checker_seconds"] == "summary"

    def test_label_values_escape_and_unescape(self):
        r = MetricsRegistry()
        r.inc("m", 1, label='quote " backslash \\ newline \n end')
        text = render_prometheus(r)
        scrape = parse_prometheus(text)
        (labels,) = scrape.family("repro_m").keys()
        assert labels == (
            ("label", 'quote " backslash \\ newline \n end'),)

    def test_mixed_kind_family_is_untyped(self):
        r = MetricsRegistry()
        r.inc("x", 1, side="a")
        r.set("x", 5, side="b")
        scrape = parse_prometheus(render_prometheus(r))
        assert scrape.types["repro_x"] == "untyped"
        assert scrape.value("repro_x", side="a") == 1
        assert scrape.value("repro_x", side="b") == 5

    def test_parser_rejects_junk(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("this is { not a sample\n")
        with pytest.raises(PrometheusParseError):
            parse_prometheus("ok_name not_a_number\n")

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert len(parse_prometheus("")) == 0


# -- metric kind discipline --------------------------------------------------


class TestMetricKinds:
    def test_kind_is_sticky_per_key(self):
        r = MetricsRegistry()
        r.inc("engine.runs", 5)
        with pytest.raises(MetricKindError):
            r.set("engine.runs", 1)
        with pytest.raises(MetricKindError):
            r.observe("engine.runs", 1.0)
        assert r.kind("engine.runs") == "counter"

    def test_same_name_different_labels_may_differ(self):
        # the real case: checker.slice_hits is a labelled counter in
        # workers and an unlabelled gauge on the EngineStats view
        r = MetricsRegistry()
        r.inc("checker.slice_hits", 3, restriction="r")
        r.set("checker.slice_hits", 3)
        assert r.kind("checker.slice_hits", restriction="r") == "counter"
        assert r.kind("checker.slice_hits") == "gauge"

    def test_gauge_survives_transport_with_set_semantics(self):
        src = MetricsRegistry()
        src.set("serve.queue.depth", 4)
        src.inc("engine.phase_seconds", 1.5, phase="explore")
        dst = MetricsRegistry()
        dst.set("serve.queue.depth", 99)
        dst.merge_records(src.records())
        dst.merge_records(src.records())
        # gauge: incoming value wins (not 99, not summed to 8)
        assert dst.get("serve.queue.depth") == 4
        assert dst.kind("serve.queue.depth") == "gauge"
        # counter: merged twice accumulates
        assert dst.get("engine.phase_seconds", phase="explore") == 3.0

    def test_cardinality_guard_warns_once_and_folds(self):
        r = MetricsRegistry(label_set_limit=3)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for i in range(10):
                r.inc("checker.evals", 1, run=i)
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "checker.evals" in str(runtime[0].message)
        # first 3 label sets admitted, the other 7 folded together
        assert r.get("checker.evals", run=0) == 1
        assert r.get("checker.evals", overflow="true") == 7

    def test_overflow_series_renders_and_parses(self):
        r = MetricsRegistry(label_set_limit=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for i in range(4):
                r.inc("m", 1, k=i)
        scrape = parse_prometheus(render_prometheus(r))
        assert scrape.value("repro_m", overflow="true") == 3


# -- the background sampler --------------------------------------------------


class TestTelemetryHub:
    def test_sample_now_runs_sampler(self):
        r = MetricsRegistry()
        hub = TelemetryHub(r, lambda reg: reg.set("g", 7), interval=10)
        assert hub.sample_now() is True
        assert r.get("g") == 7
        assert hub.samples == 1

    def test_background_thread_samples(self):
        r = MetricsRegistry()
        hub = TelemetryHub(r, lambda reg: reg.set("g", 1), interval=0.05)
        hub.start()
        try:
            deadline = time.monotonic() + 5
            while hub.samples < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert hub.samples >= 3
        finally:
            hub.stop()

    def test_raising_sampler_warns_once_and_disables(self):
        r = MetricsRegistry()

        def bad(_reg):
            raise RuntimeError("boom")

        hub = TelemetryHub(r, bad, interval=10)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert hub.sample_now() is False
            assert hub.sample_now() is False  # already disabled: no call
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "sampling disabled" in str(runtime[0].message)
        assert hub.samples == 0


# -- the run-history store ---------------------------------------------------


def seed_history(db, walls, case="c1", flags=FLAGS, prunes=None):
    history = RunHistory(db)
    for i, wall in enumerate(walls):
        stats = {"runs": 10}
        if prunes is not None:
            stats["por_pruned"] = prunes[i]
        history.record(source="cli", case=case, flags=flags, ok=True,
                       mode="exhaustive", signature=[["r", "holds"]],
                       wall_s=wall, stats=stats, ts=1000.0 + i)
    return history


class TestRunHistory:
    def test_record_and_read_back(self, tmp_path):
        db = str(tmp_path / "h.sqlite")
        history = seed_history(db, [0.5, 0.6])
        rows = history.runs()
        assert [r.id for r in rows] == [2, 1]  # latest first
        assert rows[0].case == "c1" and rows[0].flags == FLAGS
        assert rows[0].wall_s == 0.6 and rows[0].ok
        assert len(history) == 2
        one = history.run(1)
        assert one is not None and one.wall_s == 0.5
        assert history.run(99) is None
        # a second open sees the same rows (it is a file, not a process)
        assert len(RunHistory(db)) == 2

    def test_schema_version_mismatch_raises(self, tmp_path):
        db = str(tmp_path / "h.sqlite")
        seed_history(db, [0.5])
        conn = sqlite3.connect(db)
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(HistorySchemaError):
            RunHistory(db)

    def test_series_split_by_case_and_flags(self, tmp_path):
        db = str(tmp_path / "h.sqlite")
        history = seed_history(db, [0.5])
        history.record(source="cli", case="c1",
                       flags={**FLAGS, "jobs": 4}, ok=True,
                       mode="exhaustive", signature=[], wall_s=0.2,
                       ts=2000.0)
        series = history.series()
        assert set(series) == {("c1", flags_key(FLAGS)),
                               ("c1", flags_key({**FLAGS, "jobs": 4}))}

    def test_trends_report_median_and_latest(self, tmp_path):
        db = str(tmp_path / "h.sqlite")
        history = seed_history(db, [1.0, 2.0, 3.0])
        (trend,) = history.trends()
        assert trend["latest_s"] == 3.0
        assert trend["median_s"] == 2.0
        assert trend["runs"] == 3

    def test_wall_time_regression_detected(self, tmp_path):
        db = str(tmp_path / "h.sqlite")
        history = seed_history(db, [1.0, 1.1, 0.9, 1.0, 5.0])
        (reg,) = history.regressions(tolerance=1.5)
        assert reg.kind == "wall_s" and reg.run_id == 5
        assert reg.ratio == pytest.approx(5.0)
        assert "median" in reg.describe()

    def test_identical_reruns_do_not_regress(self, tmp_path):
        db = str(tmp_path / "h.sqlite")
        history = seed_history(db, [1.0, 1.0, 1.0])
        assert history.regressions(tolerance=1.5) == []

    def test_single_run_has_no_baseline(self, tmp_path):
        db = str(tmp_path / "h.sqlite")
        history = seed_history(db, [1.0])
        assert history.regressions(tolerance=1.0) == []

    def test_prune_ratio_regression_detected(self, tmp_path):
        db = str(tmp_path / "h.sqlite")
        # prune ratio collapses from 90/(90+10)=0.9 to 10/(10+10)=0.5
        history = seed_history(db, [1.0, 1.0, 1.0],
                               prunes=[90, 90, 10])
        regs = history.regressions(tolerance=1.5)
        assert [r.kind for r in regs] == ["prune_ratio"]

    def test_parse_tolerance(self):
        assert parse_tolerance("1.5") == 1.5
        assert parse_tolerance("10x") == 10.0
        assert parse_tolerance(" 2X ") == 2.0
        with pytest.raises(VerificationError):
            parse_tolerance("fast")
        with pytest.raises(VerificationError):
            parse_tolerance("0.5")


# -- the ``repro history`` CLI -----------------------------------------------


class TestHistoryCli:
    def test_list_show_trends(self, tmp_path, capsys):
        db = str(tmp_path / "h.sqlite")
        seed_history(db, [0.5, 0.6])
        assert main(["history", "list", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "c1" in out and flags_key(FLAGS) in out
        assert main(["history", "show", "1", "--db", db]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["case"] == "c1" and shown["wall_s"] == 0.5
        assert main(["history", "trends", "--db", db]) == 0
        assert "c1" in capsys.readouterr().out

    def test_missing_db_is_an_error(self, tmp_path, capsys):
        db = str(tmp_path / "absent.sqlite")
        assert main(["history", "list", "--db", db]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_regressions_gate_fails_on_injected_slowdown(self, tmp_path,
                                                         capsys):
        db = str(tmp_path / "h.sqlite")
        seed_history(db, [1.0, 1.0, 1.0, 1.0, 8.0])
        assert main(["history", "regressions", "--db", db]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "1 regression(s)" in out

    def test_regressions_gate_passes_on_identical_reruns(self, tmp_path,
                                                         capsys):
        db = str(tmp_path / "h.sqlite")
        seed_history(db, [1.0, 1.0, 1.0])
        assert main(["history", "regressions", "--db", db]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_tolerance_10x_forgives_a_3x_slowdown(self, tmp_path, capsys):
        db = str(tmp_path / "h.sqlite")
        seed_history(db, [1.0, 1.0, 3.0])
        assert main(["history", "regressions", "--db", db,
                     "--tolerance", "10x"]) == 0
        capsys.readouterr()
        assert main(["history", "regressions", "--db", db,
                     "--tolerance", "1.5"]) == 1
        capsys.readouterr()

    def test_verify_history_flag_records_a_row(self, tmp_path, capsys):
        db = str(tmp_path / "h.sqlite")
        assert main(["verify", CASE, "--history", db]) == 0
        out = capsys.readouterr().out
        assert "history: run #1 recorded" in out
        (row,) = RunHistory(db).runs()
        assert row.source == "cli" and row.case == CASE
        assert row.flags == FLAGS
        assert row.ok and row.wall_s > 0
        assert row.stats["runs"] > 0


# -- the serve daemon's telemetry surface ------------------------------------


class TestServeTelemetry:
    def test_health_and_readiness(self, daemon):
        _handle, client, _db = daemon
        assert client.healthz() is True
        assert client.readyz() is True

    def test_metrics_parse_and_cover_the_engine(self, daemon):
        _handle, client, db = daemon
        before = len(RunHistory(db))
        snap = client.verify({"case": CASE, "jobs": 2})
        assert snap["state"] == "done"
        scrape = parse_prometheus(client.metrics_text())
        # engine, cache, POR and slice counters all exposed
        assert scrape.value("repro_engine_runs") > 0
        assert scrape.value("repro_por_nodes") > 0
        assert ("repro_checker_slice_hits", ()) in scrape.samples
        assert ("repro_serve_cache_entries", ()) in scrape.samples
        assert scrape.value("repro_serve_jobs_done") >= 1
        assert scrape.value("repro_serve_uptime_seconds") > 0
        assert scrape.types["repro_serve_jobs_done"] == "counter"
        assert scrape.types["repro_serve_queue_depth"] == "gauge"
        # one history row was written for the completed job
        assert len(RunHistory(db)) == before + 1
        (row,) = RunHistory(db).runs(limit=1)
        assert row.source == "serve" and row.case == CASE
        assert row.flags["jobs"] == 2 and row.wall_s > 0

    def test_jobs_listing_has_wall_times(self, daemon):
        _handle, client, _db = daemon
        client.verify({"case": CASE})
        jobs = client.jobs_list()
        assert jobs, "listing should show submitted jobs"
        done = [j for j in jobs if j["state"] == "done"]
        assert done and all(j["wall_s"] > 0 for j in done)
        assert all(set(j) <= {"id", "state", "label", "wall_s"}
                   for j in jobs)

    def test_signatures_identical_with_telemetry_and_history_on_or_off(
            self, daemon, tmp_path):
        _handle, client, _db = daemon
        for jobs in (1, 4):
            plain = signature_json(oneshot_report(jobs=jobs).signature())
            # one-shot with history recording on
            report = oneshot_report(jobs=jobs)
            record_report(
                RunHistory(str(tmp_path / f"j{jobs}.sqlite")),
                source="cli", case=CASE, flags={**FLAGS, "jobs": jobs},
                report=report, wall_s=0.1)
            with_history = signature_json(report.signature())
            # daemon job (telemetry + history both active)
            snap = client.verify({"case": CASE, "jobs": jobs})
            served = snap["result"]["signature"]
            dumps = lambda s: json.dumps(s, sort_keys=True)  # noqa: E731
            assert dumps(plain) == dumps(with_history) == dumps(served)

    def test_top_renderer_and_once_loop(self, daemon):
        handle, client, _db = daemon
        frame = render_top(parse_prometheus(client.metrics_text()),
                           client.stats(), client.jobs_list(),
                           endpoint="test")
        assert "repro top -- test" in frame
        assert "engine : runs" in frame
        assert CASE in frame
        out = io.StringIO()
        assert run_top(port=handle.port, once=True, out=out) == 0
        assert "uptime" in out.getvalue()

    def test_top_unreachable_daemon_exits_nonzero(self):
        assert run_top(port=1, once=True, out=io.StringIO()) == 1
