"""Differential suite gating partial-order reduction (repro.engine.por).

The contract under test: ample-set reduction may prune interleavings,
never behaviours.  On every built-in problem (all ten CLI cases, their
mutants, the ablation variants) and on hundreds of seeded fuzz
programs, POR and full exploration must produce identical
computation-fingerprint sets, identical verdicts, and witnesses that
replay to computations the full exploration also reaches -- asserted
through the same law functions (``check_por_agrees``,
``check_por_program_agrees``) the ``repro fuzz`` CLI runs as a standing
oracle.  Killed-mutant tests inject a deliberately unsound selector to
prove the laws can fail; Hypothesis properties pin the event-level
independence relation the reduction's correctness argument rests on.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import _build_cases
from repro.core.evalcore import event_index, iter_bits
from repro.engine import EngineConfig, run_verification
from repro.engine.por import (
    DEFAULT_PROVISO_LIMIT,
    AmpleSelector,
    advance_postponed,
    event_independent,
    independent_pairs,
    make_selector,
)
from repro.fuzz.generators import random_computation
from repro.fuzz.oracles import check_por_agrees, check_por_program_agrees
from repro.fuzz.programs import (
    FORK_DROPS_ENABLES,
    FuzzProgram,
    FuzzProgramSpec,
    fuzz_correspondence,
    fuzz_problem_spec,
    random_program_spec,
)
from repro.langs.monitor import (
    MonitorProgram,
    bounded_buffer_system,
    one_slot_buffer_system,
    readers_writers_system,
)
from repro.problems.db_update import DbUpdateProgram, standard_requests
from repro.sim.runtime import Action, Footprint
from repro.sim.scheduler import ExplorationResult, explore, explore_or_sample

COMMON = settings(max_examples=25, deadline=None, derandomize=True)


# -- Footprint algebra ------------------------------------------------------


class TestFootprint:
    def test_read_read_does_not_conflict(self):
        a = Footprint(reads=frozenset({"x"}))
        b = Footprint(reads=frozenset({"x"}))
        assert not a.conflicts(b)

    def test_write_write_conflicts(self):
        a = Footprint(writes=frozenset({"x"}))
        b = Footprint(writes=frozenset({"x"}))
        assert a.conflicts(b)

    def test_read_write_conflicts_both_ways(self):
        r = Footprint(reads=frozenset({"x"}))
        w = Footprint(writes=frozenset({"x"}))
        assert r.conflicts(w) and w.conflicts(r)

    def test_disjoint_tokens_do_not_conflict(self):
        a = Footprint(reads=frozenset({"a"}), writes=frozenset({"b"}))
        b = Footprint(reads=frozenset({"c"}), writes=frozenset({"d"}))
        assert not a.conflicts(b) and not b.conflicts(a)

    @COMMON
    @given(data=st.data())
    def test_conflicts_is_symmetric(self, data):
        tokens = list("abcd")
        def fp():
            return Footprint(
                reads=frozenset(data.draw(st.sets(st.sampled_from(tokens)))),
                writes=frozenset(data.draw(st.sets(st.sampled_from(tokens)))))
        a, b = fp(), fp()
        assert a.conflicts(b) == b.conflicts(a)


# -- postponement counters (ignoring-prevention proviso) --------------------


def _acts(*names):
    return [Action(n, "go", key=n) for n in names]


class TestAdvancePostponed:
    def test_passed_over_processes_count_up(self):
        actions = _acts("p", "q", "r")
        post = advance_postponed({}, actions, actions[0])
        assert post == {"q": 1, "r": 1}
        post = advance_postponed(post, actions, actions[1])
        assert post == {"p": 1, "r": 2}

    def test_disabled_processes_drop_out(self):
        post = advance_postponed({"q": 3}, _acts("p"), _acts("p")[0])
        assert post == {}

    def test_counters_are_a_pure_function_of_the_path(self):
        actions = _acts("p", "q")
        one = advance_postponed({}, actions, actions[0])
        two = advance_postponed({}, actions, actions[0])
        assert one == two == {"q": 1}


# -- differential: every built-in problem -----------------------------------

CASES = _build_cases()


@pytest.mark.parametrize("name", sorted(CASES))
@pytest.mark.parametrize("mutant", [False, True])
def test_por_agrees_on_builtin_case(name, mutant):
    program = CASES[name](mutant)[0]
    assert check_por_program_agrees(
        program, max_steps=10_000, max_runs=200_000) is None


EAGER_ZERO_PRUNE = [
    ("rw(1,1)", lambda: MonitorProgram(readers_writers_system(1, 1))),
    ("osb", lambda: MonitorProgram(one_slot_buffer_system())),
    ("bb", lambda: MonitorProgram(bounded_buffer_system())),
]


@pytest.mark.parametrize("name,make", EAGER_ZERO_PRUNE,
                         ids=[n for n, _ in EAGER_ZERO_PRUNE])
def test_eager_monitor_exploration_is_already_canonical(name, make):
    # eager reductions leave runs == distinct computations; a *sound*
    # POR has nothing left to prune there, and the run census the
    # existing tests pin (e.g. rw(1,1) -> 6 runs) must not move
    selector = AmpleSelector()
    runs = list(explore(make(), max_steps=10_000, max_runs=200_000,
                        por=selector))
    full = list(explore(make(), max_steps=10_000, max_runs=200_000))
    assert len(runs) == len(full)
    assert selector.pruned == 0


NO_EAGER = [
    ("rw(1,1)", lambda: MonitorProgram(
        readers_writers_system(1, 1), eager_reductions=False)),
    ("rw(1,1)-fifo", lambda: MonitorProgram(
        readers_writers_system(1, 1), entry_grant="fifo",
        eager_reductions=False)),
    ("osb(1,2)", lambda: MonitorProgram(
        one_slot_buffer_system(items=(1, 2)), eager_reductions=False)),
    ("osb(1,2)-mesa", lambda: MonitorProgram(
        one_slot_buffer_system(items=(1, 2)), eager_reductions=False,
        semantics="mesa")),
    ("bb(2,(1,2))", lambda: MonitorProgram(
        bounded_buffer_system(capacity=2, items=(1, 2)),
        eager_reductions=False)),
]


@pytest.mark.parametrize("name,make", NO_EAGER,
                         ids=[n for n, _ in NO_EAGER])
def test_por_agrees_on_unreduced_monitor(name, make):
    # the ablation configurations are where POR earns its keep: the
    # interleaving explosion eager reductions normally hide
    assert check_por_program_agrees(
        make(), max_steps=10_000, max_runs=200_000) is None


def test_por_prunes_heavily_without_eager_reductions():
    program = MonitorProgram(one_slot_buffer_system(items=(1, 2)),
                             eager_reductions=False)
    full = list(explore(program, max_steps=10_000, max_runs=200_000))
    selector = AmpleSelector()
    reduced = list(explore(program, max_steps=10_000, max_runs=200_000,
                           por=selector))
    assert len(full) >= 3 * len(reduced)  # the BENCH gate's floor
    assert selector.pruned > 0
    assert selector.reduced_nodes <= selector.nodes


DB_CASES = [
    ("2-sites", lambda: DbUpdateProgram(2, standard_requests())),
    ("3-sites", lambda: DbUpdateProgram(
        3, standard_requests(n_clients=2, n_sites=3))),
    ("broken-ts", lambda: DbUpdateProgram(
        3, standard_requests(n_clients=2, n_sites=3),
        broken_timestamps=True)),
    ("lossy", lambda: DbUpdateProgram(
        3, standard_requests(n_clients=2, n_sites=3), lossy=True)),
]


@pytest.mark.parametrize("name,make", DB_CASES,
                         ids=[n for n, _ in DB_CASES])
def test_por_agrees_on_db_update(name, make):
    assert check_por_program_agrees(
        make(), max_steps=10_000, max_runs=200_000) is None


# -- differential: 200+ seeded fuzz programs --------------------------------


@pytest.mark.parametrize("seed", range(200))
def test_por_agrees_on_fuzz_program(seed):
    # full differential per seed: fingerprint sets, run subset, engine
    # verdict parity (por on vs off), witness replay
    spec = random_program_spec(random.Random(seed), max_procs=3,
                               max_steps_per_proc=3, dep_density=0.5)
    assert check_por_agrees(spec) is None


@pytest.mark.parametrize("seed", range(200, 210))
def test_por_agrees_on_planted_fork_mutant(seed):
    # the fork-drops-enables mutant corrupts computations only inside
    # forked pool workers; the reduction itself must stay sound on it
    spec = random_program_spec(random.Random(seed), max_procs=3,
                               max_steps_per_proc=2, dep_density=0.5,
                               bug=FORK_DROPS_ENABLES)
    assert check_por_agrees(spec) is None


def test_por_agrees_on_deadlocking_program():
    # cyclic cross-deps: both processes stall after their first step
    spec = FuzzProgramSpec(procs=(2, 2), deps=((0, 1, 1, 1), (1, 1, 0, 1)))
    runs = list(explore(FuzzProgram(spec), por=AmpleSelector()))
    assert all(r.deadlocked for r in runs)
    assert check_por_agrees(spec) is None


# -- killed mutants: the suite can actually fail ----------------------------


class _DroppingSelector(AmpleSelector):
    """Unsound on purpose: keeps only the first enabled action, even
    when the dropped ones are dependent on it."""

    def ample(self, state, actions, postponed):
        if len(actions) > 1:
            self.nodes += 1
            self.reduced_nodes += 1
            self.pruned += len(actions) - 1
            return [0]
        return list(range(len(actions)))


class TestKilledMutants:
    def test_dropping_a_dependent_action_is_caught(self):
        program = DbUpdateProgram(
            3, standard_requests(n_clients=2, n_sites=3))
        message = check_por_program_agrees(
            program, selector_factory=_DroppingSelector)
        assert message is not None
        assert "dropped" in message

    def test_dropping_is_caught_on_monitor_interleavings(self):
        program = MonitorProgram(one_slot_buffer_system(items=(1, 2)),
                                 eager_reductions=False)
        message = check_por_program_agrees(
            program, max_steps=10_000, max_runs=200_000,
            selector_factory=_DroppingSelector)
        assert message is not None
        assert "dropped" in message

    def test_oracle_entry_point_accepts_the_injected_selector(self):
        spec = FuzzProgramSpec(procs=(2, 2), deps=((1, 1, 0, 0),))
        # fuzz computations are order-independent, so even the unsound
        # selector preserves the (single) class here -- the law that
        # catches it needs shared elements, exercised above
        assert check_por_agrees(spec, selector_factory=AmpleSelector) is None


# -- proviso ----------------------------------------------------------------


class TestProviso:
    def test_tight_proviso_limit_stays_sound(self):
        program = MonitorProgram(one_slot_buffer_system(items=(1, 2)),
                                 eager_reductions=False)
        message = check_por_program_agrees(
            program, max_steps=10_000, max_runs=200_000,
            selector_factory=lambda: AmpleSelector(proviso_limit=1))
        assert message is None

    def test_tight_proviso_limit_forces_full_expansions(self):
        program = MonitorProgram(one_slot_buffer_system(items=(1, 2)),
                                 eager_reductions=False)
        selector = AmpleSelector(proviso_limit=1)
        list(explore(program, max_steps=10_000, max_runs=200_000,
                     por=selector))
        assert selector.proviso_expansions > 0

    def test_default_limit_never_fires_on_bounded_workloads(self):
        program = MonitorProgram(one_slot_buffer_system(items=(1, 2)),
                                 eager_reductions=False)
        selector = AmpleSelector()
        list(explore(program, max_steps=10_000, max_runs=200_000,
                     por=selector))
        assert selector.proviso_limit == DEFAULT_PROVISO_LIMIT
        assert selector.proviso_expansions == 0

    def test_make_selector_gates_on_the_flag(self):
        assert make_selector(False) is None
        assert isinstance(make_selector(True), AmpleSelector)


# -- engine wiring: determinism and observability ---------------------------


def _verify_fuzz(spec, **overrides):
    config = EngineConfig(max_steps=64, max_runs=4096, sample=50,
                          **overrides)
    report, _stats = run_verification(
        FuzzProgram(spec), fuzz_problem_spec(spec),
        fuzz_correspondence(spec), config=config)
    return report


class TestEngineWiring:
    SPEC = FuzzProgramSpec(procs=(2, 2), deps=((1, 1, 0, 0),))

    def test_reports_jobs_invariant_per_por_setting(self):
        for por in (True, False):
            sigs = {_verify_fuzz(self.SPEC, por=por, jobs=j).signature()
                    for j in (1, 4)}
            assert len(sigs) == 1

    def test_por_counters_reach_the_metrics_registry(self):
        report = _verify_fuzz(self.SPEC, por=True)
        metrics = report.engine_stats.metrics
        assert metrics.get("engine.por_enabled") == 1
        assert metrics.get("por.pruned_interleavings") > 0
        assert metrics.get("por.reduced_nodes") <= metrics.get("por.nodes")

    def test_por_counters_jobs_invariant(self):
        # planner and workers split the branch points between them; the
        # totals must not depend on the split
        per_jobs = []
        for jobs in (1, 4):
            m = _verify_fuzz(self.SPEC, por=True, jobs=jobs).engine_stats
            per_jobs.append((m.por_nodes, m.por_reduced_nodes, m.por_pruned))
        assert per_jobs[0] == per_jobs[1]

    def test_disabled_por_reports_disabled(self):
        report = _verify_fuzz(self.SPEC, por=False)
        stats = report.engine_stats
        assert not stats.por_enabled
        assert stats.por_pruned == 0
        assert "por: disabled" in stats.describe()

    def test_verdict_parity_between_por_settings(self):
        on = _verify_fuzz(self.SPEC, por=True)
        off = _verify_fuzz(self.SPEC, por=False)
        assert on.ok == off.ok
        assert on.distinct_computations == off.distinct_computations
        assert on.runs_checked <= off.runs_checked


# -- ExplorationResult.describe: pruned vs sampled --------------------------


class TestDescribeProvenance:
    def _runs(self, n=2):
        from repro.sim.scheduler import sample_runs
        return sample_runs(FuzzProgram(FuzzProgramSpec(procs=(1, 2))), n)

    def test_sampled_and_pruned_counts_are_separate(self):
        result = ExplorationResult(
            runs=self._runs(3), exhaustive=False, sample_seed=7,
            sample_count=3, por_pruned=5)
        text = result.describe()
        assert "3 sampled, seeds 7..9" in text
        assert "5 branches pruned by por" in text

    def test_exhaustive_result_reports_pruning_without_sampling(self):
        result = ExplorationResult(runs=self._runs(1), por_pruned=4)
        text = result.describe()
        assert "4 branches pruned by por" in text
        assert "sampled" not in text

    def test_no_pruning_no_noise(self):
        result = ExplorationResult(runs=self._runs(1))
        assert "por" not in result.describe()

    def test_sampling_fallback_still_reports_pruned_branches(self):
        # the exhaustive attempt prunes some branches before hitting the
        # cap; honest provenance reports both losses separately
        program = MonitorProgram(
            readers_writers_system(1, 1), eager_reductions=False)
        result = explore_or_sample(program, max_runs=10, sample=5,
                                   por=AmpleSelector())
        assert not result.exhaustive
        assert result.sample_count == 5
        assert result.por_pruned > 0
        text = result.describe()
        assert "sampled" in text and "pruned by por" in text


# -- event-level independence (Hypothesis) ----------------------------------


@st.composite
def computations(draw, max_elements=3, max_events=7):
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    return random_computation(
        random.Random(seed), max_elements=max_elements,
        max_events=max_events).build()


@COMMON
@given(computations())
def test_independence_is_irreflexive(comp):
    index = event_index(comp)
    for i in range(index.n):
        assert not event_independent(index, i, i)


@COMMON
@given(computations())
def test_independence_is_symmetric(comp):
    index = event_index(comp)
    for i in range(index.n):
        for j in range(index.n):
            assert event_independent(index, i, j) == \
                event_independent(index, j, i)


@COMMON
@given(computations())
def test_independent_pairs_matches_the_predicate(comp):
    index = event_index(comp)
    pairs = set(independent_pairs(index))
    for i in range(index.n):
        for j in range(i + 1, index.n):
            assert ((i, j) in pairs) == event_independent(index, i, j)


def _reachable_masks(index, cap=600):
    seen = {0}
    frontier = [0]
    while frontier and len(seen) < cap:
        mask = frontier.pop()
        for i in iter_bits(index.addable_mask(mask)):
            nxt = mask | (1 << i)
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


@COMMON
@given(computations(max_elements=3, max_events=6))
def test_commuting_independent_events_is_a_diamond(comp):
    """From any reachable history, two simultaneously addable events are
    independent, and adding them in either order reaches the same
    history mask (the lattice diamond POR's soundness rests on)."""
    index = event_index(comp)
    for mask in _reachable_masks(index):
        addable = list(iter_bits(index.addable_mask(mask)))
        for a in range(len(addable)):
            for b in range(a + 1, len(addable)):
                i, j = addable[a], addable[b]
                assert event_independent(index, i, j)
                via_i = mask | (1 << i)
                via_j = mask | (1 << j)
                # still addable after the other: the diamond commutes
                assert (index.addable_mask(via_i) >> j) & 1
                assert (index.addable_mask(via_j) >> i) & 1
                assert via_i | (1 << j) == via_j | (1 << i)


@COMMON
@given(computations(max_elements=3, max_events=6))
def test_dependent_events_are_never_simultaneously_addable(comp):
    index = event_index(comp)
    for mask in _reachable_masks(index):
        addable = list(iter_bits(index.addable_mask(mask)))
        for a in range(len(addable)):
            for b in range(a + 1, len(addable)):
                i, j = addable[a], addable[b]
                assert not (index.temporal_succ[i] >> j) & 1
                assert not (index.temporal_succ[j] >> i) & 1
