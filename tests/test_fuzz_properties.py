"""Property-based tests (hypothesis) driven by the fuzz generators.

Unlike :mod:`tests.test_properties`, which builds ad-hoc random
structures inline, these strategies wrap :mod:`repro.fuzz.generators`:
hypothesis draws only a seed (plus size knobs) and the fuzzer's own
seeded generators produce the artifact.  That keeps the two test layers
honest against each other -- any structure the ``repro fuzz`` CLI can
generate is also what hypothesis shrinks over here, and the oracle law
functions are shared verbatim.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.fuzz import (
    check_history_laws,
    check_order_laws,
    random_choices,
    random_computation,
)
from repro.fuzz.programs import FuzzProgram, random_program_spec

COMMON = settings(max_examples=25, deadline=None, derandomize=True)


@st.composite
def recipes(draw, max_elements=3, max_events=6):
    """A fuzz-generator recipe from a hypothesis-drawn seed."""
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    return random_computation(
        random.Random(seed),
        max_elements=max_elements,
        max_events=max_events,
    )


@st.composite
def program_specs(draw):
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    return random_program_spec(random.Random(seed))


# -- order.py: strict-partial-order laws ------------------------------------


@COMMON
@given(recipes(max_elements=4, max_events=9))
def test_temporal_order_satisfies_spo_laws(recipe):
    assert check_order_laws(recipe.build()) is None


# -- history.py: lattice laws -----------------------------------------------


@COMMON
@given(recipes(max_elements=3, max_events=6))
def test_histories_form_a_lattice(recipe):
    assert check_history_laws(recipe.build()) is None


# -- computation.py: fingerprint invariance ---------------------------------


@COMMON
@given(recipes(max_elements=3, max_events=8),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_fingerprint_invariant_under_element_preserving_shuffle(recipe, seed):
    base = recipe.build().stable_fingerprint()
    order = recipe.element_preserving_shuffle(random.Random(seed))
    assert recipe.build(order).stable_fingerprint() == base


# -- scheduler: generated choice sequences replay ---------------------------


@COMMON
@given(program_specs(), st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_random_choices_drive_program_to_final_state(spec, seed):
    program = FuzzProgram(spec)
    choices = random_choices(random.Random(seed), program)
    state = program.initial_state()
    for c in choices:
        state.step(state.enabled()[c])
    assert state.is_final()
    assert not state.enabled()
