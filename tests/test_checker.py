"""Unit tests for the checker, including lattice-vs-exact cross-validation."""

import pytest

from repro.core import (
    ComputationBuilder,
    ElementDecl,
    Eventually,
    EventClass,
    Exists,
    ForAll,
    FalseF,
    Henceforth,
    Implies,
    LatticeChecker,
    Not,
    Occurred,
    Restriction,
    Specification,
    TrueF,
    check_computation,
    check_restriction,
    check_safety_at_all_histories,
    empty_history,
    maximal_history_sequences,
)
from repro.core.errors import ComputationError, SpecificationError


def fork_join():
    b = ComputationBuilder()
    f = b.add_event("P", "Fork")
    w1 = b.add_event("Q", "Work")
    w2 = b.add_event("R", "Work")
    j = b.add_event("S", "Join")
    b.add_enable(f, w1)
    b.add_enable(f, w2)
    b.add_enable(w1, j)
    b.add_enable(w2, j)
    return b.freeze()


def spec_for(comp, *restrictions):
    elements = [
        ElementDecl.make(el, [EventClass(ev.event_class)
                              for ev in comp.events_at(el)])
        for el in comp.elements()
    ]
    # deduplicate event classes per element
    elements = [
        ElementDecl.make(e.name, {ec.name: ec for ec in e.event_classes}.values())
        for e in elements
    ]
    return Specification("test-spec", elements=elements,
                         restrictions=list(restrictions))


class TestImmediateChecking:
    def test_immediate_holds(self):
        c = fork_join()
        r = Restriction("some-join", Exists("j", "Join", Occurred("j")))
        outcome = check_restriction(c, r)
        assert outcome.holds

    def test_immediate_fails(self):
        c = fork_join()
        r = Restriction("no-forks", ForAll("f", "Fork", Not(Occurred("f"))))
        outcome = check_restriction(c, r)
        assert not outcome.holds
        assert "complete computation" in outcome.detail


class TestLatticeMode:
    def test_ag_safety(self):
        c = fork_join()
        # work implies fork occurred, at every history
        f = Henceforth(
            ForAll("w", "Work",
                   Implies(Occurred("w"), Exists("f", "Fork", Occurred("f"))))
        )
        r = Restriction("fork-before-work", f)
        assert check_restriction(c, r, temporal_mode="lattice").holds

    def test_ag_detects_violation(self):
        c = fork_join()
        f = Henceforth(ForAll("w", "Work", Occurred("w")))
        r = Restriction("work-everywhere", f)
        assert not check_restriction(c, r, temporal_mode="lattice").holds

    def test_af_liveness(self):
        c = fork_join()
        f = Eventually(ForAll("j", "Join", Occurred("j")))
        r = Restriction("join-eventually", f)
        assert check_restriction(c, r, temporal_mode="lattice").holds

    def test_af_failure(self):
        c = fork_join()
        r = Restriction("never", Eventually(FalseF()))
        assert not check_restriction(c, r, temporal_mode="lattice").holds

    def test_nested_response(self):
        c = fork_join()
        # whenever a Work has occurred, eventually Join occurs
        f = Henceforth(
            ForAll("w", "Work",
                   Implies(Occurred("w"),
                           Eventually(Exists("j", "Join", Occurred("j")))))
        )
        r = Restriction("work-then-join", f)
        assert check_restriction(c, r, temporal_mode="lattice").holds

    def test_lattice_checker_reuse(self):
        c = fork_join()
        lc = LatticeChecker(c)
        f1 = Henceforth(TrueF())
        f2 = Eventually(TrueF())
        assert lc.holds(f1)
        assert lc.holds(f2)

    def test_history_cap(self):
        b = ComputationBuilder()
        for i in range(12):
            b.add_event(f"E{i}", "A")
        c = b.freeze()  # 2^12 down-sets
        lc = LatticeChecker(c, history_cap=50)
        with pytest.raises(ComputationError, match="history_cap"):
            lc.holds(Henceforth(TrueF()))

    def test_boolean_combinations_of_temporal(self):
        c = fork_join()
        lc = LatticeChecker(c)
        assert lc.holds(Not(Eventually(FalseF())))
        assert lc.holds(Henceforth(TrueF()) & Eventually(TrueF()))
        assert lc.holds(Eventually(FalseF()) | Henceforth(TrueF()))
        assert lc.holds(Implies(Eventually(FalseF()), Henceforth(FalseF())))

    def test_quantified_temporal(self):
        c = fork_join()
        lc = LatticeChecker(c)
        f = ForAll("w", "Work", Eventually(Occurred("w")))
        assert lc.holds(f)


class TestExactMode:
    def test_exact_agrees_with_lattice_on_safety(self):
        c = fork_join()
        f = Henceforth(
            ForAll("w", "Work",
                   Implies(Occurred("w"), Exists("f", "Fork", Occurred("f"))))
        )
        r = Restriction("fork-before-work", f)
        exact = check_restriction(c, r, temporal_mode="exact")
        lattice = check_restriction(c, r, temporal_mode="lattice")
        assert exact.holds == lattice.holds == True  # noqa: E712

    def test_exact_agrees_on_liveness(self):
        c = fork_join()
        f = Eventually(Exists("j", "Join", Occurred("j")))
        r = Restriction("live", f)
        assert check_restriction(c, r, temporal_mode="exact").holds
        assert check_restriction(c, r, temporal_mode="lattice").holds

    def test_exact_counterexample_detail(self):
        c = fork_join()
        r = Restriction("bad", Eventually(FalseF()))
        outcome = check_restriction(c, r, temporal_mode="exact")
        assert not outcome.holds
        assert "vhs" in outcome.detail

    def test_unknown_mode_rejected(self):
        c = fork_join()
        r = Restriction("r", Henceforth(TrueF()))
        with pytest.raises(SpecificationError):
            check_restriction(c, r, temporal_mode="sideways")

    def test_cross_validation_on_random_monotone_formulae(self):
        """Lattice AG/AF equals ∀-vhs □/◇ for monotone operands."""
        import itertools
        import random

        rng = random.Random(42)
        for trial in range(12):
            nb = ComputationBuilder()
            events = []
            n = rng.randint(3, 6)
            for i in range(n):
                events.append(nb.add_event(f"E{i % 3}", f"C{i % 2}"))
            # random forward edges (acyclic by construction)
            for i, j in itertools.combinations(range(n), 2):
                if rng.random() < 0.3:
                    try:
                        nb.add_enable(events[i], events[j])
                    except Exception:
                        pass
            try:
                c = nb.freeze()
            except Exception:
                continue
            target = rng.choice(events)
            monotone = Exists("x", "C0", Occurred("x"))
            for formula in (
                Henceforth(Implies(Occurred("t"), monotone)),
                Eventually(Occurred("t")),
                Henceforth(Implies(Occurred("t"), Eventually(monotone))),
            ):
                lc = LatticeChecker(c)
                lattice = lc.holds(formula, env={"t": target})
                exact = all(
                    formula.holds_on(seq, {"t": target})
                    for seq in maximal_history_sequences(c, max_step=1, cap=5000)
                )
                assert lattice == exact, (
                    f"trial {trial}: lattice={lattice} exact={exact} "
                    f"formula={formula.describe()}"
                )


class TestCheckComputation:
    def test_full_check_ok(self):
        c = fork_join()
        s = spec_for(
            c,
            Restriction("some-join", Exists("j", "Join", Occurred("j"))),
            Restriction("safety", Henceforth(TrueF())),
        )
        result = check_computation(c, s)
        assert result.ok
        assert len(result.outcomes) == 2

    def test_full_check_reports_all_failures(self):
        c = fork_join()
        s = spec_for(
            c,
            Restriction("fail-1", FalseF()),
            Restriction("fail-2", Eventually(FalseF())),
            Restriction("ok-1", TrueF()),
        )
        result = check_computation(c, s)
        assert not result.ok
        assert set(result.failed_restrictions()) == {"fail-1", "fail-2"}

    def test_exact_mode_through_check_computation(self):
        c = fork_join()
        s = spec_for(c, Restriction("safety", Henceforth(TrueF())))
        assert check_computation(c, s, temporal_mode="exact").ok


class TestSafetyAtAllHistories:
    def test_equivalent_to_box(self):
        c = fork_join()
        inner = ForAll("w", "Work",
                       Implies(Occurred("w"), Exists("f", "Fork", Occurred("f"))))
        assert check_safety_at_all_histories(c, inner)
        assert not check_safety_at_all_histories(c, ForAll("w", "Work", Occurred("w")))


class TestWitnessIntegration:
    def test_failed_outcome_carries_witness(self):
        c = fork_join()
        r = Restriction("no-forks", ForAll("f", "Fork", Not(Occurred("f"))))
        outcome = check_restriction(c, r, with_witness=True)
        assert not outcome.holds
        assert "witness" in outcome.detail
        assert "f = " in outcome.detail

    def test_temporal_failure_witness(self):
        c = fork_join()
        r = Restriction(
            "join-never",
            Henceforth(ForAll("j", "Join", Not(Occurred("j")))))
        outcome = check_restriction(c, r, with_witness=True,
                                    temporal_mode="lattice")
        assert not outcome.holds
        assert "witness" in outcome.detail

    def test_passing_outcome_has_no_witness_cost(self):
        c = fork_join()
        r = Restriction("some-join", Exists("j", "Join", Occurred("j")))
        outcome = check_restriction(c, r, with_witness=True)
        assert outcome.holds
        assert outcome.detail == ""


class TestVhsStepGranularity:
    """□/◇ semantics vs. vhs step granularity, made explicit.

    For *monotone* bodies (built from occurred/∧/∨/quantifiers) the
    single-step (linear) semantics, the antichain-step semantics, and
    the lattice evaluator all agree.  For non-monotone bodies the
    antichain semantics can be strictly stricter for ◇ -- a simultaneous
    step can jump over the only satisfying history.  The checker's
    documented semantics is the single-step one.
    """

    def two_concurrent(self):
        b = ComputationBuilder()
        b.add_event("A", "X")
        b.add_event("B", "X")
        return b.freeze()

    def test_non_monotone_diamond_depends_on_step_size(self):
        from repro.core import Eventually, PyPred, maximal_history_sequences

        c = self.two_concurrent()
        exactly_one = PyPred(
            "exactly-one-occurred",
            lambda h, env: len(h.events) == 1)
        formula = Eventually(exactly_one)
        linear = all(formula.holds_on(s)
                     for s in maximal_history_sequences(c, max_step=1))
        antichain = all(formula.holds_on(s)
                        for s in maximal_history_sequences(c, max_step=None))
        assert linear is True        # every linear vhs passes a singleton
        assert antichain is False    # the simultaneous step jumps over it

    def test_monotone_diamond_insensitive_to_step_size(self):
        from repro.core import Eventually, maximal_history_sequences

        c = self.two_concurrent()
        ev = c.events[0]
        formula = Eventually(Occurred("e"))
        for max_step in (1, None):
            assert all(formula.holds_on(s, {"e": ev})
                       for s in maximal_history_sequences(c,
                                                          max_step=max_step))
        assert LatticeChecker(c).holds(formula, env={"e": ev})
