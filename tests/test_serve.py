"""Tests for ``repro.serve`` -- the verification daemon.

The acceptance bar for the daemon is *byte-identity*: for every
catalog case, the report signature a daemon job produces must equal
the one-shot engine's, rendered through the same canonical JSON.  One
real daemon (background thread, ephemeral port, resident pool) serves
the whole module; protocol validation is tested without any daemon at
all.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import case_catalog, main
from repro.engine import EngineConfig, run_verification
from repro.obs import iter_spans, read_trace, validate_record
from repro.serve import JobSpec, ProtocolError, parse_job_spec
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import start_in_thread
from repro.serve.protocol import (
    catalog_entries,
    parse_submission,
    signature_json,
)

# -- protocol (no daemon) ----------------------------------------------------


class TestProtocol:
    def test_defaults(self):
        spec = parse_job_spec({"case": "monitor-bounded-buffer"})
        assert spec.case == "monitor-bounded-buffer"
        assert not spec.mutant
        assert spec.jobs == 1 and spec.por and spec.compile
        assert spec.slice  # computation slicing is on by default
        assert spec.temporal_mode == "compiled"

    def test_flags_mirror_verify_cli(self):
        spec = parse_job_spec({"case": "db_update", "mutant": True,
                               "jobs": 4, "por": False, "compile": False,
                               "history_cap": 1000})
        assert spec.mutant and spec.jobs == 4
        assert not spec.por
        assert spec.temporal_mode == "lattice"
        assert spec.history_cap == 1000

    def test_case_ref_always_traces(self):
        ref = parse_job_spec({"case": "db_update"}).case_ref()
        assert ref.trace  # one hot worker state per workload

    @pytest.mark.parametrize("payload, message", [
        ({}, "exactly one of"),
        ({"case": "x", "inline": {"procs": [1]}}, "exactly one of"),
        ({"case": "monitor-bounded-buffer", "speed": 11}, "unknown job key"),
        ({"case": "no-such-case"}, "unknown case"),
        ({"case": "db_update", "jobs": 0}, "'jobs' must be"),
        ({"case": "db_update", "jobs": True}, "'jobs' must be"),
        ({"case": "db_update", "por": 1}, "'por' must be"),
        ({"case": "db_update", "slice": "yes"}, "'slice' must be"),
        ({"inline": {"procs": []}}, "inline.procs"),
        ({"inline": {"procs": [2], "deps": [[1, 2]]}}, "inline.deps"),
        ({"inline": {"procs": [2], "bug": 7}}, "inline.bug"),
    ])
    def test_rejects(self, payload, message):
        with pytest.raises(ProtocolError, match=message):
            parse_job_spec(payload, case_catalog())

    def test_submission_single_vs_batch(self):
        one = parse_submission({"case": "db_update"})
        many = parse_submission([{"case": "db_update"}] * 3)
        assert len(one) == 1 and len(many) == 3
        with pytest.raises(ProtocolError, match="not be empty"):
            parse_submission([])
        with pytest.raises(ProtocolError, match="batch limit"):
            parse_submission([{"case": "db_update"}] * 3, limit=2)

    def test_signature_json_is_canonical(self):
        sig = ("name", True, 3, (("r", True, (1, 2)),))
        as_json = signature_json(sig)
        assert as_json == ["name", True, 3, [["r", True, [1, 2]]]]
        # round-trips stably: the byte-identity comparisons rely on it
        assert signature_json(sig) == json.loads(json.dumps(as_json))

    def test_spec_json_round_trip(self):
        spec = JobSpec(case="db_update", mutant=True, jobs=2, por=False)
        assert parse_job_spec(spec.to_json()) == spec

    def test_slice_flag_round_trips_and_labels(self):
        spec = parse_job_spec({"case": "db_update", "slice": False})
        assert not spec.slice
        assert parse_job_spec(spec.to_json()) == spec
        assert "no-slice" in spec.describe()
        assert not spec.case_ref().slice  # reaches the worker recipe
        assert parse_job_spec({"case": "db_update"}).describe() == "db_update"


class TestCatalogMetadata:
    def test_entries_cover_every_case(self):
        entries = {e["name"]: e for e in catalog_entries()}
        assert set(entries) == set(case_catalog())

    def test_languages(self):
        catalog = case_catalog()
        assert catalog["monitor-bounded-buffer"].language == "monitor"
        assert catalog["csp-readers-writers"].language == "csp"
        assert catalog["ada-one-slot-buffer"].language == "ada"
        assert catalog["db_update"].language == "distributed"

    def test_mutant_availability_is_honest(self):
        """has_mutant=False exactly when the factory ignores the flag:
        the mutant workload's report signature equals the normal one."""
        catalog = case_catalog()
        assert not catalog["csp-bounded-buffer"].has_mutant
        assert catalog["monitor-bounded-buffer"].has_mutant

    def test_list_json_cli(self, capsys):
        assert main(["list", "--json"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body == {"cases": catalog_entries()}


# -- the daemon --------------------------------------------------------------


@pytest.fixture(scope="module")
def daemon():
    handle = start_in_thread(jobs=2, job_workers=2)
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def client(daemon):
    c = ServeClient(port=daemon.port)
    assert c.ping()
    return c


def oneshot_signature(case: str, mutant: bool = False, **cfg) -> list:
    entry = case_catalog()[case]
    program, spec, corr, pspec = entry.factory(mutant)
    report, _ = run_verification(program, spec, corr, pspec,
                                 EngineConfig(**cfg))
    return signature_json(report.signature())


class TestDaemon:
    def test_cases_endpoint_is_the_cli_catalog(self, client):
        assert client.cases() == catalog_entries()

    def test_whole_catalog_signatures_match_oneshot(self, client):
        """The acceptance criterion: every case, byte-identical."""
        names = list(case_catalog())
        ids = client.submit([{"case": name, "jobs": 2} for name in names])
        for name, job_id in zip(names, ids):
            snap = client.wait(job_id, timeout=300)
            assert snap["state"] == "done", f"{name}: {snap}"
            assert snap["result"]["signature"] == oneshot_signature(name), (
                f"{name}: daemon signature differs from one-shot")

    def test_jobs_setting_does_not_change_signature(self, client):
        sigs = set()
        for jobs in (1, 2):
            snap = client.verify({"case": "csp-one-slot-buffer",
                                  "jobs": jobs})
            assert snap["state"] == "done"
            sigs.add(json.dumps(snap["result"]["signature"]))
        assert len(sigs) == 1
        assert json.loads(sigs.pop()) == oneshot_signature(
            "csp-one-slot-buffer", jobs=2)

    def test_warm_resubmission_replays_the_shared_cache(self, client):
        cold = client.verify({"case": "csp-bounded-buffer"})
        warm = client.verify({"case": "csp-bounded-buffer"})
        assert warm["result"]["signature"] == cold["result"]["signature"]
        assert warm["result"]["stats"]["checks_performed"] == 0
        assert (warm["result"]["stats"]["cache_hits"]
                + warm["result"]["stats"]["dedupe_hits"]) > 0

    def test_mutant_fails_and_says_so(self, client):
        snap = client.verify({"case": "monitor-one-slot-buffer",
                              "mutant": True})
        assert snap["state"] == "done"
        assert snap["result"]["ok"] is False
        assert snap["result"]["signature"] == oneshot_signature(
            "monitor-one-slot-buffer", mutant=True)

    def test_inline_program_payload(self, client):
        from repro.fuzz.programs import (FuzzProgram, FuzzProgramSpec,
                                         fuzz_correspondence,
                                         fuzz_problem_spec)

        inline = {"procs": [2, 2], "deps": [[0, 1, 1, 0]], "bug": None}
        snap = client.verify({"inline": inline})
        assert snap["state"] == "done"
        fspec = FuzzProgramSpec((2, 2), ((0, 1, 1, 0),), None)
        report, _ = run_verification(
            FuzzProgram(fspec), fuzz_problem_spec(fspec),
            fuzz_correspondence(fspec), None, EngineConfig())
        assert snap["result"]["signature"] == signature_json(
            report.signature())

    def test_history_cap_flag_reaches_the_checker(self, client):
        # an absurdly small cap must abort the lattice checker, proving
        # the flag crosses the HTTP + pool + fork boundaries; the
        # failure is reported on the job, never raised in the daemon
        capped = client.verify({"case": "monitor-one-slot-buffer",
                                "compile": False, "history_cap": 1})
        assert capped["state"] == "failed"
        assert "history_cap" in capped["error"]

    def test_events_stream_is_a_valid_trace(self, client, tmp_path):
        snap = client.verify({"case": "csp-one-slot-buffer"})
        records = list(client.events(snap["id"]))
        assert records[0]["type"] == "meta"
        for rec in records:
            validate_record(rec)  # raises on any schema violation
        # ... and `repro profile` can read the stream like a --trace file
        path = tmp_path / "events.jsonl"
        path.write_text("".join(json.dumps(r, sort_keys=True) + "\n"
                                for r in records))
        data = read_trace(str(path))
        assert data.spans, "stream carries the job's span tree"
        names = {s.name for s in iter_spans(data.spans)}
        assert "verify" in names and "task" in names

    def test_job_status_snapshot_shape(self, client):
        snap = client.verify({"case": "csp-one-slot-buffer", "jobs": 2})
        assert snap["label"] == "csp-one-slot-buffer [jobs=2]"
        assert snap["spec"]["case"] == "csp-one-slot-buffer"
        assert snap["result"]["stats"]["mode"] == "exhaustive"
        assert "summary" in snap["result"]

    def test_sampled_census_is_byte_stable_and_slice_exact(self, client):
        """A run-capped (sampled) job reports exact slice-backed
        verdicts, byte-stable across resubmission and across the job's
        ``jobs`` setting (the resident pool owns the shard layout, so a
        spec's worker cap must not perturb the sampled census).  Run
        totals differ from a serial one-shot by design -- shard-level
        sampling draws per shard -- so the one-shot comparison is over
        verdicts, and the slice guarantees they are exact either way.
        Counters cover fresh checks only (a warm shared-cache replay
        legitimately reports zero hits), so hit counts are asserted on
        the one-shot side in tests/test_slice.py."""
        first = client.verify({"case": "ada-readers-writers",
                               "max_runs": 16})
        assert first["state"] == "done"
        stats = first["result"]["stats"]
        assert stats["mode"] in ("sampled", "reused")
        assert "slice_hits" in stats and "slice_fallbacks" in stats
        assert stats["slice_fallbacks"] == 0
        for spec in ({"case": "ada-readers-writers", "max_runs": 16},
                     {"case": "ada-readers-writers", "max_runs": 16,
                      "jobs": 2}):
            again = client.verify(spec)
            assert again["result"]["signature"] == first["result"]["signature"]
            assert again["result"]["stats"]["slice_fallbacks"] == 0
        oneshot = oneshot_signature("ada-readers-writers", max_runs=16)
        daemon_sig = first["result"]["signature"]
        assert daemon_sig[6] == oneshot[6]  # restriction verdicts
        assert daemon_sig[1] == oneshot[1] is False  # both sampled

    def test_no_slice_job_keeps_the_signature(self, client):
        on = client.verify({"case": "csp-bounded-buffer"})
        off = client.verify({"case": "csp-bounded-buffer", "slice": False})
        assert off["state"] == "done"
        assert off["result"]["signature"] == on["result"]["signature"]
        assert off["result"]["stats"]["slice_hits"] == 0

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as exc:
            client.job("j999999")
        assert exc.value.status == 404

    def test_bad_submissions_are_400(self, client):
        for payload in ({"case": "no-such-case"},
                        {"case": "db_update", "bogus": 1},
                        ["not a spec"]):
            with pytest.raises(ServeError) as exc:
                client.submit(payload)
            assert exc.value.status == 400

    def test_cancel_finished_job_conflicts(self, client):
        snap = client.verify({"case": "csp-one-slot-buffer"})
        with pytest.raises(ServeError) as exc:
            client.cancel(snap["id"])
        assert exc.value.status == 409

    def test_cancel_running_job(self, client):
        (job_id,) = client.submit({"case": "monitor-readers-writers"})
        client.cancel(job_id)
        snap = client.wait(job_id, timeout=120)
        assert snap["state"] == "cancelled"

    def test_stats_endpoint(self, client):
        stats = client.stats()
        assert stats["pool"]["resident"] is True
        assert stats["jobs"]["done"] >= 1
        assert stats["cache"]["entries"] >= 1
        assert stats["cache"]["hits"] >= 1  # the warm resubmission test

    def test_submit_cli_exit_codes(self, daemon, capsys):
        port = str(daemon.port)
        assert main(["submit", "csp-one-slot-buffer", "--port", port]) == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out
        assert main(["submit", "monitor-one-slot-buffer", "--mutant",
                     "--port", port]) == 0
        assert "FAILED" in capsys.readouterr().out

    def test_submit_cli_no_wait_prints_id(self, daemon, capsys):
        assert main(["submit", "csp-one-slot-buffer", "--no-wait",
                     "--port", str(daemon.port)]) == 0
        job_id = capsys.readouterr().out.strip()
        assert job_id.startswith("j")
        snap = ServeClient(port=daemon.port).wait(job_id, timeout=120)
        assert snap["state"] == "done"
