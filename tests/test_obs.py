"""Tests for ``repro.obs``: tracing, metrics, explanations, profiling.

The ISSUE's required cases, in order of appearance:

* the no-op tracer adds no spans and costs near-zero overhead;
* the JSONL schema round-trips (write -> parse -> same span tree);
* the fork-pool trace merge is byte-stable across ``--jobs 1/4``;
* the subformula trace pinpoints the planted fork-bug's failing
  restriction;

plus coverage of the satellites: guarded progress hooks, provenance
witness replay, ``EngineStats`` as a metrics view, and the profile
renderer.
"""

import io
import multiprocessing
import os
import sys
import time
import warnings

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

from repro.engine.stats import EngineStats, GuardedProgress, guard_progress
from repro.fuzz.programs import (
    FORK_DROPS_ENABLES,
    FuzzProgram,
    FuzzProgramSpec,
    fuzz_correspondence,
    fuzz_problem_spec,
)
from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    TraceSchemaError,
    Tracer,
    explain_restriction,
    iter_spans,
    read_trace,
    render_profile,
    structure_dump,
    validate_record,
    write_trace,
)
from repro.sim.scheduler import replay_prefix
from repro.verify import verify_program
from repro.verify.projection import project

SPEC = FuzzProgramSpec(procs=(2, 2), deps=((1, 1, 0, 0),))


def verify_fuzz_spec(spec, **kwargs):
    return verify_program(FuzzProgram(spec), fuzz_problem_spec(spec),
                          fuzz_correspondence(spec), **kwargs)


# -- the no-op tracer -----------------------------------------------------


class TestNullTracer:
    def test_records_nothing(self):
        with NULL_TRACER.span("verify", attrs={"problem": "x"}) as span:
            span.set(extra=1)
            span.set_meta(worker="w")
        assert NULL_TRACER.to_records() == []
        assert not NULL_TRACER.enabled

    def test_span_is_shared_no_allocation(self):
        # one reusable context object -- disabled tracing allocates nothing
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_verify_without_tracer_matches_traced_report(self):
        plain = verify_fuzz_spec(SPEC)
        traced = verify_fuzz_spec(SPEC, tracer=Tracer())
        assert plain.signature() == traced.signature()

    def test_near_zero_overhead(self):
        # generous bound: 100k no-op spans must be far under a second
        start = time.perf_counter()
        for _ in range(100_000):
            with NULL_TRACER.span("s"):
                pass
        assert time.perf_counter() - start < 1.0


# -- JSONL round-trip -----------------------------------------------------


def build_sample_tracer():
    tracer = Tracer()
    with tracer.span("verify", attrs={"problem": "p"},
                     meta={"jobs": 2}) as root:
        with tracer.span("phase:explore") as child:
            child.set_meta(runs=3)
            with tracer.span("check", attrs={"fp": "abc123"}):
                pass
        root.set_meta(mode="exhaustive")
    return tracer


class TestRoundTrip:
    def test_write_then_read_same_tree(self):
        tracer = build_sample_tracer()
        metrics = MetricsRegistry()
        metrics.inc("checker.evals", 7, restriction="r1")
        metrics.observe("checker.seconds", 0.5, restriction="r1")
        tracer.add_explanation(
            {"type": "explanation", "restriction": "r1",
             "text": "why", "steps": []})
        buf = io.StringIO()
        count = write_trace(buf, tracer, metrics)
        lines = buf.getvalue().splitlines()
        assert count == len(lines) == 1 + 3 + 2 + 1  # meta+spans+metrics+expl

        buf.seek(0)
        data = read_trace(buf)
        assert data.meta["schema"] == 1
        assert structure_dump(data.spans) == structure_dump(tracer.roots)
        # meta survives too (it is just excluded from *structure*)
        names = {s.name: s for s in iter_spans(data.spans)}
        assert names["phase:explore"].meta == {"runs": 3}
        assert [r["name"] for r in data.metric_records] \
            == ["checker.evals", "checker.seconds"]
        assert data.explanations[0]["restriction"] == "r1"

    def test_times_normalised_to_origin(self):
        tracer = build_sample_tracer()
        buf = io.StringIO()
        write_trace(buf, tracer)
        buf.seek(0)
        spans = list(iter_spans(read_trace(buf).spans))
        assert min(s.t_start for s in spans) == 0.0
        assert all(s.t_end >= s.t_start for s in spans)

    def test_graft_preserves_structure(self):
        worker = build_sample_tracer()
        parent = Tracer()
        with parent.span("verify") as root:
            parent.graft(worker.to_records(), root)
        assert parent.roots[0].children[0].structure() \
            == worker.roots[0].structure()


class TestSchemaValidation:
    def test_rejects_unknown_type(self):
        with pytest.raises(TraceSchemaError, match="unknown record type"):
            validate_record({"type": "bogus"})

    def test_rejects_wrong_schema_version(self):
        with pytest.raises(TraceSchemaError, match="schema version"):
            validate_record({"type": "meta", "schema": 99})

    def test_rejects_missing_span_fields(self):
        with pytest.raises(TraceSchemaError, match="missing"):
            validate_record({"type": "span", "sid": 0})

    def test_read_rejects_headerless_trace(self):
        buf = io.StringIO('{"type": "metric", "kind": "counter", '
                          '"name": "x", "labels": {}, "value": 1}\n')
        with pytest.raises(TraceSchemaError, match="meta header"):
            read_trace(buf)

    def test_read_reports_line_numbers(self):
        buf = io.StringIO('{"type": "meta", "schema": 1}\nnot json\n')
        with pytest.raises(TraceSchemaError, match="line 2"):
            read_trace(buf)

    def test_read_rejects_orphan_span(self):
        buf = io.StringIO(
            '{"type": "meta", "schema": 1}\n'
            '{"type": "span", "sid": 1, "parent": 99, "name": "s", '
            '"attrs": {}, "meta": {}, "t_start": 0.0, "t_end": 0.0}\n')
        with pytest.raises(TraceSchemaError, match="unknown.*parent"):
            read_trace(buf)


# -- tolerant reads of damaged streams ------------------------------------


def sample_trace_text():
    """A valid multi-record stream (meta + 3 spans + 2 metrics)."""
    metrics = MetricsRegistry()
    metrics.inc("checker.evals", 7, restriction="r1")
    metrics.inc("engine.phase_seconds", 0.5, phase="explore")
    buf = io.StringIO()
    write_trace(buf, build_sample_tracer(), metrics)
    return buf.getvalue()


class TestTolerantReader:
    def test_valid_stream_is_not_truncated(self):
        data = read_trace(io.StringIO(sample_trace_text()), strict=False)
        assert not data.truncated and data.error is None
        assert data.records_read == 6

    def test_salvages_prefix_of_json_cut_mid_line(self):
        # a daemon killed mid-write leaves a half-serialised last line
        text = sample_trace_text()
        lines = text.splitlines()
        damaged = "\n".join(lines[:-1] + [lines[-1][: len(lines[-1]) // 2]])
        data = read_trace(io.StringIO(damaged), strict=False)
        assert data.truncated
        assert "invalid JSON" in data.error
        assert data.records_read == len(lines) - 1
        # the valid prefix parsed completely: the span tree and the
        # first metric survive
        assert structure_dump(data.spans) \
            == structure_dump(build_sample_tracer().roots)
        assert [r["name"] for r in data.metric_records] == ["checker.evals"]

    def test_strict_still_raises_on_the_same_stream(self):
        text = sample_trace_text()[:-20]
        with pytest.raises(TraceSchemaError):
            read_trace(io.StringIO(text), strict=True)
        with pytest.raises(TraceSchemaError):
            read_trace(io.StringIO(text))  # strict is the default

    def test_salvages_prefix_before_corrupt_record(self):
        text = sample_trace_text() + '{"type": "nonsense"}\n'
        data = read_trace(io.StringIO(text), strict=False)
        assert data.truncated
        assert "unknown record type" in data.error
        assert data.records_read == 6

    def test_salvages_prefix_before_orphan_span(self):
        text = (sample_trace_text()
                + '{"type": "span", "sid": 99, "parent": 42, "name": "s", '
                  '"attrs": {}, "meta": {}, "t_start": 0.0, "t_end": 0.0}\n')
        data = read_trace(io.StringIO(text), strict=False)
        assert data.truncated
        assert "unknown parent 42" in data.error
        assert structure_dump(data.spans) \
            == structure_dump(build_sample_tracer().roots)

    def test_garbage_header_raises_even_tolerantly(self):
        # no valid meta header -> no prefix worth salvaging
        with pytest.raises(TraceSchemaError, match="unknown record type"):
            read_trace(io.StringIO('{"type": "nonsense"}\n'), strict=False)
        with pytest.raises(TraceSchemaError, match="invalid JSON"):
            read_trace(io.StringIO("not json at all\n"), strict=False)
        with pytest.raises(TraceSchemaError, match="meta header"):
            read_trace(io.StringIO(""), strict=False)

    def test_truncated_stream_still_profiles(self):
        text = sample_trace_text()
        damaged = text[: text.rindex("{") ] + '{"half'
        data = read_trace(io.StringIO(damaged), strict=False)
        report = render_profile(data)
        assert "WARNING: stream truncated" in report
        assert "phase" in report


# -- fork-pool merge determinism ------------------------------------------


class TestMergeStability:
    def test_structure_byte_stable_across_jobs(self):
        t1, t4 = Tracer(), Tracer()
        r1 = verify_fuzz_spec(SPEC, tracer=t1, jobs=1)
        r4 = verify_fuzz_spec(SPEC, tracer=t4, jobs=4)
        assert r1.signature() == r4.signature()
        assert structure_dump(t1.roots) == structure_dump(t4.roots)

    def test_structure_byte_stable_across_jobs_without_por(self):
        # ample selection is a pure function of (state, path), so the
        # jobs-invariance guarantee must hold per por setting -- the
        # reduced tree with --por (above), the full tree without (here)
        t1, t4 = Tracer(), Tracer()
        r1 = verify_fuzz_spec(SPEC, tracer=t1, jobs=1, por=False)
        r4 = verify_fuzz_spec(SPEC, tracer=t4, jobs=4, por=False)
        assert r1.signature() == r4.signature()
        assert structure_dump(t1.roots) == structure_dump(t4.roots)

    def test_por_prunes_are_traced_in_span_meta(self):
        from repro.engine.por import AmpleSelector
        from repro.sim.scheduler import explore_or_sample

        tracer = Tracer()
        explore_or_sample(FuzzProgram(SPEC), tracer=tracer,
                          por=AmpleSelector())
        explores = [s for s in iter_spans(tracer.roots)
                    if s.name == "explore"]
        assert explores
        assert explores[0].meta.get("por_pruned", 0) > 0

    def test_parallel_trace_has_worker_meta(self):
        tracer = Tracer()
        verify_fuzz_spec(SPEC, tracer=tracer, jobs=2)
        tasks = [s for s in iter_spans(tracer.roots) if s.name == "task"]
        assert tasks and all("worker" in s.meta for s in tasks)

    def test_metrics_merge_across_jobs(self):
        # absolute eval counts are honest about actual work, which IS
        # jobs-dependent (each worker dedupes privately); the *set* of
        # metered restrictions must match, and every count be positive
        reports = [verify_fuzz_spec(SPEC, tracer=Tracer(), jobs=j)
                   for j in (1, 4)]
        evals = [r.engine_stats.metrics.by_label("checker.evals",
                                                 "restriction")
                 for r in reports]
        assert set(evals[0]) == set(evals[1]) == {"dep-edges-present"}
        assert all(v > 0 for e in evals for v in e.values())


# -- the planted fork bug, explained --------------------------------------


def renamed_process(name="ForkPoolWorker-sim"):
    """The planted bug triggers off the process name; fake being forked."""
    proc = multiprocessing.current_process()
    original = proc.name
    proc.name = name

    class _Restore:
        def __enter__(self):
            return self

        def __exit__(self, *exc):
            proc.name = original

    return _Restore()


class TestForkBugExplanation:
    def test_explanation_pinpoints_failing_restriction(self):
        spec = FuzzProgramSpec(procs=(2, 2), deps=((1, 1, 0, 0),),
                               bug=FORK_DROPS_ENABLES)
        with renamed_process():
            report = verify_fuzz_spec(spec, jobs=1)
        assert not report.ok
        assert report.failed_restrictions() == ["dep-edges-present"]

        # replay the failing run (provenance, not re-exploration) and ask
        # the explainer *why* -- it must name the broken restriction
        run_index, choices = sorted(report.failing_run_choices.items())[0]
        with renamed_process():
            computation = replay_prefix(
                FuzzProgram(spec), choices).computation()
        projected = project(computation, fuzz_correspondence(spec))
        problem = fuzz_problem_spec(spec)
        restriction = problem.all_restrictions()[0]
        explanation = explain_restriction(projected, restriction)
        assert explanation is not None
        assert explanation.restriction == "dep-edges-present"
        rec = explanation.to_record()
        validate_record(rec)
        assert "dep-edges-present" in explanation.render_text()
        assert explanation.to_dot().startswith("digraph")

    def test_checker_attaches_explanation_to_tracer(self):
        spec = FuzzProgramSpec(procs=(2, 2), deps=((1, 1, 0, 0),),
                               bug=FORK_DROPS_ENABLES)
        program = FuzzProgram(spec)
        with renamed_process():
            from repro.sim.scheduler import explore
            failing = None
            for candidate in explore(program):
                projected = project(candidate.computation,
                                    fuzz_correspondence(spec))
                tracer = Tracer()
                with tracer.span("witness-replay"):
                    result = fuzz_problem_spec(spec).check(
                        projected, tracer=tracer)
                if not result.ok:
                    failing = (result, tracer)
                    break
        assert failing is not None
        result, tracer = failing
        assert tracer.explanations
        assert tracer.explanations[0]["restriction"] == "dep-edges-present"


# -- guarded progress hooks -----------------------------------------------


class TestGuardedProgress:
    def test_raising_hook_warns_once_and_disables(self):
        calls = []

        def bad_hook(event, info):
            calls.append(event)
            raise RuntimeError("boom")

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = verify_fuzz_spec(SPEC, progress=bad_hook)
        assert report.ok  # the verification survived the hook
        assert len(calls) == 1  # disabled after the first raise
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "hook disabled" in str(runtime[0].message)

    def test_guard_progress_is_idempotent(self):
        guarded = guard_progress(lambda e, i: None)
        assert isinstance(guarded, GuardedProgress)
        assert guard_progress(guarded) is guarded
        assert guard_progress(None) is None

    def test_healthy_hook_keeps_firing(self):
        events = []
        verify_fuzz_spec(SPEC, progress=lambda e, i: events.append(e))
        assert "phase:start" in events and "phase:end" in events


# -- provenance witness replay --------------------------------------------


class TestWitnessReplay:
    def test_failing_run_choices_replay_the_failure(self):
        spec = FuzzProgramSpec(procs=(2, 2), deps=((1, 1, 0, 0),),
                               bug=FORK_DROPS_ENABLES)
        with renamed_process():
            report = verify_fuzz_spec(spec, jobs=1)
        assert report.failing_run_choices  # provenance was recorded
        run_index, choices = sorted(report.failing_run_choices.items())[0]
        assert run_index in report.verdict("dep-edges-present").failing_runs
        with renamed_process():
            computation = replay_prefix(
                FuzzProgram(spec), choices).computation()
        projected = project(computation, fuzz_correspondence(spec))
        assert not fuzz_problem_spec(spec).check(projected).ok

    def test_passing_report_records_no_choices(self):
        report = verify_fuzz_spec(SPEC)
        assert report.ok
        assert report.failing_run_choices == {}


# -- EngineStats as a metrics view ----------------------------------------


class TestEngineStatsView:
    def test_counters_route_to_registry(self):
        stats = EngineStats()
        stats.runs = 10
        stats.checks_performed += 3
        assert stats.metrics.get("engine.runs") == 10
        assert stats.metrics.get("engine.checks_performed") == 3
        assert stats.runs == 10

    def test_phase_seconds_view(self):
        stats = EngineStats()
        stats.add_phase_seconds("explore+check", 1.5)
        stats.add_phase_seconds("explore+check", 0.5)
        assert stats.phase_seconds == {"explore+check": 2.0}
        assert stats.total_seconds == 2.0

    def test_worker_records_fold_in(self):
        worker = MetricsRegistry()
        worker.inc("checker.evals", 5, restriction="r")
        stats = EngineStats()
        stats.metrics.merge_records(worker.records())
        stats.metrics.merge_records(worker.records())
        assert stats.metrics.get("checker.evals", restriction="r") == 10

    def test_describe_still_renders(self):
        # por off: reduction collapses SPEC to one shard (hence one worker)
        report = verify_fuzz_spec(SPEC, jobs=2, por=False)
        text = report.engine_stats.describe()
        assert "engine: exhaustive, 2 worker(s)" in text
        assert "dedupe ratio" in text
        assert "por: disabled" in text

    def test_describe_renders_por_line(self):
        report = verify_fuzz_spec(SPEC, jobs=2)
        text = report.engine_stats.describe()
        assert "pruned at" in text
        assert "proviso expansion(s)" in text

    def test_trace_and_stats_cannot_disagree(self):
        tracer = Tracer()
        report = verify_fuzz_spec(SPEC, tracer=tracer)
        buf = io.StringIO()
        write_trace(buf, tracer, report.engine_stats.metrics)
        buf.seek(0)
        data = read_trace(buf)
        runs = [r for r in data.metric_records
                if r["name"] == "engine.runs"]
        assert runs and runs[0]["value"] == report.runs_checked


# -- the profile renderer -------------------------------------------------


class TestProfile:
    def test_profile_reports_phases_restrictions_workers(self, tmp_path):
        tracer = Tracer()
        report = verify_fuzz_spec(SPEC, tracer=tracer, jobs=2)
        path = str(tmp_path / "t.jsonl")
        write_trace(path, tracer, report.engine_stats.metrics)
        data = read_trace(path)
        text = render_profile(data)
        assert "schema v1" in text
        assert "phase" in text.lower()
        assert "dep-edges-present" in text
        assert "worker" in text.lower()

    def test_profile_of_minimal_trace(self):
        buf = io.StringIO()
        write_trace(buf, build_sample_tracer())
        buf.seek(0)
        text = render_profile(read_trace(buf))
        assert "verify" in text
