"""The auxiliary lemmas of the paper's Section 9 proof, mechanised.

The informal readers-priority proof says: "Assume that we have already
proved that potential(startwrite) ⊃ readernum = 0 and new(startread) ⊃
readernum > 0.  We have also proved that all events occurring in monitor
entries or initialization code are totally ordered by the temporal
order."

These tests check each assumed lemma at *every history of every bounded
execution* of the monitor system -- the paper's hand-proved stepping
stones, verified mechanically:

* L1: ``potential(startwrite) ⊃ readernum = 0``
* L2: ``new(startread) ⊃ readernum > 0``
* L3: in-entry/variable/condition/init events totally ordered by ⇒
  (also part of the program spec; asserted here against the §9 proof's
  wording directly)
* L4 (used in the proof's case analysis): the only events that raise
  ``readernum`` to 0 from below are EndWrite clears.
"""

import pytest

from repro.core import PyPred, check_safety_at_all_histories
from repro.langs.monitor import (
    SITE_ENDWRITE,
    SITE_STARTREAD,
    SITE_STARTWRITE,
    MonitorProgram,
    monitor_internal_elements,
    readers_writers_system,
)
from repro.sim import explore

READERNUM = "rw.var.readernum"


def readernum_at(history):
    """The value of readernum at a history: the last assign's newval."""
    value = 0  # initialisation
    for ev in history.computation.events_at(READERNUM):
        if history.occurred(ev.eid) and ev.event_class == "Assign":
            value = ev.param("newval")
    return value


def events_with_site(comp, site):
    return [e for e in comp.events_at(READERNUM)
            if e.event_class == "Assign" and e.param("site") == site]


@pytest.fixture(scope="module")
def runs():
    system = readers_writers_system(n_readers=1, n_writers=2)
    return list(explore(MonitorProgram(system)))


class TestSection9Lemmas:
    def test_l1_potential_startwrite_implies_readernum_zero(self, runs):
        for run in runs:
            comp = run.computation
            startwrites = events_with_site(comp, SITE_STARTWRITE)

            def lemma(history, env):
                for sw in startwrites:
                    if history.potential(sw.eid):
                        if readernum_at(history) != 0:
                            return False
                return True

            assert check_safety_at_all_histories(comp, PyPred("L1", lemma))

    def test_l2_new_startread_implies_readernum_positive(self, runs):
        for run in runs:
            comp = run.computation
            startreads = events_with_site(comp, SITE_STARTREAD)

            def lemma(history, env):
                for sr in startreads:
                    if history.new(sr.eid):
                        if not readernum_at(history) > 0:
                            return False
                return True

            assert check_safety_at_all_histories(comp, PyPred("L2", lemma))

    def test_l3_in_entry_events_totally_ordered(self, runs):
        system = readers_writers_system(n_readers=1, n_writers=2)
        internal = [el for el in monitor_internal_elements(system)
                    if el != "rw.lock"]
        for run in runs:
            comp = run.computation
            events = [e.eid for e in comp.events if e.element in internal]
            for i, a in enumerate(events):
                for b in events[i + 1:]:
                    assert (comp.temporally_precedes(a, b)
                            or comp.temporally_precedes(b, a))

    def test_l4_only_endwrite_raises_readernum_to_zero_from_below(self, runs):
        for run in runs:
            comp = run.computation
            value = 0
            for ev in comp.events_at(READERNUM):
                if ev.event_class != "Assign":
                    continue
                new_value = ev.param("newval")
                if value < 0 and new_value == 0:
                    assert ev.param("site") == SITE_ENDWRITE
                value = new_value
