"""Unit tests for the partial-order algebra (repro.core.order)."""

import pytest

from repro.core.errors import CycleError
from repro.core.order import Relation, RelationBuilder


def rel(nodes, pairs):
    return Relation.from_pairs(nodes, pairs)


class TestConstruction:
    def test_from_pairs_and_holds(self):
        r = rel("abc", [("a", "b"), ("b", "c")])
        assert r.holds("a", "b")
        assert r.holds("b", "c")
        assert not r.holds("a", "c")

    def test_unknown_node_in_pair_rejected(self):
        with pytest.raises(ValueError):
            rel("ab", [("a", "z")])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            Relation.from_pairs(["a", "a"], [])

    def test_empty_relation(self):
        r = Relation.empty("abc")
        assert len(r) == 3
        assert r.pair_count() == 0
        assert list(r.pairs()) == []

    def test_builder_deduplicates_nodes(self):
        b = RelationBuilder()
        b.add_pair("a", "b")
        b.add_pair("a", "c")
        b.add_node("a")
        r = b.build()
        assert set(r.nodes) == {"a", "b", "c"}
        assert r.pair_count() == 2

    def test_contains(self):
        r = rel("ab", [])
        assert "a" in r
        assert "z" not in r


class TestNeighbours:
    def test_successors_predecessors(self):
        r = rel("abcd", [("a", "b"), ("a", "c"), ("c", "d")])
        assert set(r.successors("a")) == {"b", "c"}
        assert set(r.predecessors("d")) == {"c"}
        assert set(r.predecessors("a")) == set()

    def test_minimal_maximal(self):
        r = rel("abcd", [("a", "b"), ("b", "c")])
        assert set(r.minimal_nodes()) == {"a", "d"}
        assert set(r.maximal_nodes()) == {"c", "d"}


class TestClosure:
    def test_closure_holds_transitively(self):
        r = rel("abcd", [("a", "b"), ("b", "c"), ("c", "d")])
        assert r.closure_holds("a", "d")
        assert not r.closure_holds("d", "a")
        assert not r.closure_holds("a", "a")

    def test_transitive_closure_relation(self):
        r = rel("abc", [("a", "b"), ("b", "c")])
        tc = r.transitive_closure()
        assert tc.holds("a", "c")
        assert tc.is_strict_partial_order()

    def test_closure_of_cyclic_raises(self):
        r = rel("ab", [("a", "b"), ("b", "a")])
        with pytest.raises(CycleError):
            r.transitive_closure()

    def test_closure_idempotent(self):
        r = rel("abcde", [("a", "b"), ("b", "c"), ("a", "d"), ("d", "e")])
        tc = r.transitive_closure()
        tc2 = tc.transitive_closure()
        assert set(tc.pairs()) == set(tc2.pairs())


class TestCycles:
    def test_self_loop_detected(self):
        r = rel("ab", [("a", "a")])
        assert not r.is_acyclic()
        cyc = r.find_cycle()
        assert cyc == ["a", "a"]

    def test_two_cycle_detected(self):
        r = rel("abc", [("a", "b"), ("b", "a")])
        assert not r.is_acyclic()
        cyc = r.find_cycle()
        assert cyc[0] == cyc[-1]
        assert len(cyc) == 3

    def test_long_cycle_witness_is_closed_path(self):
        r = rel("abcde", [("a", "b"), ("b", "c"), ("c", "d"), ("d", "b"), ("a", "e")])
        cyc = r.find_cycle()
        assert cyc[0] == cyc[-1]
        for x, y in zip(cyc, cyc[1:]):
            assert r.holds(x, y)

    def test_acyclic_has_no_cycle(self):
        r = rel("abc", [("a", "b"), ("a", "c")])
        assert r.is_acyclic()
        assert r.find_cycle() is None


class TestOrderPredicates:
    def test_is_strict_partial_order(self):
        # raw chain is not transitive, closure is
        chain = rel("abc", [("a", "b"), ("b", "c")])
        assert not chain.is_strict_partial_order()
        assert chain.transitive_closure().is_strict_partial_order()

    def test_concurrent(self):
        r = rel("abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]).transitive_closure()
        assert r.concurrent("b", "c")
        assert not r.concurrent("a", "d")
        assert not r.concurrent("a", "a")

    def test_topological_order_respects_edges(self):
        r = rel("abcde", [("a", "b"), ("b", "c"), ("a", "d"), ("d", "e")])
        topo = r.topological_order()
        pos = {n: i for i, n in enumerate(topo)}
        for x, y in r.pairs():
            assert pos[x] < pos[y]

    def test_topological_order_cyclic_raises(self):
        with pytest.raises(CycleError):
            rel("ab", [("a", "b"), ("b", "a")]).topological_order()


class TestReduction:
    def test_reduction_removes_implied_edge(self):
        r = rel("abc", [("a", "b"), ("b", "c"), ("a", "c")])
        red = r.transitive_reduction()
        assert red.holds("a", "b")
        assert red.holds("b", "c")
        assert not red.holds("a", "c")

    def test_reduction_closure_round_trip(self):
        r = rel("abcde", [("a", "b"), ("b", "c"), ("c", "d"), ("a", "e"), ("e", "d"),
                          ("a", "d"), ("a", "c")])
        red = r.transitive_reduction()
        assert set(red.transitive_closure().pairs()) == set(
            r.transitive_closure().pairs())

    def test_reduction_cyclic_raises(self):
        with pytest.raises(CycleError):
            rel("ab", [("a", "b"), ("b", "a")]).transitive_reduction()


class TestSets:
    def diamond(self):
        return rel("abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])

    def test_down_set(self):
        r = self.diamond()
        assert r.down_set(["d"]) == frozenset("abcd")
        assert r.down_set(["b"]) == frozenset("ab")
        assert r.down_set(["b", "c"]) == frozenset("abc")

    def test_up_set(self):
        r = self.diamond()
        assert r.up_set(["a"]) == frozenset("abcd")
        assert r.up_set(["c"]) == frozenset("cd")

    def test_is_down_closed(self):
        r = self.diamond()
        assert r.is_down_closed(set("ab"))
        assert r.is_down_closed(set())
        assert not r.is_down_closed(set("bd"))

    def test_is_antichain(self):
        r = self.diamond()
        assert r.is_antichain(set("bc"))
        assert r.is_antichain({"b"})
        assert r.is_antichain(set())
        assert not r.is_antichain(set("ab"))

    def test_restricted_to(self):
        r = self.diamond()
        sub = r.restricted_to(["a", "b", "d"])
        assert set(sub.nodes) == {"a", "b", "d"}
        assert sub.holds("a", "b")
        assert sub.holds("b", "d")
        assert not sub.holds("a", "d")  # raw restriction keeps raw pairs only

    def test_union(self):
        r1 = rel("abc", [("a", "b")])
        r2 = Relation.from_pairs(list(r1.nodes), [("b", "c")])
        u = r1.union(r2)
        assert u.holds("a", "b") and u.holds("b", "c")

    def test_union_mismatched_universe_rejected(self):
        with pytest.raises(ValueError):
            rel("ab", []).union(rel("abc", []))


class TestLinearExtensions:
    def test_chain_has_one_extension(self):
        r = rel("abc", [("a", "b"), ("b", "c")])
        exts = list(r.linear_extensions())
        assert exts == [["a", "b", "c"]]

    def test_antichain_has_factorial_extensions(self):
        r = Relation.empty("abc")
        exts = list(r.linear_extensions())
        assert len(exts) == 6
        assert len({tuple(e) for e in exts}) == 6

    def test_diamond_count(self):
        r = rel("abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        assert r.count_linear_extensions() == 2
        assert len(list(r.linear_extensions())) == 2

    def test_limit_respected(self):
        r = Relation.empty("abcde")
        exts = list(r.linear_extensions(limit=7))
        assert len(exts) == 7

    def test_every_extension_is_valid(self):
        r = rel("abcde", [("a", "c"), ("b", "c"), ("c", "d")])
        for ext in r.linear_extensions():
            pos = {n: i for i, n in enumerate(ext)}
            for x, y in r.pairs():
                assert pos[x] < pos[y]

    def test_count_matches_enumeration(self):
        r = rel("abcde", [("a", "c"), ("b", "c")])
        assert r.count_linear_extensions() == len(list(r.linear_extensions()))

    def test_cyclic_raises(self):
        r = rel("ab", [("a", "b"), ("b", "a")])
        with pytest.raises(CycleError):
            list(r.linear_extensions())
        with pytest.raises(CycleError):
            r.count_linear_extensions()
