"""Tests for :mod:`repro.fuzz`: generators, oracles, shrinker, runner.

Three layers:

* generator sanity -- seeded determinism, structural well-formedness,
  recipe algebra (``repr`` round-trips, shuffles, shrink steps);
* killed mutants -- every oracle must demonstrably *fail* on a seeded
  defect (a tampered relation, a forged history, a lossy fingerprint, a
  barrier-less composition, an out-of-fragment formula, a
  nondeterministic program, a fork-divergent program);
* the loop -- ``run_fuzz`` passes clean over every oracle, the shrinker
  minimises a planted engine disagreement to a handful of events, and
  the emitted pytest snippet actually runs and reproduces.
"""

import json
import multiprocessing
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.computation import ComputationBuilder
from repro.core.formula import (
    And,
    Eventually,
    Exists,
    Not,
    Occurred,
    Restriction,
)
from repro.core.history import History, all_histories
from repro.core.order import Relation
from repro.engine.pool import fork_available
from repro.fuzz import (
    CheckerArtifact,
    ComputationRecipe,
    FuzzConfig,
    FuzzProgram,
    FuzzProgramSpec,
    check_compose_laws,
    check_engine_agreement,
    check_fingerprint_laws,
    check_history_laws,
    check_modes_agree,
    check_order_laws,
    check_replay_determinism,
    make_oracles,
    oracle_names,
    random_choices,
    random_computation,
    random_formula,
    repro_snippet,
    run_fuzz,
    seed_token,
    shrink_failure,
)
from repro.fuzz.programs import FORK_DROPS_ENABLES, random_program_spec
from repro.sim import run_random, sample_runs

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable")


# -- generators ------------------------------------------------------------


class TestGenerators:
    def test_same_seed_same_recipe(self):
        for seed in range(10):
            a = random_computation(random.Random(seed))
            b = random_computation(random.Random(seed))
            assert a == b

    def test_recipes_build_well_formed_computations(self):
        for seed in range(30):
            recipe = random_computation(random.Random(seed))
            comp = recipe.build()
            assert comp.temporal_relation.is_strict_partial_order()
            # edges were declared forward in insertion order
            assert all(i < j for i, j in recipe.edges)

    def test_group_recipes_respect_access_rules(self):
        saw_groups = False
        for seed in range(30):
            recipe = random_computation(random.Random(seed), with_groups=True)
            structure = recipe.group_structure()
            if structure is None:
                continue
            saw_groups = True
            for i, j in recipe.edges:
                src = recipe.events[i][0]
                dst, dst_class = recipe.events[j][0], recipe.events[j][1]
                assert structure.may_enable(src, dst, dst_class)
        assert saw_groups

    def test_recipe_repr_round_trips(self):
        from repro.fuzz.generators import GroupRecipe  # snippet namespace

        for seed in range(10):
            recipe = random_computation(random.Random(seed))
            clone = eval(repr(recipe))
            assert clone == recipe
            assert clone.build().stable_fingerprint() == \
                recipe.build().stable_fingerprint()

    def test_shuffle_preserves_per_element_order(self):
        recipe = random_computation(random.Random(7), max_events=10)
        rng = random.Random(1)
        for _ in range(5):
            order = recipe.element_preserving_shuffle(rng)
            assert sorted(order) == list(range(len(recipe.events)))
            seen = {}
            for pos in order:
                element = recipe.events[pos][0]
                assert seen.get(element, -1) < pos
                seen[element] = pos

    def test_shrink_candidates_are_strictly_smaller(self):
        recipe = random_computation(random.Random(3), max_events=8)
        for cand in recipe.shrink_candidates():
            assert (len(cand.events), len(cand.edges)) < \
                (len(recipe.events), len(recipe.edges)) or \
                len(cand.events) < len(recipe.events)
            cand.build()  # still well-formed

    def test_random_formula_deterministic_and_checkable(self):
        from repro.core.checker import check_restriction
        from repro.core.formula import Henceforth

        recipe = random_computation(random.Random(11), max_events=6,
                                    with_groups=False)
        comp = recipe.build()
        f1 = random_formula(random.Random(5), comp)
        f2 = random_formula(random.Random(5), comp)
        assert f1 == f2
        outcome = check_restriction(
            comp, Restriction("r", Henceforth(f1)))
        assert isinstance(outcome.holds, bool)

    def test_random_choices_replayable(self):
        spec = random_program_spec(random.Random(4))
        program = FuzzProgram(spec)
        choices = random_choices(random.Random(9), program)
        assert choices == random_choices(random.Random(9), program)
        state = program.initial_state()
        for c in choices:
            state.step(state.enabled()[c])
        assert state.is_final()


# -- every oracle passes on clean inputs -----------------------------------


class TestOraclesPass:
    def test_fuzz_loop_clean(self):
        failures, stats = run_fuzz(FuzzConfig(iterations=35, seed=0))
        assert failures == []
        assert stats.iterations == 35
        assert set(stats.per_oracle) == set(oracle_names())

    def test_seed_tokens_reproduce_artifacts(self):
        oracles = make_oracles()
        for name, oracle in oracles.items():
            token = seed_token(0, name, 3)
            a = oracle.generate(random.Random(token))
            b = oracle.generate(random.Random(token))
            assert a == b, name


# -- killed mutants: one per oracle ----------------------------------------


def _diamond():
    b = ComputationBuilder()
    e1 = b.add_event("A", "Go")
    e2 = b.add_event("B", "Go")
    b.add_enable(e1, e2)
    return b.freeze()


class TestKilledMutants:
    def test_order_oracle_kills_reflexive_relation(self):
        comp = _diamond()
        ids = [ev.eid for ev in comp.events]
        comp._temporal = Relation.from_pairs(
            ids, list(comp.temporal_relation.pairs()) + [(ids[0], ids[0])])
        assert check_order_laws(comp) is not None

    def test_order_oracle_kills_missing_transitive_pair(self):
        b = ComputationBuilder()
        e1 = b.add_event("A", "Go")
        e2 = b.add_event("B", "Go")
        e3 = b.add_event("C", "Go")
        b.add_enable(e1, e2)
        b.add_enable(e2, e3)
        comp = b.freeze()
        ids = [ev.eid for ev in comp.events]
        broken = [p for p in comp.temporal_relation.pairs()
                  if p != (e1.eid, e3.eid)]
        comp._temporal = Relation.from_pairs(ids, broken)
        message = check_order_laws(comp)
        assert message is not None

    def test_history_oracle_kills_forged_history(self):
        b = ComputationBuilder()
        e1 = b.add_event("A", "Go")
        e2 = b.add_event("A", "Go")
        comp = b.freeze()
        forged = History(comp, [e2.eid], _trusted=True)
        message = check_history_laws(
            comp, histories=all_histories(comp) + [forged])
        assert message is not None
        assert "down-closed" in message

    def _recipe_with_edge_and_params(self):
        return ComputationRecipe(
            events=(("A", "Put", (("v", 1),), ()),
                    ("B", "Get", (("v", 1),), ()),
                    ("A", "Put", (("v", 2),), ())),
            edges=((0, 1),),
        )

    def test_fingerprint_oracle_kills_edge_blind_fingerprint(self):
        recipe = self._recipe_with_edge_and_params()
        message = check_fingerprint_laws(
            recipe,
            fingerprint=lambda c: str(sorted(
                (str(ev.eid), ev.event_class, tuple(sorted(ev.param_dict().items())))
                for ev in c.events)))
        assert message is not None
        assert "insensitive" in message

    def test_fingerprint_oracle_kills_insertion_order_sensitivity(self):
        recipe = self._recipe_with_edge_and_params()
        message = check_fingerprint_laws(
            recipe,
            fingerprint=lambda c: str([str(ev.eid) for ev in c.events])
            + str(sorted(c.enable_relation.pairs()))
            + str(sorted(str(p) for ev in c.events
                         for p in ev.param_dict().items())))
        assert message is not None
        assert "invariant" in message

    def _compose_recipes(self):
        a = ComputationRecipe(
            events=(("LA", "Put", (("v", 3),), ()),
                    ("LB", "Go", (), ())),
            edges=((0, 1),))
        b = ComputationRecipe(
            events=(("RA", "Get", (("v", 3),), ()),))
        return a, b

    def test_compose_oracle_kills_missing_barrier(self):
        from repro.core.compose import sequential_compose

        a, b = self._compose_recipes()
        message = check_compose_laws(
            a, b,
            compose_sequential=lambda x, y: sequential_compose(
                x, y, barrier=False))
        assert message is not None
        assert "sequential_compose" in message

    def test_compose_oracle_kills_param_dropping_projection(self):
        from repro.verify.correspondence import (
            Correspondence,
            SignificantEvents,
        )
        from repro.verify.projection import project

        def lossy(comp, corr):
            rules = tuple(
                SignificantEvents(
                    name=r.name, element=r.element,
                    event_class=r.event_class,
                    target_element=r.target_element,
                    target_class=r.target_class)  # params dropped
                for r in corr.rules)
            return project(comp, Correspondence(rules=rules))

        a, b = self._compose_recipes()
        message = check_compose_laws(a, b, projector=lossy)
        assert message is not None
        assert "identity projection" in message

    def test_checker_oracle_kills_out_of_fragment_formula(self):
        # ¬◇p with a non-monotone p is path-sensitive: the exact checker
        # quantifies per path, the lattice checker's AF is path-universal.
        # The fuzzer only generates □-of-immediate restrictions, where the
        # two provably agree; this formula is the seeded divergence.
        b = ComputationBuilder()
        b.add_event("A", "Go")
        b.add_event("B", "Go")
        comp = b.freeze()
        only_a = And((Exists("x", "A.Go", Occurred("x")),
                      Not(Exists("y", "B.Go", Occurred("y")))))
        mutant = Restriction("never-only-a", Not(Eventually(only_a)))
        message = check_modes_agree(comp, mutant)
        assert message is not None
        assert "disagree" in message

    def test_replay_oracle_kills_nondeterministic_program(self):
        from repro.sim.runtime import Action, SimpleState

        class ChainState(SimpleState):
            """Emits E0..E3 in scheduling order, chaining each event to
            the previously emitted one -- so the computation records the
            order.  ``enabled()`` shuffles with the *ambient* RNG: the
            planted defect."""

            def __init__(self):
                super().__init__()
                self._emitted = []
                self._pending = list(range(4))

            def enabled(self):
                actions = [Action(f"E{i}", "go", key=i)
                           for i in self._pending]
                random.shuffle(actions)  # the defect
                return actions

            def step(self, action):
                k = action.key
                prev = [self._emitted[-1]] if self._emitted else []
                self._emitted.append(
                    self.emit(None, f"E{k}", "Go", {}, extra_enables=prev,
                              chain=False))
                self._pending.remove(k)

            def is_final(self):
                return not self._pending

        class ChainProgram:
            def initial_state(self):
                return ChainState()

        random.seed(0xC0FFEE)  # make the ambient-RNG defect reproducible
        messages = {
            check_replay_determinism(ChainProgram(), seed)
            for seed in range(10)
        }
        assert messages != {None}

    @needs_fork
    def test_engine_oracle_kills_fork_divergent_program(self):
        spec = FuzzProgramSpec(
            procs=(1, 2), deps=((1, 1, 0, 0),), bug=FORK_DROPS_ENABLES)
        message = check_engine_agreement(spec, jobs=2)
        assert message is not None
        assert "parallel" in message

    def test_engine_oracle_passes_without_bug(self):
        spec = FuzzProgramSpec(procs=(1, 2), deps=((1, 1, 0, 0),))
        assert check_engine_agreement(spec, jobs=2) is None


# -- shrinker --------------------------------------------------------------


class TestShrinker:
    def test_greedy_shrink_on_synthetic_predicate(self):
        recipe = random_computation(random.Random(12), max_events=10)
        if not recipe.edges:  # ensure the failure condition is present
            recipe = random_computation(random.Random(13), max_events=10)
        assert recipe.edges

        def fails_if_any_edge(r):
            return "has an edge" if r.edges else None

        shrunk, message = shrink_failure(
            recipe, fails_if_any_edge, lambda r: r.shrink_candidates())
        assert message == "has an edge"
        assert len(shrunk.edges) == 1
        assert len(shrunk.events) == 2

    def test_shrink_requires_failing_artifact(self):
        recipe = random_computation(random.Random(1))
        with pytest.raises(ValueError):
            shrink_failure(recipe, lambda r: None,
                           lambda r: r.shrink_candidates())

    @needs_fork
    def test_planted_engine_disagreement_shrinks_small(self):
        planted = FuzzProgramSpec(
            procs=(3, 3, 2),
            deps=((1, 1, 0, 0), (2, 1, 1, 0), (0, 2, 2, 1)),
            bug=FORK_DROPS_ENABLES,
        )

        def check(spec):
            return check_engine_agreement(spec, jobs=2)

        assert check(planted) is not None
        shrunk, message = shrink_failure(
            planted, check, lambda s: s.shrink_candidates())
        assert shrunk.total_steps <= 6
        assert shrunk.deps  # the dropped edge is part of the minimal repro
        assert "parallel" in message

        snippet = repro_snippet("engine-differential", shrunk, message)
        namespace: dict = {}
        exec(compile(snippet, "<fuzz-repro>", "exec"), namespace)
        with pytest.raises(AssertionError):
            namespace["test_fuzz_repro"]()

    def test_snippet_is_valid_python_with_imports(self):
        artifact = CheckerArtifact(
            recipe=random_computation(random.Random(2), max_events=4,
                                      with_groups=False),
            formula_seed=7)
        snippet = repro_snippet("checker-modes", artifact, "msg")
        assert "from repro.fuzz.oracles import CheckerArtifact" in snippet
        assert "from repro.fuzz.generators import ComputationRecipe" in snippet
        compile(snippet, "<snippet>", "exec")


# -- runner ----------------------------------------------------------------


class TestRunner:
    def test_failure_stops_oracle_and_emits_snippet(self, monkeypatch):
        import repro.fuzz.runner as runner_mod
        from repro.fuzz.oracles import Oracle

        def broken_registry(jobs=2):
            registry = make_oracles(jobs=jobs)
            good = registry["order-laws"]
            registry["order-laws"] = Oracle(
                name=good.name, summary=good.summary,
                generate=good.generate,
                check=lambda recipe: "edge present" if recipe.edges else None,
                shrink=good.shrink)
            return registry

        monkeypatch.setattr(runner_mod, "make_oracles", broken_registry)
        failures, stats = run_fuzz(FuzzConfig(
            iterations=30, seed=0, oracles=("order-laws",)))
        assert len(failures) == 1
        failure = failures[0]
        assert failure.oracle == "order-laws"
        assert failure.seed_token.startswith("0:order-laws:")
        assert failure.message == "edge present"
        # shrunk to the minimal edge-bearing recipe: two events, one edge
        assert len(failure.shrunk_artifact.events) == 2
        assert len(failure.shrunk_artifact.edges) == 1
        assert "def test_fuzz_repro" in failure.snippet
        assert "ComputationRecipe" in failure.snippet
        # the oracle stops being scheduled after its first failure
        assert stats.per_oracle["order-laws"] < 30
        assert stats.failures == 1
        assert "order-laws" in failure.describe()

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError):
            run_fuzz(FuzzConfig(iterations=1, oracles=("nope",)))

    def test_stats_describe_mentions_each_oracle(self):
        _failures, stats = run_fuzz(FuzzConfig(
            iterations=4, seed=2, oracles=("order-laws", "fingerprint")))
        text = stats.describe()
        assert "order-laws" in text and "fingerprint" in text


# -- cross-process seed reproducibility (satellite) ------------------------


class TestSeedReproducibility:
    def test_sample_runs_reproduce_in_subprocess(self):
        """``sample_runs`` must be immune to hash randomisation and any
        other per-process state: a subprocess with a different
        PYTHONHASHSEED must reproduce the parent's choice sequences and
        computation fingerprints exactly."""
        spec = FuzzProgramSpec(procs=(2, 2, 1), deps=((1, 1, 0, 0),))
        parent = [
            [list(r.choices), r.computation.stable_fingerprint()]
            for r in sample_runs(FuzzProgram(spec), 6, seed=42)
        ]

        repo_root = Path(__file__).resolve().parents[1]
        code = (
            "import json\n"
            "from repro.fuzz.programs import FuzzProgram, FuzzProgramSpec\n"
            "from repro.sim import sample_runs\n"
            f"spec = {spec!r}\n"
            "runs = sample_runs(FuzzProgram(spec), 6, seed=42)\n"
            "print(json.dumps([[list(r.choices),"
            " r.computation.stable_fingerprint()] for r in runs]))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        env["PYTHONHASHSEED"] = "271828"  # different salt, same answers
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, cwd=str(repo_root),
            capture_output=True, text=True, check=True)
        child = json.loads(out.stdout)
        assert child == parent

    def test_run_random_choices_stable_across_seeds(self):
        spec = FuzzProgramSpec(procs=(2, 2))
        program = FuzzProgram(spec)
        for seed in range(5):
            assert run_random(program, seed).choices == \
                run_random(program, seed).choices
