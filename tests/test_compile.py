"""Tests for the compiled restriction checker (repro.core.compile).

Covers the compiled-vs-lattice-vs-exact differential contract (>=200
seeded fuzz cases plus the planted fork-drops-enables engine mutant),
witness/ExplanationTrace invariance across modes, the PyPred fallback
path and its metrics, the history-cap guard, and the object-identity
micro-tests for the memoised closure / history / index caches the
compiler leans on.
"""

import random

import pytest

from repro.core import (
    ComputationBuilder,
    Eventually,
    Exists,
    ForAll,
    Henceforth,
    Implies,
    Not,
    Occurred,
    PyPred,
    Restriction,
    check_computation,
    check_restriction,
    empty_history,
    event_index,
    is_compilable,
)
from repro.core.checker import RestrictionOutcome
from repro.core.errors import ComputationError
from repro.fuzz import (
    FORK_DROPS_ENABLES,
    CheckerArtifact,
    FuzzProgram,
    check_compiled_agrees,
    fuzz_correspondence,
    fuzz_problem_spec,
    random_computation,
    random_program_spec,
)
from tests.test_checker import fork_join, spec_for

#: Seeds for the differential sweep -- ISSUE asks for >= 200 cases.
DIFFERENTIAL_SEEDS = range(200)


def no_work_restriction() -> Restriction:
    """Fails on fork_join() only after the lattice walks past the empty
    history (Not(Occurred) is non-monotone, so no latching shortcut)."""
    return Restriction(
        "no-work", Henceforth(ForAll("w", "Work", Not(Occurred("w")))))


class TestDifferential:
    def test_compiled_vs_lattice_vs_exact_seeded(self):
        """200 seeded random computations x random □-formulas: the
        compiled checker must match the interpreter byte-for-byte and
        exact enumeration on the verdict."""
        failures = []
        checked = 0
        for seed in DIFFERENTIAL_SEEDS:
            rng = random.Random(seed)
            recipe = random_computation(rng, max_elements=3, max_events=6,
                                        with_groups=False)
            art = CheckerArtifact(recipe, rng.randrange(2 ** 32))
            comp = recipe.build()
            message = check_compiled_agrees(comp, art.restriction(comp))
            checked += 1
            if message is not None:
                failures.append((seed, message))
        assert checked >= 200
        assert not failures, failures[:5]

    def test_eventually_shapes_agree(self):
        """◇-rooted formulas exercise the AF walk (the artifact
        generator above only roots at □)."""
        failures = []
        for seed in range(40):
            rng = random.Random(1000 + seed)
            recipe = random_computation(rng, max_elements=3, max_events=5,
                                        with_groups=False)
            comp = recipe.build()
            art = CheckerArtifact(recipe, rng.randrange(2 ** 32), max_depth=2)
            body = art.restriction(comp).formula.body
            restriction = Restriction("fuzz-eventually", Eventually(body))
            lattice = check_restriction(comp, restriction,
                                        temporal_mode="lattice")
            compiled = check_restriction(comp, restriction,
                                         temporal_mode="compiled")
            if (lattice.holds, lattice.detail) != (compiled.holds,
                                                   compiled.detail):
                failures.append((seed, lattice, compiled))
        assert not failures, failures[:5]

    def test_oracle_catches_lying_compiled_checker(self):
        """Mutant seeding: a compiled evaluator that inverts verdicts
        must be reported by the differential oracle."""
        comp = fork_join()
        restriction = Restriction(
            "some-join", Henceforth(Exists("j", "Join", Occurred("j"))))

        def lying(c, r):
            honest = check_restriction(c, r, temporal_mode="lattice")
            return RestrictionOutcome(r.name, not honest.holds,
                                      "mutant verdict")

        message = check_compiled_agrees(comp, restriction,
                                        compiled_check=lying)
        assert message is not None and "disagrees" in message

    def test_fork_drops_enables_mutant_caught_identically(self):
        """The planted fork-drops-enables mutant perturbs computations
        built in forked workers; compiled and interpreted engine runs
        must still produce signature-identical reports (whatever the
        mutant does, it cannot open daylight between the modes)."""
        from repro.engine import EngineConfig, run_verification

        rng = random.Random(7)
        spec = random_program_spec(rng, bug=FORK_DROPS_ENABLES)
        problem_spec = fuzz_problem_spec(spec)
        correspondence = fuzz_correspondence(spec)

        def signature(mode):
            config = EngineConfig(jobs=2, max_steps=48, max_runs=256,
                                  temporal_mode=mode)
            report, _stats = run_verification(
                FuzzProgram(spec), problem_spec, correspondence,
                config=config)
            return report.signature()

        assert signature("compiled") == signature("lattice")


class TestDiagnosticParity:
    def test_witness_identical_across_modes(self):
        comp = fork_join()
        restriction = no_work_restriction()
        compiled = check_restriction(comp, restriction,
                                     temporal_mode="compiled",
                                     with_witness=True)
        lattice = check_restriction(comp, restriction,
                                    temporal_mode="lattice",
                                    with_witness=True)
        assert not compiled.holds
        assert "witness" in compiled.detail
        assert compiled.detail == lattice.detail

    def test_explanation_trace_identical_across_modes(self):
        from repro.obs import Tracer

        comp = fork_join()
        restriction = no_work_restriction()

        def explanations(mode):
            tracer = Tracer()
            outcome = check_restriction(comp, restriction,
                                        temporal_mode=mode, tracer=tracer)
            assert not outcome.holds
            return tracer.explanations

        compiled = explanations("compiled")
        assert compiled  # the failure was explained...
        assert compiled == explanations("lattice")  # ...identically


class TestFallbackAndMetrics:
    def test_pypred_is_not_compilable(self):
        assert not is_compilable(PyPred("always", lambda h, env: True))
        assert is_compilable(no_work_restriction().formula)

    def test_formula_subclass_falls_back(self):
        """User subclasses may override semantics; the compiler must
        not silently assume the base-class meaning."""

        class InvertedOccurred(Occurred):
            pass

        assert not is_compilable(InvertedOccurred("x"))

    def test_pypred_falls_back_and_counts(self):
        from repro.obs import MetricsRegistry

        comp = fork_join()
        restriction = Restriction(
            "py-escape", Henceforth(PyPred("always", lambda h, env: True)))
        metrics = MetricsRegistry()
        outcome = check_restriction(comp, restriction,
                                    temporal_mode="compiled", metrics=metrics)
        assert outcome.holds
        assert metrics.get("checker.fallbacks",
                           restriction="py-escape") == 1
        assert metrics.get("checker.compiled_evals",
                           restriction="py-escape") == 0.0

    def test_compiled_evals_counted(self):
        from repro.obs import MetricsRegistry

        comp = fork_join()
        metrics = MetricsRegistry()
        outcome = check_restriction(comp, no_work_restriction(),
                                    temporal_mode="compiled", metrics=metrics)
        assert not outcome.holds
        assert metrics.get("checker.compiled_evals",
                           restriction="no-work") >= 1
        assert metrics.get("checker.fallbacks",
                           restriction="no-work") == 0.0

    def test_history_cap_enforced(self):
        comp = fork_join()
        with pytest.raises(ComputationError):
            check_restriction(comp, no_work_restriction(),
                              temporal_mode="compiled", history_cap=1)

    def test_check_computation_compiled_matches_lattice(self):
        comp = fork_join()
        spec = spec_for(
            comp,
            no_work_restriction(),
            Restriction("some-join",
                        Eventually(Exists("j", "Join", Occurred("j")))),
            Restriction("work-after-fork", Henceforth(ForAll(
                "w", "Work",
                Implies(Occurred("w"),
                        Exists("f", "Fork", Occurred("f")))))),
        )
        compiled = check_computation(comp, spec)  # compiled is the default
        lattice = check_computation(comp, spec, temporal_mode="lattice")
        assert ([(o.name, o.holds, o.detail) for o in compiled.outcomes]
                == [(o.name, o.holds, o.detail) for o in lattice.outcomes])


class TestMemoIdentity:
    """The satellite micro-tests: caches must hand back the same object."""

    def test_closure_table_identity(self):
        comp = fork_join()
        relation = comp.temporal_relation
        assert relation.closure_table() is relation.closure_table()

    def test_history_cache_identity(self):
        comp = fork_join()
        h = empty_history(comp)
        assert h.addable() is h.addable()
        assert h.frontier() is h.frontier()

    def test_event_index_identity(self):
        comp = fork_join()
        assert event_index(comp) is event_index(comp)
