"""Unit tests for the ADA tasking language: AST, interpreter, GEM spec."""

import pytest

from repro.core import EventClassRef, check_legality
from repro.core.errors import SpecificationError
from repro.langs.ada import (
    Accept,
    AdaAssign,
    AdaIf,
    AdaLoop,
    AdaProgram,
    AdaSystem,
    AdaTask,
    DataRead,
    DataWrite,
    EntryCall,
    EntryCount,
    Note,
    Reply,
    Select,
    SelectBranch,
    ada_program_spec,
    bounded_buffer_ada_system,
    one_slot_buffer_ada_system,
    rw_ada_system,
)
from repro.langs.exprs import BinOp, Lit, ParamRef, VarRef
from repro.sim import explore, run_random


def system(*tasks, data=()):
    return AdaSystem(tuple(tasks), tuple(data))


class TestRendezvous:
    def simple(self):
        return system(
            AdaTask("caller", (), (), (
                EntryCall("server", "Ping", Lit(5), into=None),
            )),
            AdaTask("server", ("Ping",), (("x", None),), (
                Accept("Ping", (AdaAssign("x", ParamRef("arg")),)),
            )),
        )

    def test_basic_rendezvous(self):
        run = run_random(AdaProgram(self.simple()), seed=0)
        assert run.completed
        comp = run.computation
        el = "server.entry.Ping"
        classes = [e.event_class for e in comp.events_at(el)]
        assert classes == ["Call", "Start", "End"]
        (assign,) = comp.events_at("server.var.x")
        assert assign.param("newval") == 5

    def test_call_enables_start_and_end_enables_resume(self):
        comp = run_random(AdaProgram(self.simple()), seed=0).computation
        call, start, end = comp.events_at("server.entry.Ping")
        assert comp.enables(call.eid, start.eid)
        (resume,) = [e for e in comp.events_at("caller")
                     if e.event_class == "Resume"]
        assert comp.enables(end.eid, resume.eid)

    def test_reply_returned_into_variable(self):
        sysx = system(
            AdaTask("caller", (), (("got", None),), (
                EntryCall("server", "Ask", into="got"),
                Note.make("Got", value=VarRef("got")),
            )),
            AdaTask("server", ("Ask",), (), (
                Accept("Ask", (Reply(Lit("answer")),)),
            )),
        )
        comp = run_random(AdaProgram(sysx), seed=0).computation
        assert comp.events_of_class("Got")[0].param("value") == "answer"

    def test_unknown_entry_raises(self):
        sysx = system(
            AdaTask("caller", (), (), (EntryCall("server", "Nope"),)),
            AdaTask("server", ("Ping",), (), (Accept("Ping"),)),
        )
        with pytest.raises(SpecificationError, match="unknown entry"):
            run_random(AdaProgram(sysx), seed=0)

    def test_caller_blocks_until_accept(self):
        sysx = system(
            AdaTask("caller", (), (), (
                EntryCall("server", "Ping"),
                Note.make("AfterCall"),
            )),
            AdaTask("server", ("Ping",), (), (
                Note.make("BeforeAccept"),
                Accept("Ping"),
            )),
        )
        comp = run_random(AdaProgram(sysx), seed=0).computation
        after = comp.events_of_class("AfterCall")[0]
        start = comp.events_of(EventClassRef("server.entry.Ping", "Start"))[0]
        assert comp.temporally_precedes(start.eid, after.eid)

    def test_deadlock_when_no_acceptor(self):
        sysx = system(
            AdaTask("caller", (), (), (EntryCall("server", "Ping"),)),
            AdaTask("server", ("Ping",), (), ()),  # never accepts
        )
        run = run_random(AdaProgram(sysx), seed=0)
        assert run.deadlocked


class TestFifoQueues:
    def test_entry_queue_is_fifo(self):
        """Two callers; service order must equal call order in every run."""
        sysx = system(
            AdaTask("a", (), (), (EntryCall("server", "E", Lit("a")),)),
            AdaTask("b", (), (), (EntryCall("server", "E", Lit("b")),)),
            AdaTask("server", ("E",), (("seen", ()),), (
                Accept("E", (AdaAssign(
                    "seen", BinOp("+", VarRef("seen"), Lit(())),),)),
                Accept("E"),
            )),
        )
        for run in explore(AdaProgram(sysx)):
            assert run.completed
            comp = run.computation
            calls = [e.param("frm")
                     for e in comp.events_at("server.entry.E")
                     if e.event_class == "Call"]
            starts = [e.param("frm")
                      for e in comp.events_at("server.entry.E")
                      if e.event_class == "Start"]
            assert starts == calls


class TestSelect:
    def test_guarded_select(self):
        sysx = system(
            AdaTask("caller", (), (), (
                EntryCall("server", "Open"),
                EntryCall("server", "Gated"),
            )),
            AdaTask("server", ("Open", "Gated"), (("ready", 0),), (
                AdaLoop((
                    Select((
                        SelectBranch(Accept("Open", (
                            AdaAssign("ready", Lit(1)),))),
                        SelectBranch(Accept("Gated"),
                                     guard=BinOp("==", VarRef("ready"),
                                                 Lit(1))),
                    ), terminate=True),
                )),
            )),
        )
        run = run_random(AdaProgram(sysx), seed=0)
        assert run.completed
        comp = run.computation
        open_start = comp.events_of(
            EventClassRef("server.entry.Open", "Start"))[0]
        gated_start = comp.events_of(
            EventClassRef("server.entry.Gated", "Start"))[0]
        assert comp.temporally_precedes(open_start.eid, gated_start.eid)

    def test_entry_count_guard(self):
        """E'COUNT guards: serve Priority while its queue is non-empty."""
        sysx = system(
            AdaTask("p", (), (), (EntryCall("server", "Priority"),)),
            AdaTask("q", (), (), (EntryCall("server", "Normal"),)),
            AdaTask("server", ("Priority", "Normal"), (), (
                AdaLoop((
                    Select((
                        SelectBranch(Accept("Priority")),
                        SelectBranch(
                            Accept("Normal"),
                            guard=BinOp("==", EntryCount("Priority"), Lit(0)),
                        ),
                    ), terminate=True),
                )),
            )),
        )
        for run in explore(AdaProgram(sysx)):
            assert run.completed
            comp = run.computation
            p_start = comp.events_of(
                EventClassRef("server.entry.Priority", "Start"))[0]
            n_start = comp.events_of(
                EventClassRef("server.entry.Normal", "Start"))[0]
            p_call = comp.events_of(
                EventClassRef("server.entry.Priority", "Call"))[0]
            n_call = comp.events_of(
                EventClassRef("server.entry.Normal", "Call"))[0]
            # if the priority call was pending when Normal started,
            # Priority must have been served first
            if comp.temporally_precedes(p_call.eid, n_start.eid):
                assert comp.temporally_precedes(p_start.eid, n_start.eid)

    def test_terminate_ends_server(self):
        sysx = system(
            AdaTask("c", (), (), (EntryCall("server", "E"),)),
            AdaTask("server", ("E",), (), (
                AdaLoop((
                    Select((SelectBranch(Accept("E")),), terminate=True),
                )),
            )),
        )
        run = run_random(AdaProgram(sysx), seed=0)
        assert run.completed

    def test_terminate_not_taken_while_queued(self):
        """A queued call must be served, not terminated away."""
        sysx = system(
            AdaTask("c", (), (), (EntryCall("server", "E"),
                                  Note.make("Served"))),
            AdaTask("server", ("E",), (), (
                AdaLoop((
                    Select((SelectBranch(Accept("E")),), terminate=True),
                )),
            )),
        )
        for run in explore(AdaProgram(sysx)):
            assert run.completed
            assert len(run.computation.events_of_class("Served")) == 1


class TestLocalAndData:
    def test_if_and_loop_free_execution(self):
        sysx = system(
            AdaTask("t", (), (("x", 0), ("y", 0)), (
                AdaAssign("x", Lit(4)),
                AdaIf(BinOp(">", VarRef("x"), Lit(3)),
                      (AdaAssign("y", Lit(1)),),
                      (AdaAssign("y", Lit(2)),)),
            )),
        )
        run = run_random(AdaProgram(sysx), seed=0)
        assert run.completed
        values = [e.param("newval")
                  for e in run.computation.events_at("t.var.y")]
        assert values == [1]

    def test_data_elements(self):
        sysx = system(
            AdaTask("t", (), (("v", None),), (
                DataWrite("d", Lit(3)),
                DataRead("d", "v"),
                Note.make("Saw", value=VarRef("v")),
            )),
            data=(("d", 0),),
        )
        comp = run_random(AdaProgram(sysx), seed=0).computation
        assert comp.events_of_class("Saw")[0].param("value") == 3

    def test_accept_body_rejects_blocking_statements(self):
        sysx = system(
            AdaTask("c", (), (), (EntryCall("server", "E"),)),
            AdaTask("server", ("E",), (), (
                Accept("E", (EntryCall("c", "X"),)),
            )),
        )
        with pytest.raises(SpecificationError, match="local statements"):
            run_random(AdaProgram(sysx), seed=0)


class TestAdaProgramSpec:
    @pytest.mark.parametrize("factory", [
        lambda: one_slot_buffer_ada_system(items=(1, 2)),
        lambda: bounded_buffer_ada_system(capacity=2, items=(1, 2, 3)),
        lambda: rw_ada_system(1, 1),
    ])
    def test_runs_are_legal_program_computations(self, factory):
        sysx = factory()
        spec = ada_program_spec(sysx)
        for seed in range(4):
            run = run_random(AdaProgram(sysx), seed=seed)
            assert run.completed
            assert check_legality(run.computation, spec) == []
            result = spec.check(run.computation)
            assert result.ok, result.summary()
