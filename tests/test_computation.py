"""Unit tests for computations and the builder."""

import pytest

from repro.core import (
    Computation,
    ComputationBuilder,
    Event,
    EventClassRef,
    EventId,
    GroupDecl,
    GroupStructure,
    ThreadId,
)
from repro.core.errors import ComputationError, CycleError


def diamond():
    """e1 ⊳ e2, e1 ⊳ e3, e2 ⊳ e4, e3 ⊳ e4, four distinct elements."""
    b = ComputationBuilder()
    e1 = b.add_event("P", "Fork")
    e2 = b.add_event("Q", "Work")
    e3 = b.add_event("R", "Work")
    e4 = b.add_event("S", "Join")
    b.add_enable(e1, e2)
    b.add_enable(e1, e3)
    b.add_enable(e2, e4)
    b.add_enable(e3, e4)
    return b.freeze(), (e1, e2, e3, e4)


class TestBuilder:
    def test_occurrence_numbers_assigned_per_element(self):
        b = ComputationBuilder()
        a1 = b.add_event("Var", "Assign", {"newval": 1})
        a2 = b.add_event("Var", "Assign", {"newval": 2})
        g1 = b.add_event("Other", "Getval", {"oldval": 1})
        assert a1.index == 1
        assert a2.index == 2
        assert g1.index == 1

    def test_add_enable_requires_existing_events(self):
        b = ComputationBuilder()
        e1 = b.add_event("A", "X")
        with pytest.raises(ComputationError):
            b.add_enable(e1, EventId("B", 1))

    def test_add_enable_accepts_ids(self):
        b = ComputationBuilder()
        e1 = b.add_event("A", "X")
        e2 = b.add_event("B", "Y")
        b.add_enable(e1.eid, e2.eid)
        c = b.freeze()
        assert c.enables(e1.eid, e2.eid)

    def test_event_count_and_last_event(self):
        b = ComputationBuilder()
        assert b.event_count() == 0
        assert b.last_event_at("A") is None
        e1 = b.add_event("A", "X")
        e2 = b.add_event("A", "X")
        assert b.event_count() == 2
        assert b.event_count("A") == 2
        assert b.event_count("B") == 0
        assert b.last_event_at("A") == e2

    def test_scope_checked_at_add_enable(self):
        gs = GroupStructure(
            ["In", "Out"], [GroupDecl.make("G", ["In"])]
        )
        b = ComputationBuilder(gs)
        i = b.add_event("In", "X")
        o = b.add_event("Out", "Y")
        b.add_enable(i, o)  # Out is global: fine
        with pytest.raises(ComputationError, match="scope"):
            b.add_enable(o, i)  # In is hidden


class TestComputationStructure:
    def test_cycle_rejected_at_freeze(self):
        b = ComputationBuilder()
        e1 = b.add_event("A", "X")
        e2 = b.add_event("B", "Y")
        b.add_enable(e1, e2)
        b.add_enable(e2, e1)
        with pytest.raises(CycleError):
            b.freeze()

    def test_enable_plus_element_order_cycle_rejected(self):
        # element order A^1 -> A^2 plus enable A^2 -> B^1 -> A^1 is cyclic
        b = ComputationBuilder()
        a1 = b.add_event("A", "X")
        a2 = b.add_event("A", "X")
        b1 = b.add_event("B", "Y")
        b.add_enable(a2, b1)
        b.add_enable(b1, a1)
        with pytest.raises(CycleError):
            b.freeze()

    def test_self_enable_rejected(self):
        e = Event.make("A", 1, "X")
        with pytest.raises(ComputationError):
            Computation([e], [(e.eid, e.eid)])

    def test_duplicate_identity_rejected(self):
        e1 = Event.make("A", 1, "X")
        e2 = Event.make("A", 1, "Y")
        with pytest.raises(ComputationError):
            Computation([e1, e2], [])

    def test_noncontiguous_indices_rejected(self):
        e2 = Event.make("A", 2, "X")
        with pytest.raises(ComputationError, match="contiguous"):
            Computation([e2], [])

    def test_unknown_event_in_enable_rejected(self):
        e1 = Event.make("A", 1, "X")
        with pytest.raises(ComputationError):
            Computation([e1], [(e1.eid, EventId("B", 1))])


class TestRelations:
    def test_element_order(self):
        b = ComputationBuilder()
        a1 = b.add_event("Var", "Assign", {"newval": 1})
        a2 = b.add_event("Var", "Assign", {"newval": 2})
        o = b.add_event("Other", "X")
        c = b.freeze()
        assert c.element_precedes(a1.eid, a2.eid)
        assert not c.element_precedes(a2.eid, a1.eid)
        assert not c.element_precedes(a1.eid, o.eid)

    def test_element_order_feeds_temporal(self):
        b = ComputationBuilder()
        a1 = b.add_event("Var", "Assign", {"newval": 1})
        a2 = b.add_event("Var", "Assign", {"newval": 2})
        c = b.freeze()
        # causally unconnected but observably ordered (Section 2)
        assert not c.enables(a1.eid, a2.eid)
        assert c.temporally_precedes(a1.eid, a2.eid)

    def test_temporal_is_closure(self):
        c, (e1, e2, e3, e4) = diamond()
        assert c.temporally_precedes(e1.eid, e4.eid)
        assert not c.enables(e1.eid, e4.eid)

    def test_concurrency(self):
        c, (e1, e2, e3, e4) = diamond()
        assert c.concurrent(e2.eid, e3.eid)
        assert not c.concurrent(e1.eid, e2.eid)
        assert not c.concurrent(e2.eid, e2.eid)

    def test_enabled_by_and_enables_of(self):
        c, (e1, e2, e3, e4) = diamond()
        assert {e.eid for e in c.enabled_by(e4.eid)} == {e2.eid, e3.eid}
        assert {e.eid for e in c.enables_of(e1.eid)} == {e2.eid, e3.eid}


class TestAccessors:
    def test_events_at_and_of(self):
        b = ComputationBuilder()
        b.add_event("Var", "Assign", {"newval": 1})
        b.add_event("Var", "Getval", {"oldval": 1})
        b.add_event("Var", "Assign", {"newval": 2})
        c = b.freeze()
        assert len(c.events_at("Var")) == 3
        assigns = c.events_of(EventClassRef("Var", "Assign"))
        assert [e.param("newval") for e in assigns] == [1, 2]
        assert len(c.events_of_class("Assign")) == 2
        assert c.events_at("Missing") == ()

    def test_event_lookup(self):
        c, (e1, *_rest) = diamond()
        assert c.event(e1.eid) == e1
        with pytest.raises(ComputationError):
            c.event(EventId("Zed", 1))
        assert e1.eid in c
        assert EventId("Zed", 1) not in c

    def test_elements_listed(self):
        c, _ = diamond()
        assert set(c.elements()) == {"P", "Q", "R", "S"}

    def test_describe_mentions_events_and_edges(self):
        c, (e1, e2, *_rest) = diamond()
        text = c.describe()
        assert "P^1:Fork" in text
        assert "⊳" in text


class TestThreadsOnComputation:
    def test_relabel_and_query(self):
        c, (e1, e2, e3, e4) = diamond()
        t = ThreadId("pi", 1)
        c2 = c.relabel_threads({e1.eid: frozenset({t}), e2.eid: frozenset({t})})
        assert c2.thread_ids() == (t,)
        evs = c2.events_of_thread(t)
        assert [e.eid for e in evs] == [e1.eid, e2.eid]
        # original untouched
        assert c.thread_ids() == ()

    def test_events_of_thread_in_temporal_order(self):
        b = ComputationBuilder()
        x1 = b.add_event("A", "X")
        x2 = b.add_event("B", "X")
        b.add_enable(x1, x2)
        c = b.freeze()
        t = ThreadId("pi", 1)
        c2 = c.relabel_threads({x2.eid: frozenset({t}), x1.eid: frozenset({t})})
        assert [e.eid for e in c2.events_of_thread(t)] == [x1.eid, x2.eid]
