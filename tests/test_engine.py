"""Tests for ``repro.engine``: sharding, dedupe, cache, determinism.

The headline guarantee -- a parallel report is *identical* to the
serial one (verdicts, run counts, failing-run indices) -- is asserted
here over every workload in ``benchmarks/bench_engine.py``, per the
acceptance criteria, not just sampled in the bench.
"""

import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

from benchmarks.bench_engine import WORKLOADS
from repro.core import ComputationBuilder
from repro.core.errors import RunCapExceeded, VerificationError
from repro.engine import (
    CACHE_FORMAT_VERSION,
    CheckOutcome,
    DedupeIndex,
    Engine,
    EngineConfig,
    ResultCache,
    make_shards,
    spec_cache_key,
)
from repro.core.specification import Specification
from repro.sim import explore, explore_or_sample
from repro.verify import Correspondence, verify_program
from tests.test_sim import CounterProgram


# -- a trivial workload: N interleavings, one partial order ---------------

NOOP_SPEC = Specification("noop")
NOOP_CORR = Correspondence(rules=())


def verify_counter(n=2, steps=2, **kwargs):
    return verify_program(CounterProgram(n, steps), NOOP_SPEC, NOOP_CORR,
                          **kwargs)


# -- sharding -------------------------------------------------------------


class TestShards:
    @pytest.mark.parametrize("n,steps", [(2, 2), (3, 2), (2, 3)])
    def test_partition_preserves_dfs_order(self, n, steps):
        program = CounterProgram(n, steps)
        serial = [r.choices for r in explore(program)]
        shards = make_shards(program, target=8, max_steps=10_000)
        merged = []
        for shard in shards:
            merged.extend(
                r.choices for r in explore(program, prefix=shard.prefix))
        assert merged == serial  # same runs, same order, no dupes

    def test_terminal_tree_smaller_than_target(self):
        program = CounterProgram(1, 2)  # single run, no branching
        shards = make_shards(program, target=8, max_steps=10_000)
        assert len(shards) == 1
        assert shards[0].terminal
        assert "leaf" in shards[0].describe()

    def test_target_reached_or_tree_exhausted(self):
        program = CounterProgram(3, 2)
        shards = make_shards(program, target=4, max_steps=10_000)
        assert len(shards) >= 4


# -- determinism: the acceptance criterion --------------------------------


class TestParallelDeterminism:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_parallel_equals_serial(self, workload):
        program, spec, corr, pspec = WORKLOADS[workload]()
        serial = verify_program(program, spec, corr, program_spec=pspec,
                                jobs=1)
        parallel = verify_program(program, spec, corr, program_spec=pspec,
                                  jobs=4)
        assert parallel.signature() == serial.signature()
        assert parallel.summary() == serial.summary()  # byte-identical
        assert serial.ok and parallel.ok
        if "fork" in __import__("multiprocessing").get_all_start_methods():
            assert parallel.engine_stats.jobs >= 2

    def test_parallel_equals_serial_on_synthetic(self):
        serial = verify_counter(3, 2, jobs=1)
        parallel = verify_counter(3, 2, jobs=3)
        assert parallel.signature() == serial.signature()


# -- dedupe ---------------------------------------------------------------


class TestDedupe:
    def test_independent_steps_collapse_to_one_computation(self):
        # 2 procs x 2 steps: 6 interleavings, all the same partial order
        report = verify_counter(2, 2)
        assert report.runs_checked == 6
        assert report.distinct_computations == 1
        assert report.dedupe_ratio == 6.0
        assert report.engine_stats.checks_performed == 1
        assert report.engine_stats.dedupe_hits == 5

    def test_summary_reports_distinct_count(self):
        report = verify_counter(2, 2)
        assert "6 runs" in report.summary()
        assert "1 distinct computations" in report.summary()

    def test_sampling_routed_through_dedupe(self):
        # cap forces the sampling fallback; every seeded walk of the
        # independent-counter program is the same partial order, and the
        # report must say so instead of claiming N independent checks
        report = verify_counter(3, 3, max_runs=5, sample=20)
        assert not report.exhaustive
        assert report.runs_checked == 20
        assert report.distinct_computations == 1
        assert report.engine_stats.mode == "sampled"
        assert report.engine_stats.checks_performed <= 2

    def test_exploration_result_reports_distinct(self):
        result = explore_or_sample(CounterProgram(2, 2))
        assert result.distinct_computations() == 1
        assert "1 distinct" in result.describe()

    def test_dedupe_index_layering(self):
        index = DedupeIndex(seed={"warm": CheckOutcome()})
        fresh = CheckOutcome(failed_restrictions=("r",))
        assert index.outcome_for("warm", lambda: fresh) == CheckOutcome()
        assert index.cache_hits == 1
        assert index.outcome_for("cold", lambda: fresh) == fresh
        assert index.computed == 1
        assert index.outcome_for("cold", lambda: CheckOutcome()) == fresh
        assert index.dedupe_hits == 1
        assert index.fresh == {"cold": fresh}
        assert "warm" in index and "cold" in index
        assert len(index) == 2


# -- stable fingerprints --------------------------------------------------


class TestStableFingerprint:
    def build(self, order):
        b = ComputationBuilder()
        events = {}
        for name in order:
            events[name] = b.add_event(name, "X", {"v": 1})
        b.add_enable(events["A"], events["B"])
        return b.freeze()

    def test_insertion_order_independent(self):
        assert (self.build(["A", "B", "C"]).stable_fingerprint()
                == self.build(["C", "A", "B"]).stable_fingerprint())

    def test_content_sensitive(self):
        b = ComputationBuilder()
        b.add_event("A", "X", {"v": 2})
        b.add_event("B", "X", {"v": 1})
        b.add_event("C", "X", {"v": 1})
        other = b.freeze()  # no A->B edge, different param
        assert (other.stable_fingerprint()
                != self.build(["A", "B", "C"]).stable_fingerprint())


# -- persistent cache -----------------------------------------------------


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, "k1")
        cache.put("fp1", CheckOutcome(failed_restrictions=("r1",),
                                      legality_ok=False))
        cache.save()
        again = ResultCache(tmp_path, "k1")
        assert len(again) == 1
        assert again.get("fp1").failed_restrictions == ("r1",)
        assert not again.get("fp1").legality_ok

    def test_version_mismatch_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path, "k1")
        cache.put("fp1", CheckOutcome())
        cache.save()
        text = cache.path.read_text()
        cache.path.write_text(
            text.replace(f'"version":{CACHE_FORMAT_VERSION}', '"version":0'))
        assert len(ResultCache(tmp_path, "k1")) == 0

    def test_corrupt_file_starts_empty(self, tmp_path):
        path = tmp_path / "gem-cache-k1.json"
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning):
            assert len(ResultCache(tmp_path, "k1")) == 0

    def test_keys_separate_workloads(self):
        program, spec, corr, pspec = WORKLOADS["monitor-bounded-buffer"]()
        key = spec_cache_key(spec, corr, pspec)
        assert key == spec_cache_key(spec, corr, pspec)  # deterministic
        assert key != spec_cache_key(spec, corr, None)
        assert key != spec_cache_key(spec, corr, pspec, temporal_mode="exact")
        assert key != spec_cache_key(NOOP_SPEC, corr, pspec)

    def test_warm_cache_skips_every_check(self, tmp_path):
        cold = verify_counter(2, 2, cache_dir=str(tmp_path))
        warm = verify_counter(2, 2, cache_dir=str(tmp_path))
        assert cold.engine_stats.checks_performed == 1
        assert warm.engine_stats.checks_performed == 0
        assert warm.engine_stats.cache_hits == 1
        assert warm.engine_stats.cache_hit_rate == 1.0
        assert warm.signature() == cold.signature()

    def test_warm_cache_parallel(self, tmp_path):
        program, spec, corr, pspec = WORKLOADS["monitor-bounded-buffer"]()
        cold = verify_program(program, spec, corr, program_spec=pspec,
                              jobs=2, cache_dir=str(tmp_path))
        warm = verify_program(program, spec, corr, program_spec=pspec,
                              jobs=2, cache_dir=str(tmp_path))
        assert warm.engine_stats.checks_performed == 0
        assert warm.signature() == cold.signature()


# -- negative controls: dedupe/cache must not mask counterexamples --------


class TestMutantsThroughEngine:
    def mutant(self):
        from repro.langs.monitor import (
            MonitorProgram,
            one_slot_buffer_monitor_unguarded,
            one_slot_buffer_system,
        )
        from repro.problems.one_slot_buffer import (
            monitor_correspondence,
            one_slot_buffer_spec,
        )

        system = one_slot_buffer_system(
            items=(1, 2), monitor=one_slot_buffer_monitor_unguarded())
        return (MonitorProgram(system), one_slot_buffer_spec(),
                monitor_correspondence("osb"))

    def test_mutant_fails_serial_parallel_and_cached(self, tmp_path):
        program, spec, corr = self.mutant()
        serial = verify_program(program, spec, corr)
        parallel = verify_program(program, spec, corr, jobs=2)
        cold = verify_program(program, spec, corr, cache_dir=str(tmp_path))
        warm = verify_program(program, spec, corr, cache_dir=str(tmp_path))
        assert not serial.ok
        assert parallel.signature() == serial.signature()
        assert cold.signature() == serial.signature()
        assert warm.signature() == serial.signature()
        assert warm.engine_stats.checks_performed == 0
        failed = [v for v in warm.verdicts.values() if not v.holds]
        assert failed and all(v.failing_runs for v in failed)


# -- fuzz-found-style mutants: structural defects through every pipeline --


class TestFuzzFoundMutants:
    """Two mutant shapes the fuzzer's oracles are built to catch -- a
    dropped ``⊳`` edge and a reordered ``⇒ₑ`` pair -- replayed through
    the engine via :class:`~repro.fuzz.programs.RecipeProgram` so the
    serial, parallel, and cached pipelines all report the violation
    identically."""

    def _pipelines(self, program, spec, corr, tmp_path):
        serial = verify_program(program, spec, corr)
        parallel = verify_program(program, spec, corr, jobs=2)
        cold = verify_program(program, spec, corr, cache_dir=str(tmp_path))
        warm = verify_program(program, spec, corr, cache_dir=str(tmp_path))
        assert parallel.signature() == serial.signature()
        assert cold.signature() == serial.signature()
        assert warm.signature() == serial.signature()
        assert warm.engine_stats.checks_performed == 0
        return serial

    def _correspondence(self, pairs):
        from repro.fuzz.programs import _identity_params
        from repro.verify.correspondence import SignificantEvents

        return Correspondence(rules=tuple(
            SignificantEvents(
                name=f"id-{el}-{cls}", element=el, event_class=cls,
                target_element=el, target_class=cls,
                params=_identity_params)
            for el, cls in pairs))

    def test_dropped_enable_edge_fails_everywhere(self, tmp_path):
        from repro.core.element import ElementDecl
        from repro.core.event import EventClass
        from repro.core.formula import (
            Enables,
            Exists,
            ForAll,
            Henceforth,
            Implies,
            Occurred,
            Restriction,
        )
        from repro.fuzz.generators import ComputationRecipe
        from repro.fuzz.programs import RecipeProgram

        good = ComputationRecipe(
            events=(("A", "Go", (), ()), ("B", "Go", (), ())),
            edges=((0, 1),))
        mutant = good.without_edge(0)  # the fuzz-found defect

        spec = Specification(
            "edge-required",
            elements=[
                ElementDecl.make("A", [EventClass("Go", ())]),
                ElementDecl.make("B", [EventClass("Go", ())]),
            ],
            restrictions=[Restriction(
                "b-is-enabled",
                Henceforth(ForAll(
                    "b", "B.Go",
                    Implies(Occurred("b"),
                            Exists("a", "A.Go", Enables("a", "b"))))))])
        corr = self._correspondence([("A", "Go"), ("B", "Go")])

        assert self._pipelines(
            RecipeProgram(good), spec, corr, tmp_path / "good").ok
        report = self._pipelines(
            RecipeProgram(mutant), spec, corr, tmp_path / "mutant")
        assert not report.ok
        assert not report.verdicts["b-is-enabled"].holds

    def test_reordered_element_pair_fails_everywhere(self, tmp_path):
        from repro.core.element import ElementDecl
        from repro.core.event import EventClass, ParamSpec
        from repro.core.formula import (
            DataCmp,
            ElementPrecedes,
            ForAll,
            Henceforth,
            Implies,
            Param,
            Restriction,
        )
        from repro.fuzz.generators import ComputationRecipe
        from repro.fuzz.programs import RecipeProgram

        good = ComputationRecipe(
            events=(("A", "Put", (("v", 1),), ()),
                    ("A", "Put", (("v", 2),), ())))
        # the fuzz-found defect: the ⇒ₑ pair emitted in the wrong order
        mutant = ComputationRecipe(
            events=(("A", "Put", (("v", 2),), ()),
                    ("A", "Put", (("v", 1),), ())))

        spec = Specification(
            "values-ascend",
            elements=[ElementDecl.make(
                "A", [EventClass("Put", (ParamSpec("v", "INTEGER"),))])],
            restrictions=[Restriction(
                "puts-ascending",
                Henceforth(ForAll("a", "A.Put", ForAll(
                    "b", "A.Put",
                    Implies(ElementPrecedes("a", "b"),
                            DataCmp(Param("a", "v"), "<=",
                                    Param("b", "v")))))))])
        corr = self._correspondence([("A", "Put")])

        assert self._pipelines(
            RecipeProgram(good), spec, corr, tmp_path / "good").ok
        report = self._pipelines(
            RecipeProgram(mutant), spec, corr, tmp_path / "mutant")
        assert not report.ok
        assert not report.verdicts["puts-ascending"].holds


# -- scheduler regression: the silent-fallback bug ------------------------


class _ExplodingState:
    def __init__(self, err):
        self._err = err

    def enabled(self):
        raise self._err

    def step(self, action):  # pragma: no cover
        raise AssertionError

    def is_final(self):  # pragma: no cover
        return False

    def computation(self):  # pragma: no cover
        return ComputationBuilder().freeze()


class _ExplodingProgram:
    def __init__(self, err):
        self._err = err

    def initial_state(self):
        return _ExplodingState(self._err)


class TestRunCapFallback:
    def test_explore_raises_run_cap_exceeded(self):
        with pytest.raises(RunCapExceeded):
            list(explore(CounterProgram(3, 3), max_runs=5))

    def test_cap_exceeded_is_a_verification_error(self):
        assert issubclass(RunCapExceeded, VerificationError)

    def test_bad_bounds_propagate_instead_of_sampling(self):
        # regression: explore_or_sample used to swallow *any*
        # VerificationError and silently degrade to sampling
        with pytest.raises(VerificationError, match="max_steps"):
            explore_or_sample(CounterProgram(2, 2), max_steps=0)

    def test_interpreter_failures_propagate(self):
        boom = VerificationError("interpreter exploded")
        with pytest.raises(VerificationError, match="exploded"):
            explore_or_sample(_ExplodingProgram(boom))

    def test_only_cap_triggers_sampling(self):
        result = explore_or_sample(CounterProgram(3, 3), max_runs=5,
                                   sample=7)
        assert not result.exhaustive
        assert len(result.runs) == 7


# -- engine plumbing ------------------------------------------------------


class TestEnginePlumbing:
    def test_reused_exploration_matches_fresh(self):
        program = CounterProgram(2, 2)
        fresh = verify_program(program, NOOP_SPEC, NOOP_CORR)
        reused = verify_program(
            program, NOOP_SPEC, NOOP_CORR,
            exploration=explore_or_sample(program))
        assert reused.signature() == fresh.signature()
        assert reused.engine_stats.mode == "reused"

    def test_progress_hook_fires(self):
        events = []
        verify_counter(2, 2, jobs=1,
                       progress=lambda name, info: events.append(name))
        names = set(events)
        assert "phase:start" in names and "phase:end" in names
        assert "task:done" in names

    def test_run_verification_returns_stats(self):
        from repro.engine import run_verification

        report, stats = run_verification(
            CounterProgram(2, 2), NOOP_SPEC, NOOP_CORR,
            config=EngineConfig(jobs=1))
        assert report.engine_stats is stats
        assert stats.runs == 6
        assert stats.dedupe_ratio == 6.0
        assert "dedupe ratio" in stats.describe()

    def test_engine_stats_describe_smoke(self):
        engine = Engine(EngineConfig(jobs=2))
        report = engine.verify(CounterProgram(2, 2), NOOP_SPEC, NOOP_CORR)
        text = engine.last_stats.describe()
        assert "engine:" in text and "runs/s" in text
        assert report.ok


# -- shared cache (the serve daemon's cross-request store) ----------------


def _cache_writer(directory, fingerprints, barrier):
    """Child-process body: write disjoint entries, save through the lock."""
    cache = ResultCache(directory, "shared-key")
    for fp in fingerprints:
        cache.put(fp, CheckOutcome(failed_restrictions=(fp,)))
    barrier.wait()  # maximise save() overlap between the two processes
    cache.save()


class TestCacheConcurrency:
    def test_two_processes_save_without_losing_entries(self, tmp_path):
        """Concurrent update()+save() must merge, not last-writer-win:
        each save re-reads the store under a lock file and folds the
        other process's entries in before the atomic replace."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        groups = [[f"p{i}-fp{j}" for j in range(5)] for i in range(2)]
        procs = [ctx.Process(target=_cache_writer,
                             args=(tmp_path, group, barrier))
                 for group in groups]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        merged = ResultCache(tmp_path, "shared-key")
        assert len(merged) == 10
        for group in groups:
            for fp in group:
                assert merged.get(fp).failed_restrictions == (fp,)

    def test_repeated_interleaved_rounds(self, tmp_path):
        """Several update/save rounds from two live caches on the same
        path: everything either wrote survives in the final store."""
        a = ResultCache(tmp_path, "k")
        b = ResultCache(tmp_path, "k")
        for i in range(3):
            a.put(f"a{i}", CheckOutcome())
            a.save()
            b.put(f"b{i}", CheckOutcome())
            b.save()
        final = ResultCache(tmp_path, "k")
        assert {f"a{i}" for i in range(3)} <= set(final.snapshot())
        assert {f"b{i}" for i in range(3)} <= set(final.snapshot())

    def test_corrupt_file_warns(self, tmp_path):
        path = tmp_path / "gem-cache-k1.json"
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="starting empty"):
            cache = ResultCache(tmp_path, "k1")
        assert len(cache) == 0
        # ... and the empty cache is fully usable afterwards
        cache.put("fp", CheckOutcome())
        cache.save()
        assert len(ResultCache(tmp_path, "k1")) == 1

    def test_truncated_file_warns(self, tmp_path):
        cache = ResultCache(tmp_path, "k1")
        cache.put("fp", CheckOutcome())
        cache.save()
        text = cache.path.read_text()
        cache.path.write_text(text[: len(text) // 2])
        with pytest.warns(RuntimeWarning, match="starting empty"):
            assert len(ResultCache(tmp_path, "k1")) == 0

    def test_save_is_atomic_no_partial_files(self, tmp_path):
        cache = ResultCache(tmp_path, "k1")
        cache.put("fp", CheckOutcome())
        cache.save()
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != cache.path.name]
        assert leftovers == []  # no temp or lock files left behind


class TestSharedResultCache:
    def _outcome(self, tag="r"):
        return CheckOutcome(failed_restrictions=(tag,))

    def test_view_round_trip(self):
        from repro.engine import SharedResultCache

        shared = SharedResultCache()
        view = shared.view("k1")
        view.put("fp1", self._outcome())
        assert view.get("fp1").failed_restrictions == ("r",)
        assert view.snapshot() == {"fp1": view.get("fp1")}
        assert shared.view("k2").get("fp1") is None  # keys are separate

    def test_byte_budget_evicts_lru_first(self):
        from repro.engine import SharedResultCache
        from repro.engine.cache import _entry_bytes

        one = _entry_bytes("fp00", self._outcome())
        shared = SharedResultCache(max_bytes=one * 3)
        for i in range(3):
            shared.update("k", {f"fp{i:02d}": self._outcome()})
        shared.get("k", "fp00")  # touch: fp01 becomes the eviction victim
        shared.update("k", {"fp03": self._outcome()})
        assert shared.get("k", "fp01") is None
        assert shared.get("k", "fp00") is not None
        assert shared.bytes_used <= shared.max_bytes
        assert shared.metrics.get("cache.evictions") == 1.0

    def test_persistent_directory_shared_with_oneshot_path(self, tmp_path):
        from repro.engine import SharedResultCache

        shared = SharedResultCache(directory=tmp_path)
        shared.update("k1", {"fp1": self._outcome()})
        shared.save()
        # the one-shot --cache path reads the same file...
        assert ResultCache(tmp_path, "k1").get("fp1") is not None
        # ... and a fresh shared cache warm-loads it back
        again = SharedResultCache(directory=tmp_path)
        assert again.get("k1", "fp1").failed_restrictions == ("r",)

    def test_engine_accepts_shared_cache(self, tmp_path):
        from repro.engine import SharedResultCache, run_verification

        shared = SharedResultCache()
        cfg = EngineConfig(shared_cache=shared)
        cold, cold_stats = run_verification(
            CounterProgram(2, 2), NOOP_SPEC, NOOP_CORR, config=cfg)
        warm, warm_stats = run_verification(
            CounterProgram(2, 2), NOOP_SPEC, NOOP_CORR, config=cfg)
        assert warm.signature() == cold.signature()
        assert cold_stats.checks_performed == 1
        assert warm_stats.checks_performed == 0
        assert warm_stats.cache_hits == 1
        assert shared.entries == 1
