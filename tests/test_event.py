"""Unit tests for events, event classes, and identifiers."""

import pytest

from repro.core import Event, EventClass, EventId, ParamSpec, ThreadId
from repro.core.errors import SpecificationError
from repro.core.ids import indexed, qualified, split_qualified


class TestEventId:
    def test_str(self):
        assert str(EventId("Var", 3)) == "Var^3"

    def test_one_based(self):
        with pytest.raises(ValueError):
            EventId("Var", 0)

    def test_ordering(self):
        assert EventId("A", 1) < EventId("A", 2)
        assert EventId("A", 2) < EventId("B", 1)

    def test_hashable_and_equal(self):
        assert EventId("A", 1) == EventId("A", 1)
        assert len({EventId("A", 1), EventId("A", 1)}) == 1


class TestThreadId:
    def test_str(self):
        assert str(ThreadId("pi_RW", 2)) == "pi_RW-2"

    def test_ordering(self):
        assert ThreadId("a", 1) < ThreadId("a", 2)


class TestNames:
    def test_qualified(self):
        assert qualified("db", "control") == "db.control"

    def test_qualified_empty_rejected(self):
        with pytest.raises(ValueError):
            qualified()

    def test_indexed(self):
        assert indexed("data", 3) == "data[3]"

    def test_split(self):
        assert split_qualified("db.data[3]") == ("db", "data[3]")


class TestParamSpec:
    def test_integer(self):
        spec = ParamSpec("n", "INTEGER")
        assert spec.accepts(5)
        assert not spec.accepts("five")
        assert not spec.accepts(True)  # bools are not INTEGERs in GEM specs

    def test_boolean(self):
        spec = ParamSpec("b", "BOOLEAN")
        assert spec.accepts(True)
        assert not spec.accepts(1)

    def test_range(self):
        spec = ParamSpec("loc", "1..5")
        assert spec.accepts(1)
        assert spec.accepts(5)
        assert not spec.accepts(0)
        assert not spec.accepts(6)
        assert not spec.accepts("3")

    def test_unknown_type_accepts_everything(self):
        spec = ParamSpec("v", "VALUE")
        assert spec.accepts(object())

    def test_malformed_range_accepts(self):
        assert ParamSpec("v", "lo..hi").accepts(42)


class TestEventClass:
    def test_duplicate_params_rejected(self):
        with pytest.raises(SpecificationError):
            EventClass("Assign", (ParamSpec("x"), ParamSpec("x")))

    def test_validate_args_ok(self):
        ec = EventClass("Assign", (ParamSpec("newval", "INTEGER"),))
        ec.validate_args({"newval": 7})

    def test_validate_args_missing(self):
        ec = EventClass("Assign", (ParamSpec("newval", "INTEGER"),))
        with pytest.raises(SpecificationError, match="missing"):
            ec.validate_args({})

    def test_validate_args_extra(self):
        ec = EventClass("Go", ())
        with pytest.raises(SpecificationError, match="unexpected"):
            ec.validate_args({"x": 1})

    def test_validate_args_bad_type(self):
        ec = EventClass("Assign", (ParamSpec("newval", "INTEGER"),))
        with pytest.raises(SpecificationError, match="rejects"):
            ec.validate_args({"newval": "seven"})

    def test_param_names(self):
        ec = EventClass("Write", (ParamSpec("loc"), ParamSpec("info")))
        assert ec.param_names() == ("loc", "info")


class TestEvent:
    def test_make_and_access(self):
        ev = Event.make("Var", 1, "Assign", {"newval": 5})
        assert ev.element == "Var"
        assert ev.index == 1
        assert ev.param("newval") == 5
        assert ev.param_dict() == {"newval": 5}

    def test_missing_param_raises(self):
        ev = Event.make("Var", 1, "Assign", {"newval": 5})
        with pytest.raises(KeyError):
            ev.param("oldval")

    def test_params_frozen_sorted(self):
        a = Event.make("E", 1, "C", {"b": 2, "a": 1})
        b = Event.make("E", 1, "C", {"a": 1, "b": 2})
        assert a == b

    def test_threads(self):
        t = ThreadId("pi", 1)
        ev = Event.make("E", 1, "C", threads=frozenset({t}))
        assert ev.has_thread(t)
        t2 = ThreadId("pi", 2)
        ev2 = ev.with_threads(frozenset({t2}))
        assert ev2.has_thread(t) and ev2.has_thread(t2)
        assert ev2.eid == ev.eid

    def test_describe(self):
        ev = Event.make("Var", 2, "Assign", {"newval": 5})
        assert "Var^2" in ev.describe()
        assert "newval=5" in ev.describe()

    def test_str(self):
        assert str(Event.make("Var", 2, "Assign", {"newval": 5})) == "Var^2:Assign"
