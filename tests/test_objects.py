"""The differential test battery for the distributed-object workloads.

Two independent deciders -- the production memoised witness search and
the brute-force permutation oracle -- are swept against each other over
seeded random histories, the three planted non-linearizable mutants
must be rejected by both, and Hypothesis checks the structural laws
(linearizable implies SC; verdicts invariant under process relabelling
and enumeration-order permutation).  The cross-mode matrix asserts the
workloads produce byte-identical signatures across every engine flag
combination and through the serve daemon.
"""

import itertools
import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzz.oracles import ObjectsArtifact, check_objects_agree, \
    make_oracles
from repro.problems.objects import (
    MUTANTS,
    OBJ,
    object_case,
    object_program,
    planted_mutant_history,
    standard_scripts,
)
from repro.serve.client import ServeClient
from repro.serve.daemon import start_in_thread
from repro.serve.protocol import signature_json
from repro.verify import verify_program
from repro.verify.consistency import (
    OBJECT_TYPES,
    brute_force_linearizable,
    brute_force_sequentially_consistent,
    check_history_agreement,
    linearizable,
    permute_ops,
    random_object_history,
    relabel_processes,
    sequentially_consistent,
)

COMMON = settings(max_examples=25, deadline=None, derandomize=True)

PLANTED = tuple(MUTANTS.values())


def seeded_history(seed, object_type, corrupt):
    """The sweep's history shape: 2-3 procs, every history <= 9 ops."""
    rng = random.Random(seed)
    n_procs, ops_per_proc = rng.choice(((2, 2), (2, 3), (2, 3), (3, 2)))
    return random_object_history(
        rng, object_type, n_procs=n_procs, ops_per_proc=ops_per_proc,
        corrupt=corrupt)


# -- the differential sweep: search verdict == brute-force verdict ----------


class TestDifferentialSweep:
    @pytest.mark.parametrize("object_type", OBJECT_TYPES)
    def test_quick_sweep(self, object_type):
        """25 seeds per object type, half corrupted, in-tier-1 always."""
        for seed in range(25):
            history = seeded_history(seed, object_type, corrupt=seed % 2 == 0)
            problem = check_history_agreement(history)
            assert problem is None, f"seed {seed}: {problem}"

    @pytest.mark.slow
    @pytest.mark.parametrize("object_type", OBJECT_TYPES)
    def test_200_seed_sweep(self, object_type):
        """The acceptance sweep: 200 seeds x 4 types, both verdicts."""
        for seed in range(200):
            history = seeded_history(seed, object_type, corrupt=seed % 2 == 0)
            problem = check_history_agreement(history)
            assert problem is None, f"seed {seed}: {problem}"

    def test_corrupted_histories_are_actually_exercised(self):
        """The sweep must see non-linearizable histories, or it proves
        nothing; at least one corrupted seed per mutable type fails."""
        for object_type in ("register", "queue"):
            assert any(
                not linearizable(seeded_history(s, object_type, corrupt=True))
                for s in range(25))


# -- the planted mutants ----------------------------------------------------


class TestPlantedMutants:
    @pytest.mark.parametrize("kind", PLANTED)
    def test_both_deciders_reject(self, kind):
        history = planted_mutant_history(kind)
        assert not linearizable(history), kind
        assert not brute_force_linearizable(history), kind

    def test_textbook_separation(self):
        """Stale read and double acquire are SC but not linearizable;
        a dropped dequeue violates both."""
        for kind, sc in (("stale-read", True),
                         ("dropped-dequeue", False),
                         ("double-acquire", True)):
            history = planted_mutant_history(kind)
            assert sequentially_consistent(history) == sc, kind
            assert brute_force_sequentially_consistent(history) == sc, kind

    @pytest.mark.parametrize("object_type,mutant_name",
                             sorted(MUTANTS.items()))
    def test_verify_program_rejects_mutants(self, object_type, mutant_name):
        """End to end: the mutant workload fails its linearizability
        restriction through the full engine pipeline."""
        program, spec, corr, _ = object_case(object_type, mutant=True)
        report = verify_program(program, spec, corr)
        assert not report.ok, mutant_name
        assert f"linearizable-{object_type}" in report.failed_restrictions()

    @pytest.mark.parametrize("object_type", OBJECT_TYPES)
    def test_verify_program_accepts_correct_workloads(self, object_type):
        program, spec, corr, _ = object_case(object_type)
        report = verify_program(program, spec, corr)
        assert report.ok, report.failed_restrictions()
        assert report.exhaustive


# -- the fuzz oracle has teeth ----------------------------------------------


class TestOracle:
    def test_registered(self):
        oracle = make_oracles()["objects-differential"]
        assert oracle.check is check_objects_agree

    @pytest.mark.parametrize("kind", PLANTED)
    def test_planted_artifacts_pass_with_honest_checkers(self, kind):
        assert check_objects_agree(
            ObjectsArtifact(object_type="register", seed=0,
                            planted=kind)) is None

    @pytest.mark.parametrize("kind", PLANTED)
    def test_lying_linearizability_checker_is_killed(self, kind):
        """A checker that calls the planted mutants linearizable must be
        caught -- the law is not vacuous."""
        artifact = ObjectsArtifact(object_type="register", seed=0,
                                   planted=kind)
        assert check_objects_agree(
            artifact, linearizable_impl=lambda h: True) is not None

    def test_lying_sc_checker_is_killed(self):
        """On a random non-SC corrupted history, an always-True SC
        checker disagrees with the brute-force oracle."""
        seed = next(
            s for s in range(50)
            if not sequentially_consistent(
                seeded_history(s, "queue", corrupt=True)))
        artifact = ObjectsArtifact(object_type="queue", seed=seed,
                                   corrupt=True)
        assert check_objects_agree(
            artifact, sc_impl=lambda h: True) is not None

    def test_artifact_round_trips_through_repr(self):
        artifact = ObjectsArtifact(object_type="lock", seed=7, corrupt=True)
        assert eval(repr(artifact)) == artifact


# -- hypothesis: structural laws of the verdicts ----------------------------


@st.composite
def histories(draw):
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    object_type = draw(st.sampled_from(OBJECT_TYPES))
    corrupt = draw(st.booleans())
    return seeded_history(seed, object_type, corrupt)


class TestHypothesisLaws:
    @COMMON
    @given(histories())
    def test_linearizable_implies_sc(self, history):
        if linearizable(history):
            assert sequentially_consistent(history)

    @COMMON
    @given(histories(), st.randoms(use_true_random=False))
    def test_verdicts_invariant_under_relabelling(self, history, rng):
        procs = sorted({op.process for op in history.ops})
        renamed = rng.sample([f"q{i}" for i in range(len(procs))],
                             len(procs))
        relabelled = relabel_processes(history, dict(zip(procs, renamed)))
        assert linearizable(relabelled) == linearizable(history)
        assert (sequentially_consistent(relabelled)
                == sequentially_consistent(history))

    @COMMON
    @given(histories(), st.randoms(use_true_random=False))
    def test_verdicts_invariant_under_enumeration_order(self, history, rng):
        """Any interleaving re-enumeration (per-process order kept --
        index order is program order) leaves the verdicts unchanged."""
        remaining = {}
        for idx, op in enumerate(history.ops):
            remaining.setdefault(op.process, []).append(idx)
        perm = []
        while remaining:
            p = rng.choice(sorted(remaining))
            perm.append(remaining[p].pop(0))
            if not remaining[p]:
                del remaining[p]
        permuted = permute_ops(history, perm)
        assert linearizable(permuted) == linearizable(history)
        assert (sequentially_consistent(permuted)
                == sequentially_consistent(history))

    @COMMON
    @given(histories())
    def test_program_order_violating_permutations_are_rejected(self, history):
        procs = [op.process for op in history.ops]
        two = next((p for p in set(procs) if procs.count(p) >= 2), None)
        if two is None:
            return
        i, j = [k for k, p in enumerate(procs) if p == two][:2]
        perm = list(range(len(history.ops)))
        perm[i], perm[j] = j, i
        with pytest.raises(ValueError):
            permute_ops(history, perm)


# -- cross-mode matrix: byte-identical signatures ---------------------------


MATRIX_CASES = ("register", "lock")


class TestCrossModeMatrix:
    @pytest.mark.slow
    @pytest.mark.parametrize("object_type", MATRIX_CASES)
    def test_flag_matrix_signatures_identical(self, object_type):
        """--por/--no-por x --dfa/--no-dfa x --slice/--no-slice x
        --jobs 1/4: one signature."""
        program, spec, corr, _ = object_case(object_type)
        signatures = set()
        for por, dfa, slc, jobs in itertools.product(
                (True, False), (True, False), (True, False), (1, 4)):
            report = verify_program(program, spec, corr, por=por,
                                    dfa=dfa, slice=slc, jobs=jobs)
            signatures.add(json.dumps(signature_json(report.signature())))
        assert len(signatures) == 1

    @pytest.mark.parametrize("object_type", MATRIX_CASES)
    def test_flag_corners_signatures_identical(self, object_type):
        """Tier-1 subset of the matrix: the two all-on/all-off corners."""
        program, spec, corr, _ = object_case(object_type)
        on = verify_program(program, spec, corr)
        off = verify_program(program, spec, corr, por=False, dfa=False,
                             slice=False)
        assert on.signature() == off.signature()

    @pytest.mark.slow
    def test_daemon_signature_matches_oneshot(self):
        """The serve daemon returns the same signature the in-process
        pipeline computes, for every objects case."""
        handle = start_in_thread(jobs=2, job_workers=2)
        try:
            client = ServeClient(port=handle.port)
            assert client.ping()
            for object_type in OBJECT_TYPES:
                snap = client.verify({"case": f"objects-{object_type}"})
                assert snap["state"] == "done", snap
                program, spec, corr, _ = object_case(object_type)
                report = verify_program(program, spec, corr)
                assert (snap["result"]["signature"]
                        == signature_json(report.signature())), object_type
        finally:
            handle.stop()


# -- workload plumbing ------------------------------------------------------


class TestWorkloadShape:
    @pytest.mark.parametrize("object_type", OBJECT_TYPES)
    def test_standard_scripts_are_two_processes(self, object_type):
        scripts = standard_scripts(object_type)
        assert [p for p, _ in scripts] == ["p1", "p2"]

    def test_mutant_catalog_is_closed(self):
        assert set(MUTANTS) == {"register", "queue", "lock"}
        with pytest.raises(ValueError):
            object_program("counter", mutant=True)
        with pytest.raises(ValueError):
            planted_mutant_history("no-such-mutant")

    @pytest.mark.parametrize("object_type", OBJECT_TYPES)
    def test_programs_emit_at_the_shared_element(self, object_type):
        state = object_program(object_type).initial_state()
        while not state.is_final():
            state.step(sorted(state.enabled(),
                              key=lambda a: a.key)[0])
        events = list(state.computation().events_at(OBJ))
        assert events, "no events at the shared object element"
        assert {ev.event_class for ev in events} == {"Inv", "Res"}
