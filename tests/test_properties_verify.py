"""Property-based tests for projection and thread labelling.

Invariants on randomised computations:

* projection never invents temporal order: if a ⊳' b in the projection,
  then the originals satisfy a ⇒ b in the program computation;
* projected element order embeds the original temporal order;
* projection is idempotent on identity correspondences;
* thread labelling produces enable-connected chains: consecutive events
  of one thread instance are linked by enable paths;
* thread serials are dense (1..n) and labelling is deterministic.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import ComputationBuilder, Path, ThreadType
from repro.verify import Correspondence, SignificantEvents, project


@st.composite
def chain_computations(draw, max_chains=3, max_len=4):
    """Random per-process chains with random cross enables, events
    alternating between 'Sig' (significant) and 'Hid' (hidden) classes."""
    n_chains = draw(st.integers(min_value=1, max_value=max_chains))
    b = ComputationBuilder()
    rows = []
    for c in range(n_chains):
        length = draw(st.integers(min_value=1, max_value=max_len))
        row = []
        prev = None
        for i in range(length):
            cls = draw(st.sampled_from(["Sig", "Hid"]))
            ev = b.add_event(f"P{c}", cls, {"by": f"P{c}"})
            if prev is not None:
                b.add_enable(prev, ev)
            prev = ev
            row.append(ev)
        rows.append(row)
    # random forward cross edges between chains
    for c1 in range(n_chains):
        for c2 in range(n_chains):
            if c1 == c2:
                continue
            if draw(st.booleans()) and rows[c1] and rows[c2]:
                i = draw(st.integers(min_value=0, max_value=len(rows[c1]) - 1))
                j = draw(st.integers(min_value=0, max_value=len(rows[c2]) - 1))
                try:
                    b.add_enable(rows[c1][i], rows[c2][j])
                except Exception:
                    pass  # would create a cycle; skip
    try:
        return b.freeze()
    except Exception:
        # cycle slipped through; return a trivial computation
        b2 = ComputationBuilder()
        b2.add_event("P0", "Sig", {"by": "P0"})
        return b2.freeze()


SIG_RULES = Correspondence((
    SignificantEvents("sig", "*", "Sig", lambda ev: f"out.{ev.element}",
                      "Ev", params=lambda ev: {}),
),)


class TestProjectionProperties:
    @given(chain_computations())
    @settings(max_examples=60, deadline=None)
    def test_projected_edges_respect_original_temporal_order(self, comp):
        proj = project(comp, SIG_RULES)
        # reconstruct the mapping: k-th Sig event at P maps to out.P^k
        originals = {}
        counters = {}
        topo = comp.temporal_relation.topological_order()
        by_id = {e.eid: e for e in comp.events}
        for eid in topo:
            ev = by_id[eid]
            if ev.event_class == "Sig":
                el = f"out.{ev.element}"
                counters[el] = counters.get(el, 0) + 1
                originals[(el, counters[el])] = ev
        for a, bb in proj.enable_relation.pairs():
            orig_a = originals[(a.element, a.index)]
            orig_b = originals[(bb.element, bb.index)]
            assert comp.temporally_precedes(orig_a.eid, orig_b.eid)

    @given(chain_computations())
    @settings(max_examples=60, deadline=None)
    def test_projected_element_order_embeds_temporal_order(self, comp):
        proj = project(comp, SIG_RULES)
        for el in proj.elements():
            seq = proj.events_at(el)
            assert [e.index for e in seq] == list(range(1, len(seq) + 1))

    @given(chain_computations())
    @settings(max_examples=40, deadline=None)
    def test_projection_count_matches_selected(self, comp):
        proj = project(comp, SIG_RULES)
        expected = sum(1 for e in comp.events if e.event_class == "Sig")
        assert len(proj) == expected

    @given(chain_computations())
    @settings(max_examples=40, deadline=None)
    def test_projection_deterministic(self, comp):
        a = project(comp, SIG_RULES)
        b = project(comp, SIG_RULES)
        assert a.fingerprint() == b.fingerprint()


@st.composite
def labelled_chains(draw, max_txns=3):
    """n transactions of Start -> Mid -> End chains across 3 elements."""
    n = draw(st.integers(min_value=0, max_value=max_txns))
    b = ComputationBuilder()
    for _t in range(n):
        s = b.add_event("A", "Start")
        m = b.add_event("B", "Mid")
        e = b.add_event("C", "End")
        b.add_enable(s, m)
        b.add_enable(m, e)
    return b.freeze(), n


PI = ThreadType("pi", [Path.parse("A.Start :: B.Mid :: C.End")])


class TestThreadProperties:
    @given(labelled_chains())
    @settings(max_examples=40, deadline=None)
    def test_serials_dense(self, data):
        comp, n = data
        labelled = PI.label(comp)
        serials = sorted(t.serial for t in labelled.thread_ids())
        assert serials == list(range(1, n + 1))

    @given(labelled_chains())
    @settings(max_examples=40, deadline=None)
    def test_thread_chains_enable_connected(self, data):
        comp, n = data
        labelled = PI.label(comp)
        for tid in labelled.thread_ids():
            events = labelled.events_of_thread(tid)
            assert len(events) == 3
            for x, y in zip(events, events[1:]):
                assert labelled.enables(x.eid, y.eid)

    @given(labelled_chains())
    @settings(max_examples=40, deadline=None)
    def test_labelling_deterministic(self, data):
        comp, _n = data
        a = PI.label(comp)
        b = PI.label(comp)
        assert a.fingerprint() == b.fingerprint()

    @given(labelled_chains())
    @settings(max_examples=40, deadline=None)
    def test_each_event_in_at_most_one_instance(self, data):
        comp, _n = data
        labelled = PI.label(comp)
        for ev in labelled.events:
            pi_labels = [t for t in ev.threads if t.thread_type == "pi"]
            assert len(pi_labels) <= 1
