"""Unit tests for the Monitor language: AST, interpreter, GEM spec."""

import pytest

from repro.core import EventClassRef, check_legality
from repro.core.errors import SpecificationError
from repro.langs.monitor import (
    Assign,
    BinOp,
    CallOp,
    Caller,
    DataReadOp,
    DataWriteOp,
    Entry,
    If,
    Lit,
    MonitorDecl,
    MonitorProgram,
    MonitorSystem,
    NoteOp,
    ParamRef,
    QueueNonEmpty,
    Signal,
    Skip,
    UnOp,
    VarRef,
    Wait,
    While,
    bounded_buffer_monitor,
    bounded_buffer_system,
    monitor_program_spec,
    one_slot_buffer_monitor,
    one_slot_buffer_system,
    readers_writers_monitor,
    readers_writers_system,
)
from repro.langs.monitor.ast import ExprEnv, expr
from repro.sim import explore, run_random


class TestExpressions:
    def env(self, **variables):
        return ExprEnv(variables=variables)

    def test_literals_and_vars(self):
        assert Lit(5).eval(self.env()) == 5
        assert VarRef("x").eval(self.env(x=7)) == 7

    def test_unknown_var_raises(self):
        with pytest.raises(SpecificationError):
            VarRef("nope").eval(self.env())

    def test_param_ref(self):
        env = ExprEnv(variables={}, params={"item": 3})
        assert ParamRef("item").eval(env) == 3
        with pytest.raises(SpecificationError):
            ParamRef("zzz").eval(env)

    def test_binops(self):
        e = self.env(a=7, b=3)
        cases = {
            "+": 10, "-": 4, "*": 21, "%": 1,
            "==": False, "!=": True, "<": False, "<=": False,
            ">": True, ">=": True,
        }
        for op, want in cases.items():
            assert BinOp(op, VarRef("a"), VarRef("b")).eval(e) == want

    def test_bool_ops(self):
        e = self.env(t=True, f=False)
        assert BinOp("and", VarRef("t"), VarRef("f")).eval(e) is False
        assert BinOp("or", VarRef("t"), VarRef("f")).eval(e) is True
        assert UnOp("not", VarRef("f")).eval(e) is True
        assert UnOp("-", Lit(5)).eval(e) == -5

    def test_unknown_binop_rejected(self):
        with pytest.raises(SpecificationError):
            BinOp("**", Lit(1), Lit(2))

    def test_reads(self):
        e = BinOp("+", VarRef("a"), BinOp("*", VarRef("b"), Lit(2)))
        assert set(e.reads()) == {"a", "b"}

    def test_indexed_var(self):
        env = ExprEnv(variables={"buf[0]": 9, "i": 0})
        assert VarRef("buf", VarRef("i")).eval(env) == 9
        assert VarRef("buf", VarRef("i")).describe() == "buf[i]"

    def test_queue_nonempty(self):
        env = ExprEnv(variables={}, queue_nonempty=lambda c: c == "q1")
        assert QueueNonEmpty("q1").eval(env)
        assert not QueueNonEmpty("q2").eval(env)

    def test_expr_coercion(self):
        assert isinstance(expr("x"), VarRef)
        assert isinstance(expr(5), Lit)
        lit = Lit(1)
        assert expr(lit) is lit


class TestDeclarations:
    def test_duplicate_entries_rejected(self):
        with pytest.raises(SpecificationError):
            MonitorDecl("m", entries=(Entry("E"), Entry("E")))

    def test_duplicate_variables_rejected(self):
        with pytest.raises(SpecificationError):
            MonitorDecl("m", variables=(("x", 0), ("x", 1)))

    def test_entry_lookup(self):
        m = readers_writers_monitor()
        assert m.entry("StartRead").name == "StartRead"
        with pytest.raises(SpecificationError):
            m.entry("Nope")

    def test_duplicate_callers_rejected(self):
        with pytest.raises(SpecificationError):
            MonitorSystem(readers_writers_monitor(),
                          (Caller("a"), Caller("a")))


def tiny_system(entries, script, variables=(("x", 0),), conditions=("c",),
                init=()):
    mon = MonitorDecl("m", variables=tuple(variables),
                      conditions=tuple(conditions), entries=tuple(entries),
                      init=tuple(init))
    return MonitorSystem(mon, (Caller("p", tuple(script)),))


class TestInterpreterBasics:
    def test_simple_entry_runs(self):
        sysx = tiny_system(
            [Entry("Set", ("v",), (Assign("x", ParamRef("v"), label="set"),))],
            [CallOp.make("Set", v=42)],
        )
        run = run_random(MonitorProgram(sysx), seed=0)
        assert run.completed
        comp = run.computation
        assigns = comp.events_of_class("Assign")
        assert len(assigns) == 1
        assert assigns[0].param("newval") == 42
        assert assigns[0].param("site") == "Set:set"

    def test_event_order_in_run(self):
        sysx = tiny_system(
            [Entry("E", (), (Skip(),))],
            [CallOp.make("E")],
        )
        run = run_random(MonitorProgram(sysx), seed=0)
        comp = run.computation
        call = comp.events_of_class("Call")[0]
        req = comp.events_of_class("Req")[0]
        acq = comp.events_of_class("Acq")[0]
        begin = comp.events_of_class("Begin")[0]
        end = comp.events_of_class("End")[0]
        ret = comp.events_of_class("Return")[0]
        seq = [call, req, acq, begin, end, ret]
        for a, b in zip(seq, seq[1:]):
            assert comp.temporally_precedes(a.eid, b.eid)

    def test_if_else(self):
        sysx = tiny_system(
            [Entry("E", (), (
                If(BinOp("==", VarRef("x"), Lit(0)),
                   (Assign("x", Lit(1), label="then"),),
                   (Assign("x", Lit(2), label="else"),)),
            ))],
            [CallOp.make("E"), CallOp.make("E")],
        )
        run = run_random(MonitorProgram(sysx), seed=0)
        values = [e.param("newval") for e in run.computation.events_of_class("Assign")]
        assert values == [1, 2]

    def test_while_loop(self):
        sysx = tiny_system(
            [Entry("E", (), (
                While(BinOp("<", VarRef("x"), Lit(3)),
                      (Assign("x", BinOp("+", VarRef("x"), Lit(1))),)),
            ))],
            [CallOp.make("E")],
        )
        run = run_random(MonitorProgram(sysx), seed=0)
        values = [e.param("newval") for e in run.computation.events_of_class("Assign")]
        assert values == [1, 2, 3]

    def test_init_runs_before_entries(self):
        sysx = tiny_system(
            [Entry("E", (), ())],
            [CallOp.make("E")],
            init=[Assign("x", Lit(9))],
        )
        run = run_random(MonitorProgram(sysx), seed=0)
        comp = run.computation
        init_ev = comp.events_of_class("Init")[0]
        acq = comp.events_of_class("Acq")[0]
        assert comp.temporally_precedes(init_ev.eid, acq.eid)

    def test_signal_on_empty_queue_is_noop(self):
        sysx = tiny_system(
            [Entry("E", (), (Signal("c"),))],
            [CallOp.make("E")],
        )
        run = run_random(MonitorProgram(sysx), seed=0)
        comp = run.computation
        assert len(comp.events_of_class("Signal")) == 1
        assert len(comp.events_of_class("Release")) == 0
        assert run.completed

    def test_wait_without_signal_deadlocks(self):
        sysx = tiny_system(
            [Entry("E", (), (Wait("c"),))],
            [CallOp.make("E")],
        )
        run = run_random(MonitorProgram(sysx), seed=0)
        assert run.deadlocked

    def test_data_ops(self):
        mon = MonitorDecl("m", entries=(Entry("E", (), ()),))
        sysx = MonitorSystem(mon, (
            Caller("p", (
                DataWriteOp("d", 5),
                DataReadOp("d"),
                NoteOp.make("Saw", value=lambda loc: loc.get("last_read")),
            )),
        ), data_elements=(("d", 0),))
        run = run_random(MonitorProgram(sysx), seed=0)
        comp = run.computation
        saw = comp.events_of_class("Saw")[0]
        assert saw.param("value") == 5

    def test_unknown_data_element_raises(self):
        mon = MonitorDecl("m", entries=())
        sysx = MonitorSystem(mon, (Caller("p", (DataReadOp("missing"),)),))
        with pytest.raises(SpecificationError):
            run_random(MonitorProgram(sysx), seed=0)

    def test_bad_call_args_raise(self):
        sysx = tiny_system(
            [Entry("E", ("v",), ())],
            [CallOp.make("E")],  # missing v
        )
        with pytest.raises(SpecificationError):
            run_random(MonitorProgram(sysx), seed=0)

    def test_copy_out(self):
        sysx = tiny_system(
            [Entry("E", (), (Assign("x", Lit(7)),))],
            [CallOp.make("E", copy_out=[("x", "got")]),
             NoteOp.make("Got", value=lambda loc: loc.get("got"))],
        )
        run = run_random(MonitorProgram(sysx), seed=0)
        assert run.computation.events_of_class("Got")[0].param("value") == 7

    def test_bad_entry_grant_policy(self):
        sysx = tiny_system([Entry("E", (), ())], [CallOp.make("E")])
        with pytest.raises(SpecificationError):
            MonitorProgram(sysx, entry_grant="sideways").initial_state()


class TestHoareSemantics:
    def test_signal_hands_off_directly(self):
        """A signalled waiter runs before any new entrant (Hoare)."""
        mon = MonitorDecl(
            "m",
            variables=(("x", 0),),
            conditions=("c",),
            entries=(
                Entry("WaitForIt", (), (
                    If(BinOp("==", VarRef("x"), Lit(0)), (Wait("c"),)),
                    Assign("x", Lit(2), label="after"),
                )),
                Entry("Poke", (), (
                    Assign("x", Lit(1), label="poke"),
                    Signal("c"),
                    Assign("x", BinOp("+", VarRef("x"), Lit(10)),
                           label="post"),
                )),
            ),
        )
        sysx = MonitorSystem(mon, (
            Caller("w", (CallOp.make("WaitForIt"),)),
            Caller("s", (CallOp.make("Poke"),)),
        ))
        # In every completed run where the waiter waited, the released
        # waiter's assignment (x:=2) lands between poke (x:=1) and the
        # signaller's post-assignment (x:=12 = 2+10).
        for run in explore(MonitorProgram(sysx)):
            assert run.completed
            assigns = [
                (e.param("site"), e.param("newval"))
                for e in run.computation.events_of_class("Assign")
                if e.param("site") != "init"
            ]
            if any(site == "Poke:post" for site, _v in assigns):
                waited = len(run.computation.events_of_class("Wait")) > 0
                if waited:
                    order = [s for s, _v in assigns]
                    assert order.index("WaitForIt:after") < order.index("Poke:post")
                    post_val = dict(assigns)["Poke:post"]
                    assert post_val == 12  # saw the waiter's x:=2

    def test_urgent_resumes_before_new_entrants(self):
        """After hand-off, the signaller resumes before queued entries."""
        mon = MonitorDecl(
            "m",
            variables=(("log", ()),),
            conditions=("c",),
            entries=(
                Entry("W", (), (Wait("c"), Skip())),
                Entry("S", (), (Signal("c"),
                                Assign("log", Lit("signaller-done"),
                                       label="done"))),
                Entry("Late", (), (Assign("log", Lit("late"),
                                          label="late"),)),
            ),
        )
        sysx = MonitorSystem(mon, (
            Caller("w", (CallOp.make("W"),)),
            Caller("s", (CallOp.make("S"),)),
            Caller("l", (CallOp.make("Late"),)),
        ))
        for run in explore(MonitorProgram(sysx)):
            if not run.completed:
                continue
            comp = run.computation
            releases = comp.events_of_class("Release")
            if not releases:
                continue  # W never waited (ran after S's no-op signal)
            (release,) = releases
            (done,) = [e for e in comp.events_of_class("Assign")
                       if e.param("site") == "S:done"]
            # no new entrant may run between the hand-off and the
            # signaller's resumed completion
            for begin in comp.events_of(EventClassRef("m.entry.Late", "Begin")):
                assert not (
                    comp.temporally_precedes(release.eid, begin.eid)
                    and comp.temporally_precedes(begin.eid, done.eid)
                )


class TestProgramSpecLegality:
    @pytest.mark.parametrize("system_factory", [
        lambda: readers_writers_system(1, 1),
        lambda: one_slot_buffer_system(items=(1, 2)),
        lambda: bounded_buffer_system(capacity=2, items=(1, 2)),
    ])
    def test_runs_are_legal_program_computations(self, system_factory):
        sysx = system_factory()
        spec = monitor_program_spec(sysx)
        for seed in range(5):
            run = run_random(MonitorProgram(sysx), seed=seed)
            assert check_legality(run.computation, spec) == []
            result = spec.check(run.computation)
            assert result.ok, result.summary()

    def test_getvals_emitted_when_enabled(self):
        sysx = readers_writers_system(1, 1)
        run = run_random(MonitorProgram(sysx, emit_getvals=True), seed=1)
        getvals = [e for e in run.computation.events_of_class("Getval")
                   if e.element.startswith("rw.var.")]
        assert getvals  # the IF tests read readernum


class TestFifoGrantPolicy:
    def test_fifo_grants_in_request_order(self):
        """With entry_grant='fifo', lock grants follow Req order."""
        from repro.sim import explore

        sysx = readers_writers_system(n_readers=2, n_writers=0)
        for run in explore(MonitorProgram(sysx, entry_grant="fifo")):
            assert run.completed
            comp = run.computation
            reqs = [e.param("by") for e in comp.events_at("rw.lock")
                    if e.event_class == "Req"]
            first_acqs = []
            seen = set()
            for e in comp.events_at("rw.lock"):
                if e.event_class == "Acq":
                    by = e.param("by")
                    # track only each caller's *first* acquisition per
                    # request round; readers call twice (StartRead and
                    # EndRead), so compare round by round
                    first_acqs.append(by)
            # the i-th distinct new grant must match the i-th request
            # in a single-entry-round prefix: check the first two
            assert first_acqs[0] == reqs[0]

    def test_any_policy_explores_both_grant_orders(self):
        from repro.sim import explore

        sysx = readers_writers_system(n_readers=2, n_writers=0)
        first_grants = set()
        for run in explore(MonitorProgram(sysx, entry_grant="any")):
            comp = run.computation
            acqs = [e.param("by") for e in comp.events_at("rw.lock")
                    if e.event_class == "Acq"]
            first_grants.add(acqs[0])
        assert first_grants == {"reader1", "reader2"}
