"""Run the doctests embedded in module documentation."""

import doctest

import pytest

import repro.core.element
import repro.core.ids

MODULES = [repro.core.ids, repro.core.element]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
