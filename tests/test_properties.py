"""Property-based tests (hypothesis) on the core data structures.

Invariants exercised on randomised inputs:

* partial-order algebra: closure idempotence, reduction round-trips,
  antichain/down-set duality, linear-extension validity;
* computations: temporal order equals the closure of enable ∪ element
  order; concurrency is symmetric and irreflexive;
* histories: down-closure, lattice membership, vhs monotonicity and
  tail closure; linear vhs counts match linear extension counts;
* the scheduler: seeded runs are reproducible; exploration is
  deterministic.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    Computation,
    ComputationBuilder,
    HistorySequence,
    Relation,
    all_histories,
    count_maximal_history_sequences,
    empty_history,
    full_history,
    maximal_history_sequences,
)


# -- strategies ---------------------------------------------------------------


@st.composite
def random_dags(draw, max_nodes=7):
    """A random DAG as (nodes, edges) with edges i->j only for i<j."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = [f"n{i}" for i in range(n)]
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                edges.append((nodes[i], nodes[j]))
    return nodes, edges


@st.composite
def random_computations(draw, max_events=7, max_elements=3):
    """A random legal computation: events spread over elements, forward
    enable edges only (acyclic by construction)."""
    n = draw(st.integers(min_value=1, max_value=max_events))
    n_elements = draw(st.integers(min_value=1, max_value=max_elements))
    b = ComputationBuilder()
    events = []
    for i in range(n):
        el = f"E{draw(st.integers(min_value=0, max_value=n_elements - 1))}"
        events.append(b.add_event(el, f"C{i % 2}"))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()) and draw(st.booleans()):
                b.add_enable(events[i], events[j])
    return b.freeze()


# -- partial orders ---------------------------------------------------------------


class TestOrderProperties:
    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_closure_idempotent(self, dag):
        nodes, edges = dag
        r = Relation.from_pairs(nodes, edges)
        tc = r.transitive_closure()
        tc2 = tc.transitive_closure()
        assert set(tc.pairs()) == set(tc2.pairs())

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_closure_is_strict_partial_order(self, dag):
        nodes, edges = dag
        tc = Relation.from_pairs(nodes, edges).transitive_closure()
        assert tc.is_strict_partial_order()

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_reduction_closure_round_trip(self, dag):
        nodes, edges = dag
        r = Relation.from_pairs(nodes, edges)
        red = r.transitive_reduction()
        assert set(red.transitive_closure().pairs()) == set(
            r.transitive_closure().pairs())
        # the reduction is minimal: no edge is implied by the others
        red_pairs = list(red.pairs())
        for drop in red_pairs:
            rest = [p for p in red_pairs if p != drop]
            smaller = Relation.from_pairs(nodes, rest).transitive_closure()
            assert not smaller.holds(*drop)

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_linear_extensions_respect_order(self, dag):
        nodes, edges = dag
        r = Relation.from_pairs(nodes, edges)
        count = 0
        for ext in r.linear_extensions(limit=50):
            count += 1
            pos = {x: i for i, x in enumerate(ext)}
            for a, b in edges:
                assert pos[a] < pos[b]
        if count < 50:
            assert count == r.count_linear_extensions()

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_down_set_is_down_closed(self, dag):
        nodes, edges = dag
        r = Relation.from_pairs(nodes, edges)
        rng = random.Random(len(edges))
        targets = rng.sample(nodes, k=max(1, len(nodes) // 2))
        ds = r.down_set(targets)
        assert r.is_down_closed(ds)
        assert set(targets) <= ds

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_concurrency_symmetric_irreflexive(self, dag):
        nodes, edges = dag
        tc = Relation.from_pairs(nodes, edges).transitive_closure()
        for a in nodes:
            assert not tc.concurrent(a, a)
            for b in nodes:
                assert tc.concurrent(a, b) == tc.concurrent(b, a)

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_stable_topological_order_valid(self, dag):
        nodes, edges = dag
        r = Relation.from_pairs(nodes, edges)
        topo = r.topological_order()
        pos = {x: i for i, x in enumerate(topo)}
        for a, b in edges:
            assert pos[a] < pos[b]
        assert sorted(topo) == sorted(nodes)


# -- computations --------------------------------------------------------------------


class TestComputationProperties:
    @given(random_computations())
    @settings(max_examples=50, deadline=None)
    def test_temporal_contains_enable_and_element_order(self, comp):
        for a, b in comp.enable_relation.pairs():
            assert comp.temporally_precedes(a, b)
        for el in comp.elements():
            seq = comp.events_at(el)
            for x, y in zip(seq, seq[1:]):
                assert comp.temporally_precedes(x.eid, y.eid)

    @given(random_computations())
    @settings(max_examples=50, deadline=None)
    def test_temporal_is_strict_partial_order(self, comp):
        ids = [e.eid for e in comp.events]
        for a in ids:
            assert not comp.temporally_precedes(a, a)
            for b in ids:
                if comp.temporally_precedes(a, b):
                    assert not comp.temporally_precedes(b, a)
                    for c in ids:
                        if comp.temporally_precedes(b, c):
                            assert comp.temporally_precedes(a, c)

    @given(random_computations())
    @settings(max_examples=50, deadline=None)
    def test_element_order_total_per_element(self, comp):
        for el in comp.elements():
            seq = comp.events_at(el)
            for i, a in enumerate(seq):
                for b in seq[i + 1:]:
                    assert comp.element_precedes(a.eid, b.eid)

    @given(random_computations())
    @settings(max_examples=50, deadline=None)
    def test_fingerprint_invariant_under_insertion_order(self, comp):
        # rebuild with events in a different insertion order but the
        # same identities and edges
        events = sorted(comp.events, key=lambda e: (e.element, e.index))
        rebuilt = Computation(events, list(comp.enable_relation.pairs()))
        assert rebuilt.fingerprint() == comp.fingerprint()


# -- histories ---------------------------------------------------------------------------


class TestHistoryProperties:
    @given(random_computations(max_events=6))
    @settings(max_examples=30, deadline=None)
    def test_all_histories_are_down_closed(self, comp):
        temporal = comp.temporal_relation
        for h in all_histories(comp, cap=2000):
            assert temporal.is_down_closed(h.events)

    @given(random_computations(max_events=6))
    @settings(max_examples=30, deadline=None)
    def test_empty_and_full_in_lattice(self, comp):
        hs = set(h.events for h in all_histories(comp, cap=2000))
        assert frozenset() in hs
        assert frozenset(e.eid for e in comp.events) in hs

    @given(random_computations(max_events=6))
    @settings(max_examples=20, deadline=None)
    def test_linear_vhs_count_equals_linear_extensions(self, comp):
        assert count_maximal_history_sequences(comp, max_step=1) == (
            comp.temporal_relation.count_linear_extensions())

    @given(random_computations(max_events=5))
    @settings(max_examples=20, deadline=None)
    def test_vhs_are_valid_and_tail_closed(self, comp):
        for seq in maximal_history_sequences(comp, cap=40, max_step=None):
            assert seq.is_maximal()
            assert seq.is_initial()
            for i in range(len(seq)):
                tail = seq.tail(i)  # revalidates in the constructor
                assert isinstance(tail, HistorySequence)

    @given(random_computations(max_events=5))
    @settings(max_examples=20, deadline=None)
    def test_antichain_vhs_at_least_linear(self, comp):
        linear = count_maximal_history_sequences(comp, max_step=1)
        anti = count_maximal_history_sequences(comp, max_step=None)
        assert anti >= linear

    @given(random_computations(max_events=6))
    @settings(max_examples=30, deadline=None)
    def test_addable_events_are_pairwise_concurrent(self, comp):
        h = empty_history(comp)
        while not h.is_complete():
            addable = sorted(h.addable())
            assert addable, "incomplete history must have addable events"
            assert comp.temporal_relation.is_antichain(addable)
            h = h.extend([addable[0]])


# -- scheduler determinism -----------------------------------------------------------------


class TestSchedulerProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_seeded_runs_reproducible(self, seed):
        from repro.langs.monitor import MonitorProgram, readers_writers_system
        from repro.sim import run_random

        prog = MonitorProgram(readers_writers_system(1, 1))
        a = run_random(prog, seed=seed)
        b = run_random(prog, seed=seed)
        assert a.choices == b.choices
        assert a.computation.fingerprint() == b.computation.fingerprint()

    def test_exploration_deterministic(self):
        from repro.langs.monitor import MonitorProgram, readers_writers_system
        from repro.sim import explore

        prog = MonitorProgram(readers_writers_system(1, 1))
        first = [r.choices for r in explore(prog)]
        second = [r.choices for r in explore(prog)]
        assert first == second
