"""Unit tests for the restriction abbreviations (Section 8.2)."""

import pytest

from repro.core import (
    ComputationBuilder,
    ThreadId,
    chain,
    fork,
    full_history,
    join,
    mutual_exclusion_of,
    nondet_prerequisite,
    prerequisite,
)
from repro.core.checker import check_safety_at_all_histories


def seq_chain():
    """E1 → E2 → E3 at distinct elements (a sequential code segment)."""
    b = ComputationBuilder()
    e1 = b.add_event("S1", "E1")
    e2 = b.add_event("S2", "E2")
    e3 = b.add_event("S3", "E3")
    b.add_enable(e1, e2)
    b.add_enable(e2, e3)
    return b.freeze()


class TestPrerequisite:
    def test_holds_on_chain(self):
        c = seq_chain()
        assert prerequisite("E1", "E2").holds_at(full_history(c))
        assert prerequisite("E2", "E3").holds_at(full_history(c))

    def test_fails_when_unenabled(self):
        b = ComputationBuilder()
        b.add_event("S1", "E1")
        b.add_event("S2", "E2")  # no enable edge
        c = b.freeze()
        assert not prerequisite("E1", "E2").holds_at(full_history(c))

    def test_fails_when_doubly_enabled(self):
        b = ComputationBuilder()
        e1a = b.add_event("S1", "E1")
        e1b = b.add_event("T1", "E1")
        e2 = b.add_event("S2", "E2")
        b.add_enable(e1a, e2)
        b.add_enable(e1b, e2)
        c = b.freeze()
        assert not prerequisite("E1", "E2").holds_at(full_history(c))

    def test_fails_when_source_enables_two(self):
        b = ComputationBuilder()
        e1 = b.add_event("S1", "E1")
        e2a = b.add_event("S2", "E2")
        e2b = b.add_event("T2", "E2")
        b.add_enable(e1, e2a)
        b.add_enable(e1, e2b)
        c = b.freeze()
        assert not prerequisite("E1", "E2").holds_at(full_history(c))

    def test_vacuous_with_no_targets(self):
        b = ComputationBuilder()
        b.add_event("S1", "E1")
        c = b.freeze()
        assert prerequisite("E1", "E2").holds_at(full_history(c))

    def test_holds_at_every_history_of_chain(self):
        # prerequisite is prefix-closed for legal chains
        c = seq_chain()
        assert check_safety_at_all_histories(c, prerequisite("E1", "E2"))


class TestNondetPrerequisite:
    def test_one_of_set_enables(self):
        b = ComputationBuilder()
        s = b.add_event("A", "Signal")
        r = b.add_event("B", "Release")
        b.add_enable(s, r)
        b.add_event("C", "Init")
        c = b.freeze()
        assert nondet_prerequisite(["Signal", "Init"], "Release").holds_at(
            full_history(c))

    def test_fails_if_enabled_by_two_from_set(self):
        b = ComputationBuilder()
        s = b.add_event("A", "Signal")
        i = b.add_event("C", "Init")
        r = b.add_event("B", "Release")
        b.add_enable(s, r)
        b.add_enable(i, r)
        c = b.freeze()
        assert not nondet_prerequisite(["Signal", "Init"], "Release").holds_at(
            full_history(c))


class TestForkJoin:
    def fork_comp(self):
        b = ComputationBuilder()
        f = b.add_event("P", "Fork")
        w1 = b.add_event("Q", "Left")
        w2 = b.add_event("R", "Right")
        b.add_enable(f, w1)
        b.add_enable(f, w2)
        return b.freeze()

    def test_fork(self):
        c = self.fork_comp()
        assert fork("Fork", ["Left", "Right"]).holds_at(full_history(c))

    def test_fork_fails_if_branch_missing_enable(self):
        b = ComputationBuilder()
        f = b.add_event("P", "Fork")
        b.add_event("Q", "Left")
        w2 = b.add_event("R", "Right")
        b.add_enable(f, w2)
        c = b.freeze()
        assert not fork("Fork", ["Left", "Right"]).holds_at(full_history(c))

    def test_join(self):
        b = ComputationBuilder()
        w1 = b.add_event("Q", "Left")
        w2 = b.add_event("R", "Right")
        j = b.add_event("S", "Join")
        b.add_enable(w1, j)
        b.add_enable(w2, j)
        c = b.freeze()
        assert join(["Left", "Right"], "Join").holds_at(full_history(c))

    def test_fork_empty_rejected(self):
        with pytest.raises(ValueError):
            fork("A", [])
        with pytest.raises(ValueError):
            join([], "A")

    def test_single_branch(self):
        c = seq_chain()
        assert fork("E1", ["E2"]).holds_at(full_history(c))
        assert join(["E2"], "E3").holds_at(full_history(c))


class TestChain:
    def test_chain_holds(self):
        c = seq_chain()
        assert chain("E1", "E2", "E3").holds_at(full_history(c))

    def test_chain_fails_on_gap(self):
        b = ComputationBuilder()
        e1 = b.add_event("S1", "E1")
        e2 = b.add_event("S2", "E2")
        b.add_event("S3", "E3")  # E3 not enabled by E2
        b.add_enable(e1, e2)
        c = b.freeze()
        assert not chain("E1", "E2", "E3").holds_at(full_history(c))

    def test_chain_needs_two(self):
        with pytest.raises(ValueError):
            chain("E1")

    def test_two_stage_chain_is_prerequisite(self):
        c = seq_chain()
        assert chain("E1", "E2").holds_at(full_history(c)) == prerequisite(
            "E1", "E2").holds_at(full_history(c))


class TestMutualExclusion:
    def build(self, overlap: bool):
        """Two start/end transactions; overlapping iff ``overlap``."""
        b = ComputationBuilder()
        t1, t2 = ThreadId("tx", 1), ThreadId("tx", 2)
        s1 = b.add_event("ctl", "Start", threads=[t1])
        if overlap:
            s2 = b.add_event("ctl", "Start", threads=[t2])
            e1 = b.add_event("ctl", "End", threads=[t1])
            e2 = b.add_event("ctl", "End", threads=[t2])
        else:
            e1 = b.add_event("ctl", "End", threads=[t1])
            s2 = b.add_event("ctl", "Start", threads=[t2])
            e2 = b.add_event("ctl", "End", threads=[t2])
        return b.freeze()

    def test_serialized_ok(self):
        c = self.build(overlap=False)
        f = mutual_exclusion_of("Start", "End", "Start", "End")
        assert check_safety_at_all_histories(c, f)

    def test_overlap_detected(self):
        c = self.build(overlap=True)
        f = mutual_exclusion_of("Start", "End", "Start", "End")
        assert not check_safety_at_all_histories(c, f)
        # the complete computation alone does not reveal the overlap:
        # both transactions have closed - this is why □ matters
        assert f.holds_at(full_history(c))
