"""Tests for the release-quality extensions: counterexample witnesses,
DOT rendering, JSON round-trips, dynamic groups, and the CLI."""

import json

import pytest

from repro.core import (
    ADD_GROUP_MEMBER,
    CREATE_GROUP,
    ComputationBuilder,
    DynamicGroupStructure,
    Eventually,
    Exists,
    FalseF,
    ForAll,
    GroupDecl,
    Henceforth,
    Implies,
    Not,
    Occurred,
    Restriction,
    ThreadId,
    Witness,
    check_dynamic_scope,
    computation_from_json,
    computation_from_json_str,
    computation_to_dot,
    computation_to_json,
    computation_to_json_str,
    find_witness,
    history_lattice_to_dot,
    is_structure_event,
)
from repro.core.errors import ComputationError, SpecificationError


def diamond():
    b = ComputationBuilder()
    e1 = b.add_event("E1", "Fork")
    e2 = b.add_event("E2", "Work")
    e3 = b.add_event("E3", "Work")
    e4 = b.add_event("E4", "Join")
    b.add_enable(e1, e2)
    b.add_enable(e1, e3)
    b.add_enable(e2, e4)
    b.add_enable(e3, e4)
    return b.freeze(), (e1, e2, e3, e4)


class TestWitness:
    def test_no_witness_when_restriction_holds(self):
        comp, _ = diamond()
        r = Restriction("ok", Exists("j", "Join", Occurred("j")))
        assert find_witness(comp, r) is None

    def test_immediate_forall_witness_names_binding(self):
        comp, (e1, e2, e3, e4) = diamond()
        # "no Work event occurs" is false; the witness should name one
        r = Restriction("no-work", ForAll("w", "Work", Not(Occurred("w"))))
        w = find_witness(comp, r)
        assert w is not None
        assert "w" in w.bindings
        assert w.bindings["w"].event_class == "Work"
        assert "∀ fails" in "\n".join(w.trail)
        assert "Work" in w.describe()

    def test_immediate_exists_witness(self):
        comp, _ = diamond()
        r = Restriction("phantom", Exists("z", "Phantom", Occurred("z")))
        w = find_witness(comp, r)
        assert w is not None
        assert "no z" in "\n".join(w.trail)

    def test_temporal_box_witness_finds_failing_history(self):
        comp, (e1, e2, e3, e4) = diamond()
        # □(e4 not occurred) fails exactly at histories containing e4
        r = Restriction(
            "never-join",
            Henceforth(ForAll("j", "Join", Not(Occurred("j")))))
        w = find_witness(comp, r)
        assert w is not None
        assert e4.eid in w.history.events

    def test_temporal_diamond_witness_reports_terminal_history(self):
        comp, _ = diamond()
        r = Restriction("never", Eventually(FalseF()))
        w = find_witness(comp, r)
        assert w is not None
        assert w.history.is_complete()

    def test_nested_implication_witness(self):
        comp, (e1, e2, e3, e4) = diamond()
        # whenever Fork occurred, Phantom occurred -- fails
        r = Restriction(
            "fork-implies-phantom",
            Henceforth(ForAll(
                "f", "Fork",
                Implies(Occurred("f"),
                        Exists("p", "Phantom", Occurred("p"))))))
        w = find_witness(comp, r)
        assert w is not None
        assert e1.eid in w.history.events


class TestDot:
    def test_computation_dot_structure(self):
        comp, (e1, e2, e3, e4) = diamond()
        dot = computation_to_dot(comp, title="d")
        assert dot.startswith('digraph "d" {')
        assert dot.rstrip().endswith("}")
        assert '"E1^1" -> "E2^1";' in dot
        assert "subgraph cluster_0" in dot
        assert "E4^1:Join" in dot

    def test_computation_dot_without_clusters_with_params(self):
        b = ComputationBuilder()
        b.add_event("Var", "Assign", {"newval": 5})
        dot = computation_to_dot(b.freeze(), cluster_by_element=False,
                                 show_params=True)
        assert "newval=5" in dot
        assert "subgraph" not in dot

    def test_element_order_rendered_dashed(self):
        b = ComputationBuilder()
        b.add_event("Var", "Assign", {"newval": 1})
        b.add_event("Var", "Assign", {"newval": 2})
        dot = computation_to_dot(b.freeze())
        assert "style=dashed" in dot

    def test_lattice_dot(self):
        comp, _ = diamond()
        dot = history_lattice_to_dot(comp)
        assert dot.count("h0") >= 1
        assert "∅" in dot
        # 6 nodes: empty + 5 non-empty
        assert sum(1 for line in dot.splitlines()
                   if line.strip().startswith("h") and "label=" in line
                   and "->" not in line) == 6

    def test_lattice_cap(self):
        b = ComputationBuilder()
        for i in range(12):
            b.add_event(f"E{i}", "A")
        with pytest.raises(ComputationError):
            history_lattice_to_dot(b.freeze(), cap=10)


class TestJsonIO:
    def test_round_trip_preserves_fingerprint(self):
        comp, _ = diamond()
        data = computation_to_json(comp)
        back = computation_from_json(data)
        assert back.fingerprint() == comp.fingerprint()
        assert len(back) == len(comp)
        assert set(back.enable_relation.pairs()) == set(
            comp.enable_relation.pairs())

    def test_round_trip_with_params_and_threads(self):
        b = ComputationBuilder()
        t = ThreadId("pi", 1)
        b.add_event("Var", "Assign", {"newval": 5, "site": "x"},
                    threads=[t])
        comp = b.freeze()
        back = computation_from_json_str(computation_to_json_str(comp))
        ev = back.events[0]
        assert ev.param("newval") == 5
        assert t in ev.threads

    def test_json_is_valid_and_stable(self):
        comp, _ = diamond()
        text = computation_to_json_str(comp)
        assert json.loads(text)["format"] == "gem-computation"
        assert text == computation_to_json_str(comp)  # deterministic

    def test_bad_format_rejected(self):
        with pytest.raises(ComputationError, match="format"):
            computation_from_json({"format": "nope", "version": 1})
        with pytest.raises(ComputationError, match="version"):
            computation_from_json({"format": "gem-computation",
                                   "version": 99})

    def test_file_round_trip(self, tmp_path):
        from repro.core.io import dump, load

        comp, _ = diamond()
        path = tmp_path / "comp.json"
        dump(comp, str(path))
        assert load(str(path)).fingerprint() == comp.fingerprint()


class TestDynamicGroups:
    def build(self, grant_before_use: bool):
        """Private element In inside G; Out gains access by *joining* G
        via an AddGroupMember event that it may or may not have observed
        when it fires."""
        b = ComputationBuilder()
        structure = b.add_event(
            "structure", ADD_GROUP_MEMBER,
            {"group": "G", "member": "Out"})
        src = b.add_event("Out", "Go")
        dst = b.add_event("In", "Hit")
        if grant_before_use:
            b.add_enable(structure, src)
        b.add_enable(src, dst)
        return b.freeze()

    def dynamic(self):
        # the structure element sits inside G too, so its grant events
        # can reach the (now G-internal) member they admitted
        return DynamicGroupStructure(
            ["In", "Out", "structure"],
            [GroupDecl.make("G", ["In", "structure"])],
        )

    def test_access_after_grant_is_legal(self):
        comp = self.build(grant_before_use=True)
        assert check_dynamic_scope(comp, self.dynamic()) == []

    def test_access_without_observed_grant_is_illegal(self):
        comp = self.build(grant_before_use=False)
        violations = check_dynamic_scope(comp, self.dynamic())
        assert len(violations) == 1
        assert violations[0].rule == "dynamic-scope"

    def test_create_group_event(self):
        b = ComputationBuilder()
        create = b.add_event("structure", CREATE_GROUP, {"group": "New"})
        add = b.add_event("structure", ADD_GROUP_MEMBER,
                          {"group": "New", "member": "X"})
        x = b.add_event("X", "Ping")
        comp = b.freeze()
        dyn = DynamicGroupStructure(["X", "structure"])
        final = dyn.final(comp)
        assert final.contained("X", "New")
        # at the create event, the group exists but X is not yet a member
        # (the AddGroupMember event is element-later, outside its past)
        at_create = dyn.in_force_at(comp, create.eid)
        assert not at_create.contained("X", "New")
        assert is_structure_event(create) and is_structure_event(add)

    def test_recreate_group_rejected(self):
        b = ComputationBuilder()
        b.add_event("structure", CREATE_GROUP, {"group": "G"})
        b.add_event("structure", CREATE_GROUP, {"group": "G"})
        comp = b.freeze()
        dyn = DynamicGroupStructure(["structure"])
        with pytest.raises(SpecificationError, match="re-creates"):
            dyn.final(comp)

    def test_add_to_unknown_group_rejected(self):
        b = ComputationBuilder()
        b.add_event("structure", ADD_GROUP_MEMBER,
                    {"group": "Nope", "member": "X"})
        comp = b.freeze()
        dyn = DynamicGroupStructure(["X", "structure"])
        with pytest.raises(SpecificationError, match="unknown group"):
            dyn.final(comp)

    def test_monotone_growth(self):
        """Later events see a superset of earlier structure."""
        comp = self.build(grant_before_use=True)
        dyn = self.dynamic()
        structure_ev = comp.events[0]
        dst = comp.events[2]
        early = dyn.in_force_at(comp, structure_ev.eid)
        late = dyn.in_force_at(comp, dst.eid)
        assert early.contained("Out", "G")
        assert late.contained("Out", "G")

    def test_structure_element_decl(self):
        from repro.core import structure_element_decl

        decl = structure_element_decl()
        assert decl.declares(CREATE_GROUP)
        assert decl.declares(ADD_GROUP_MEMBER)


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "monitor-readers-writers" in out
        assert len(out.strip().splitlines()) == 15

    def test_examples(self, capsys):
        from repro.cli import main

        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "EL1: EL1, EL6" in out
        assert "(paper: 5)" in out

    def test_verify_ok(self, capsys):
        from repro.cli import main

        assert main(["verify", "monitor-one-slot-buffer"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_verify_mutant(self, capsys):
        from repro.cli import main

        assert main(["verify", "monitor-one-slot-buffer", "--mutant"]) == 0
        assert "FAILED" in capsys.readouterr().out

    def test_verify_unknown_case(self, capsys):
        from repro.cli import main

        assert main(["verify", "zzz"]) == 2

    def test_dot(self, capsys):
        from repro.cli import main

        assert main(["dot", "csp-one-slot-buffer"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_lattice(self, capsys):
        from repro.cli import main

        assert main(["lattice"]) == 0
        assert "∅" in capsys.readouterr().out


class TestComposition:
    def chain(self, element, n, cls="A"):
        b = ComputationBuilder()
        prev = None
        for _ in range(n):
            ev = b.add_event(element, cls)
            if prev is not None:
                b.add_enable(prev, ev)
            prev = ev
        return b.freeze()

    def test_parallel_compose_concurrent(self):
        from repro.core import parallel_compose

        comp = parallel_compose(self.chain("P", 2), self.chain("Q", 2))
        assert len(comp) == 4
        for p_ev in comp.events_at("P"):
            for q_ev in comp.events_at("Q"):
                assert comp.concurrent(p_ev.eid, q_ev.eid)

    def test_parallel_compose_rejects_shared_elements(self):
        from repro.core import parallel_compose

        with pytest.raises(ComputationError, match="disjoint"):
            parallel_compose(self.chain("P", 1), self.chain("P", 1))

    def test_sequential_compose_orders_everything(self):
        from repro.core import sequential_compose

        comp = sequential_compose(self.chain("P", 2), self.chain("Q", 2))
        for p_ev in comp.events_at("P"):
            for q_ev in comp.events_at("Q"):
                assert comp.temporally_precedes(p_ev.eid, q_ev.eid)

    def test_sequential_compose_renumbers_shared_elements(self):
        from repro.core import sequential_compose

        comp = sequential_compose(self.chain("P", 2), self.chain("P", 3))
        assert [e.index for e in comp.events_at("P")] == [1, 2, 3, 4, 5]

    def test_sequential_without_barrier_leaves_disjoint_concurrent(self):
        from repro.core import sequential_compose

        comp = sequential_compose(self.chain("P", 1), self.chain("Q", 1),
                                  barrier=False)
        (p_ev,) = comp.events_at("P")
        (q_ev,) = comp.events_at("Q")
        assert comp.concurrent(p_ev.eid, q_ev.eid)

    def test_sequential_associative_up_to_fingerprint(self):
        from repro.core import sequential_compose as seq

        a, b, c = self.chain("P", 1), self.chain("Q", 1), self.chain("R", 1)
        left = seq(seq(a, b), c)
        right = seq(a, seq(b, c))
        # not identical (the barrier edges differ: left adds P->Q then
        # Q->R edges; right the same set) -- check temporal equivalence
        for x in left.events:
            for y in left.events:
                assert left.temporally_precedes(x.eid, y.eid) == (
                    right.temporally_precedes(x.eid, y.eid))

    def test_restrict_to_history(self):
        from repro.core import restrict_events

        comp = self.chain("P", 3)
        ids = [e.eid for e in comp.events]
        sub = restrict_events(comp, ids[:2])
        assert len(sub) == 2
        assert sub.enables(ids[0], ids[1])

    def test_restrict_rejects_non_down_closed(self):
        from repro.core import restrict_events

        comp = self.chain("P", 3)
        ids = [e.eid for e in comp.events]
        with pytest.raises(ComputationError, match="downward"):
            restrict_events(comp, [ids[2]])

    def test_restrict_rejects_unknown(self):
        from repro.core import EventId, restrict_events

        comp = self.chain("P", 1)
        with pytest.raises(ComputationError, match="unknown"):
            restrict_events(comp, [EventId("Z", 1)])

    def test_compositions_are_checkable(self):
        """Composed computations flow through histories and the checker."""
        from repro.core import (
            Henceforth,
            LatticeChecker,
            Occurred,
            ForAll,
            Implies,
            Exists,
            parallel_compose,
            sequential_compose,
        )

        comp = sequential_compose(
            parallel_compose(self.chain("P", 1, "Early"),
                             self.chain("Q", 1, "Early")),
            self.chain("R", 1, "Late"),
        )
        safety = Henceforth(ForAll(
            "l", "Late",
            Implies(Occurred("l"), Exists("e", "Early", Occurred("e")))))
        assert LatticeChecker(comp).holds(safety)
