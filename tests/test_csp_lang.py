"""Unit tests for the CSP language: AST, interpreter, GEM spec."""

import pytest

from repro.core import check_legality
from repro.core.errors import SpecificationError
from repro.langs.csp import (
    Alt,
    Branch,
    CspIf,
    CspProcess,
    CspProgram,
    CspSystem,
    DataRead,
    DataWrite,
    LocalAssign,
    Note,
    Receive,
    Rep,
    Send,
    bounded_buffer_csp_system,
    csp_process_of_event,
    csp_program_spec,
    one_slot_buffer_csp_system,
    rw_csp_system,
)
from repro.langs.exprs import BinOp, Fn, Lit, VarRef
from repro.sim import explore, run_random


def system(*procs, data=()):
    return CspSystem(tuple(procs), tuple(data))


class TestBasics:
    def test_simple_send_receive(self):
        sysx = system(
            CspProcess("a", (), (Send(Lit("b"), Lit(42)),)),
            CspProcess("b", (("x", None),), (Receive(Lit("a"), "x"),)),
        )
        run = run_random(CspProgram(sysx), seed=0)
        assert run.completed
        comp = run.computation
        assert len(comp.events_at("a.out")) == 2  # Req + End
        assert len(comp.events_at("b.in")) == 2
        (assign,) = comp.events_at("b.var.x")
        assert assign.param("newval") == 42

    def test_simultaneity_edges(self):
        sysx = system(
            CspProcess("a", (), (Send(Lit("b"), Lit(1)),)),
            CspProcess("b", (("x", None),), (Receive(Lit("a"), "x"),)),
        )
        comp = run_random(CspProgram(sysx), seed=0).computation
        out_req, out_end = comp.events_at("a.out")
        in_req, in_end = comp.events_at("b.in")
        assert comp.enables(in_req.eid, out_end.eid)
        assert comp.enables(out_req.eid, in_end.eid)
        # the two End events are potentially concurrent (paper §8.2)
        assert comp.concurrent(out_end.eid, in_end.eid)

    def test_value_carried_on_out_req(self):
        sysx = system(
            CspProcess("a", (), (Send(Lit("b"), Lit(7)),)),
            CspProcess("b", (("x", None),), (Receive(Lit("a"), "x"),)),
        )
        comp = run_random(CspProgram(sysx), seed=0).computation
        out_req = comp.events_at("a.out")[0]
        assert out_req.param("value") == 7

    def test_mismatched_partners_deadlock(self):
        sysx = system(
            CspProcess("a", (), (Send(Lit("b"), Lit(1)),)),
            CspProcess("b", (("x", None),), (Receive(Lit("zzz"), "x"),)),
        )
        with pytest.raises(SpecificationError, match="unknown process"):
            run_random(CspProgram(sysx), seed=0)

    def test_mutual_send_deadlocks(self):
        sysx = system(
            CspProcess("a", (), (Send(Lit("b"), Lit(1)),)),
            CspProcess("b", (), (Send(Lit("a"), Lit(2)),)),
        )
        run = run_random(CspProgram(sysx), seed=0)
        assert run.deadlocked

    def test_local_assign_and_if(self):
        sysx = system(
            CspProcess("a", (("x", 0), ("y", 0)), (
                LocalAssign("x", Lit(5)),
                CspIf(BinOp(">", VarRef("x"), Lit(3)),
                      (LocalAssign("y", Lit(1)),),
                      (LocalAssign("y", Lit(2)),)),
            )),
        )
        run = run_random(CspProgram(sysx), seed=0)
        assert run.completed
        values = [e.param("newval")
                  for e in run.computation.events_at("a.var.y")]
        assert values == [1]

    def test_unknown_variable_raises(self):
        sysx = system(CspProcess("a", (), (LocalAssign("zzz", Lit(1)),)))
        with pytest.raises(SpecificationError):
            run_random(CspProgram(sysx), seed=0)

    def test_data_ops(self):
        sysx = system(
            CspProcess("a", (("v", None),), (
                DataWrite("d", Lit(9)),
                DataRead("d", "v"),
                Note.make("Saw", value=VarRef("v")),
            )),
            data=(("d", 0),),
        )
        comp = run_random(CspProgram(sysx), seed=0).computation
        assert comp.events_of_class("Saw")[0].param("value") == 9

    def test_duplicate_process_names_rejected(self):
        with pytest.raises(SpecificationError):
            system(CspProcess("a", (), ()), CspProcess("a", (), ()))


class TestGuardedCommands:
    def test_alt_takes_ready_branch(self):
        sysx = system(
            CspProcess("chooser", (("x", None),), (
                Alt((
                    Branch(io=Receive(Lit("left"), "x")),
                    Branch(io=Receive(Lit("right"), "x")),
                )),
            )),
            CspProcess("left", (), (Send(Lit("chooser"), Lit("L")),)),
        )
        # 'right' never sends; only the left branch can fire
        run = run_random(CspProgram(sysx), seed=0)
        # left communicated; chooser done; but 'right'... does not exist
        # -> construct with right present but silent
        sysx2 = system(
            CspProcess("chooser", (("x", None),), (
                Alt((
                    Branch(io=Receive(Lit("left"), "x")),
                    Branch(io=Receive(Lit("right"), "x")),
                )),
            )),
            CspProcess("left", (), (Send(Lit("chooser"), Lit("L")),)),
            CspProcess("right", (), ()),
        )
        run = run_random(CspProgram(sysx2), seed=0)
        assert run.completed
        assign = run.computation.events_at("chooser.var.x")[0]
        assert assign.param("newval") == "L"

    def test_alt_bool_guard_filters(self):
        sysx = system(
            CspProcess("chooser", (("x", None),), (
                Alt((
                    Branch(guard=Lit(False), io=Receive(Lit("p"), "x")),
                    Branch(guard=Lit(True), body=(LocalAssign("x", Lit(1)),)),
                )),
            )),
            CspProcess("p", (), (Send(Lit("chooser"), Lit(9)),)),
        )
        run = run_random(CspProgram(sysx), seed=0)
        # p's send can never match (guard false) -> p deadlocks after
        # chooser finishes via the boolean branch
        values = [e.param("newval")
                  for e in run.computation.events_at("chooser.var.x")]
        assert values == [1]
        assert run.deadlocked  # p is stuck forever

    def test_alt_aborts_when_all_guards_fail(self):
        sysx = system(
            CspProcess("a", (), (
                Alt((Branch(guard=Lit(False),
                            body=(LocalAssign("x", Lit(1)),)),)),
            )),
        )
        with pytest.raises(SpecificationError, match="aborted"):
            run_random(CspProgram(sysx), seed=0)

    def test_rep_terminates_on_dead_partner(self):
        sysx = system(
            CspProcess("server", (("x", None), ("n", 0)), (
                Rep((
                    Branch(io=Receive(Lit("client"), "x"),
                           body=(LocalAssign("n", BinOp("+", VarRef("n"),
                                                        Lit(1))),)),
                )),
            )),
            CspProcess("client", (), (
                Send(Lit("server"), Lit(1)),
                Send(Lit("server"), Lit(2)),
            )),
        )
        run = run_random(CspProgram(sysx), seed=0)
        assert run.completed
        counts = [e.param("newval")
                  for e in run.computation.events_at("server.var.n")]
        assert counts == [1, 2]

    def test_rep_exits_on_false_guards(self):
        sysx = system(
            CspProcess("a", (("n", 0),), (
                Rep((
                    Branch(guard=BinOp("<", VarRef("n"), Lit(3)),
                           body=(LocalAssign("n", BinOp("+", VarRef("n"),
                                                        Lit(1))),)),
                )),
                Note.make("Done", n=VarRef("n")),
            )),
        )
        run = run_random(CspProgram(sysx), seed=0)
        assert run.completed
        assert run.computation.events_of_class("Done")[0].param("n") == 3

    def test_dynamic_partner_send(self):
        sysx = system(
            CspProcess("router", (("target", "b"),), (
                Send(VarRef("target"), Lit("hello")),
            )),
            CspProcess("b", (("m", None),), (Receive(Lit("router"), "m"),)),
        )
        run = run_random(CspProgram(sysx), seed=0)
        assert run.completed
        assert run.computation.events_at("b.var.m")[0].param("newval") == "hello"

    def test_fn_expression_guard(self):
        sysx = system(
            CspProcess("a", (("items", (1, 2)),), (
                Rep((
                    Branch(
                        guard=Fn("has-items",
                                 lambda env: bool(env.variables["items"])),
                        body=(LocalAssign(
                            "items",
                            Fn("tail", lambda env: env.variables["items"][1:])),),
                    ),
                )),
            )),
        )
        run = run_random(CspProgram(sysx), seed=0)
        assert run.completed
        assert len(run.computation.events_at("a.var.items")) == 2


class TestCspProgramSpec:
    @pytest.mark.parametrize("factory", [
        lambda: one_slot_buffer_csp_system(items=(1, 2)),
        lambda: bounded_buffer_csp_system(capacity=2, items=(1, 2, 3)),
        lambda: rw_csp_system(1, 1),
    ])
    def test_runs_are_legal_program_computations(self, factory):
        sysx = factory()
        spec = csp_program_spec(sysx)
        for seed in range(4):
            run = run_random(CspProgram(sysx), seed=seed)
            assert run.completed
            assert check_legality(run.computation, spec) == []
            result = spec.check(run.computation)
            assert result.ok, result.summary()

    def test_process_of_event(self):
        from repro.core import Event

        assert csp_process_of_event(Event.make("p.in", 1, "Req",
                                               {"frm": "q"})) == "p"
        assert csp_process_of_event(Event.make("p.out", 1, "End",
                                               {"to": "q", "value": 1})) == "p"
        assert csp_process_of_event(Event.make("p.var.x", 1, "Assign",
                                               {"newval": 1, "site": "s",
                                                "by": "p"})) == "p"
        assert csp_process_of_event(Event.make("d", 1, "Getval",
                                               {"oldval": 1, "by": "z"})) == "z"
        assert csp_process_of_event(Event.make("plain", 1, "Note")) == "plain"

    def test_one_slot_buffer_determinism(self):
        """With one producer and one consumer the dataflow is fully
        determined: exactly one maximal run exists."""
        runs = list(explore(CspProgram(one_slot_buffer_csp_system(items=(1, 2)))))
        assert len(runs) == 1
        assert runs[0].completed
