"""Unit tests for the GEM type facility (Section 6)."""

import pytest

from repro.core import (
    ElementDecl,
    ElementType,
    EventClass,
    EventClassRef,
    GroupDecl,
    GroupInstance,
    GroupType,
    ParamSpec,
    Restriction,
    TrueF,
    qualified,
)
from repro.core.errors import SpecificationError


def variable_type():
    """The paper's generic Variable element type."""
    return ElementType(
        "Variable",
        event_classes=[
            EventClass("Assign", (ParamSpec("newval", "VALUE"),)),
            EventClass("Getval", (ParamSpec("oldval", "VALUE"),)),
        ],
        restrictions_fn=lambda name, bindings: [
            Restriction(f"{name}-semantics", TrueF(), comment="placeholder")
        ],
    )


class TestElementType:
    def test_instantiate(self):
        var = variable_type().instantiate("Var")
        assert isinstance(var, ElementDecl)
        assert var.name == "Var"
        assert var.declares("Assign")
        assert var.declares("Getval")
        assert var.restrictions[0].name == "Var-semantics"

    def test_two_instances_have_distinct_restrictions(self):
        t = variable_type()
        a, b = t.instantiate("A"), t.instantiate("B")
        assert a.restrictions[0].name == "A-semantics"
        assert b.restrictions[0].name == "B-semantics"

    def test_refinement_substitutes_type_name(self):
        """IntegerVariable = Variable refined with VALUE -> INTEGER."""
        int_var = variable_type().refined(
            "IntegerVariable", substitute={"VALUE": "INTEGER"}
        )
        decl = int_var.instantiate("Var")
        spec = decl.event_class("Assign").params[0]
        assert spec.type_name == "INTEGER"
        assert not spec.accepts("a string")

    def test_parameterized_type(self):
        """TypedVariable(t) = Variable with $t as the value type."""
        typed = ElementType(
            "TypedVariable",
            event_classes=[
                EventClass("Assign", (ParamSpec("newval", "$t"),)),
            ],
            params=["t"],
        )
        decl = typed.instantiate("Var", t="INTEGER")
        assert decl.event_class("Assign").params[0].type_name == "INTEGER"

    def test_missing_binding_rejected(self):
        typed = ElementType("T", params=["t"])
        with pytest.raises(SpecificationError, match="missing"):
            typed.instantiate("X")

    def test_unexpected_binding_rejected(self):
        with pytest.raises(SpecificationError, match="unexpected"):
            variable_type().instantiate("X", nope=1)

    def test_refinement_adds_classes_and_restrictions(self):
        refined = variable_type().refined(
            "Watched",
            add_event_classes=[EventClass("Watch")],
            add_restrictions_fn=lambda name, b: [
                Restriction(f"{name}-watched", TrueF())
            ],
        )
        decl = refined.instantiate("W")
        assert decl.declares("Watch")
        names = [r.name for r in decl.restrictions]
        assert "W-semantics" in names
        assert "W-watched" in names

    def test_repr(self):
        assert "Variable" in repr(variable_type())
        assert "(t)" in repr(ElementType("T", params=["t"]))


class TestGroupType:
    def database_type(self):
        """DataBase = GROUP TYPE(control: RWControl, data[1..n]: Variable)."""
        var_t = variable_type()

        def build(name, bindings):
            n = bindings["n"]
            control = ElementDecl.make(
                qualified(name, "control"), [EventClass("ReqRead")]
            )
            data = [
                var_t.instantiate(qualified(name, f"data[{i}]"))
                for i in range(1, n + 1)
            ]
            members = [control.name] + [d.name for d in data]
            return GroupInstance(
                group=GroupDecl.make(name, members,
                                     ports=[EventClassRef(control.name, "ReqRead")]),
                elements=tuple([control] + data),
            )

        return GroupType("DataBase", build, params=["n"])

    def test_instantiate(self):
        inst = self.database_type().instantiate("db", n=3)
        assert inst.group.name == "db"
        assert "db.control" in inst.all_element_names()
        assert "db.data[3]" in inst.all_element_names()
        assert len(inst.elements) == 4
        assert inst.group.ports[0].element == "db.control"

    def test_two_instances_disjoint(self):
        t = self.database_type()
        a = t.instantiate("db1", n=1)
        b = t.instantiate("db2", n=1)
        assert not (set(a.all_element_names()) & set(b.all_element_names()))

    def test_binding_validation(self):
        t = self.database_type()
        with pytest.raises(SpecificationError, match="missing"):
            t.instantiate("db")
        with pytest.raises(SpecificationError, match="unexpected"):
            t.instantiate("db", n=1, m=2)

    def test_builder_must_respect_instance_name(self):
        bad = GroupType(
            "Bad",
            lambda name, b: GroupInstance(group=GroupDecl.make("wrong", [])),
        )
        with pytest.raises(SpecificationError, match="must name its group"):
            bad.instantiate("inst")

    def test_merged_with(self):
        t = self.database_type()
        a = t.instantiate("db1", n=1)
        b = t.instantiate("db2", n=1)
        merged = a.merged_with(b)
        assert b.group in merged.subgroups
        assert set(merged.all_element_names()) >= set(a.all_element_names())

    def test_repr(self):
        assert "DataBase(n)" in repr(self.database_type())
