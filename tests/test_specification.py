"""Unit tests for specifications and legality checking."""

import pytest

from repro.core import (
    Computation,
    ComputationBuilder,
    ElementDecl,
    Event,
    EventClass,
    EventClassRef,
    GroupDecl,
    ParamSpec,
    Path,
    Restriction,
    Specification,
    ThreadType,
    TrueF,
    check_legality,
    from_group_instances,
    prerequisite,
)
from repro.core.errors import SpecificationError
from repro.core.gemtypes import GroupInstance


def var_spec():
    """One Var element with Assign/Getval and a prerequisite restriction."""
    var = ElementDecl.make(
        "Var",
        [
            EventClass("Assign", (ParamSpec("newval", "INTEGER"),)),
            EventClass("Getval", (ParamSpec("oldval", "INTEGER"),)),
        ],
        restrictions=[
            Restriction("assign-enables-getval", prerequisite("Assign", "Getval"))
        ],
    )
    return Specification("var-spec", elements=[var])


class TestSpecificationBasics:
    def test_element_lookup(self):
        s = var_spec()
        assert s.element("Var").name == "Var"
        assert s.element_or_none("Nope") is None
        with pytest.raises(SpecificationError):
            s.element("Nope")

    def test_duplicate_element_rejected(self):
        e = ElementDecl.make("E", [EventClass("A")])
        with pytest.raises(SpecificationError):
            Specification("s", elements=[e, e])

    def test_duplicate_restriction_names_rejected(self):
        e = ElementDecl.make("E", [EventClass("A")],
                             restrictions=[Restriction("r", TrueF())])
        with pytest.raises(SpecificationError, match="duplicate restriction"):
            Specification("s", elements=[e],
                          restrictions=[Restriction("r", TrueF())])

    def test_all_restrictions_collects_all_levels(self):
        e = ElementDecl.make("E", [EventClass("A")],
                             restrictions=[Restriction("elem-r", TrueF())])
        g = GroupDecl.make("G", ["E"], restrictions=[Restriction("group-r", TrueF())])
        s = Specification("s", elements=[e], groups=[g],
                          restrictions=[Restriction("spec-r", TrueF())])
        names = {r.name for r in s.all_restrictions()}
        assert names == {"spec-r", "elem-r", "group-r"}

    def test_restriction_lookup(self):
        s = var_spec()
        assert s.restriction("assign-enables-getval").name == "assign-enables-getval"
        with pytest.raises(SpecificationError):
            s.restriction("nope")

    def test_extended(self):
        s = var_spec().extended(elements=[ElementDecl.make("E2", [EventClass("B")])])
        assert set(s.element_names()) == {"Var", "E2"}

    def test_without_restrictions(self):
        s = Specification("s", restrictions=[Restriction("a", TrueF()),
                                             Restriction("b", TrueF())])
        s2 = s.without_restrictions(["a"])
        assert [r.name for r in s2.all_restrictions()] == ["b"]
        with pytest.raises(SpecificationError):
            s.without_restrictions(["zzz"])

    def test_repr(self):
        assert "var-spec" in repr(var_spec())

    def test_from_group_instances(self):
        inst = GroupInstance(
            group=GroupDecl.make("G", ["G.e"]),
            elements=(ElementDecl.make("G.e", [EventClass("A")]),),
            restrictions=(Restriction("inst-r", TrueF()),),
        )
        s = from_group_instances("s", [inst])
        assert "G.e" in s.element_names()
        assert {r.name for r in s.all_restrictions()} == {"inst-r"}

    def test_thread_labelling_via_spec(self):
        e = ElementDecl.make("E", [EventClass("A"), EventClass("B")])
        tt = ThreadType("pi", [Path.parse("E.A :: E.B")])
        s = Specification("s", elements=[e], thread_types=[tt])
        b = s.builder()
        a = b.add_event("E", "A")
        bb = b.add_event("E", "B")
        b.add_enable(a, bb)
        c = b.freeze()
        labelled = s.label_threads(c)
        assert len(labelled.thread_ids()) == 1


class TestLegality:
    def legal_comp(self):
        s = var_spec()
        b = s.builder()
        a = b.add_event("Var", "Assign", {"newval": 1})
        g = b.add_event("Var", "Getval", {"oldval": 1})
        b.add_enable(a, g)
        return s, b.freeze()

    def test_legal_computation_passes(self):
        s, c = self.legal_comp()
        assert check_legality(c, s) == []
        assert s.legal(c)

    def test_undeclared_element_detected(self):
        s = var_spec()
        b = ComputationBuilder()
        b.add_event("Rogue", "Assign", {"newval": 1})
        c = b.freeze()
        violations = check_legality(c, s)
        assert any(v.rule == "element-declared" for v in violations)

    def test_undeclared_class_detected(self):
        s = var_spec()
        b = ComputationBuilder()
        b.add_event("Var", "Mystery")
        c = b.freeze()
        violations = check_legality(c, s)
        assert any(v.rule == "class-declared" for v in violations)

    def test_bad_params_detected(self):
        s = var_spec()
        b = ComputationBuilder()
        b.add_event("Var", "Assign", {"newval": "not an int"})
        c = b.freeze()
        violations = check_legality(c, s)
        assert any(v.rule == "class-declared" for v in violations)

    def test_scope_violation_detected(self):
        inner = ElementDecl.make("In", [EventClass("X")])
        outer = ElementDecl.make("Out", [EventClass("Y")])
        s = Specification(
            "scoped",
            elements=[inner, outer],
            groups=[GroupDecl.make("G", ["In"])],
        )
        # bypass the builder's scope check to construct an illegal computation
        i = Event.make("In", 1, "X")
        o = Event.make("Out", 1, "Y")
        c = Computation([i, o], [(o.eid, i.eid)])
        violations = check_legality(c, s)
        assert any(v.rule == "scope" for v in violations)

    def test_port_makes_enable_legal(self):
        inner = ElementDecl.make("In", [EventClass("Start"), EventClass("X")])
        outer = ElementDecl.make("Out", [EventClass("Y")])
        s = Specification(
            "ported",
            elements=[inner, outer],
            groups=[GroupDecl.make("G", ["In"],
                                   ports=[EventClassRef("In", "Start")])],
        )
        i = Event.make("In", 1, "Start")
        o = Event.make("Out", 1, "Y")
        c = Computation([i, o], [(o.eid, i.eid)])
        assert check_legality(c, s) == []

    def test_empty_computation_is_legal(self):
        s = var_spec()
        c = ComputationBuilder().freeze()
        assert s.legal(c)

    def test_check_result_summary(self):
        s, c = self.legal_comp()
        result = s.check(c)
        assert result.ok
        assert "LEGAL" in result.summary()
        assert result.failed_restrictions() == []

    def test_restriction_violation_reported(self):
        s = var_spec()
        b = s.builder()
        b.add_event("Var", "Assign", {"newval": 1})
        b.add_event("Var", "Getval", {"oldval": 1})  # not enabled by Assign
        c = b.freeze()
        result = s.check(c)
        assert not result.ok
        assert result.failed_restrictions() == ["assign-enables-getval"]
        assert "FAIL" in result.summary()
