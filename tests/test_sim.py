"""Unit tests for the simulation substrate (runtime + scheduler)."""

import pytest

from repro.core import ComputationBuilder
from repro.core.errors import VerificationError
from repro.sim import (
    Action,
    ExplorationResult,
    Run,
    SimpleState,
    explore,
    explore_or_sample,
    run_random,
    sample_runs,
)


class CounterState(SimpleState):
    """N processes, each taking `steps` independent steps."""

    def __init__(self, n_procs: int, steps: int, deadlock_after=None):
        super().__init__()
        self.remaining = {f"p{i}": steps for i in range(n_procs)}
        self.deadlock_after = deadlock_after
        self.total = 0

    def enabled(self):
        if self.deadlock_after is not None and self.total >= self.deadlock_after:
            return []
        return [
            Action(name, f"step({left})", ("step", name))
            for name, left in self.remaining.items() if left > 0
        ]

    def step(self, action):
        _kind, name = action.key
        self.emit(name, name, "Tick", {"k": self.remaining[name]})
        self.remaining[name] -= 1
        self.total += 1

    def is_final(self):
        return all(v == 0 for v in self.remaining.values())


class CounterProgram:
    def __init__(self, n_procs=2, steps=2, deadlock_after=None):
        self.n_procs = n_procs
        self.steps = steps
        self.deadlock_after = deadlock_after

    def initial_state(self):
        return CounterState(self.n_procs, self.steps, self.deadlock_after)


class TestSimpleState:
    def test_emit_chains_per_process(self):
        s = CounterState(1, 3)
        while s.enabled():
            s.step(s.enabled()[0])
        comp = s.computation()
        evs = comp.events_at("p0")
        assert comp.enables(evs[0].eid, evs[1].eid)
        assert comp.enables(evs[1].eid, evs[2].eid)

    def test_emit_extra_enables_and_no_chain(self):
        s = SimpleState()
        a = s.emit("P", "A", "X")
        b = s.emit("Q", "B", "Y", extra_enables=[a])
        c = s.emit("Q", "B", "Y", chain=False)
        comp = s.computation()
        assert comp.enables(a.eid, b.eid)
        assert not comp.enables(b.eid, c.eid)  # chain suppressed

    def test_last_event_of(self):
        s = SimpleState()
        assert s.last_event_of("P") is None
        ev = s.emit("P", "A", "X")
        assert s.last_event_of("P") == ev


class TestExplore:
    def test_counts_interleavings(self):
        # 2 procs x 2 steps: C(4,2) = 6 interleavings
        runs = list(explore(CounterProgram(2, 2)))
        assert len(runs) == 6
        assert all(r.completed for r in runs)
        assert all(len(r.computation) == 4 for r in runs)

    def test_all_runs_same_partial_order(self):
        # independent processes: all interleavings give the same order
        fps = {r.computation.fingerprint()
               for r in explore(CounterProgram(2, 2))}
        assert len(fps) == 1

    def test_deadlock_detected(self):
        runs = list(explore(CounterProgram(2, 2, deadlock_after=1)))
        assert runs
        assert all(r.deadlocked for r in runs)
        assert not any(r.completed for r in runs)

    def test_truncation_flagged(self):
        runs = list(explore(CounterProgram(1, 5), max_steps=2))
        assert all(r.truncated for r in runs)
        assert all(r.blocked for r in runs)

    def test_run_cap_raises(self):
        with pytest.raises(VerificationError, match="runs"):
            list(explore(CounterProgram(3, 3), max_runs=5))

    def test_zero_steps_rejected(self):
        with pytest.raises(VerificationError):
            list(explore(CounterProgram(), max_steps=0))

    def test_run_describe(self):
        (run,) = explore(CounterProgram(1, 1))
        assert "completed" in run.describe()
        assert "1 steps" in run.describe()


class TestRandomRuns:
    def test_deterministic_per_seed(self):
        a = run_random(CounterProgram(2, 3), seed=7)
        b = run_random(CounterProgram(2, 3), seed=7)
        assert a.choices == b.choices

    def test_different_seeds_vary(self):
        seeds = {run_random(CounterProgram(3, 3), seed=s).choices
                 for s in range(10)}
        assert len(seeds) > 1

    def test_sample_runs_count_and_seeding(self):
        runs = sample_runs(CounterProgram(2, 2), 5, seed=3)
        assert len(runs) == 5
        again = sample_runs(CounterProgram(2, 2), 5, seed=3)
        assert [r.choices for r in runs] == [r.choices for r in again]

    def test_random_deadlock_detected(self):
        run = run_random(CounterProgram(2, 2, deadlock_after=1), seed=0)
        assert run.deadlocked


class TestExploreOrSample:
    def test_exhaustive_within_cap(self):
        result = explore_or_sample(CounterProgram(2, 2), max_runs=100)
        assert result.exhaustive
        assert len(result.runs) == 6
        assert "exhaustive" in result.describe()

    def test_falls_back_to_sampling(self):
        result = explore_or_sample(CounterProgram(3, 3), max_runs=5,
                                   sample=7, seed=1)
        assert not result.exhaustive
        assert len(result.runs) == 7
        assert "sampled" in result.describe()

    def test_sampling_reports_seed_provenance(self):
        """Regression: the sampling fallback must say which seeds it used
        (sample_runs assigns seed..seed+n-1), so individual runs can be
        replayed with run_random(program, seed)."""
        result = explore_or_sample(CounterProgram(3, 3), max_runs=5,
                                   sample=7, seed=11)
        assert result.sample_seed == 11
        assert result.sample_count == 7
        assert "seeds 11..17" in result.describe()
        # the provenance is honest: seed 11 really is the first sampled run
        assert result.runs[0].choices == run_random(
            CounterProgram(3, 3), 11).choices

    def test_exhaustive_results_omit_seed_provenance(self):
        result = explore_or_sample(CounterProgram(2, 2), max_runs=100)
        assert result.sample_seed is None
        assert "seeds" not in result.describe()

    def test_partitions(self):
        result = ExplorationResult(runs=[
            Run(ComputationBuilder().freeze(), ()),
            Run(ComputationBuilder().freeze(), (), deadlocked=True),
            Run(ComputationBuilder().freeze(), (), truncated=True),
        ])
        assert len(result.completed_runs) == 1
        assert len(result.deadlocked_runs) == 1
        assert len(result.truncated_runs) == 1
