"""The interleaving explorer.

A concurrent program's behaviour is the set of executions its scheduler
may produce.  GEM's verification method quantifies over *all* legal
computations of a program (``PROG sat R``); this module realises that
quantification, bounded:

* :func:`explore` -- exhaustive DFS over scheduling choices, yielding
  every distinct maximal run up to a step bound (and a run cap);
* :func:`run_random` / :func:`sample_runs` -- seeded random walks, for
  statistical smoke-testing and benchmarks where exhaustion is too
  expensive;
* :func:`explore_or_sample` -- exhaustive if the run cap suffices, else
  sampled (reported in the result).

Replay discipline: the explorer re-executes prefixes from fresh states
(see :mod:`repro.sim.runtime`), so interpreters may mutate freely.

Fairness.  A *maximal* run (no enabled action at the end, state final)
trivially satisfies weak fairness: nothing enabled remains unscheduled.
Deadlocked runs (nothing enabled, not final) are yielded too -- lack of
deadlock is itself a property the paper proves, so the explorer must
surface them rather than hide them.  Truncated runs are flagged; the
caller decides whether to treat them as failures (liveness) or ignore
them (safety is prefix-closed, so a truncated run's verdicts remain
sound for safety restrictions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import RunCapExceeded, VerificationError
from .runtime import Action, Program, Run, SimState, advance_postponed

#: Guard against interpreter bugs producing unbounded executions.
DEFAULT_MAX_STEPS = 10_000
DEFAULT_MAX_RUNS = 100_000


def replay_prefix(program: Program, choices: Sequence[int]) -> SimState:
    """Fresh state advanced through ``choices``.

    The engine's frontier sharding replays choice prefixes to split the
    exploration tree, so this is public API, not just an explorer detail.
    """
    state = program.initial_state()
    for choice in choices:
        actions = state.enabled()
        state.step(actions[choice])
    return state


# historical (pre-engine) private name, kept for callers in the wild
_replay = replay_prefix


def replay_with_postponed(program: Program, choices: Sequence[int]):
    """Like :func:`replay_prefix`, also tracking the partial-order
    reduction's postponement counters along the path.

    Returns ``(state, postponed)`` where ``postponed`` maps each
    process with an enabled action at the resulting state's history to
    how many consecutive preceding steps it was passed over.  Counters
    depend only on the choice path (never on ample decisions), so any
    replayer -- the shard planner, a worker resuming a prefix --
    reconstructs them identically.
    """
    state = program.initial_state()
    postponed: dict = {}
    for choice in choices:
        actions = state.enabled()
        chosen = actions[choice]
        postponed = advance_postponed(postponed, actions, chosen)
        state.step(chosen)
    return state, postponed


def explore(
    program: Program,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_runs: int = DEFAULT_MAX_RUNS,
    prefix: Sequence[int] = (),
    por: Optional[object] = None,
    dfa: Optional[object] = None,
) -> Iterator[Run]:
    """Enumerate every maximal run of ``program``, depth-first.

    Yields runs in a deterministic order (choice index order).  Raises
    :class:`RunCapExceeded` when the run cap is exceeded -- a silent
    cap would turn "verified over all executions" into a lie.

    ``prefix`` restricts the walk to the subtree below that choice
    sequence (yielded ``Run.choices`` still include it); the engine's
    shards each explore one prefix so that concatenating their runs in
    prefix order reproduces the full DFS order exactly.  ``max_steps``
    counts total choices including the prefix; ``max_runs`` caps the
    runs produced by *this* call.

    ``por`` (an :class:`repro.engine.por.AmpleSelector`, duck-typed)
    enables partial-order reduction: at each branch point only the
    selector's ample subset of enabled actions is expanded.  Choice
    indices still index the *full* enabled list, so recorded runs
    replay through :func:`replay_prefix` unchanged, and the reduced run
    set is a subset of the full DFS order.

    ``dfa`` (an :class:`repro.core.automata.AutomatonMonitor`,
    duck-typed) enables on-the-fly temporal checking: internal nodes
    feed their prefix to the monitor's restriction DFAs, and verdicts
    decided early (rejecting/accepting sinks reached) ride on each
    ``Run.decided`` so the checker can skip those restrictions.  POR
    prunes first, the monitor probes second; both are pure functions of
    state+path, so the run census, replay and witnesses are unchanged.
    """
    if max_steps < 1:
        raise VerificationError("max_steps must be positive")
    produced = 0

    def rec(choices: Tuple[int, ...], mnode) -> Iterator[Run]:
        nonlocal produced
        if por is None:
            state = replay_prefix(program, choices)
            postponed = None
        else:
            state, postponed = replay_with_postponed(program, choices)
        actions = state.enabled()
        if not actions or len(choices) >= max_steps:
            produced += 1
            if produced > max_runs:
                raise RunCapExceeded(
                    f"more than {max_runs} runs; raise max_runs or shrink "
                    "the program"
                )
            decided = mnode.decided if mnode is not None else ()
            if actions:
                yield Run(state.computation(), choices, truncated=True,
                          blocked=tuple(str(a) for a in actions),
                          decided=decided)
            elif state.is_final():
                yield Run(state.computation(), choices, decided=decided)
            else:
                yield Run(state.computation(), choices, deadlocked=True,
                          decided=decided)
            return
        # probe only at internal nodes: a leaf's "prefix" is the full
        # computation, which the checker is about to examine anyway
        if mnode is not None:
            mnode = dfa.advance(mnode, state, len(choices))
        if por is None:
            branches = range(len(actions))
        else:
            branches = por.ample(state, actions, postponed)
        for i in branches:
            yield from rec(choices + (i,), mnode)

    root = dfa.root() if dfa is not None else None
    return rec(tuple(prefix), root)


def run_random(
    program: Program,
    seed: int,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Run:
    """One seeded random maximal run (deterministic per seed)."""
    rng = random.Random(seed)
    state = program.initial_state()
    choices: List[int] = []
    while len(choices) < max_steps:
        actions = state.enabled()
        if not actions:
            break
        i = rng.randrange(len(actions))
        state.step(actions[i])
        choices.append(i)
    actions = state.enabled()
    if actions:
        return Run(state.computation(), tuple(choices), truncated=True,
                   blocked=tuple(str(a) for a in actions))
    if state.is_final():
        return Run(state.computation(), tuple(choices))
    return Run(state.computation(), tuple(choices), deadlocked=True)


def sample_runs(
    program: Program,
    n: int,
    seed: int = 0,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> List[Run]:
    """``n`` seeded random runs (seeds ``seed..seed+n-1``)."""
    return [run_random(program, seed + i, max_steps) for i in range(n)]


@dataclass
class ExplorationResult:
    """All runs gathered for a program, with provenance.

    When the runs came from the sampling fallback, ``sample_seed`` and
    ``sample_count`` record the seed range actually used
    (``sample_seed .. sample_seed + sample_count - 1``, one seed per
    run, as :func:`sample_runs` assigns them) so any individual run can
    be replayed with ``run_random(program, seed)``.

    ``por_pruned`` counts the enabled branches partial-order reduction
    declined to expand during (the exhaustive attempt of) this
    exploration -- runs *proven redundant*, a different thing entirely
    from runs *not attempted* because a sample cap replaced exhaustion;
    :meth:`describe` reports the two separately.

    ``slice_hits`` / ``slice_fallbacks`` record, once a verification
    has consumed these runs, how many temporal restriction checks were
    decided exactly on the computation slice versus walked over the
    history lattice (:meth:`record_slice`, filled in by
    :meth:`repro.engine.Engine.verify`).  Slice-exact verdicts stay
    exact even when the *run census* is sampled -- provenance worth
    surfacing separately from the sampled/exhaustive mode.
    """

    runs: List[Run] = field(default_factory=list)
    exhaustive: bool = True
    sample_seed: Optional[int] = None
    sample_count: Optional[int] = None
    por_pruned: int = 0
    slice_hits: int = 0
    slice_fallbacks: int = 0
    #: restriction verdicts decided early by the automaton monitor
    #: during this exploration (rejecting sinks = branches whose checks
    #: were cut, accepting sinks = satisfied-early) and how many
    #: temporal restrictions were DFA-inert (:meth:`record_dfa`)
    dfa_cuts: int = 0
    dfa_accepts: int = 0
    dfa_inert: int = 0

    @property
    def completed_runs(self) -> List[Run]:
        return [r for r in self.runs if r.completed]

    @property
    def deadlocked_runs(self) -> List[Run]:
        return [r for r in self.runs if r.deadlocked]

    @property
    def truncated_runs(self) -> List[Run]:
        return [r for r in self.runs if r.truncated]

    def distinct_computations(self) -> int:
        """Number of distinct partial orders among the runs.

        Sampling (and, on some programs, even exhaustion) yields
        interleavings that collapse to the same computation; honest
        reporting counts what was actually distinct rather than
        pretending every run was an independent check.
        """
        return len({r.computation.stable_fingerprint() for r in self.runs})

    def describe(self) -> str:
        mode = "exhaustive" if self.exhaustive else "sampled"
        provenance = ""
        if not self.exhaustive and self.sample_seed is not None:
            # sampled runs and POR-pruned branches are different losses:
            # the former were never attempted (cap), the latter were
            # proven redundant -- surface both counts, never conflated
            count = (self.sample_count
                     if self.sample_count is not None else len(self.runs))
            last = self.sample_seed + max(count, 1) - 1
            provenance = f", {count} sampled, seeds {self.sample_seed}..{last}"
        pruned = (f", {self.por_pruned} branches pruned by por"
                  if self.por_pruned else "")
        sliced = ""
        if self.slice_hits or self.slice_fallbacks:
            sliced = (f", {self.slice_hits} checks slice-exact, "
                      f"{self.slice_fallbacks} walk fallbacks")
        dfa = ""
        if self.dfa_cuts or self.dfa_accepts or self.dfa_inert:
            dfa = (f", {self.dfa_cuts} branches cut early by dfa "
                   f"({self.dfa_accepts} satisfied-early), "
                   f"{self.dfa_inert} restrictions dfa-inert")
        return (
            f"{mode}: {len(self.runs)} runs "
            f"({self.distinct_computations()} distinct, "
            f"{len(self.completed_runs)} completed, "
            f"{len(self.deadlocked_runs)} deadlocked, "
            f"{len(self.truncated_runs)} truncated"
            f"{provenance}{pruned}{sliced}{dfa})"
        )

    def record_slice(self, hits: int, fallbacks: int) -> None:
        """Annotate with the slice routing tallies of a verification
        that consumed these runs (provenance only; never affects
        verdicts)."""
        self.slice_hits = int(hits)
        self.slice_fallbacks = int(fallbacks)

    def record_dfa(self, cuts: int, accepts: int, inert: int) -> None:
        """Annotate with the automaton monitor's tallies (provenance
        only; never affects verdicts)."""
        self.dfa_cuts = int(cuts)
        self.dfa_accepts = int(accepts)
        self.dfa_inert = int(inert)


def explore_or_sample(
    program: Program,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_runs: int = DEFAULT_MAX_RUNS,
    sample: int = 200,
    seed: int = 0,
    tracer: Optional[object] = None,
    por: Optional[object] = None,
    dfa: Optional[object] = None,
) -> ExplorationResult:
    """Exhaustive exploration when it fits in ``max_runs``, else sampling.

    The result records which you got -- verification reports must say
    "verified over all N executions" or "checked on N samples", never
    blur the two.  Only :class:`RunCapExceeded` triggers the sampling
    fallback; bad bounds and genuine interpreter failures propagate.

    ``tracer`` (a :class:`repro.obs.Tracer`, duck-typed) records the
    exploration as an ``explore`` span -- plus a ``sample`` span when
    the fallback fires -- each annotated with the run count.

    ``por`` (an :class:`repro.engine.por.AmpleSelector`) reduces the
    exhaustive attempt; random sampling is never reduced (a sample is
    one arbitrary interleaving already).  The selector's pruned-branch
    count is reported either way, so a result can honestly say both
    "N runs were sampled" and "M branches were pruned before the cap
    was hit".

    ``dfa`` (an :class:`repro.core.automata.AutomatonMonitor`) enables
    on-the-fly temporal checking of the exhaustive attempt; sampled
    walks are never monitored (each is a single path, checked once
    post-hoc anyway).  The monitor's early-verdict tallies land on the
    result either way.
    """
    if tracer is None:
        from ..obs.trace import NULL_TRACER
        tracer = NULL_TRACER

    def pruned() -> int:
        return por.pruned if por is not None else 0

    def cuts() -> "Tuple[int, int]":
        if dfa is None:
            return 0, 0
        return dfa.cuts, dfa.accepts

    try:
        with tracer.span("explore") as span:
            runs = list(explore(program, max_steps=max_steps,
                                max_runs=max_runs, por=por, dfa=dfa))
            span.set_meta(runs=len(runs), por_pruned=pruned())
        result = ExplorationResult(runs=runs, exhaustive=True,
                                   por_pruned=pruned())
    except RunCapExceeded:
        with tracer.span("sample", attrs={"seed": seed, "count": sample}):
            runs = sample_runs(program, sample, seed=seed,
                               max_steps=max_steps)
        result = ExplorationResult(
            runs=runs,
            exhaustive=False,
            sample_seed=seed,
            sample_count=sample,
            por_pruned=pruned(),
        )
    result.dfa_cuts, result.dfa_accepts = cuts()
    return result
