"""Execution substrate: programs, states, runs, and the interleaving
explorer that generates GEM computations from concurrent programs."""

from ..core.errors import RunCapExceeded
from .runtime import Action, Program, Run, SimState, SimpleState
from .scheduler import (
    DEFAULT_MAX_RUNS,
    DEFAULT_MAX_STEPS,
    ExplorationResult,
    explore,
    explore_or_sample,
    replay_prefix,
    run_random,
    sample_runs,
)

__all__ = [
    "Action", "Program", "Run", "SimState", "SimpleState",
    "explore", "replay_prefix", "run_random", "sample_runs",
    "explore_or_sample", "ExplorationResult", "RunCapExceeded",
    "DEFAULT_MAX_STEPS", "DEFAULT_MAX_RUNS",
]
