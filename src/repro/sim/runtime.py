"""The simulation substrate: programs, states, and runs.

The paper verifies *programs* (Monitor, CSP, ADA) against *problem*
specifications.  To do that mechanically we need every legal execution
of a program as a GEM computation.  This module defines the interface
between concrete language interpreters (:mod:`repro.langs`) and the
interleaving explorer (:mod:`repro.sim.scheduler`):

* a :class:`Program` produces a fresh :class:`SimState`;
* a :class:`SimState` exposes the currently *enabled actions* (one per
  process that could take its next atomic step), performs a chosen
  action -- mutating itself and appending GEM events to its
  :class:`~repro.core.computation.ComputationBuilder` -- and reports
  whether it is final (no process will ever move again);
* the scheduler explores the tree of choices.

States are advanced by *replay*: the explorer never snapshots a state,
it re-executes a prefix of choices from a fresh state.  That keeps
interpreters free to use ordinary mutable Python objects, at the cost of
O(depth) re-execution per branch point -- a fine trade for the model
sizes bounded checking needs (DESIGN.md §5).

The contract that makes replay sound: ``enabled()`` must be
*deterministic* (same state history, same action list in the same
order), and ``step(choice)`` must be deterministic given the choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Protocol, Sequence, Tuple

from ..core.computation import Computation, ComputationBuilder


@dataclass(frozen=True)
class Action:
    """One enabled atomic step.

    ``process`` names the process taking the step; ``label`` describes
    it (for deadlock reports and scheduler debugging).  ``key`` is the
    stable identifier the interpreter dispatches on; two states reached
    by the same choices must enumerate action keys identically.
    """

    process: str
    label: str
    key: object = None

    def __str__(self) -> str:
        return f"{self.process}:{self.label}"


class SimState(Protocol):
    """What a language interpreter must expose to the scheduler."""

    def enabled(self) -> Sequence[Action]:
        """Actions currently enabled, in deterministic order."""
        ...

    def step(self, action: Action) -> None:
        """Perform ``action``: mutate state, emit events."""
        ...

    def is_final(self) -> bool:
        """No action will ever be enabled again (clean termination)."""
        ...

    def computation(self) -> Computation:
        """Freeze and return the computation built so far."""
        ...


class Program(Protocol):
    """A factory of fresh initial states."""

    def initial_state(self) -> SimState:
        ...


@dataclass
class Run:
    """One completed (or truncated) execution.

    ``deadlocked`` means no action was enabled but the state was not
    final: some process is blocked forever.  ``truncated`` means the
    step bound was hit first; liveness verdicts on truncated runs are
    unreliable and the scheduler flags them.
    """

    computation: Computation
    choices: Tuple[int, ...]
    deadlocked: bool = False
    truncated: bool = False
    blocked: Tuple[str, ...] = ()

    @property
    def completed(self) -> bool:
        return not self.deadlocked and not self.truncated

    def describe(self) -> str:
        status = (
            "deadlock" if self.deadlocked
            else "truncated" if self.truncated
            else "completed"
        )
        return (
            f"run({status}, {len(self.computation)} events, "
            f"{len(self.choices)} steps)"
        )


class SimpleState:
    """Convenience base for interpreter states.

    Provides the computation builder, per-process control-flow chaining
    (each event a process performs is enabled by its previous event),
    and final-event bookkeeping.  Interpreters call
    :meth:`emit` instead of touching the builder directly.
    """

    def __init__(self, builder: Optional[ComputationBuilder] = None) -> None:
        self.builder = builder or ComputationBuilder()
        self._last_by_process: dict = {}

    def emit(
        self,
        process: Optional[str],
        element: str,
        event_class: str,
        params: Optional[dict] = None,
        extra_enables: Iterable = (),
        chain: bool = True,
    ):
        """Append one event.

        If ``process`` is given and ``chain`` is true, the process's
        previous event enables this one (control flow).  Events in
        ``extra_enables`` (Event or EventId) also enable it
        (cross-process causality: signals, lock hand-offs, messages).
        """
        ev = self.builder.add_event(element, event_class, params)
        if process is not None and chain:
            prev = self._last_by_process.get(process)
            if prev is not None:
                self.builder.add_enable(prev, ev)
        for src in extra_enables:
            self.builder.add_enable(src, ev)
        if process is not None:
            self._last_by_process[process] = ev
        return ev

    def last_event_of(self, process: str):
        """The most recent event the process performed, if any."""
        return self._last_by_process.get(process)

    def computation(self) -> Computation:
        return self.builder.freeze()
