"""The simulation substrate: programs, states, and runs.

The paper verifies *programs* (Monitor, CSP, ADA) against *problem*
specifications.  To do that mechanically we need every legal execution
of a program as a GEM computation.  This module defines the interface
between concrete language interpreters (:mod:`repro.langs`) and the
interleaving explorer (:mod:`repro.sim.scheduler`):

* a :class:`Program` produces a fresh :class:`SimState`;
* a :class:`SimState` exposes the currently *enabled actions* (one per
  process that could take its next atomic step), performs a chosen
  action -- mutating itself and appending GEM events to its
  :class:`~repro.core.computation.ComputationBuilder` -- and reports
  whether it is final (no process will ever move again);
* the scheduler explores the tree of choices.

States are advanced by *replay*: the explorer never snapshots a state,
it re-executes a prefix of choices from a fresh state.  That keeps
interpreters free to use ordinary mutable Python objects, at the cost of
O(depth) re-execution per branch point -- a fine trade for the model
sizes bounded checking needs (DESIGN.md §5).

The contract that makes replay sound: ``enabled()`` must be
*deterministic* (same state history, same action list in the same
order), and ``step(choice)`` must be deterministic given the choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Protocol, Sequence, Tuple

from ..core.computation import Computation, ComputationBuilder


@dataclass(frozen=True)
class Footprint:
    """Static read/write access summary of an action (or of a process's
    whole remaining behaviour), used by partial-order reduction.

    Tokens are opaque hashable values chosen by the interpreter --
    typically ``("kind", name)`` tuples naming the elements, queues and
    shared variables an action observes or mutates.  Two actions
    *conflict* under the standard rule: a write on either side against
    any access on the other.  Non-conflicting enabled actions must
    genuinely commute -- executing them in either order must yield the
    same interpreter state and the same computation (partial order) --
    and must not enable/disable each other; that contract is what makes
    the reduction fingerprint-preserving (see :mod:`repro.engine.por`).
    """

    reads: FrozenSet = frozenset()
    writes: FrozenSet = frozenset()

    def conflicts(self, other: "Footprint") -> bool:
        """Write/write or read/write overlap in either direction."""
        if self.writes & (other.reads | other.writes):
            return True
        return bool(other.writes & self.reads)


def advance_postponed(postponed, actions: Sequence["Action"],
                      chosen: "Action") -> dict:
    """Partial-order reduction's postponement counters, advanced one step.

    Every process with an enabled action in ``actions`` other than the
    ``chosen`` one is postponed one more consecutive step; the chosen
    process and processes with nothing enabled reset (drop out).  A pure
    function of the choice path -- never of any ample decision -- so any
    replayer reconstructs the counters identically (see
    :mod:`repro.engine.por`).
    """
    old = postponed or {}
    out: dict = {}
    for action in actions:
        p = action.process
        if p != chosen.process and p not in out:
            out[p] = old.get(p, 0) + 1
    return out


@dataclass(frozen=True)
class Action:
    """One enabled atomic step.

    ``process`` names the process taking the step; ``label`` describes
    it (for deadlock reports and scheduler debugging).  ``key`` is the
    stable identifier the interpreter dispatches on; two states reached
    by the same choices must enumerate action keys identically.
    """

    process: str
    label: str
    key: object = None

    def __str__(self) -> str:
        return f"{self.process}:{self.label}"


class SimState(Protocol):
    """What a language interpreter must expose to the scheduler.

    Interpreters may additionally implement the two optional
    partial-order-reduction hooks (duck-typed; their absence simply
    disables the reduction for that interpreter):

    ``por_action_footprint(action) -> Optional[Footprint]``
        Access summary of one *enabled* action.  ``None`` means
        "unknown" and forces full expansion at this state.

    ``por_remaining_footprints() -> Dict[str, Footprint]``
        For every process that may still act (keyed by process name,
        pseudo-processes allowed), an over-approximation of the
        accesses of *all* its future actions from this state onward.
        A process absent from the map is promised to never act again.

    Contract (the ample-set argument in :mod:`repro.engine.por` relies
    on each point; the differential oracle ``check_por_agrees`` tests
    them empirically):

    * each process's enabled actions are sequential -- new actions for
      a process appear only from its own steps or are covered by a
      pseudo-process entry in the remaining map;
    * an action's true effects (state mutated, events emitted,
      enabledness of other processes changed) are covered by its
      declared footprint whenever the footprint is conflict-free
      against every other process's remaining footprint;
    * two enabled actions with non-conflicting footprints commute to
      the *same* computation (identical partial order, hence identical
      ``stable_fingerprint``).
    """

    def enabled(self) -> Sequence[Action]:
        """Actions currently enabled, in deterministic order."""
        ...

    def step(self, action: Action) -> None:
        """Perform ``action``: mutate state, emit events."""
        ...

    def is_final(self) -> bool:
        """No action will ever be enabled again (clean termination)."""
        ...

    def computation(self) -> Computation:
        """Freeze and return the computation built so far."""
        ...


class Program(Protocol):
    """A factory of fresh initial states."""

    def initial_state(self) -> SimState:
        ...


@dataclass
class Run:
    """One completed (or truncated) execution.

    ``deadlocked`` means no action was enabled but the state was not
    final: some process is blocked forever.  ``truncated`` means the
    step bound was hit first; liveness verdicts on truncated runs are
    unreliable and the scheduler flags them.
    """

    computation: Computation
    choices: Tuple[int, ...]
    deadlocked: bool = False
    truncated: bool = False
    blocked: Tuple[str, ...] = ()
    #: restriction verdicts the automaton monitor decided on a proper
    #: prefix of this run (``(name, holds)`` pairs); the checker skips
    #: re-deriving these (provenance ``"dfa-early"``) -- verdicts are
    #: identical either way, so reports never depend on this field
    decided: Tuple[Tuple[str, bool], ...] = ()

    @property
    def completed(self) -> bool:
        return not self.deadlocked and not self.truncated

    def describe(self) -> str:
        status = (
            "deadlock" if self.deadlocked
            else "truncated" if self.truncated
            else "completed"
        )
        return (
            f"run({status}, {len(self.computation)} events, "
            f"{len(self.choices)} steps)"
        )


class SimpleState:
    """Convenience base for interpreter states.

    Provides the computation builder, per-process control-flow chaining
    (each event a process performs is enabled by its previous event),
    and final-event bookkeeping.  Interpreters call
    :meth:`emit` instead of touching the builder directly.
    """

    def __init__(self, builder: Optional[ComputationBuilder] = None) -> None:
        self.builder = builder or ComputationBuilder()
        self._last_by_process: dict = {}

    def emit(
        self,
        process: Optional[str],
        element: str,
        event_class: str,
        params: Optional[dict] = None,
        extra_enables: Iterable = (),
        chain: bool = True,
    ):
        """Append one event.

        If ``process`` is given and ``chain`` is true, the process's
        previous event enables this one (control flow).  Events in
        ``extra_enables`` (Event or EventId) also enable it
        (cross-process causality: signals, lock hand-offs, messages).
        """
        ev = self.builder.add_event(element, event_class, params)
        if process is not None and chain:
            prev = self._last_by_process.get(process)
            if prev is not None:
                self.builder.add_enable(prev, ev)
        for src in extra_enables:
            self.builder.add_enable(src, ev)
        if process is not None:
            self._last_by_process[process] = ev
        return ev

    def last_event_of(self, process: str):
        """The most recent event the process performed, if any."""
        return self._last_by_process.get(process)

    def computation(self) -> Computation:
        return self.builder.freeze()
