"""GEM computations: partially ordered sets of events.

"Each computation consists of a possibly infinite set of objects called
events, a partial relation ⊳ (the enable relation), and two strict
partial orders: ⇒ₑ (the element order) and ⇒ (the temporal order)"
(Section 3).  This library models *finite* computations -- every
verification question we ask is bounded (see DESIGN.md §2).

The three relations:

* ``⊳`` (enable) -- explicit edges added by the builder; partial,
  irreflexive, not transitive.
* ``⇒ₑ`` (element order) -- implied by event identity: ``a ⇒ₑ b`` iff
  ``a`` and ``b`` occur at the same element and ``a``'s occurrence number
  is smaller.  Total per element by construction.
* ``⇒`` (temporal order) -- the transitive closure of ``⊳ ∪ ⇒ₑ`` minus
  identity; must be irreflexive (no causal cycles), enforced at
  :meth:`ComputationBuilder.freeze` time.

A :class:`Computation` is immutable; build one with
:class:`ComputationBuilder`, which assigns occurrence numbers
automatically and validates event arguments against declared event
classes when a specification is attached.
"""

from __future__ import annotations

import hashlib
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .element import EventClassRef
from .errors import ComputationError, CycleError
from .event import Event
from .group import GroupStructure
from .ids import ElementName, EventClassName, EventId, ThreadId
from .order import Relation


class Computation:
    """An immutable finite GEM computation.

    Do not construct directly; use :class:`ComputationBuilder`.
    """

    __slots__ = (
        "_events",
        "_by_id",
        "_by_element",
        "_enable_pairs",
        "_enable",
        "_temporal",
        "_groups",
        "_evalcore",
    )

    def __init__(
        self,
        events: Sequence[Event],
        enable_pairs: Iterable[Tuple[EventId, EventId]],
        groups: Optional[GroupStructure] = None,
    ) -> None:
        self._events: Tuple[Event, ...] = tuple(events)
        self._by_id: Dict[EventId, Event] = {}
        self._by_element: Dict[ElementName, List[Event]] = {}
        for ev in self._events:
            if ev.eid in self._by_id:
                raise ComputationError(f"duplicate event identity {ev.eid}")
            self._by_id[ev.eid] = ev
            self._by_element.setdefault(ev.element, []).append(ev)

        for element, seq in self._by_element.items():
            seq.sort(key=lambda e: e.index)
            for pos, ev in enumerate(seq, start=1):
                if ev.index != pos:
                    raise ComputationError(
                        f"occurrence numbers at element {element!r} are not "
                        f"contiguous from 1: saw {ev.index} at position {pos}"
                    )

        self._enable_pairs: Tuple[Tuple[EventId, EventId], ...] = tuple(enable_pairs)
        ids = [ev.eid for ev in self._events]
        id_set = set(ids)
        for a, b in self._enable_pairs:
            if a not in id_set or b not in id_set:
                raise ComputationError(
                    f"enable edge ({a}, {b}) references an unknown event"
                )
            if a == b:
                raise ComputationError(f"enable relation is irreflexive; got {a} ⊳ {a}")

        self._enable: Relation = Relation.from_pairs(ids, self._enable_pairs)

        # temporal = transitive closure of enable ∪ element-order covers
        covers: List[Tuple[EventId, EventId]] = []
        for seq in self._by_element.values():
            for prev, nxt in zip(seq, seq[1:]):
                covers.append((prev.eid, nxt.eid))
        combined = Relation.from_pairs(ids, list(self._enable_pairs) + covers)
        if not combined.is_acyclic():
            raise CycleError(
                "enable relation plus element order has a causal cycle; the "
                "temporal order cannot be irreflexive",
                combined.find_cycle(),
            )
        self._temporal: Relation = combined.transitive_closure()
        self._groups = groups
        # lazily built bitmask tables (repro.core.evalcore.event_index)
        self._evalcore = None

    # -- event access ------------------------------------------------------

    @property
    def events(self) -> Tuple[Event, ...]:
        """All events, in builder insertion order."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __contains__(self, eid: EventId) -> bool:
        return eid in self._by_id

    def event(self, eid: EventId) -> Event:
        try:
            return self._by_id[eid]
        except KeyError:
            raise ComputationError(f"no event {eid} in this computation") from None

    def elements(self) -> Tuple[ElementName, ...]:
        """Elements at which at least one event occurred."""
        return tuple(self._by_element)

    def events_at(self, element: ElementName) -> Tuple[Event, ...]:
        """Events at ``element`` in element order (possibly empty)."""
        return tuple(self._by_element.get(element, ()))

    def events_of(self, ref: EventClassRef) -> Tuple[Event, ...]:
        """Events of class ``ref.event_class`` at ``ref.element``, in order."""
        return tuple(
            ev for ev in self._by_element.get(ref.element, ())
            if ev.event_class == ref.event_class
        )

    def events_of_class(self, event_class: EventClassName) -> Tuple[Event, ...]:
        """Events of the named class at *any* element, in insertion order."""
        return tuple(ev for ev in self._events if ev.event_class == event_class)

    def events_of_thread(self, thread: ThreadId) -> Tuple[Event, ...]:
        """Events labelled with ``thread``, in temporal-consistent order."""
        members = [ev for ev in self._events if thread in ev.threads]
        order = {eid: i for i, eid in enumerate(self.temporal_relation.topological_order())}
        members.sort(key=lambda e: order[e.eid])
        return tuple(members)

    def thread_ids(self) -> Tuple[ThreadId, ...]:
        """All thread instances appearing on any event (sorted)."""
        seen: Set[ThreadId] = set()
        for ev in self._events:
            seen.update(ev.threads)
        return tuple(sorted(seen))

    # -- relations -----------------------------------------------------------

    @property
    def enable_relation(self) -> Relation:
        """The raw enable relation ``⊳`` over event ids."""
        return self._enable

    @property
    def temporal_relation(self) -> Relation:
        """The temporal order ``⇒`` (already transitively closed)."""
        return self._temporal

    @property
    def groups(self) -> Optional[GroupStructure]:
        """Scope structure the computation was built under, if any."""
        return self._groups

    def enables(self, a: EventId, b: EventId) -> bool:
        """``a ⊳ b`` -- direct enabling only (not transitive)."""
        return self._enable.holds(a, b)

    def element_precedes(self, a: EventId, b: EventId) -> bool:
        """``a ⇒ₑ b`` -- same element, smaller occurrence number."""
        return a.element == b.element and a.index < b.index and a in self and b in self

    def temporally_precedes(self, a: EventId, b: EventId) -> bool:
        """``a ⇒ b`` in the temporal order."""
        return self._temporal.holds(a, b)

    def concurrent(self, a: EventId, b: EventId) -> bool:
        """Potentially concurrent: distinct and temporally unordered."""
        if a == b:
            return False
        return not self._temporal.holds(a, b) and not self._temporal.holds(b, a)

    def enabled_by(self, b: EventId) -> Tuple[Event, ...]:
        """Events ``a`` with ``a ⊳ b``."""
        return tuple(self._by_id[a] for a in self._enable.predecessors(b))

    def enables_of(self, a: EventId) -> Tuple[Event, ...]:
        """Events ``b`` with ``a ⊳ b``."""
        return tuple(self._by_id[b] for b in self._enable.successors(a))

    # -- misc ------------------------------------------------------------------

    def fingerprint(self) -> int:
        """Hash identifying the computation up to event insertion order.

        Two computations with the same events (same identities, classes,
        parameters, threads) and the same enable edges are the same
        partial order -- different interleavings of independent actions
        produce equal fingerprints, which lets verification deduplicate
        runs soundly (every property checked in this library is a
        function of the partial order, never of builder insertion
        order).
        """
        return hash((
            frozenset(self._events),
            frozenset(self._enable_pairs),
        ))

    def stable_fingerprint(self) -> str:
        """SHA-256 fingerprint, stable across processes and interpreter runs.

        :meth:`fingerprint` is built on ``hash``, which Python salts per
        process -- fine for deduplication inside one interpreter, useless
        as a key shared between worker processes or persisted to disk.
        This digest depends only on the canonical content of the
        computation (event identities, classes, parameters, thread
        labels, and enable edges, each in sorted order), so the
        verification engine can use it to merge results across
        ``multiprocessing`` workers and as an on-disk cache key.  Like
        :meth:`fingerprint`, it identifies the partial order: builder
        insertion order does not affect it.
        """
        h = hashlib.sha256()
        for rec in sorted(
            repr((ev.eid.element, ev.eid.index, ev.event_class, ev.params,
                  tuple(sorted(map(repr, ev.threads)))))
            for ev in self._events
        ):
            h.update(rec.encode("utf-8"))
            h.update(b"\x00")
        h.update(b"\x1e")
        for rec in sorted(
            repr((a.element, a.index, b.element, b.index))
            for a, b in self._enable_pairs
        ):
            h.update(rec.encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()

    def describe(self) -> str:
        """Multi-line human-readable dump (events then enable edges)."""
        lines = [f"computation with {len(self._events)} events"]
        for ev in self._events:
            lines.append("  " + ev.describe())
        for a, b in self._enable_pairs:
            lines.append(f"  {a} ⊳ {b}")
        return "\n".join(lines)

    def relabel_threads(
        self, labels: Mapping[EventId, FrozenSet[ThreadId]]
    ) -> "Computation":
        """Copy with thread labels *added* per the mapping (identity-preserving)."""
        new_events = [
            ev.with_threads(labels[ev.eid]) if ev.eid in labels else ev
            for ev in self._events
        ]
        return Computation(new_events, self._enable_pairs, self._groups)


class ComputationBuilder:
    """Accumulates events and enable edges, then freezes.

    Occurrence numbers are assigned automatically per element in call
    order, so the element order is exactly the builder's call order at
    each element.  ``add_enable`` accepts either :class:`Event` or
    :class:`EventId` arguments.
    """

    def __init__(self, groups: Optional[GroupStructure] = None) -> None:
        self._events: List[Event] = []
        self._counts: Dict[ElementName, int] = {}
        self._pairs: List[Tuple[EventId, EventId]] = []
        self._ids: Set[EventId] = set()
        self._groups = groups

    def add_event(
        self,
        element: ElementName,
        event_class: EventClassName,
        params: Optional[Mapping[str, Any]] = None,
        threads: Iterable[ThreadId] = (),
    ) -> Event:
        """Append the next event at ``element`` and return it."""
        index = self._counts.get(element, 0) + 1
        self._counts[element] = index
        ev = Event.make(element, index, event_class, params, frozenset(threads))
        self._events.append(ev)
        self._ids.add(ev.eid)
        return ev

    def add_enable(self, a: "Event | EventId", b: "Event | EventId") -> None:
        """Record ``a ⊳ b``.

        If the builder carries a :class:`GroupStructure`, the edge is
        checked against the scope rule immediately so violations point
        at the offending call site.
        """
        ai = a.eid if isinstance(a, Event) else a
        bi = b.eid if isinstance(b, Event) else b
        if ai not in self._ids or bi not in self._ids:
            raise ComputationError(
                f"add_enable({ai}, {bi}): both events must be added first"
            )
        if self._groups is not None:
            target = next(ev for ev in self._events if ev.eid == bi)
            if not self._groups.may_enable(ai.element, bi.element, target.event_class):
                raise ComputationError(
                    f"scope violation: {ai.element!r} may not enable "
                    f"{bi.element}.{target.event_class!r}"
                )
        self._pairs.append((ai, bi))

    def event_count(self, element: Optional[ElementName] = None) -> int:
        if element is None:
            return len(self._events)
        return self._counts.get(element, 0)

    def events_so_far(self) -> List[Event]:
        """The events added so far, in call order (live list: read-only).

        A constant-time peek for callers that must not pay
        :meth:`freeze` just to look at recent events -- the automaton
        monitor's significance trigger scans the tail of this list at
        every scheduler node.
        """
        return self._events

    def last_event_at(self, element: ElementName) -> Optional[Event]:
        """Most recently added event at ``element``, if any."""
        count = self._counts.get(element, 0)
        if count == 0:
            return None
        target = EventId(element, count)
        for ev in reversed(self._events):
            if ev.eid == target:
                return ev
        return None

    def freeze(self) -> Computation:
        """Validate and produce the immutable :class:`Computation`."""
        return Computation(self._events, self._pairs, self._groups)
