"""GEM groups: scope structure over elements and other groups.

Groups "are sets of elements and/or other groups, and are used to
describe the compound structure of more complex language and problem
components" (Section 4).  Group structure imposes legality restrictions
on the enable relation, mirroring static scope rules.

The access rule of the paper (footnote 4): given ``e1 @ EL1`` and
``e2 @ EL2``, ``e1`` can enable ``e2`` iff ::

    access(EL1, EL2)  ∨  (e2 is a port of G ∧ access(EL1, G))

where ::

    access(X, Y)    ≡ ∃G [ Y ∈ G ∧ contained(X, G) ]
    contained(X, G) ≡ X ∈ G ∨ ∃G' [ X ∈ G' ∧ contained(G', G) ]

(``∈`` is *direct* membership).  All elements and groups are assumed to
be enclosed in a single implicit surrounding group, so siblings at the
top level can always reach one another.

Groups may be disjoint, hierarchical, or overlapping; this module makes
no tree assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from .element import EventClassRef
from .errors import SpecificationError
from .ids import ElementName, GroupName

#: Name of the implicit group enclosing the whole specification.
ROOT_GROUP: GroupName = "<root>"


@dataclass(frozen=True)
class GroupDecl:
    """Declaration of one group.

    ``members`` are names of directly contained elements and/or groups.
    ``ports`` designate event classes whose events serve as "access
    holes" into this group (PORTS(...) in the paper).  ``restrictions``
    are explicit restrictions attached to the group, stored opaquely
    (same reasoning as in :mod:`repro.core.element`).
    """

    name: GroupName
    members: Tuple[str, ...] = ()
    ports: Tuple[EventClassRef, ...] = ()
    restrictions: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("group name must be non-empty")
        if len(set(self.members)) != len(self.members):
            raise SpecificationError(f"group {self.name!r} lists duplicate members")

    @staticmethod
    def make(
        name: GroupName,
        members: Iterable[str] = (),
        ports: Iterable[EventClassRef] = (),
        restrictions: Iterable[object] = (),
    ) -> "GroupDecl":
        return GroupDecl(name, tuple(members), tuple(ports), tuple(restrictions))

    def renamed(self, new_name: GroupName) -> "GroupDecl":
        return GroupDecl(new_name, self.members, self.ports, self.restrictions)


class GroupStructure:
    """The full scope structure of a specification.

    Built from a list of element names and :class:`GroupDecl` objects.
    Any element or group not directly contained in some declared group
    becomes a direct member of the implicit :data:`ROOT_GROUP`, per the
    paper's single-surrounding-group assumption.
    """

    def __init__(
        self,
        elements: Iterable[ElementName],
        groups: Iterable[GroupDecl] = (),
    ) -> None:
        self._elements: Tuple[ElementName, ...] = tuple(elements)
        self._groups: Dict[GroupName, GroupDecl] = {}
        for g in groups:
            if g.name == ROOT_GROUP:
                raise SpecificationError(f"{ROOT_GROUP!r} is reserved")
            if g.name in self._groups:
                raise SpecificationError(f"duplicate group declaration {g.name!r}")
            self._groups[g.name] = g

        element_set = set(self._elements)
        if len(element_set) != len(self._elements):
            raise SpecificationError("duplicate element names in group structure")

        # direct membership: member name -> set of groups it belongs to
        self._member_of: Dict[str, Set[GroupName]] = {}
        for g in self._groups.values():
            for m in g.members:
                if m not in element_set and m not in self._groups:
                    raise SpecificationError(
                        f"group {g.name!r} lists unknown member {m!r}"
                    )
                self._member_of.setdefault(m, set()).add(g.name)

        # everything not a member of any declared group joins the root
        root_members: List[str] = []
        for name in list(self._elements) + list(self._groups):
            if not self._member_of.get(name):
                root_members.append(name)
                self._member_of.setdefault(name, set()).add(ROOT_GROUP)
        self._root_members = tuple(root_members)
        self._contained_cache: Dict[Tuple[str, GroupName], bool] = {}

        self._check_containment_acyclic()

        # ports: element -> set of event class names that are ports of
        # some group; and (element, class) -> groups it is a port of
        self._port_groups: Dict[Tuple[ElementName, str], Set[GroupName]] = {}
        for g in self._groups.values():
            for ref in g.ports:
                if ref.element not in element_set:
                    raise SpecificationError(
                        f"group {g.name!r} declares port {ref} at unknown "
                        f"element {ref.element!r}"
                    )
                if not self._contained(ref.element, g.name):
                    raise SpecificationError(
                        f"port {ref} of group {g.name!r} must name an event "
                        "class at an element contained in the group"
                    )
                self._port_groups.setdefault(
                    (ref.element, ref.event_class), set()
                ).add(g.name)

    # -- introspection -----------------------------------------------------

    @property
    def elements(self) -> Tuple[ElementName, ...]:
        return self._elements

    @property
    def groups(self) -> Tuple[GroupDecl, ...]:
        return tuple(self._groups.values())

    def group(self, name: GroupName) -> GroupDecl:
        try:
            return self._groups[name]
        except KeyError:
            raise SpecificationError(f"unknown group {name!r}") from None

    def has_element(self, name: ElementName) -> bool:
        return name in set(self._elements)

    def direct_groups_of(self, member: str) -> FrozenSet[GroupName]:
        """Groups that *directly* contain ``member`` (root included)."""
        return frozenset(self._member_of.get(member, set()))

    def _check_containment_acyclic(self) -> None:
        # A group contained (transitively) in itself makes `contained`
        # non-terminating in the paper's recursive definition.
        state: Dict[GroupName, int] = {}

        def visit(g: GroupName, stack: List[GroupName]) -> None:
            state[g] = 1
            stack.append(g)
            for parent in self._member_of.get(g, ()):
                if parent == ROOT_GROUP:
                    continue
                if state.get(parent) == 1:
                    cycle = stack[stack.index(parent):] + [parent]
                    raise SpecificationError(
                        f"group containment cycle: {' -> '.join(cycle)}"
                    )
                if state.get(parent, 0) == 0:
                    visit(parent, stack)
            stack.pop()
            state[g] = 2

        for g in self._groups:
            if state.get(g, 0) == 0:
                visit(g, [])

    # -- the paper's predicates ----------------------------------------------

    def _contained(self, x: str, g: GroupName) -> bool:
        """contained(X, G): X ∈ G, or X ∈ G' and contained(G', G)."""
        key = (x, g)
        cached = self._contained_cache.get(key)
        if cached is not None:
            return cached
        result = False
        direct = self._member_of.get(x, set())
        if g in direct:
            result = True
        else:
            for parent in direct:
                if parent != ROOT_GROUP and self._contained(parent, g):
                    result = True
                    break
        self._contained_cache[key] = result
        return result

    def contained(self, x: str, g: GroupName) -> bool:
        """Public form of the ``contained`` predicate (footnote 4)."""
        if g == ROOT_GROUP:
            return True
        return self._contained(x, g)

    def access(self, x: str, y: str) -> bool:
        """access(X, Y) ≡ ∃G [ Y ∈ G ∧ contained(X, G) ].

        True when X and Y share a group, or Y is global to X.
        """
        for g in self._member_of.get(y, set()):
            if g == ROOT_GROUP:
                # Y is a direct member of the root; everything is
                # contained in the root group.
                return True
            if self._contained(x, g):
                return True
        return False

    def port_groups(self, element: ElementName, event_class: str) -> FrozenSet[GroupName]:
        """Groups for which events of ``element.event_class`` are ports."""
        return frozenset(self._port_groups.get((element, event_class), set()))

    def may_enable(
        self,
        source_element: ElementName,
        target_element: ElementName,
        target_event_class: Optional[str] = None,
    ) -> bool:
        """May an event at ``source_element`` enable one at ``target_element``?

        Implements the enable-legality rule of footnote 4.  When
        ``target_event_class`` is given, the port clause is consulted;
        otherwise only plain element access applies.
        """
        if self.access(source_element, target_element):
            return True
        if target_event_class is not None:
            for g in self._port_groups.get((target_element, target_event_class), ()):
                if self.access(source_element, g):
                    return True
        return False

    def access_table(self) -> Dict[ElementName, FrozenSet[ElementName]]:
        """For each element, the set of elements its events may enable.

        Regenerates the "allowed communications" table of Section 4
        (ignoring ports, as the paper's table does).
        """
        table: Dict[ElementName, FrozenSet[ElementName]] = {}
        for src in self._elements:
            table[src] = frozenset(
                dst for dst in self._elements if self.access(src, dst)
            )
        return table

    def events_visible_outside(self, group: GroupName) -> FrozenSet[EventClassRef]:
        """Port event classes of ``group`` (its public interface)."""
        return frozenset(self.group(group).ports)
