"""The GEM type description facility (Section 6).

"Group and element types may be declared.  Types may be parameterized as
well as defined as refinements of other types.  Each instance of a given
type is an element or group with a structure identical to that of its
type description, except for any explicitly mentioned differences.
Semantically, the GEM type system may be viewed as a simple text
substitution facility."

We realise "text substitution" as template instantiation:

* an :class:`ElementType` holds event-class templates (whose parameter
  type names may reference type parameters as ``$name``) and a
  restriction factory that receives the instance's element name -- so
  restrictions refer to the instantiated element, exactly as textual
  substitution would produce;
* a :class:`GroupType` holds a builder that, given the instance name and
  parameter bindings, produces the instance's nested elements, subgroups
  and ports with hierarchically qualified names (``db.control``,
  ``db.data[3]``...);
* refinement (``TypedVariable = Variable / ADD RESTRICTION ...``) copies
  a base type and appends event classes and/or restrictions.

The paper's running example becomes::

    Variable = ElementType("Variable", event_classes=[
        EventClass("Assign", (ParamSpec("newval", "VALUE"),)),
        EventClass("Getval", (ParamSpec("oldval", "VALUE"),)),
    ], restrictions_fn=variable_semantics)

    IntegerVariable = Variable.refined(
        "IntegerVariable", substitute={"VALUE": "INTEGER"})

    var = IntegerVariable.instantiate("Var")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .element import ElementDecl, EventClassRef
from .errors import SpecificationError
from .event import EventClass, ParamSpec
from .formula import Restriction
from .group import GroupDecl
from .ids import ElementName, GroupName

#: Signature of an element-type restriction factory: receives the
#: instantiated element's name and the type-parameter bindings, returns
#: the restrictions that the instance carries.
ElementRestrictionsFn = Callable[[ElementName, Mapping[str, Any]], Sequence[Restriction]]


def _substitute_type_name(type_name: str, bindings: Mapping[str, Any],
                          substitutions: Mapping[str, str]) -> str:
    out = substitutions.get(type_name, type_name)
    for key, value in bindings.items():
        out = out.replace(f"${key}", str(value))
    return out


class ElementType:
    """A parameterised template for element declarations."""

    def __init__(
        self,
        name: str,
        event_classes: Iterable[EventClass] = (),
        restrictions_fn: Optional[ElementRestrictionsFn] = None,
        params: Sequence[str] = (),
        _substitutions: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self.event_classes = tuple(event_classes)
        self.params = tuple(params)
        self._restriction_fns: Tuple[ElementRestrictionsFn, ...] = (
            (restrictions_fn,) if restrictions_fn else ()
        )
        self._substitutions: Dict[str, str] = dict(_substitutions or {})

    def instantiate(self, instance_name: ElementName, **bindings: Any) -> ElementDecl:
        """Create an element declaration named ``instance_name``.

        Unbound declared parameters and unknown bindings raise
        :class:`SpecificationError` -- type instantiation is total.
        """
        missing = set(self.params) - set(bindings)
        extra = set(bindings) - set(self.params)
        if missing or extra:
            detail = []
            if missing:
                detail.append(f"missing {sorted(missing)}")
            if extra:
                detail.append(f"unexpected {sorted(extra)}")
            raise SpecificationError(
                f"instantiating element type {self.name!r}: {', '.join(detail)}"
            )
        classes = tuple(
            EventClass(
                ec.name,
                tuple(
                    ParamSpec(
                        p.name,
                        _substitute_type_name(p.type_name, bindings,
                                              self._substitutions),
                    )
                    for p in ec.params
                ),
            )
            for ec in self.event_classes
        )
        restrictions: List[Restriction] = []
        for fn in self._restriction_fns:
            restrictions.extend(fn(instance_name, bindings))
        return ElementDecl(instance_name, classes, tuple(restrictions))

    def refined(
        self,
        name: str,
        add_event_classes: Iterable[EventClass] = (),
        add_restrictions_fn: Optional[ElementRestrictionsFn] = None,
        add_params: Sequence[str] = (),
        substitute: Optional[Mapping[str, str]] = None,
    ) -> "ElementType":
        """A new type: this type plus explicitly mentioned differences.

        ``substitute`` maps parameter type names textually (the
        ``TypedVariable(INTEGER)`` pattern); ``add_*`` append structure.
        """
        out = ElementType(
            name,
            self.event_classes + tuple(add_event_classes),
            None,
            self.params + tuple(add_params),
            {**self._substitutions, **(substitute or {})},
        )
        out._restriction_fns = self._restriction_fns + (
            (add_restrictions_fn,) if add_restrictions_fn else ()
        )
        return out

    def __repr__(self) -> str:
        params = f"({', '.join(self.params)})" if self.params else ""
        return f"ElementType {self.name}{params}"


@dataclass(frozen=True)
class GroupInstance:
    """Everything produced by instantiating a group type.

    ``group`` is the instance's own group declaration; ``elements`` and
    ``subgroups`` are all (recursively) created declarations, with fully
    qualified names; ``restrictions`` are the instance's restrictions.
    """

    group: GroupDecl
    elements: Tuple[ElementDecl, ...] = ()
    subgroups: Tuple[GroupDecl, ...] = ()
    restrictions: Tuple[Restriction, ...] = ()

    def all_element_names(self) -> Tuple[ElementName, ...]:
        return tuple(e.name for e in self.elements)

    def merged_with(self, other: "GroupInstance") -> "GroupInstance":
        """Combine two instances under this instance's group (helper)."""
        return GroupInstance(
            self.group,
            self.elements + other.elements,
            self.subgroups + (other.group,) + other.subgroups,
            self.restrictions + other.restrictions,
        )


#: Signature of a group-type builder: (instance name, bindings) ->
#: GroupInstance.  The builder is responsible for qualifying child names
#: with the instance name (use :func:`repro.core.ids.qualified`).
GroupBuilderFn = Callable[[GroupName, Mapping[str, Any]], GroupInstance]


class GroupType:
    """A parameterised template for group structures."""

    def __init__(self, name: str, builder: GroupBuilderFn,
                 params: Sequence[str] = ()):
        self.name = name
        self.params = tuple(params)
        self._builder = builder

    def instantiate(self, instance_name: GroupName, **bindings: Any) -> GroupInstance:
        missing = set(self.params) - set(bindings)
        extra = set(bindings) - set(self.params)
        if missing or extra:
            detail = []
            if missing:
                detail.append(f"missing {sorted(missing)}")
            if extra:
                detail.append(f"unexpected {sorted(extra)}")
            raise SpecificationError(
                f"instantiating group type {self.name!r}: {', '.join(detail)}"
            )
        instance = self._builder(instance_name, dict(bindings))
        if instance.group.name != instance_name:
            raise SpecificationError(
                f"group type {self.name!r} builder must name its group "
                f"{instance_name!r}, got {instance.group.name!r}"
            )
        return instance

    def __repr__(self) -> str:
        params = f"({', '.join(self.params)})" if self.params else ""
        return f"GroupType {self.name}{params}"
