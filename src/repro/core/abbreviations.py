"""Restriction abbreviations (Section 8.2) and a small construction DSL.

"In writing specifications, many restrictions arise repeatedly.  When
these restrictions are complicated, it is useful to abbreviate them with
some operator or predicate."  The paper names five:

* ``E1 → E2`` -- *prerequisite*: every E2 event is enabled by exactly one
  E1 event, and each E1 event enables at most one E2 event;
* ``{E...} → E`` -- *nondeterministic prerequisite*: same, with the
  enabling event drawn from a set of classes;
* *event FORK* ``E → {E...}`` -- E is a prerequisite of each class in the
  set;
* *event JOIN* ``{E...} → E`` -- each class in the set is a prerequisite
  of E;
* ``e at E`` and ``new(e)`` -- intermediate control points (these two are
  atomic predicates, provided by :mod:`repro.core.formula`).

All abbreviations expand into plain :class:`~repro.core.formula.Formula`
objects, so they evaluate, compose, and report exactly like hand-written
restrictions.  Variable names are generated with a prefix derived from
the classes involved to keep counterexamples readable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from .element import EventClassRef
from .formula import (
    And,
    AtMostOne,
    Domain,
    Enables,
    Exists,
    ExistsUnique,
    ForAll,
    Formula,
    Implies,
    Occurred,
    domain,
)

DomainLike = Union[Domain, EventClassRef, str, Iterable]


def _fresh(base: str, taken: List[str]) -> str:
    name = base
    n = 1
    while name in taken:
        n += 1
        name = f"{base}{n}"
    taken.append(name)
    return name


def prerequisite(e1: DomainLike, e2: DomainLike) -> Formula:
    """``E1 → E2``: E1 is a prerequisite to E2.

    Expansion (Section 8.2, abbreviation 1)::

        (∀e2:E2)[occurred(e2) ⊃ (∃! e1:E1)[e1 ⊳ e2]]
        ∧ (∀e1:E1)[(∃ at most one e2:E2)[e1 ⊳ e2]]
    """
    d1, d2 = domain(e1), domain(e2)
    taken: List[str] = []
    v2 = _fresh("e2", taken)
    v1 = _fresh("e1", taken)
    every_e2_enabled_once = ForAll(
        v2, d2, Implies(Occurred(v2), ExistsUnique(v1, d1, Enables(v1, v2)))
    )
    each_e1_enables_at_most_one = ForAll(
        v1, d1, AtMostOne(v2, d2, Enables(v1, v2))
    )
    return And((every_e2_enabled_once, each_e1_enables_at_most_one))


def nondet_prerequisite(sources: Sequence[DomainLike], target: DomainLike) -> Formula:
    """``{E...} → E``: nondeterministic prerequisite (abbreviation 2).

    Every target event is enabled by exactly one event from the union of
    the source classes; each source event enables at most one target.
    """
    union = domain(list(sources))
    return prerequisite(union, target)


def fork(source: DomainLike, targets: Sequence[DomainLike]) -> Formula:
    """Event FORK ``E → {E...}``: E is a prerequisite of every target class."""
    parts = tuple(prerequisite(source, t) for t in targets)
    if not parts:
        raise ValueError("fork needs at least one target class")
    return parts[0] if len(parts) == 1 else And(parts)


def join(sources: Sequence[DomainLike], target: DomainLike) -> Formula:
    """Event JOIN ``{E...} → E``: every source class is a prerequisite of E."""
    parts = tuple(prerequisite(s, target) for s in sources)
    if not parts:
        raise ValueError("join needs at least one source class")
    return parts[0] if len(parts) == 1 else And(parts)


def chain(*stages: DomainLike) -> Formula:
    """``E1 → E2 → ... → En`` -- consecutive prerequisites, conjoined.

    The paper writes sequential code segments this way: "if a sequential
    piece of code consists of actions E1, E2, E3, and E4, we would have
    restriction E1 → E2 → E3 → E4".
    """
    if len(stages) < 2:
        raise ValueError("a prerequisite chain needs at least two stages")
    parts = tuple(
        prerequisite(a, b) for a, b in zip(stages, stages[1:])
    )
    return parts[0] if len(parts) == 1 else And(parts)


def mutual_exclusion_of(
    start_a: DomainLike,
    end_a: DomainLike,
    start_b: DomainLike,
    end_b: DomainLike,
) -> Formula:
    """Exclusion of [start_b, end_b) intervals from [start_a, end_a) intervals.

    A reusable form of the paper's mutual-exclusion restriction (§8.3):
    whenever a ``start_a`` of one transaction and a ``start_b`` of a
    *different* transaction have both occurred, one's interval must have
    closed: either the ``end`` matching ``start_a`` occurred, or the
    ``end`` matching ``start_b`` occurred... once the other started.

    The precise condition checked at every history α::

        ¬( occurred(sa) ∧ ¬occurred(ea) ∧ occurred(sb) ∧ ¬occurred(eb) )

    for ``sa``/``ea`` and ``sb``/``eb`` paired by shared thread labels and
    drawn from distinct threads.  Check at every history via the checker's
    safety route (equivalent to wrapping in □ over all vhs).
    """
    from .formula import DistinctThreads, Not, SameThread

    taken: List[str] = []
    sa = _fresh("sa", taken)
    ea = _fresh("ea", taken)
    sb = _fresh("sb", taken)
    eb = _fresh("eb", taken)

    def open_interval(start_var: str, end_var: str, end_dom: DomainLike) -> Formula:
        # start occurred and its (same-thread) end has not
        inner = ForAll(
            end_var,
            end_dom,
            Implies(SameThread(start_var, end_var), Not(Occurred(end_var))),
        )
        return And((Occurred(start_var), inner))

    body = Implies(
        DistinctThreads(sa, sb),
        Not(And((open_interval(sa, ea, end_a), open_interval(sb, eb, end_b)))),
    )
    return ForAll(sa, domain(start_a), ForAll(sb, domain(start_b), body))
