"""Finite strict partial orders and the algorithms GEM needs on them.

A GEM computation carries three relations over its events:

* the enable relation ``⊳`` -- partial, irreflexive, *not* transitive;
* the element order ``⇒ₑ`` -- a union of total orders, one per element;
* the temporal order ``⇒`` -- the transitive closure of the other two,
  minus identity, required to be a strict partial order.

This module implements the order algebra those definitions need:
transitive closure, cycle detection with witness extraction, transitive
(Hasse) reduction, concurrency tests, down-sets (the histories of
Section 7 are exactly the finite down-sets), antichains, and linear
extensions (the one-event-at-a-time valid history sequences).

Representation: nodes are arbitrary hashable objects, mapped to dense
indices; each relation is stored as one Python ``int`` bitset per node
(``succ[i]`` has bit ``j`` set iff ``i R j``).  Python's big integers
make the closure a tight word-parallel loop, which keeps checking
computations with a few thousand events comfortably fast.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from .errors import CycleError

N = TypeVar("N", bound=Hashable)


class Relation:
    """A finite binary relation over a fixed node universe.

    Immutable once built; construct with :meth:`from_pairs` or through
    :class:`RelationBuilder`.  All heavy queries (closure, reduction,
    topological order) are computed lazily and cached.
    """

    __slots__ = (
        "_nodes",
        "_index",
        "_succ",
        "_pred",
        "_closure_succ",
        "_closure_pred",
        "_topo",
        "_reduction",
    )

    def __init__(self, nodes: Sequence[N], succ_bits: List[int]):
        self._nodes: Tuple[N, ...] = tuple(nodes)
        self._index: Dict[N, int] = {n: i for i, n in enumerate(self._nodes)}
        if len(self._index) != len(self._nodes):
            raise ValueError("duplicate nodes in relation universe")
        if len(succ_bits) != len(self._nodes):
            raise ValueError("successor table size mismatch")
        self._succ: List[int] = list(succ_bits)
        self._pred: Optional[List[int]] = None
        self._closure_succ: Optional[List[int]] = None
        self._closure_pred: Optional[List[int]] = None
        self._topo: Optional[List[int]] = None
        self._reduction: Optional[List[int]] = None

    # -- construction ---------------------------------------------------

    @classmethod
    def from_pairs(cls, nodes: Iterable[N], pairs: Iterable[Tuple[N, N]]) -> "Relation":
        """Build a relation from an iterable of (source, target) pairs."""
        node_list = list(nodes)
        index = {n: i for i, n in enumerate(node_list)}
        succ = [0] * len(node_list)
        for a, b in pairs:
            try:
                ia, ib = index[a], index[b]
            except KeyError as exc:
                raise ValueError(f"pair ({a!r}, {b!r}) references unknown node") from exc
            succ[ia] |= 1 << ib
        return cls(node_list, succ)

    @classmethod
    def empty(cls, nodes: Iterable[N]) -> "Relation":
        node_list = list(nodes)
        return cls(node_list, [0] * len(node_list))

    # -- basic queries ---------------------------------------------------

    @property
    def nodes(self) -> Tuple[N, ...]:
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: N) -> bool:
        return node in self._index

    def pair_count(self) -> int:
        """Number of related pairs (edges)."""
        return sum(bits.bit_count() for bits in self._succ)

    def holds(self, a: N, b: N) -> bool:
        """True iff ``a R b`` in the raw (unclosed) relation."""
        return bool(self._succ[self._index[a]] >> self._index[b] & 1)

    def successors(self, a: N) -> Iterator[N]:
        """Iterate direct successors of ``a``."""
        bits = self._succ[self._index[a]]
        return self._iter_bits(bits)

    def predecessors(self, a: N) -> Iterator[N]:
        """Iterate direct predecessors of ``a``."""
        if self._pred is None:
            self._pred = self._transpose(self._succ)
        return self._iter_bits(self._pred[self._index[a]])

    def pairs(self) -> Iterator[Tuple[N, N]]:
        """Iterate all related pairs."""
        for i, bits in enumerate(self._succ):
            a = self._nodes[i]
            for b in self._iter_bits(bits):
                yield (a, b)

    def _iter_bits(self, bits: int) -> Iterator[N]:
        while bits:
            low = bits & -bits
            yield self._nodes[low.bit_length() - 1]
            bits ^= low

    def _transpose(self, table: List[int]) -> List[int]:
        out = [0] * len(table)
        for i, bits in enumerate(table):
            mask = 1 << i
            b = bits
            while b:
                low = b & -b
                out[low.bit_length() - 1] |= mask
                b ^= low
        return out

    # -- closure & order properties ---------------------------------------

    def succ_table(self) -> List[int]:
        """The raw successor bitset table (``succ[i]`` bit j ⇔ i R j).

        The list is the relation's own storage -- callers must treat it
        as read-only.  Bit positions follow :attr:`nodes` order.
        """
        return self._succ

    def closure_table(self) -> List[int]:
        """The strict-transitive-closure successor table, memoised.

        Computed at most once per instance and shared by every caller
        (``down_set``, ``is_down_closed``, the compiled checker's
        :class:`~repro.core.evalcore.EventIndex`, and every
        :class:`~repro.core.history.History` of the owning computation
        all read the identical list object).
        """
        return self._closure_table()

    def closure_pred_table(self) -> List[int]:
        """Transpose of :meth:`closure_table`, memoised the same way."""
        return self._closure_pred_table()

    def _closure_table(self) -> List[int]:
        """Strict transitive closure as a successor bitset table.

        Computed by DFS-free dynamic programming over a (tentative)
        topological order when acyclic; falls back to iterated squaring
        when the relation has cycles (the closure is still well defined,
        just not a partial order).
        """
        if self._closure_succ is not None:
            return self._closure_succ
        n = len(self._nodes)
        topo = self._try_topological()
        if topo is not None:
            closure = [0] * n
            for i in reversed(topo):
                bits = self._succ[i]
                acc = bits
                b = bits
                while b:
                    low = b & -b
                    acc |= closure[low.bit_length() - 1]
                    b ^= low
                closure[i] = acc
        else:
            closure = list(self._succ)
            changed = True
            while changed:
                changed = False
                for i in range(n):
                    acc = closure[i]
                    b = acc
                    new = acc
                    while b:
                        low = b & -b
                        new |= closure[low.bit_length() - 1]
                        b ^= low
                    if new != acc:
                        closure[i] = new
                        changed = True
        self._closure_succ = closure
        return closure

    def _try_topological(self) -> Optional[List[int]]:
        """Kahn's algorithm; None if the relation is cyclic.

        Ready nodes are taken smallest-index-first (a min-heap), so the
        order is *insertion-stable*: among concurrent nodes, earlier
        insertion wins.  Computation builders insert events in execution
        order, so this linearisation reproduces the recorded execution.
        """
        if self._topo is not None:
            return self._topo
        import heapq

        n = len(self._nodes)
        indeg = [0] * n
        for bits in self._succ:
            b = bits
            while b:
                low = b & -b
                indeg[low.bit_length() - 1] += 1
                b ^= low
        heap = [i for i in range(n) if indeg[i] == 0]
        heapq.heapify(heap)
        order: List[int] = []
        while heap:
            i = heapq.heappop(heap)
            order.append(i)
            b = self._succ[i]
            while b:
                low = b & -b
                j = low.bit_length() - 1
                indeg[j] -= 1
                if indeg[j] == 0:
                    heapq.heappush(heap, j)
                b ^= low
        if len(order) != n:
            return None
        self._topo = order
        return order

    def is_acyclic(self) -> bool:
        """True iff the relation (viewed as a digraph) has no cycle.

        Self-loops count as cycles.
        """
        for i, bits in enumerate(self._succ):
            if bits >> i & 1:
                return False
        return self._try_topological() is not None

    def find_cycle(self) -> Optional[List[N]]:
        """Return one cycle as a node list (first == last), or None."""
        for i, bits in enumerate(self._succ):
            if bits >> i & 1:
                return [self._nodes[i], self._nodes[i]]
        n = len(self._nodes)
        color = [0] * n  # 0 white, 1 grey, 2 black
        parent: Dict[int, int] = {}
        for start in range(n):
            if color[start] != 0:
                continue
            stack: List[Tuple[int, Iterator[int]]] = [(start, self._succ_indices(start))]
            color[start] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for j in it:
                    if color[j] == 0:
                        color[j] = 1
                        parent[j] = node
                        stack.append((j, self._succ_indices(j)))
                        advanced = True
                        break
                    if color[j] == 1:
                        # found cycle j -> ... -> node -> j
                        cyc = [j]
                        cur = node
                        while cur != j:
                            cyc.append(cur)
                            cur = parent[cur]
                        cyc.append(j)
                        cyc.reverse()
                        return [self._nodes[k] for k in cyc]
                if not advanced:
                    color[node] = 2
                    stack.pop()
        return None

    def _succ_indices(self, i: int) -> Iterator[int]:
        bits = self._succ[i]
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def transitive_closure(self) -> "Relation":
        """The strict transitive closure as a new Relation.

        Raises :class:`CycleError` if the relation is cyclic, because GEM
        temporal orders must be irreflexive.  Use :meth:`is_acyclic`
        first when a cycle is an expected (checkable) condition.
        """
        if not self.is_acyclic():
            cycle = self.find_cycle()
            raise CycleError("relation has a causal cycle", cycle)
        return Relation(self._nodes, list(self._closure_table()))

    def closure_holds(self, a: N, b: N) -> bool:
        """True iff ``a R⁺ b`` (strict transitive closure)."""
        return bool(self._closure_table()[self._index[a]] >> self._index[b] & 1)

    def is_strict_partial_order(self) -> bool:
        """True iff the relation is irreflexive and transitive."""
        for i, bits in enumerate(self._succ):
            if bits >> i & 1:
                return False
        closure = self._closure_table()
        for i in range(len(self._nodes)):
            if closure[i] >> i & 1:
                return False
        return all(closure[i] == self._succ[i] for i in range(len(self._nodes)))

    def concurrent(self, a: N, b: N) -> bool:
        """True iff a != b and neither precedes the other in the closure.

        This is the paper's "potentially concurrent": no observable
        order between the two events.
        """
        if a == b:
            return False
        closure = self._closure_table()
        ia, ib = self._index[a], self._index[b]
        return not (closure[ia] >> ib & 1) and not (closure[ib] >> ia & 1)

    # -- derived structures ------------------------------------------------

    def transitive_reduction(self) -> "Relation":
        """Hasse diagram: minimal relation with the same closure.

        Only defined for acyclic relations.
        """
        if not self.is_acyclic():
            raise CycleError("transitive reduction requires an acyclic relation",
                             self.find_cycle())
        if self._reduction is None:
            closure = self._closure_table()
            reduction = []
            for i, bits in enumerate(closure):
                keep = bits
                b = bits
                while b:
                    low = b & -b
                    j = low.bit_length() - 1
                    keep &= ~closure[j]
                    b ^= low
                reduction.append(keep)
            self._reduction = reduction
        return Relation(self._nodes, list(self._reduction))

    def restricted_to(self, keep: Iterable[N]) -> "Relation":
        """Induced sub-relation on ``keep`` (raw pairs only)."""
        keep_set = set(keep)
        sub_nodes = [n for n in self._nodes if n in keep_set]
        pairs = [(a, b) for a, b in self.pairs() if a in keep_set and b in keep_set]
        return Relation.from_pairs(sub_nodes, pairs)

    def union(self, other: "Relation") -> "Relation":
        """Union with another relation over the same node universe."""
        if self._nodes != other._nodes:
            raise ValueError("relations must share an identical node universe")
        return Relation(self._nodes,
                        [a | b for a, b in zip(self._succ, other._succ)])

    def minimal_nodes(self) -> List[N]:
        """Nodes with no predecessor in the raw relation."""
        if self._pred is None:
            self._pred = self._transpose(self._succ)
        return [self._nodes[i] for i in range(len(self._nodes)) if self._pred[i] == 0]

    def maximal_nodes(self) -> List[N]:
        """Nodes with no successor in the raw relation."""
        return [self._nodes[i] for i in range(len(self._nodes)) if self._succ[i] == 0]

    def topological_order(self) -> List[N]:
        """One topological order (deterministic for a given insertion order)."""
        topo = self._try_topological()
        if topo is None:
            raise CycleError("no topological order: relation is cyclic",
                             self.find_cycle())
        return [self._nodes[i] for i in topo]

    def down_set(self, targets: Iterable[N]) -> FrozenSet[N]:
        """All nodes ≤ some target under the closure (targets included).

        Down-sets are exactly GEM histories when applied to a
        computation's temporal order.
        """
        closure_pred = self._closure_pred_table()
        acc = 0
        for t in targets:
            i = self._index[t]
            acc |= closure_pred[i] | (1 << i)
        return frozenset(self._iter_bits(acc))

    def up_set(self, sources: Iterable[N]) -> FrozenSet[N]:
        """All nodes ≥ some source under the closure (sources included)."""
        closure = self._closure_table()
        acc = 0
        for s in sources:
            i = self._index[s]
            acc |= closure[i] | (1 << i)
        return frozenset(self._iter_bits(acc))

    def _closure_pred_table(self) -> List[int]:
        if self._closure_pred is None:
            self._closure_pred = self._transpose(self._closure_table())
        return self._closure_pred

    def is_down_closed(self, subset: Iterable[N]) -> bool:
        """True iff ``subset`` contains every closure-predecessor of its members."""
        closure_pred = self._closure_pred_table()
        mask = 0
        for n in subset:
            mask |= 1 << self._index[n]
        test = mask
        while test:
            low = test & -test
            if closure_pred[low.bit_length() - 1] & ~mask:
                return False
            test ^= low
        return True

    def is_antichain(self, subset: Iterable[N]) -> bool:
        """True iff the members of ``subset`` are pairwise concurrent."""
        members = list(subset)
        closure = self._closure_table()
        for i, a in enumerate(members):
            ia = self._index[a]
            for b in members[i + 1:]:
                ib = self._index[b]
                if closure[ia] >> ib & 1 or closure[ib] >> ia & 1:
                    return False
        return True

    def linear_extensions(self, limit: Optional[int] = None) -> Iterator[List[N]]:
        """Enumerate linear extensions of the closure (at most ``limit``).

        Each extension is a total order consistent with the partial
        order -- the "one event at a time" valid history sequences of
        Section 7.  Enumeration order is deterministic.
        """
        if not self.is_acyclic():
            raise CycleError("linear extensions require an acyclic relation",
                             self.find_cycle())
        n = len(self._nodes)
        pred_masks = self._transpose(self._succ)
        produced = 0
        prefix: List[int] = []
        placed = 0

        def rec() -> Iterator[List[N]]:
            nonlocal produced, placed
            if len(prefix) == n:
                produced += 1
                yield [self._nodes[i] for i in prefix]
                return
            for i in range(n):
                if placed >> i & 1:
                    continue
                if pred_masks[i] & ~placed:
                    continue
                prefix.append(i)
                placed |= 1 << i
                for ext in rec():
                    yield ext
                    if limit is not None and produced >= limit:
                        placed &= ~(1 << i)
                        prefix.pop()
                        return
                placed &= ~(1 << i)
                prefix.pop()

        return rec()

    def count_linear_extensions(self, cap: int = 10_000_000) -> int:
        """Count linear extensions (memoised over down-set masks), up to ``cap``."""
        if not self.is_acyclic():
            raise CycleError("linear extensions require an acyclic relation",
                             self.find_cycle())
        n = len(self._nodes)
        pred_masks = self._transpose(self._succ)
        memo: Dict[int, int] = {}

        def count(placed: int) -> int:
            if placed == (1 << n) - 1:
                return 1
            if placed in memo:
                return memo[placed]
            total = 0
            for i in range(n):
                if placed >> i & 1:
                    continue
                if pred_masks[i] & ~placed:
                    continue
                total += count(placed | (1 << i))
                if total >= cap:
                    break
            memo[placed] = min(total, cap)
            return memo[placed]

        return count(0)


class RelationBuilder:
    """Mutable accumulator for building a :class:`Relation`.

    Nodes are kept in insertion order so downstream algorithms are
    deterministic run to run.
    """

    def __init__(self) -> None:
        self._nodes: List[Hashable] = []
        self._seen: Set[Hashable] = set()
        self._pairs: List[Tuple[Hashable, Hashable]] = []

    def add_node(self, node: Hashable) -> None:
        if node not in self._seen:
            self._seen.add(node)
            self._nodes.append(node)

    def add_pair(self, a: Hashable, b: Hashable) -> None:
        self.add_node(a)
        self.add_node(b)
        self._pairs.append((a, b))

    def build(self) -> Relation:
        return Relation.from_pairs(self._nodes, self._pairs)
