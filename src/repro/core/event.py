"""GEM events and event-class descriptions.

A GEM event "represents a logical action that is regarded as atomic
relative to other events in its computation" (Section 4).  An event is a
structured object carrying:

* its unique identity -- the element at which it occurs plus its
  occurrence number there (:class:`~repro.core.ids.EventId`);
* the *event class* it belongs to (``Assign``, ``Getval``, ``ReqRead``...);
* data parameters, as declared by the event class;
* thread identifiers -- the set of thread instances the event belongs to
  (Section 8.3).

Events are immutable: a computation is a set of unique occurrences, and
all mutation happens in :class:`~repro.core.computation.ComputationBuilder`.

An :class:`EventClass` describes "a set of similar events": the class
name and the parameter signature.  Event classes are declared inside
element (type) descriptions; see :mod:`repro.core.element`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Mapping, Optional, Tuple

from .errors import SpecificationError
from .ids import ElementName, EventClassName, EventId, ThreadId


@dataclass(frozen=True)
class ParamSpec:
    """One declared parameter of an event class.

    ``type_name`` is documentation plus an optional runtime check: GEM's
    type language (``INTEGER``, ``VALUE``, ``1..N``) is open-ended, so we
    validate only the types we know (see :meth:`accepts`).
    """

    name: str
    type_name: str = "VALUE"

    def accepts(self, value: Any) -> bool:
        """Best-effort runtime check of ``value`` against ``type_name``.

        Unknown type names accept everything (GEM types are descriptive).
        Range types use the paper's ``lo..hi`` notation.
        """
        t = self.type_name.upper()
        if t == "INTEGER":
            return isinstance(value, int) and not isinstance(value, bool)
        if t == "BOOLEAN":
            return isinstance(value, bool)
        if ".." in t:
            lo_s, _, hi_s = t.partition("..")
            try:
                lo, hi = int(lo_s), int(hi_s)
            except ValueError:
                return True
            return isinstance(value, int) and lo <= value <= hi
        return True


@dataclass(frozen=True)
class EventClass:
    """Description of a set of similar events: name + parameter signature.

    The paper writes e.g. ``Assign(newval: INTEGER)``.  ``params`` is the
    ordered signature; events of this class must bind every declared
    parameter name.
    """

    name: EventClassName
    params: Tuple[ParamSpec, ...] = ()

    def __post_init__(self) -> None:
        names = [p.name for p in self.params]
        if len(names) != len(set(names)):
            raise SpecificationError(
                f"event class {self.name!r} declares duplicate parameter names"
            )

    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def validate_args(self, args: Mapping[str, Any]) -> None:
        """Raise :class:`SpecificationError` if ``args`` do not fit the signature."""
        declared = set(self.param_names())
        given = set(args)
        if given != declared:
            missing = declared - given
            extra = given - declared
            detail = []
            if missing:
                detail.append(f"missing {sorted(missing)}")
            if extra:
                detail.append(f"unexpected {sorted(extra)}")
            raise SpecificationError(
                f"arguments for event class {self.name!r} do not match its "
                f"signature: {', '.join(detail)}"
            )
        for spec in self.params:
            if not spec.accepts(args[spec.name]):
                raise SpecificationError(
                    f"parameter {spec.name!r} of event class {self.name!r} "
                    f"rejects value {args[spec.name]!r} (declared {spec.type_name})"
                )


def _freeze_params(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class Event:
    """One event occurrence in a computation.

    Identity is the (element, occurrence-number) pair inside ``eid``;
    equality and hashing use the full record so that accidentally
    rebuilding "the same" event with different data is caught as a
    duplicate-identity error by the computation builder rather than
    silently merged.
    """

    eid: EventId
    event_class: EventClassName
    params: Tuple[Tuple[str, Any], ...] = ()
    threads: FrozenSet[ThreadId] = frozenset()

    @staticmethod
    def make(
        element: ElementName,
        index: int,
        event_class: EventClassName,
        params: Optional[Mapping[str, Any]] = None,
        threads: FrozenSet[ThreadId] = frozenset(),
    ) -> "Event":
        return Event(
            eid=EventId(element, index),
            event_class=event_class,
            params=_freeze_params(params or {}),
            threads=frozenset(threads),
        )

    @property
    def element(self) -> ElementName:
        """Name of the element at which this event occurs."""
        return self.eid.element

    @property
    def index(self) -> int:
        """1-based occurrence number at the element."""
        return self.eid.index

    def param(self, name: str) -> Any:
        """Value of parameter ``name``; KeyError if not bound."""
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(f"event {self.eid} has no parameter {name!r}")

    def param_dict(self) -> Mapping[str, Any]:
        return dict(self.params)

    def has_thread(self, thread: ThreadId) -> bool:
        return thread in self.threads

    def with_threads(self, threads: FrozenSet[ThreadId]) -> "Event":
        """Copy of this event with ``threads`` added (identity unchanged)."""
        return Event(self.eid, self.event_class, self.params,
                     self.threads | frozenset(threads))

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``Var^2:Assign(newval=5)``."""
        args = ", ".join(f"{k}={v!r}" for k, v in self.params)
        threads = ""
        if self.threads:
            threads = " [" + ", ".join(str(t) for t in sorted(self.threads)) + "]"
        return f"{self.eid}:{self.event_class}({args}){threads}"

    def __str__(self) -> str:
        return f"{self.eid}:{self.event_class}"
