"""Counterexample extraction for failed restrictions.

A bare "restriction R fails" is a poor verdict for a verification tool;
this module recovers *where* and *under which bindings* a formula
failed, so reports can show the offending history and events.

Witness search mirrors formula evaluation:

* immediate formulae: descend through quantifiers collecting the
  binding that falsifies (for ∀ / satisfies for ∃-failure counts) and
  report it with the history;
* temporal formulae: search the history lattice for a failing history
  (for □-shaped failures) or a maximal path that never satisfies the
  body (for ◇-shaped failures, reported by its final history).

The search re-evaluates subformulae, so it costs about as much as the
original check; it is invoked only on failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .computation import Computation
from .event import Event
from .formula import (
    And,
    Eventually,
    Exists,
    ForAll,
    Formula,
    Henceforth,
    Iff,
    Implies,
    Not,
    Or,
    Restriction,
)
from .history import History, empty_history, full_history


@dataclass
class Witness:
    """A counterexample: the failing history plus the event bindings.

    ``history`` is the prefix at which the innermost immediate formula
    evaluated the wrong way; ``bindings`` are the quantified events that
    produced the failure, outermost first; ``trail`` is a human-readable
    account of the descent.
    """

    history: History
    bindings: Dict[str, Event] = field(default_factory=dict)
    trail: List[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = []
        occurred = sorted(str(e) for e in self.history.events)
        lines.append(f"at history {{{', '.join(occurred)}}}")
        for var, ev in self.bindings.items():
            lines.append(f"  {var} = {ev.describe()}")
        lines.extend(f"  {t}" for t in self.trail)
        return "\n".join(lines)


def find_witness(
    computation: Computation,
    restriction: Restriction,
    history_cap: int = 500_000,
) -> Optional[Witness]:
    """A counterexample for ``restriction`` on ``computation``, or None.

    Returns None when the restriction actually holds (or when the search
    cannot localise the failure below the given cap).
    """
    formula = restriction.formula
    if not formula.is_temporal():
        history = full_history(computation)
        return _search_immediate(formula, history, {}, [])
    return _search_temporal(computation, formula, empty_history(computation),
                            {}, [], [0], history_cap)


def _search_immediate(
    formula: Formula, history: History, env: Dict[str, Event],
    trail: List[str],
) -> Optional[Witness]:
    """Find why an immediate formula is false at ``history``."""
    if formula.holds_at(history, env):
        return None
    if isinstance(formula, ForAll):
        for ev in formula.dom.events(history.computation):
            env2 = dict(env)
            env2[formula.var] = ev
            if not formula.body.holds_at(history, env2):
                return _search_immediate(
                    formula.body, history, env2,
                    trail + [f"∀ fails for {formula.var} = {ev.describe()}"],
                )
    elif isinstance(formula, Exists):
        return Witness(history, dict(env),
                       trail + [f"no {formula.var} in "
                                f"{formula.dom.describe()} satisfies the body"])
    elif isinstance(formula, Implies):
        return _search_immediate(formula.consequent, history, env,
                                 trail + ["antecedent holds, consequent fails"])
    elif isinstance(formula, And):
        for part in formula.parts:
            if not part.holds_at(history, env):
                return _search_immediate(
                    part, history, env,
                    trail + [f"conjunct fails: {part.describe()}"])
    elif isinstance(formula, Or):
        return Witness(history, dict(env),
                       trail + ["no disjunct holds"])
    elif isinstance(formula, Not):
        return Witness(history, dict(env),
                       trail + [f"negated formula holds: "
                                f"{formula.body.describe()}"])
    elif isinstance(formula, Iff):
        return Witness(history, dict(env), trail + ["sides disagree"])
    return Witness(history, dict(env),
                   trail + [f"fails: {formula.describe()}"])


def _search_temporal(
    computation: Computation,
    formula: Formula,
    history: History,
    env: Dict[str, Event],
    trail: List[str],
    visited: List[int],
    cap: int,
) -> Optional[Witness]:
    """Find a failing history for a temporal formula (lattice semantics)."""
    from .checker import LatticeChecker

    checker = LatticeChecker(computation, history_cap=cap)
    if checker.holds(formula, history, env):
        return None

    if isinstance(formula, Henceforth):
        target = _first_failing_history(computation, formula.body, history,
                                        env, checker, visited, cap)
        if target is not None:
            body = formula.body
            sub_trail = trail + ["□ fails at a reachable history"]
            if body.is_temporal():
                return _search_temporal(computation, body, target, env,
                                        sub_trail, visited, cap)
            return (_search_immediate(body, target, env, sub_trail)
                    or Witness(target, dict(env), sub_trail))
    if isinstance(formula, Eventually):
        terminal = _path_avoiding(computation, formula.body, history, env,
                                  checker, visited, cap)
        if terminal is not None:
            return Witness(
                terminal, dict(env),
                trail + ["a maximal path never satisfies the ◇ body; "
                         "shown: its final history"])
    if isinstance(formula, ForAll):
        for ev in formula.dom.events(computation):
            env2 = dict(env)
            env2[formula.var] = ev
            if not checker.holds(formula.body, history, env2):
                return _search_temporal(
                    computation, formula.body, history, env2,
                    trail + [f"∀ fails for {formula.var} = {ev.describe()}"],
                    visited, cap)
    if isinstance(formula, Implies):
        return _search_temporal(computation, formula.consequent, history, env,
                                trail + ["antecedent holds, consequent fails"],
                                visited, cap)
    if isinstance(formula, And):
        for part in formula.parts:
            if not checker.holds(part, history, env):
                return _search_temporal(
                    computation, part, history, env,
                    trail + [f"conjunct fails: {part.describe()}"],
                    visited, cap)
    # other shapes: report at the current history
    if formula.is_temporal():
        return Witness(history, dict(env),
                       trail + [f"fails: {formula.describe()}"])
    return (_search_immediate(formula, history, env, trail)
            or Witness(history, dict(env), trail))


def _first_failing_history(computation, body, start, env, checker, visited,
                           cap) -> Optional[History]:
    """BFS over the lattice from ``start`` for a history falsifying body."""
    seen = {start.events}
    queue = [start]
    while queue:
        h = queue.pop(0)
        visited[0] += 1
        if visited[0] > cap:
            return None
        if not checker.holds(body, h, env) if body.is_temporal() else (
                not body.holds_at(h, env)):
            return h
        for eid in sorted(h.addable()):
            nxt = h.events | {eid}
            if nxt not in seen:
                seen.add(nxt)
                queue.append(History(computation, nxt, _trusted=True))
    return None


def _path_avoiding(computation, body, start, env, checker, visited,
                   cap) -> Optional[History]:
    """A maximal history reachable from ``start`` along a path on which
    the ◇ body never holds; returns the path's final history."""

    def holds_here(h: History) -> bool:
        return (checker.holds(body, h, env) if body.is_temporal()
                else body.holds_at(h, env))

    memo: Dict[frozenset, Optional[History]] = {}

    def search(h: History) -> Optional[History]:
        key = h.events
        if key in memo:
            return memo[key]
        visited[0] += 1
        if visited[0] > cap:
            return None
        if holds_here(h):
            memo[key] = None
            return None
        addable = sorted(h.addable())
        if not addable:
            memo[key] = h
            return h
        for eid in addable:
            nxt = History(computation, h.events | {eid}, _trusted=True)
            found = search(nxt)
            if found is not None:
                memo[key] = found
                return found
        memo[key] = None
        return None

    return search(start)
