"""Histories and valid history sequences (Section 7 of the paper).

A *history* records "what has happened so far": a subset of a
computation's events that is downward closed under the temporal order
(every predecessor of a member is a member).  The set of histories of a
computation, ordered by inclusion, forms a lattice whose maximal point
is the whole computation.

A *valid history sequence* (vhs) is a sequence of histories that

1. is monotonically increasing (``α₀ ⊆ α₁ ⊆ ...``), and
2. only adds pairwise potentially-concurrent events in a single step --
   two events occur "for the first time in the same history" only if
   neither temporally precedes the other.

vhs enjoy the tail-closure property; temporal operators □ and ◇ are
interpreted over them (see :mod:`repro.core.formula`).

One way of viewing a GEM computation "is as the set of all of its valid
history sequences"; the enumerators here realise that view for finite
computations, with caps because vhs counts grow explosively.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .computation import Computation
from .errors import ComputationError
from .ids import EventId


class History:
    """One downward-closed prefix of a computation.

    Immutable.  Equality and hashing consider the event set and the
    identity of the underlying computation, so histories of different
    computations never compare equal.
    """

    __slots__ = ("_comp", "_events", "_hash", "_frontier", "_addable")

    def __init__(self, computation: Computation, events: Iterable[EventId],
                 _trusted: bool = False):
        self._comp = computation
        self._frontier: Optional[FrozenSet[EventId]] = None
        self._addable: Optional[FrozenSet[EventId]] = None
        ev_set = frozenset(events)
        if not _trusted:
            for eid in ev_set:
                if eid not in computation:
                    raise ComputationError(
                        f"history references {eid}, not in the computation"
                    )
            if not computation.temporal_relation.is_down_closed(ev_set):
                raise ComputationError(
                    "history is not downward closed: some member has a "
                    "temporal predecessor outside the history"
                )
        self._events = ev_set
        self._hash = hash((id(computation), ev_set))

    # -- basics ------------------------------------------------------------

    @property
    def computation(self) -> Computation:
        return self._comp

    @property
    def events(self) -> FrozenSet[EventId]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __contains__(self, eid: EventId) -> bool:
        return eid in self._events

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, History)
            and self._comp is other._comp
            and self._events == other._events
        )

    def __hash__(self) -> int:
        return self._hash

    def __le__(self, other: "History") -> bool:
        """Prefix relation between histories of the same computation."""
        if self._comp is not other._comp:
            raise ComputationError("histories of different computations")
        return self._events <= other._events

    def __lt__(self, other: "History") -> bool:
        return self <= other and self._events != other._events

    def __repr__(self) -> str:
        names = ", ".join(str(e) for e in sorted(self._events))
        return f"History({{{names}}})"

    # -- GEM predicates over histories -----------------------------------------

    def occurred(self, eid: EventId) -> bool:
        """``occurred(e)`` evaluated at this history."""
        return eid in self._events

    def is_complete(self) -> bool:
        """True iff this history is the whole computation."""
        return len(self._events) == len(self._comp)

    def frontier(self) -> FrozenSet[EventId]:
        """Members with no temporal successor inside the history.

        Pure and called inside lattice-walk and scheduler inner loops,
        so the result is computed once and cached on the instance.
        """
        if self._frontier is None:
            temporal = self._comp.temporal_relation
            out: Set[EventId] = set()
            for eid in self._events:
                if all(s not in self._events
                       for s in temporal.successors(eid)):
                    out.add(eid)
            self._frontier = frozenset(out)
        return self._frontier

    def addable(self) -> FrozenSet[EventId]:
        """Events of the computation that could extend this history.

        These are exactly the *potential* events: not yet occurred, with
        every temporal predecessor already in the history.  Cached per
        instance (see :meth:`frontier`).
        """
        if self._addable is None:
            temporal = self._comp.temporal_relation
            out: Set[EventId] = set()
            for ev in self._comp.events:
                if ev.eid in self._events:
                    continue
                if all(p in self._events
                       for p in temporal.predecessors(ev.eid)):
                    out.add(ev.eid)
            self._addable = frozenset(out)
        return self._addable

    def potential(self, eid: EventId) -> bool:
        """The paper's ``potential(e)``: e may legally extend this history."""
        if eid in self._events:
            return False
        temporal = self._comp.temporal_relation
        return all(p in self._events for p in temporal.predecessors(eid))

    def new(self, eid: EventId) -> bool:
        """The paper's ``new(e)``: e occurred, and nothing observably follows it.

        ``new(e) ≡ occurred(e) ∧ ¬∃e' [e ⇒ e']`` evaluated inside the
        history: e is in the history and no temporal successor of e is.
        """
        if eid not in self._events:
            return False
        temporal = self._comp.temporal_relation
        return all(s not in self._events for s in temporal.successors(eid))

    def at(self, eid: EventId, target_class_events: Iterable[EventId]) -> bool:
        """The paper's ``e₁ at E₂``: e₁ occurred and has not enabled an E₂ event.

        ``target_class_events`` supplies the (computation-level) extent of
        the event class E₂; the check is whether any of them both occurred
        in this history and is enabled by ``eid``.
        """
        if eid not in self._events:
            return False
        enable = self._comp.enable_relation
        for target in target_class_events:
            if target in self._events and enable.holds(eid, target):
                return False
        return True

    def extend(self, new_events: Iterable[EventId]) -> "History":
        """History with ``new_events`` added (validated down-closed)."""
        return History(self._comp, self._events | set(new_events))


def empty_history(computation: Computation) -> History:
    """The empty prefix of ``computation``."""
    return History(computation, frozenset(), _trusted=True)


def full_history(computation: Computation) -> History:
    """The complete computation viewed as a history."""
    return History(computation, (ev.eid for ev in computation.events), _trusted=True)


def all_histories(
    computation: Computation, cap: Optional[int] = None, include_empty: bool = True
) -> List[History]:
    """Every history (down-set) of ``computation``, smallest first.

    ``cap`` bounds the number produced (ComputationError past the cap) --
    down-set counts are exponential in the width of the order.
    """
    seen: Set[FrozenSet[EventId]] = set()
    out: List[History] = []
    start = empty_history(computation)
    queue: List[History] = [start]
    seen.add(start.events)
    while queue:
        h = queue.pop(0)
        if include_empty or h.events:
            out.append(h)
            if cap is not None and len(out) > cap:
                raise ComputationError(
                    f"more than {cap} histories; raise the cap or shrink the "
                    "computation"
                )
        for eid in sorted(h.addable()):
            nxt = h.events | {eid}
            if nxt not in seen:
                seen.add(nxt)
                queue.append(History(computation, nxt, _trusted=True))
    out.sort(key=lambda h: (len(h.events), tuple(sorted(h.events))))
    return out


class HistorySequence:
    """A valid history sequence (finite).

    Validates the two vhs conditions of Section 7 at construction:
    monotonicity, and pairwise potential concurrency of each step's newly
    added events.  Stuttering (equal consecutive histories) is permitted
    by the paper's ``⊆`` and accepted here.
    """

    __slots__ = ("_histories",)

    def __init__(self, histories: Sequence[History]):
        hs = list(histories)
        if not hs:
            raise ComputationError("a history sequence needs at least one history")
        comp = hs[0].computation
        temporal = comp.temporal_relation
        for i, (prev, cur) in enumerate(zip(hs, hs[1:]), start=1):
            if cur.computation is not comp:
                raise ComputationError("histories of different computations")
            if not prev.events <= cur.events:
                raise ComputationError(
                    f"history sequence not monotonically increasing at step {i}"
                )
            added = cur.events - prev.events
            if not temporal.is_antichain(added):
                raise ComputationError(
                    f"step {i} adds temporally ordered events {sorted(added)}; "
                    "simultaneous events must be potentially concurrent"
                )
        self._histories = tuple(hs)

    @property
    def histories(self) -> Tuple[History, ...]:
        return self._histories

    @property
    def computation(self) -> Computation:
        return self._histories[0].computation

    def __len__(self) -> int:
        return len(self._histories)

    def __getitem__(self, i: int) -> History:
        return self._histories[i]

    def __iter__(self) -> Iterator[History]:
        return iter(self._histories)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HistorySequence)
            and self._histories == other._histories
        )

    def __hash__(self) -> int:
        return hash(self._histories)

    def tail(self, i: int) -> "HistorySequence":
        """The tail sequence S[i] = αᵢ, αᵢ₊₁, ... (tail-closure property)."""
        if not 0 <= i < len(self._histories):
            raise IndexError(f"tail index {i} out of range")
        return HistorySequence(self._histories[i:])

    def first(self) -> History:
        return self._histories[0]

    def is_maximal(self) -> bool:
        """True iff the sequence ends with the complete computation."""
        return self._histories[-1].is_complete()

    def is_initial(self) -> bool:
        """True iff the sequence starts from the empty history."""
        return len(self._histories[0]) == 0


def _antichains(
    candidates: Sequence[EventId], temporal, max_step: Optional[int]
) -> Iterator[FrozenSet[EventId]]:
    """Non-empty antichains among ``candidates`` (already all addable)."""
    n = len(candidates)
    limit = n if max_step is None else min(n, max_step)

    def rec(start: int, chosen: List[EventId]) -> Iterator[FrozenSet[EventId]]:
        if chosen:
            yield frozenset(chosen)
        if len(chosen) == limit:
            return
        for i in range(start, n):
            c = candidates[i]
            # addable events are pairwise unordered only if concurrent;
            # two addable events can never be temporally ordered (an
            # ordered pair cannot both have all predecessors satisfied
            # while the later one's predecessor -- the earlier -- is
            # absent) unless the earlier is among the chosen.  Guard
            # anyway for clarity.
            if all(temporal.concurrent(c, x) for x in chosen):
                chosen.append(c)
                yield from rec(i + 1, chosen)
                chosen.pop()

    return rec(0, [])


def maximal_history_sequences(
    computation: Computation,
    cap: Optional[int] = None,
    max_step: Optional[int] = 1,
) -> Iterator[HistorySequence]:
    """Enumerate maximal vhs from the empty history.

    ``max_step`` bounds how many (pairwise concurrent) events may be
    added per step; ``max_step=1`` yields exactly the linear extensions
    of the temporal order, which is the sound-and-complete fragment for
    the stutter-insensitive formulae used in this reproduction (see
    :mod:`repro.core.checker`).  ``max_step=None`` allows arbitrary
    antichain steps (the full Section 7 semantics).  ``cap`` bounds the
    number of sequences yielded.
    """
    produced = 0

    def rec(prefix: List[History]) -> Iterator[HistorySequence]:
        nonlocal produced
        current = prefix[-1]
        if current.is_complete():
            produced += 1
            yield HistorySequence(prefix)
            return
        addable = sorted(current.addable())
        temporal = computation.temporal_relation
        for step in _antichains(addable, temporal, max_step):
            prefix.append(History(computation, current.events | step, _trusted=True))
            for seq in rec(prefix):
                yield seq
                if cap is not None and produced >= cap:
                    prefix.pop()
                    return
            prefix.pop()

    return rec([empty_history(computation)])


def count_maximal_history_sequences(
    computation: Computation, max_step: Optional[int] = 1, cap: int = 10_000_000
) -> int:
    """Count maximal vhs (memoised on the reached history), up to ``cap``."""
    temporal = computation.temporal_relation
    memo: Dict[FrozenSet[EventId], int] = {}
    total_events = len(computation)

    def count(events: FrozenSet[EventId]) -> int:
        if len(events) == total_events:
            return 1
        if events in memo:
            return memo[events]
        h = History(computation, events, _trusted=True)
        total = 0
        for step in _antichains(sorted(h.addable()), temporal, max_step):
            total += count(events | step)
            if total >= cap:
                break
        memo[events] = min(total, cap)
        return memo[events]

    return count(frozenset())
