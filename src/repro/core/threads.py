"""GEM threads: named chains of enabled events (Section 8.3).

"A thread is an identifier associated with a chain of enabled events of
a particular specified form.  Each thread may be thought of as defining
a sequential process."  The paper introduces threads to label all events
that occur on behalf of one transaction (one Readers/Writers request,
say), so restrictions can talk about *that* request's StartRead as
opposed to anybody else's.

A :class:`ThreadType` is written in the paper's path-expression-like
notation: alternative paths, each a ``::``-separated sequence of stages,
each stage naming an event class at an element (with ``*`` wildcards for
indexed elements such as ``db.data[*]``).  For the Readers/Writers
transaction thread::

    pi_rw = ThreadType("pi_RW", [
        Path.parse("u.Read :: db.control.ReqRead :: db.control.StartRead"
                   " :: db.data[*].Getval :: db.control.EndRead :: u.FinishRead"),
        Path.parse("u.Write :: db.control.ReqWrite :: db.control.StartWrite"
                   " :: db.data[*].Assign :: db.control.EndWrite :: u.FinishWrite"),
    ])

:meth:`ThreadType.label` applies the paper's two rules to a computation:

1. a fresh thread identifier is created for every event matching the
   first stage of some path;
2. the identifier is passed along enable edges, "as long as events
   enable one another in the order prescribed", until the path's last
   stage (or the chain stops matching).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .computation import Computation
from .errors import SpecificationError
from .event import Event
from .ids import EventId, ThreadId, ThreadTypeName


def _element_pattern_regex(pattern: str) -> "re.Pattern[str]":
    """Compile an element pattern: ``*`` matches within one name segment.

    Unlike fnmatch, ``[`` and ``]`` are literal -- GEM element names use
    them for indexing (``data[3]``), so ``db.data[*]`` must match
    ``db.data[3]``.
    """
    out = []
    for ch in pattern:
        if ch == "*":
            out.append(r"[^.]*")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out) + r"\Z")


@dataclass(frozen=True)
class ClassPattern:
    """Matches events by element pattern and event class.

    ``element_pattern`` supports ``*`` wildcards within a name segment,
    so ``db.data[*]`` matches ``db.data[3]`` (brackets are literal).
    """

    element_pattern: str
    event_class: str

    def matches(self, event: Event) -> bool:
        if event.event_class != self.event_class:
            return False
        if "*" not in self.element_pattern:
            return event.element == self.element_pattern
        return _element_pattern_regex(self.element_pattern).match(
            event.element) is not None

    @staticmethod
    def parse(text: str) -> "ClassPattern":
        element, sep, cls = text.strip().rpartition(".")
        if not sep or not element or not cls:
            raise SpecificationError(
                f"cannot parse thread stage {text!r}; expected 'element.Class'"
            )
        return ClassPattern(element, cls)

    def __str__(self) -> str:
        return f"{self.element_pattern}.{self.event_class}"


@dataclass(frozen=True)
class Path:
    """One alternative of a thread type: an ordered tuple of stages."""

    stages: Tuple[ClassPattern, ...]

    def __post_init__(self) -> None:
        if len(self.stages) < 1:
            raise SpecificationError("a thread path needs at least one stage")

    @staticmethod
    def parse(text: str) -> "Path":
        """Parse ``a.B :: c.D :: e.F`` notation."""
        parts = [p for p in text.split("::")]
        return Path(tuple(ClassPattern.parse(p) for p in parts))

    def __str__(self) -> str:
        return " :: ".join(str(s) for s in self.stages)


class ThreadType:
    """A named thread type: a set of alternative paths."""

    def __init__(self, name: ThreadTypeName, paths: Sequence[Path]):
        if not paths:
            raise SpecificationError(f"thread type {name!r} needs at least one path")
        self.name = name
        self.paths = tuple(paths)

    def __repr__(self) -> str:
        alts = " | ".join(f"({p})" for p in self.paths)
        return f"ThreadType {self.name} = {alts}"

    def label(self, computation: Computation, start_serial: int = 1) -> Computation:
        """Return a copy of ``computation`` with this type's thread labels added.

        Serial numbers are assigned in the temporal-topological order of
        the initiating (first-stage) events, so runs are deterministic.
        Existing thread labels (of this or other types) are preserved.
        """
        labels: Dict[EventId, Set[ThreadId]] = {}
        serial = start_serial
        topo = computation.temporal_relation.topological_order()
        by_id = {ev.eid: ev for ev in computation.events}

        for eid in topo:
            ev = by_id[eid]
            matching_paths = [p for p in self.paths if p.stages[0].matches(ev)]
            if not matching_paths:
                continue
            tid = ThreadId(self.name, serial)
            serial += 1
            self._propagate(computation, ev, matching_paths, tid, labels)

        frozen = {eid: frozenset(tids) for eid, tids in labels.items()}
        return computation.relabel_threads(frozen)

    def _propagate(
        self,
        computation: Computation,
        start: Event,
        paths: Sequence[Path],
        tid: ThreadId,
        labels: Dict[EventId, Set[ThreadId]],
    ) -> None:
        """Pass ``tid`` along enable chains matching any of ``paths``."""
        labels.setdefault(start.eid, set()).add(tid)
        # frontier: (event, path, stage-index just matched)
        frontier: List[Tuple[Event, Path, int]] = [(start, p, 0) for p in paths]
        while frontier:
            ev, path, k = frontier.pop()
            if k + 1 >= len(path.stages):
                continue
            next_stage = path.stages[k + 1]
            for nxt in computation.enables_of(ev.eid):
                if next_stage.matches(nxt):
                    already = tid in labels.get(nxt.eid, set())
                    labels.setdefault(nxt.eid, set()).add(tid)
                    if not already:
                        frontier.append((nxt, path, k + 1))

    def instances(self, computation: Computation) -> Tuple[ThreadId, ...]:
        """Thread ids of this type appearing in ``computation`` (sorted)."""
        return tuple(
            t for t in computation.thread_ids() if t.thread_type == self.name
        )


def label_all(
    computation: Computation, thread_types: Iterable[ThreadType]
) -> Computation:
    """Apply several thread types' labelling in sequence."""
    out = computation
    for tt in thread_types:
        out = tt.label(out)
    return out
