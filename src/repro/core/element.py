"""GEM elements: loci of forced sequential activity.

"Elements model the elementary components of a language or problem whose
associated actions must, for some reason, occur sequentially" (Section 4).
Every event belongs to exactly one element, and all events at an element
are totally ordered by the element order ``⇒ₑ``.

An :class:`ElementDecl` is the *specification-side* description of one
element: its name, the event classes that may occur at it, and any
explicit restrictions attached to it.  The *computation-side* element is
implicit -- it is just the set of events whose :class:`EventId` names it,
in occurrence order.

The paper's example (Section 4)::

    Var = ELEMENT
        EVENTS Assign(newval: INTEGER)
               Getval(oldval: INTEGER)

is built here as::

    Var = ElementDecl("Var", [
        EventClass("Assign", (ParamSpec("newval", "INTEGER"),)),
        EventClass("Getval", (ParamSpec("oldval", "INTEGER"),)),
    ])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .errors import SpecificationError
from .event import EventClass
from .ids import ElementName, EventClassName


@dataclass(frozen=True)
class ElementDecl:
    """Declaration of one element: name, event classes, restrictions.

    ``restrictions`` holds restriction objects (see
    :mod:`repro.core.formula`); they are stored opaquely here to avoid an
    import cycle and are collected by :class:`~repro.core.specification.Specification`.
    """

    name: ElementName
    event_classes: Tuple[EventClass, ...] = ()
    restrictions: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("element name must be non-empty")
        names = [ec.name for ec in self.event_classes]
        if len(names) != len(set(names)):
            raise SpecificationError(
                f"element {self.name!r} declares duplicate event classes"
            )

    @staticmethod
    def make(
        name: ElementName,
        event_classes: Iterable[EventClass] = (),
        restrictions: Iterable[object] = (),
    ) -> "ElementDecl":
        return ElementDecl(name, tuple(event_classes), tuple(restrictions))

    def event_class(self, class_name: EventClassName) -> EventClass:
        """Look up a declared event class; SpecificationError if unknown."""
        for ec in self.event_classes:
            if ec.name == class_name:
                return ec
        raise SpecificationError(
            f"element {self.name!r} declares no event class {class_name!r}"
        )

    def declares(self, class_name: EventClassName) -> bool:
        return any(ec.name == class_name for ec in self.event_classes)

    def class_names(self) -> Tuple[EventClassName, ...]:
        return tuple(ec.name for ec in self.event_classes)

    def renamed(self, new_name: ElementName) -> "ElementDecl":
        """Copy under a new name (used when instantiating element types)."""
        return ElementDecl(new_name, self.event_classes, self.restrictions)

    def with_restrictions(self, extra: Iterable[object]) -> "ElementDecl":
        """Copy with additional restrictions appended (type refinement)."""
        return ElementDecl(self.name, self.event_classes,
                           self.restrictions + tuple(extra))

    def with_event_classes(self, extra: Iterable[EventClass]) -> "ElementDecl":
        """Copy with additional event classes appended (type refinement)."""
        return ElementDecl(self.name, self.event_classes + tuple(extra),
                           self.restrictions)


@dataclass(frozen=True)
class EventClassRef:
    """A reference to an event class at a particular element.

    The paper writes these as ``Var.Assign`` or ``db.control.ReqRead``.
    Used by restrictions, thread path expressions, ports, and the
    verification correspondence.
    """

    element: ElementName
    event_class: EventClassName

    def __str__(self) -> str:
        return f"{self.element}.{self.event_class}"

    @staticmethod
    def parse(text: str) -> "EventClassRef":
        """Parse ``element.path.Class`` -- last dot separates the class.

        >>> EventClassRef.parse("db.control.ReqRead")
        EventClassRef(element='db.control', event_class='ReqRead')
        """
        element, sep, event_class = text.rpartition(".")
        if not sep or not element or not event_class:
            raise SpecificationError(
                f"cannot parse event class reference {text!r}; expected "
                "'element.Class'"
            )
        return EventClassRef(element, event_class)

    def matches(self, element: ElementName, event_class: EventClassName) -> bool:
        return self.element == element and self.event_class == event_class
