"""Exception hierarchy for the GEM library.

All library errors derive from :class:`GemError` so callers can catch
model-level failures without masking programming errors (``TypeError``
etc. are never wrapped).

Two families matter to users:

* construction errors (:class:`SpecificationError`,
  :class:`ComputationError`) -- the object being built is malformed;
* verdict errors (:class:`LegalityViolation`, :class:`RestrictionViolation`)
  -- a well-formed computation fails a GEM legality rule or an explicit
  restriction.  These carry enough structure to print a counterexample.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class GemError(Exception):
    """Base class for all GEM model errors."""


class SpecificationError(GemError):
    """A specification, type, or restriction is malformed."""


class ComputationError(GemError):
    """A computation under construction is malformed.

    Examples: two distinct events with the same (element, index) identity,
    an enable edge naming an unknown event, a causal cycle.
    """


class CycleError(ComputationError):
    """The union of enable relation and element order has a cycle.

    GEM requires the temporal order (the transitive closure of the two)
    to be irreflexive; a cycle makes that impossible.  ``cycle`` lists
    event ids along one offending cycle, in order.
    """

    def __init__(self, message: str, cycle: Optional[Sequence[object]] = None):
        super().__init__(message)
        self.cycle: List[object] = list(cycle or [])


class LegalityViolation(GemError):
    """A computation violates one of GEM's implicit legality restrictions.

    ``rule`` names the violated rule (see :mod:`repro.core.legality`),
    ``subjects`` lists the events/elements/groups involved.
    """

    def __init__(self, rule: str, message: str, subjects: Sequence[object] = ()):
        super().__init__(f"[{rule}] {message}")
        self.rule = rule
        self.subjects = tuple(subjects)


class RestrictionViolation(GemError):
    """A computation (or history sequence) violates an explicit restriction.

    ``restriction`` is the name of the failing restriction and
    ``witness`` optionally carries the variable binding under which the
    formula evaluated to false -- the counterexample.
    """

    def __init__(self, restriction: str, message: str, witness: Optional[dict] = None):
        super().__init__(f"restriction {restriction!r} violated: {message}")
        self.restriction = restriction
        self.witness = dict(witness or {})


class VerificationError(GemError):
    """A verification run could not be completed (not a verdict).

    Raised for setup problems such as a correspondence that names
    unknown objects, or an exploration bound of zero.
    """


class RunCapExceeded(VerificationError):
    """Exhaustive exploration produced more runs than its cap allows.

    Distinct from other :class:`VerificationError`\\ s so that callers
    who want to degrade to sampling (``explore_or_sample``, the
    verification engine) can catch exactly this condition without
    swallowing genuine setup or interpreter failures.
    """
