"""Dynamic group structures (paper footnote 5).

"Computed [groups] grow monotonically, even in the presence of dynamic
group structures.  This is because changes to group structure are
represented as events."  The full treatment is in the cited report
[17]; this module implements the mechanism the footnote describes:

* structure-changing events are ordinary GEM events of two reserved
  classes, ``CreateGroup(group)`` and ``AddGroupMember(group, member)``
  (growth only -- removal would break the monotonicity the footnote
  asserts);
* the group structure *in force at an event e* is the static base
  structure plus every structure change in e's causal past (its
  temporal down-set, e included when e is itself a change);
* the dynamic scope rule: an enable edge ``a ⊳ b`` is legal iff the
  structure in force at ``a`` permits it -- you can only use access
  rights whose establishment you have observed.

:func:`check_dynamic_scope` is the drop-in replacement for the static
``scope`` legality rule when a specification declares structure events.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .computation import Computation
from .element import EventClassRef
from .errors import LegalityViolation, SpecificationError
from .event import Event
from .group import GroupDecl, GroupStructure
from .ids import ElementName, EventId, GroupName

#: Reserved structure-change event classes.
CREATE_GROUP = "CreateGroup"
ADD_GROUP_MEMBER = "AddGroupMember"
STRUCTURE_CLASSES = (CREATE_GROUP, ADD_GROUP_MEMBER)


def is_structure_event(event: Event) -> bool:
    return event.event_class in STRUCTURE_CLASSES


def _apply_changes(
    base_elements: Iterable[ElementName],
    base_groups: Iterable[GroupDecl],
    changes: Iterable[Event],
) -> GroupStructure:
    """Base structure plus the given structure-change events."""
    groups: Dict[GroupName, List[str]] = {
        g.name: list(g.members) for g in base_groups
    }
    ports: Dict[GroupName, List[EventClassRef]] = {
        g.name: list(g.ports) for g in base_groups
    }
    for ev in changes:
        if ev.event_class == CREATE_GROUP:
            name = ev.param("group")
            if name in groups:
                raise SpecificationError(
                    f"structure event {ev.eid} re-creates group {name!r}")
            groups[name] = []
            ports[name] = []
        elif ev.event_class == ADD_GROUP_MEMBER:
            name = ev.param("group")
            member = ev.param("member")
            if name not in groups:
                raise SpecificationError(
                    f"structure event {ev.eid} adds to unknown group "
                    f"{name!r}")
            if member not in groups[name]:
                groups[name].append(member)
    decls = [
        GroupDecl.make(name, members, ports=ports.get(name, ()))
        for name, members in groups.items()
    ]
    return GroupStructure(list(base_elements), decls)


class DynamicGroupStructure:
    """Group structure that grows through structure events.

    Built from a base (static) structure; :meth:`in_force_at` computes
    the effective structure at an event of a computation, caching by
    the set of observed changes (growth is monotone, so the cache key
    is small and reuse is high).
    """

    def __init__(
        self,
        elements: Iterable[ElementName],
        base_groups: Iterable[GroupDecl] = (),
    ) -> None:
        self._elements = tuple(elements)
        self._base_groups = tuple(base_groups)
        # validate the base eagerly
        self._base = GroupStructure(self._elements, self._base_groups)
        self._cache: Dict[FrozenSet[EventId], GroupStructure] = {}

    @property
    def base(self) -> GroupStructure:
        return self._base

    def structure_for_changes(self, changes: Iterable[Event]) -> GroupStructure:
        """Effective structure after the given change events."""
        change_list = sorted(changes, key=lambda e: (e.element, e.index))
        key = frozenset(e.eid for e in change_list)
        cached = self._cache.get(key)
        if cached is None:
            cached = _apply_changes(self._elements, self._base_groups,
                                    change_list)
            self._cache[key] = cached
        return cached

    def in_force_at(self, computation: Computation,
                    eid: EventId) -> GroupStructure:
        """The structure in force at event ``eid``: base + every
        structure change in its causal past (itself included)."""
        past = computation.temporal_relation.down_set([eid])
        changes = [
            computation.event(x) for x in past
            if is_structure_event(computation.event(x))
        ]
        return self.structure_for_changes(changes)

    def final(self, computation: Computation) -> GroupStructure:
        """The structure after all of the computation's changes."""
        changes = [e for e in computation.events if is_structure_event(e)]
        return self.structure_for_changes(changes)


def check_dynamic_scope(
    computation: Computation,
    dynamic: DynamicGroupStructure,
) -> List[LegalityViolation]:
    """The scope legality rule under dynamic groups.

    Each enable edge is checked against the structure in force at its
    *source* -- access must have been established in the enabler's
    causal past.
    """
    violations: List[LegalityViolation] = []
    for a, b in computation.enable_relation.pairs():
        structure = dynamic.in_force_at(computation, a)
        target = computation.event(b)
        if not structure.may_enable(a.element, b.element, target.event_class):
            violations.append(LegalityViolation(
                "dynamic-scope",
                f"enable edge {a} ⊳ {b} not permitted by the group "
                f"structure in force at {a}",
                [a, b],
            ))
    return violations


def structure_element_decl(name: ElementName = "structure"):
    """An element declaration for structure-change events."""
    from .element import ElementDecl
    from .event import EventClass, ParamSpec

    return ElementDecl.make(name, [
        EventClass(CREATE_GROUP, (ParamSpec("group", "VALUE"),)),
        EventClass(ADD_GROUP_MEMBER, (ParamSpec("group", "VALUE"),
                                      ParamSpec("member", "VALUE"))),
    ])
