"""GEM's implicit legality restrictions (Sections 3-5).

"There are certain properties that must be true of all legal
computations.  These properties are described by a set of GEM legality
restrictions which are automatically part of any GEM specification."

The rules, as enumerated in the paper's prose:

* ``element-declared`` -- every event belongs to some element specified
  in σ (Section 4: "the events which may legally occur within a
  computation are those belonging to a specified list of elements");
* ``class-declared`` -- the event's class is declared at its element and
  the event's data parameters match the declared signature;
* ``element-order-total`` -- all events at one element are totally
  ordered by ⇒ₑ with contiguous occurrence numbers, and ⇒ₑ never relates
  events of different elements (Section 5);
* ``enable-irreflexive`` -- ⊳ is irreflexive (Section 5);
* ``temporal-order`` -- ⇒ equals the transitive closure of ⊳ ∪ ⇒ₑ minus
  identity and is a strict partial order (Section 3);
* ``scope`` -- every enable edge is permitted by the group structure and
  ports (Section 4, footnote 4).

Much of this is enforced *structurally* by
:class:`~repro.core.computation.Computation` (identity scheme, freeze-time
cycle check), but :func:`check_legality` re-verifies everything against a
specification, because computations can be built without one (e.g. by
projection) and because an independent check is what makes the test
suite trustworthy.

Violations are collected, not raised, so a caller sees all problems at
once.
"""

from __future__ import annotations

from typing import List, Optional

from .computation import Computation
from .errors import LegalityViolation, SpecificationError
from .order import Relation, RelationBuilder


def check_legality(
    computation: Computation, spec: "Specification"  # noqa: F821 (cycle)
) -> List[LegalityViolation]:
    """All legality violations of ``computation`` w.r.t. ``spec``."""
    violations: List[LegalityViolation] = []
    violations.extend(_check_elements_declared(computation, spec))
    violations.extend(_check_classes_declared(computation, spec))
    violations.extend(_check_element_order(computation))
    violations.extend(_check_enable_irreflexive(computation))
    violations.extend(_check_temporal_order(computation))
    violations.extend(_check_scope(computation, spec))
    return violations


def _check_elements_declared(computation, spec) -> List[LegalityViolation]:
    declared = set(spec.element_names())
    out = []
    for ev in computation.events:
        if ev.element not in declared:
            out.append(
                LegalityViolation(
                    "element-declared",
                    f"event {ev.eid} occurs at undeclared element {ev.element!r}",
                    [ev.eid],
                )
            )
    return out


def _check_classes_declared(computation, spec) -> List[LegalityViolation]:
    out = []
    for ev in computation.events:
        decl = spec.element_or_none(ev.element)
        if decl is None:
            continue  # reported by element-declared
        if not decl.declares(ev.event_class):
            out.append(
                LegalityViolation(
                    "class-declared",
                    f"event {ev.eid} has class {ev.event_class!r}, not "
                    f"declared at element {ev.element!r} "
                    f"(declared: {list(decl.class_names())})",
                    [ev.eid],
                )
            )
            continue
        try:
            decl.event_class(ev.event_class).validate_args(ev.param_dict())
        except SpecificationError as exc:
            out.append(
                LegalityViolation("class-declared", str(exc), [ev.eid])
            )
    return out


def _check_element_order(computation) -> List[LegalityViolation]:
    out = []
    for element in computation.elements():
        seq = computation.events_at(element)
        for pos, ev in enumerate(seq, start=1):
            if ev.index != pos:
                out.append(
                    LegalityViolation(
                        "element-order-total",
                        f"occurrence numbers at {element!r} are not contiguous "
                        f"(position {pos} holds {ev.eid})",
                        [ev.eid],
                    )
                )
    return out


def _check_enable_irreflexive(computation) -> List[LegalityViolation]:
    out = []
    for a, b in computation.enable_relation.pairs():
        if a == b:
            out.append(
                LegalityViolation(
                    "enable-irreflexive", f"{a} enables itself", [a]
                )
            )
    return out


def _check_temporal_order(computation) -> List[LegalityViolation]:
    """⇒ must be the strict transitive closure of ⊳ ∪ ⇒ₑ."""
    out = []
    ids = [ev.eid for ev in computation.events]
    builder = RelationBuilder()
    for eid in ids:
        builder.add_node(eid)
    for a, b in computation.enable_relation.pairs():
        builder.add_pair(a, b)
    for element in computation.elements():
        seq = computation.events_at(element)
        for prev, nxt in zip(seq, seq[1:]):
            builder.add_pair(prev.eid, nxt.eid)
    union = builder.build()
    if not union.is_acyclic():
        out.append(
            LegalityViolation(
                "temporal-order",
                "enable ∪ element order is cyclic; temporal order cannot be "
                "irreflexive",
                union.find_cycle() or [],
            )
        )
        return out
    closure = union.transitive_closure()
    temporal = computation.temporal_relation
    for a in ids:
        for b in ids:
            if a == b:
                continue
            want = closure.holds(a, b)
            got = temporal.holds(a, b)
            if want != got:
                out.append(
                    LegalityViolation(
                        "temporal-order",
                        f"temporal order disagrees with closure at ({a}, {b}): "
                        f"closure={want} temporal={got}",
                        [a, b],
                    )
                )
    return out


def _check_scope(computation, spec) -> List[LegalityViolation]:
    groups = spec.group_structure()
    out = []
    for a, b in computation.enable_relation.pairs():
        target = computation.event(b)
        if not groups.may_enable(a.element, b.element, target.event_class):
            out.append(
                LegalityViolation(
                    "scope",
                    f"enable edge {a} ⊳ {b} violates group scope: "
                    f"{a.element!r} has no access to "
                    f"{b.element}.{target.event_class}",
                    [a, b],
                )
            )
    return out
