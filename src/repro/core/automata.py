"""On-the-fly temporal checking: restriction DFAs over the event alphabet.

Every temporal restriction used to be decided *post-hoc*: the scheduler
enumerates complete runs, and only then does the checker (compiled
pipeline, slice, or lattice walk) pass verdict per computation.  This
module compiles each □/◇ restriction into a minimal DFA over the
alphabet "event *i* was added to the execution prefix", so that a
per-path :class:`AutomatonMonitor` threaded through
:func:`repro.sim.scheduler.explore` can decide restrictions *while*
exploring:

* a restriction whose DFA reaches its **rejecting sink** on some prefix
  is *provably violated by every completion* of that prefix -- the whole
  subtree below carries an early-violation verdict and the expensive
  per-computation check is skipped for it;
* a restriction whose DFA reaches its **accepting sink** is provably
  satisfied by every completion, and likewise never re-checked below.

The run *census* is never changed: GEM reports count runs, deadlocks
and failing-run indices, so the monitor cuts **checking work**, not
runs, and report signatures are byte-identical with the monitor on or
off (gated by tests and the ``dfa-differential`` fuzz oracle).

Soundness certificates
----------------------
Enable edges only ever point old → new (builder semantics), which makes
every prefix of an execution *relation-stable*: the temporal/enable
relations, thread labels, and history predicates among prefix events
never change as the execution extends, and every down-closed cut of the
prefix is a reachable cut of the completion.  On top of that:

``BOX_REJECT`` (□ body, under an optional ∀-prefix -- hoisting is valid
because GEM quantifier domains are rigid):  eligible when *falsity
transfers* (:func:`_transfers`): the body false at a fixed cut of the
prefix is false at that same cut in every extension.  Since a □ failing
on the prefix exhibits a reachable prefix cut where the body is false,
and prefix cuts remain reachable cuts of every completion, the
completion provably fails -- the DFA may enter its rejecting sink.
Transfer is a syntactic analysis over the *exact stability* of every
non-``PyPred`` atom at fixed bindings, with quantifier-domain growth
discharged by occurrence-guardedness (``∃`` gains no witness the cut
does not contain) and vacuity (``∀`` over unoccurred bindings holds
trivially).

``DIA_ACCEPT`` (◇ body at top level):  every maximal chain of the
history lattice ends at the full history, so ``body`` true at the top
implies ``AF body`` unconditionally.  Eligible when *truth transfers*
(the body true at the prefix's top stays true at that cut in every
extension, new quantifier bindings included) *and* the body is monotone
in the history at rigid domains -- together: true at the extension's
own top, so the DFA may enter its accepting sink.

``DIA_LEAF``:  a boolean/quantifier tree whose non-temporal atoms are
history-independent and whose ◇-leaves have *monotone* bodies satisfies
``F  ⟺  strip(F)`` evaluated at the full history (``◇q ⟺ q@top`` in
both directions for monotone ``q``).  Not an early decision -- domains
grow -- but a checker fast path at complete computations: no lattice
walk at all (``provenance="dfa"``).

``INERT``:  everything else (``PyPred`` bodies, nested temporal,
counting quantifiers, quantifier blow-up past the cap) is left entirely
to the post-hoc pipeline, with the reason recorded and counted.

Overhead control mirrors the related LTLf2DFA work's cache/explosion
handling: a *significance trigger* skips every scheduler step that
emitted no correspondence-kept event (no freeze, no projection), guard
evaluation is memoised per projected-prefix fingerprint (diamond
prefixes collapse), probing stops after :data:`DEFAULT_PROBE_BUDGET`
guard evaluations and :data:`DEFAULT_PROJECTION_BUDGET` projections, a
quantifier cap rules out grounding blow-ups up front, and the per-spec
analysis (:class:`AutomataPlan`) is cached both on the spec instance
and in a module-level table keyed by spec fingerprint so resident
serve workers never re-analyse a resubmitted workload.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .formula import (
    And,
    AtControl,
    AtElement,
    AtMostOne,
    Concurrent,
    DataCmp,
    DataEq,
    DistinctThreads,
    ElementPrecedes,
    Enables,
    EventEq,
    Eventually,
    Exists,
    ExistsUnique,
    FalseF,
    ForAll,
    Formula,
    Henceforth,
    Iff,
    Implies,
    New,
    Not,
    Occurred,
    Or,
    Potential,
    PyPred,
    Restriction,
    SameThread,
    TemporallyPrecedes,
    TrueF,
)
from .history import full_history

#: Per-monitor probe budget: after this many guard evaluations (memo
#: misses, each one restriction check on one projected prefix) an
#: undecided monitor goes dormant (decisions already taken stay valid).
DEFAULT_PROBE_BUDGET = 1024
#: Per-monitor projection budget: :meth:`AutomatonMonitor.advance`
#: projects, labels and fingerprints at most this many prefixes (memo
#: hits included) before going dormant -- the hard bound on total
#: monitor overhead per task, independent of guard work.
DEFAULT_PROJECTION_BUDGET = 8192
#: Quantifier-count cap: restrictions with more quantifiers than this
#: are classified inert rather than risking grounding blow-up per probe.
DEFAULT_QUANTIFIER_CAP = 8
#: Memoised guard verdicts kept per monitor (prefix fingerprints).
_GUARD_MEMO_CAP = 4096
#: Module-level AutomataPlan cache entries kept (spec fingerprints).
_PLAN_CACHE_CAP = 128

# -- automaton kinds --------------------------------------------------------

BOX_REJECT = "box-reject"
DIA_ACCEPT = "dia-accept"
DIA_LEAF = "dia-leaf"
INERT = "inert"

# -- DFA states (shared by every restriction automaton: the minimal
#    3-state machine WATCH --guard--> ACCEPT|REJECT, sinks absorbing) --

WATCH = "watch"
ACCEPT = "accept"
REJECT = "reject"

#: Atoms whose value depends only on the bound events and the
#: computation's (extension-stable) relations -- never on the history.
_HISTORY_INDEPENDENT = (TrueF, FalseF, Concurrent, EventEq, DataEq,
                        DataCmp, SameThread, DistinctThreads)
#: Atoms monotone-increasing in the history (each is "relation holds and
#: the operands occurred"): once true at a cut, true at every extension.
_MONOTONE_ATOMS = (Occurred, AtElement, Enables, ElementPrecedes,
                   TemporallyPrecedes)
#: Atoms extension-stable at a *fixed* cut but not monotone (``new``,
#: ``potential``, ``at`` can flip in both directions as the cut grows).
_STABLE_ATOMS = (New, Potential, AtControl)


def _count_quantifiers(f: Formula) -> int:
    n = 1 if isinstance(f, (ForAll, Exists, ExistsUnique, AtMostOne)) else 0
    return n + sum(_count_quantifiers(c) for c in f._children())


def _history_independent(f: Formula) -> bool:
    """Every atom of ``f`` is history-independent; no temporal, no PyPred."""
    if isinstance(f, _HISTORY_INDEPENDENT):
        return True
    if isinstance(f, (_MONOTONE_ATOMS + _STABLE_ATOMS)) or isinstance(
            f, (PyPred, Henceforth, Eventually)):
        return False
    if isinstance(f, (ForAll, Exists, ExistsUnique, AtMostOne, Not, And, Or,
                      Implies, Iff)):
        return all(_history_independent(c) for c in f._children())
    return False


def _occ_guarded(f: Formula, var: str) -> bool:
    """``f`` true at a cut forces ``occurred(var)`` at that cut.

    Sound syntactic under-approximation: every :data:`_MONOTONE_ATOMS`
    atom's evaluation conjoins ``history.occurred`` for each operand, so
    any such atom mentioning ``var`` guards it.  Events *new* in an
    extension are never members of a prefix cut, so a guarded body can
    gain no new bindings at a fixed cut -- the lemma both quantifier
    transfer rules below lean on.
    """
    if isinstance(f, (Occurred, AtElement)):
        return f.var == var
    if isinstance(f, (Enables, ElementPrecedes, TemporallyPrecedes)):
        return var in (f.a, f.b)
    if isinstance(f, And):
        return any(_occ_guarded(p, var) for p in f.parts)
    if isinstance(f, Or):
        # Or(()) is constant-false: "true ⇒ occurred" holds vacuously
        return all(_occ_guarded(p, var) for p in f.parts)
    if isinstance(f, (Exists, ExistsUnique)):
        # a witness binding makes the body true, so the body's guard
        # fires -- unless the inner quantifier shadows ``var``
        return f.var != var and _occ_guarded(f.body, var)
    # ForAll/AtMostOne can be vacuously true; Not/Implies/Iff give no
    # positive occurrence guarantee
    return False


def _vacuous(f: Formula, var: str) -> bool:
    """``¬occurred(var)`` at a cut forces ``f`` true there.

    The ∀-rule's companion lemma: bindings new in an extension are
    absent from every prefix cut, so a vacuous body is true of them and
    a ``∀`` that held over the prefix domain still holds over the grown
    one.
    """
    if isinstance(f, TrueF):
        return True
    if isinstance(f, Not):
        # ¬ψ with ψ ⇒ occurred(var): an unoccurred binding falsifies ψ
        return _occ_guarded(f.body, var)
    if isinstance(f, Implies):
        return (_occ_guarded(f.antecedent, var)
                or _vacuous(f.consequent, var))
    if isinstance(f, Or):
        return any(_vacuous(p, var) for p in f.parts)
    if isinstance(f, And):
        return all(_vacuous(p, var) for p in f.parts)
    if isinstance(f, ForAll):
        return f.var != var and _vacuous(f.body, var)
    return False


def _transfers(f: Formula, up: bool) -> bool:
    """Truth (``up``) / falsity (``not up``) of ``f`` at a **fixed** cut
    of a prefix transfers to that same cut viewed in any extension.

    The crux: enable edges only point old → new, so relations, thread
    labels and cut membership among prefix events never change as the
    execution extends -- every non-``PyPred`` atom is *exactly stable*
    at a fixed (cut, old-bindings) pair.  Only quantifier domains grow.
    Hence the rules:

    * atoms transfer both ways; connectives recurse with ``Implies``
      flipping its antecedent and ``Iff`` needing both sides both ways;
    * ``∃`` transfers truth (an old witness stays a witness) and
      transfers falsity only when the body is occurrence-guarded in the
      bound variable (no *new* binding can satisfy it at an old cut);
    * ``∀`` transfers falsity (an old counterexample survives) and
      transfers truth only when new bindings are vacuously satisfied;
    * counting quantifiers need the witness *set* pinned: body stable
      both ways and occurrence-guarded;
    * ``PyPred`` receives the full :class:`History` -- including the
      ambient computation -- and transfers nothing; nested temporal
      operators move the cut and are handled by the outer classifier.
    """
    if isinstance(f, (_HISTORY_INDEPENDENT + _MONOTONE_ATOMS
                      + _STABLE_ATOMS)):
        return True
    if isinstance(f, Not):
        return _transfers(f.body, not up)
    if isinstance(f, (And, Or)):
        return all(_transfers(p, up) for p in f.parts)
    if isinstance(f, Implies):
        return (_transfers(f.antecedent, not up)
                and _transfers(f.consequent, up))
    if isinstance(f, Iff):
        return all(_transfers(side, d)
                   for side in (f.left, f.right) for d in (True, False))
    if isinstance(f, Exists):
        if not _transfers(f.body, up):
            return False
        return up or _occ_guarded(f.body, f.var)
    if isinstance(f, ForAll):
        if not _transfers(f.body, up):
            return False
        return (not up) or _vacuous(f.body, f.var)
    if isinstance(f, (ExistsUnique, AtMostOne)):
        return (_transfers(f.body, True) and _transfers(f.body, False)
                and _occ_guarded(f.body, f.var))
    return False


def _contains_pypred(f: Formula) -> bool:
    return isinstance(f, PyPred) or any(
        _contains_pypred(c) for c in f._children())


def _domain_classes(dom) -> Optional[frozenset]:
    """Event classes a quantifier domain draws from (None = any)."""
    from .formula import AllEvents, ClassAnywhere, ClassAt, UnionDomain

    if isinstance(dom, ClassAnywhere):
        return frozenset((dom.event_class,))
    if isinstance(dom, ClassAt):
        return frozenset((dom.ref.event_class,))
    if isinstance(dom, UnionDomain):
        out = set()
        for part in dom.parts:
            classes = _domain_classes(part)
            if classes is None:
                return None
            out |= classes
        return frozenset(out)
    if isinstance(dom, AllEvents):
        return None
    return None


def _alphabet(f: Formula) -> Optional[frozenset]:
    """The automaton's input alphabet: event classes whose arrival can
    change the formula's verdict on a growing prefix (None = every
    event is a letter).

    Sound because (a) enable edges only point old → new, so any cut of
    an extended prefix restricts -- by repeatedly dropping maximal new
    events -- to a cut of the unextended prefix with the same
    domain-class membership, and (b) when every atom is
    history-independent or occurrence-monotone over *bound* variables,
    a formula's truth at a cut depends only on which domain-class
    events the cut contains.  The cut-sensitive stable atoms (``new``,
    ``potential``, ``at``) read the whole cut, so they widen the
    alphabet to everything, as do ``PyPred`` and all-events domains.
    """
    if isinstance(f, (_HISTORY_INDEPENDENT + _MONOTONE_ATOMS)):
        return frozenset()
    if isinstance(f, _STABLE_ATOMS):
        return None
    if isinstance(f, (Henceforth, Eventually, Not)):
        return _alphabet(f.body)
    if isinstance(f, (And, Or, Implies, Iff)):
        out = set()
        for child in f._children():
            classes = _alphabet(child)
            if classes is None:
                return None
            out |= classes
        return frozenset(out)
    if isinstance(f, (ForAll, Exists, ExistsUnique, AtMostOne)):
        dom_classes = _domain_classes(f.dom)
        body_classes = _alphabet(f.body)
        if dom_classes is None or body_classes is None:
            return None
        return dom_classes | body_classes
    return None


def _monotone(f: Formula, pol: int) -> bool:
    """Monotone in the history at *fixed* quantifier domains: once true
    at a cut, true at every larger cut of the same computation.

    The ``DIA_LEAF`` ◇-body certificate (``◇q ⟺ q@top`` both ways).
    """
    if isinstance(f, _HISTORY_INDEPENDENT):
        return True
    if isinstance(f, _MONOTONE_ATOMS):
        return pol > 0
    if isinstance(f, Not):
        return _monotone(f.body, -pol)
    if isinstance(f, (And, Or)):
        return all(_monotone(p, pol) for p in f.parts)
    if isinstance(f, Implies):
        return (_monotone(f.antecedent, -pol)
                and _monotone(f.consequent, pol))
    if isinstance(f, Iff):
        return (_history_independent(f.left)
                and _history_independent(f.right))
    if isinstance(f, (ForAll, Exists)):
        # domains are rigid within one computation: ∀/∃ of monotone
        # bodies are monotone
        return _monotone(f.body, pol)
    if isinstance(f, (ExistsUnique, AtMostOne)):
        # tallies are not monotone unless every term is history-constant
        return _history_independent(f.body)
    return False


def _dia_leaf(f: Formula) -> bool:
    """``F ⟺ strip(F)@full-history`` certificate for the whole tree."""
    if isinstance(f, Eventually):
        return _monotone(f.body, 1)
    if isinstance(f, Henceforth) or isinstance(f, PyPred):
        return False
    if isinstance(f, _HISTORY_INDEPENDENT):
        return True
    if isinstance(f, (_MONOTONE_ATOMS + _STABLE_ATOMS)):
        # outer atoms are evaluated at the *empty* history by the
        # lattice semantics; only history-independent ones transfer
        return False
    if isinstance(f, (ForAll, Exists, ExistsUnique, AtMostOne, Not, And, Or,
                      Implies, Iff)):
        return all(_dia_leaf(c) for c in f._children())
    return False


def _strip(f: Formula) -> Formula:
    """Replace every ◇-leaf by its body (valid under :func:`_dia_leaf`)."""
    if isinstance(f, Eventually):
        return f.body
    if isinstance(f, Not):
        return Not(_strip(f.body))
    if isinstance(f, And):
        return And(tuple(_strip(p) for p in f.parts))
    if isinstance(f, Or):
        return Or(tuple(_strip(p) for p in f.parts))
    if isinstance(f, Implies):
        return Implies(_strip(f.antecedent), _strip(f.consequent))
    if isinstance(f, Iff):
        return Iff(_strip(f.left), _strip(f.right))
    if isinstance(f, ForAll):
        return ForAll(f.var, f.dom, _strip(f.body))
    if isinstance(f, Exists):
        return Exists(f.var, f.dom, _strip(f.body))
    if isinstance(f, ExistsUnique):
        return ExistsUnique(f.var, f.dom, _strip(f.body))
    if isinstance(f, AtMostOne):
        return AtMostOne(f.var, f.dom, _strip(f.body))
    return f


@dataclass(frozen=True)
class RestrictionAutomaton:
    """The minimal DFA for one temporal restriction.

    All four kinds share the same 3-state presentation over the "event
    added" alphabet: ``WATCH`` (initial), plus absorbing ``ACCEPT`` and
    ``REJECT`` sinks.  The transition *guard* is the memoised predicate
    :meth:`probe` evaluates on a projected prefix; ``INERT`` automata
    have no transitions out of ``WATCH`` at all and ``DIA_LEAF`` ones
    transition only on the final letter (the complete computation).
    """

    restriction: Restriction
    kind: str
    #: why an ``INERT`` classification was made ("" otherwise)
    reason: str = ""
    #: ``strip(F)`` for the ◇-kinds (what :meth:`resolve_at_top` evaluates)
    stripped: Optional[Formula] = field(default=None, compare=False)
    #: the DFA's input alphabet: problem-level event classes that are
    #: letters (can move the machine); ``None`` = every event class
    alphabet: Optional[frozenset] = field(default=None, compare=False)

    @property
    def name(self) -> str:
        return self.restriction.name

    @property
    def monitorable(self) -> bool:
        """Can this automaton leave ``WATCH`` on a *proper* prefix?"""
        return self.kind in (BOX_REJECT, DIA_ACCEPT)

    @property
    def leaf_resolvable(self) -> bool:
        """Can the checker resolve this at the top without any walk?"""
        return self.kind in (DIA_ACCEPT, DIA_LEAF)

    def states(self) -> Tuple[str, ...]:
        if self.kind == INERT:
            return (WATCH,)
        return (WATCH, ACCEPT) if self.kind != BOX_REJECT else (WATCH, REJECT)

    def probe(self, prefix, temporal_mode: str, history_cap: int,
              use_slice: bool = True) -> Optional[bool]:
        """One guard evaluation on a projected, thread-labelled prefix.

        Returns the restriction's (completion-wide) verdict when the DFA
        leaves ``WATCH``, else ``None``.  Pure function of the prefix
        computation -- replay, sharding and witnesses stay byte-identical.
        """
        if self.kind == BOX_REJECT:
            from .checker import check_restriction

            outcome = check_restriction(
                prefix, self.restriction, temporal_mode=temporal_mode,
                history_cap=history_cap, use_slice=use_slice)
            return False if not outcome.holds else None
        if self.kind == DIA_ACCEPT:
            assert self.stripped is not None
            if self.stripped.holds_at(full_history(prefix)):
                return True
            return None
        return None

    def resolve_at_top(self, computation) -> bool:
        """Checker fast path at a complete computation (◇-kinds only)."""
        assert self.stripped is not None
        return self.stripped.holds_at(full_history(computation))

    def describe(self) -> str:
        tail = f" ({self.reason})" if self.reason else ""
        return f"{self.name}: {self.kind}{tail}"


def classify_restriction(
        restriction: Restriction,
        quantifier_cap: int = DEFAULT_QUANTIFIER_CAP,
) -> RestrictionAutomaton:
    """Compile one temporal restriction to its :class:`RestrictionAutomaton`.

    Non-temporal restrictions never reach here (the checker evaluates
    them at the full history directly); they classify inert if they do.
    """
    formula = restriction.formula
    if not formula.is_temporal():
        return RestrictionAutomaton(restriction, INERT, "not temporal")
    if _count_quantifiers(formula) > quantifier_cap:
        return RestrictionAutomaton(
            restriction, INERT,
            f"more than {quantifier_cap} quantifiers (grounding cap)")
    # hoist the ∀-prefix over □ (valid: GEM domains are rigid, so
    # ∀x.□p ⟺ □∀x.p) and look for the safety shape: a □ fails on the
    # prefix at some prefix cut, prefix cuts survive into every
    # extension, and a falsity-transferring body stays false there
    body = formula
    while isinstance(body, ForAll):
        body = body.body
    if isinstance(body, Henceforth) and _transfers(body.body, False):
        return RestrictionAutomaton(restriction, BOX_REJECT,
                                    alphabet=_alphabet(formula))
    # ◇ accepts early when its body, true at the prefix *top*, (a)
    # transfers to that cut in every extension and (b) is monotone, so
    # it stays true at the extension's own top -- where every maximal
    # chain ends
    if isinstance(formula, Eventually) and _monotone(
            formula.body, 1) and _transfers(formula.body, True):
        return RestrictionAutomaton(restriction, DIA_ACCEPT,
                                    stripped=formula.body,
                                    alphabet=_alphabet(formula))
    if _dia_leaf(formula):
        return RestrictionAutomaton(restriction, DIA_LEAF,
                                    stripped=_strip(formula))
    if _contains_pypred(formula):
        return RestrictionAutomaton(restriction, INERT, "opaque PyPred body")
    if isinstance(body, Henceforth):
        return RestrictionAutomaton(
            restriction, INERT, "□-body falsity not extension-stable")
    return RestrictionAutomaton(restriction, INERT, "shape not regular")


def spec_fingerprint(spec) -> str:
    """Stable digest of a specification's declarative content.

    Keys the module-level :class:`AutomataPlan` (and compile-plan) memo:
    two spec *instances* with equal fingerprints have identical element
    vocabularies and restriction formulas, so their formula-level
    analyses coincide.  ``PyPred`` contributes only its name -- safe
    here because predicates with captured closures are never compiled:
    both plans treat them as opaque fallbacks, so a memoised plan never
    evaluates a stale closure.
    """
    parts = [f"spec:{spec.name}"]
    parts.extend(sorted(f"element:{n}" for n in spec.element_names()))
    parts.extend(sorted(
        f"group:{g.name}:{','.join(sorted(map(str, g.members)))}"
        for g in spec.groups))
    parts.extend(sorted(
        f"restriction:{r.name}={r.formula.describe()}"
        for r in spec.all_restrictions()))
    parts.extend(sorted(f"thread:{t.name}" for t in spec.thread_types))
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


class AutomataPlan:
    """Computation-independent DFA compilation of one specification.

    The per-restriction automata plus the classification census the
    stats/describe surfaces report.  Built once per spec (see
    :func:`automata_plan_for`); binding to a computation is free -- the
    automata carry no per-computation state (guards are evaluated
    against whatever prefix the monitor hands them).
    """

    __slots__ = ("automata", "temporal", "monitorable", "leaf", "inert")

    def __init__(self, spec,
                 quantifier_cap: int = DEFAULT_QUANTIFIER_CAP) -> None:
        self.automata: Dict[str, RestrictionAutomaton] = {}
        for r in spec.all_restrictions():
            if r.formula.is_temporal():
                self.automata[r.name] = classify_restriction(
                    r, quantifier_cap)
        self.temporal = len(self.automata)
        self.monitorable = sum(
            1 for a in self.automata.values() if a.monitorable)
        self.leaf = sum(
            1 for a in self.automata.values() if a.kind == DIA_LEAF)
        self.inert = sum(
            1 for a in self.automata.values() if a.kind == INERT)

    def automaton(self, name: str) -> Optional[RestrictionAutomaton]:
        return self.automata.get(name)

    def describe(self) -> str:
        lines = [f"automata: {self.temporal} temporal restriction(s), "
                 f"{self.monitorable} monitorable, {self.leaf} leaf-"
                 f"resolvable, {self.inert} dfa-inert"]
        for a in self.automata.values():
            lines.append(f"  {a.describe()}")
        return "\n".join(lines)


#: spec fingerprint -> AutomataPlan (cross-instance memo; resident serve
#: workers hit this when an inline spec is resubmitted and rebuilt)
_PLAN_CACHE: Dict[str, AutomataPlan] = {}


def automata_plan_for(spec) -> AutomataPlan:
    """The spec's :class:`AutomataPlan`, cached on the instance *and* in
    a module-level table keyed by :func:`spec_fingerprint`.

    The double memo mirrors :func:`repro.core.compile.plan_for` plus the
    cross-instance layer serve needs: a resubmitted inline workload
    rebuilds fresh spec objects in every resident worker, and the
    fingerprint hit spares re-classifying every restriction.
    """
    plan: Optional[AutomataPlan] = getattr(spec, "_automata_plan", None)
    if plan is not None:
        return plan
    fp = spec_fingerprint(spec)
    plan = _PLAN_CACHE.get(fp)
    if plan is None:
        plan = AutomataPlan(spec)
        if len(_PLAN_CACHE) >= _PLAN_CACHE_CAP:
            _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
        _PLAN_CACHE[fp] = plan
    spec._automata_plan = plan
    return plan


class _MonitorNode:
    """Immutable per-path product state: which automata still watch,
    the verdicts decided so far on this path, and how many raw prefix
    events the significance trigger has already scanned."""

    __slots__ = ("active", "decided", "seen")

    def __init__(self, active: Tuple[int, ...],
                 decided: Tuple[Tuple[str, bool], ...],
                 seen: int = 0) -> None:
        self.active = active
        self.decided = decided
        self.seen = seen


class AutomatonMonitor:
    """The per-task DFA product the scheduler threads through its DFS.

    One monitor per explore task; nodes (:class:`_MonitorNode`) are
    immutable and flow down the recursion, so sibling subtrees never see
    each other's decisions -- every decision is a pure function of the
    path's own prefix.  The interaction rule with partial-order
    reduction: POR picks the ample branches first, the monitor then
    probes whatever prefix is actually explored -- neither consults the
    other, so both remain pure functions of state+path.

    ``correspondence=None`` monitors raw computations (unit tests,
    benches); the engine always passes the problem correspondence so
    probes see exactly what :meth:`WorkerState.compute_outcome` checks.
    """

    def __init__(self, plan: AutomataPlan, problem_spec, correspondence=None,
                 temporal_mode: str = "compiled",
                 history_cap: int = 2_000_000,
                 probe_budget: int = DEFAULT_PROBE_BUDGET,
                 projection_budget: int = DEFAULT_PROJECTION_BUDGET) -> None:
        self._spec = problem_spec
        self._corr = correspondence
        self._mode = temporal_mode
        self._cap = history_cap
        self._budget = probe_budget
        self._proj_budget = projection_budget
        self._watch: Tuple[RestrictionAutomaton, ...] = tuple(
            a for a in plan.automata.values() if a.monitorable)
        #: union input alphabet of the watched machines (None = every
        #: event class is a letter and can trigger a probe)
        self._alphabet: Optional[frozenset] = frozenset()
        for a in self._watch:
            if a.alphabet is None:
                self._alphabet = None
                break
            self._alphabet = self._alphabet | a.alphabet
        #: (automaton name, projected-prefix fingerprint) -> verdict|None
        self._memo: Dict[Tuple[str, str], Optional[bool]] = {}
        #: guard evaluations performed (memo misses)
        self.probes = 0
        #: prefixes projected/labelled/fingerprinted (memo hits included)
        self.projections = 0
        #: early-violation verdicts decided (rejecting sinks reached)
        self.cuts = 0
        #: satisfied-early verdicts decided (accepting sinks reached)
        self.accepts = 0
        #: probes abandoned on an unexpected projection/labelling error
        self.probe_errors = 0

    @property
    def watching(self) -> int:
        return len(self._watch)

    def root(self) -> _MonitorNode:
        return _MonitorNode(tuple(range(len(self._watch))), ())

    def _fresh_significant(self, state, node: _MonitorNode):
        """``(raw_count, fresh)``: did a *letter* arrive since this
        path last looked?

        The trigger that keeps per-node overhead flat: a guard verdict
        can only change when an event is appended that (a) the
        correspondence keeps and (b) projects into the union input
        alphabet of the watched machines -- so scheduler steps that
        emit bookkeeping events or significant-but-unwatched classes
        (the vast majority in language interpreters) are skipped
        without freezing, projecting or fingerprinting anything.  Falls
        back to "always fresh" for interpreter states without a
        peekable builder.
        """
        builder = getattr(state, "builder", None)
        events = (builder.events_so_far()
                  if builder is not None
                  and hasattr(builder, "events_so_far") else None)
        if events is None:
            return node.seen, True
        n = len(events)
        if n == node.seen:
            return n, False
        for ev in events[node.seen:]:
            if self._corr is None:
                if self._alphabet is None or (
                        ev.event_class in self._alphabet):
                    return n, True
                continue
            rule = self._corr.rule_for(ev)
            if rule is not None and (
                    self._alphabet is None
                    or rule.target_class in self._alphabet):
                return n, True
        return n, False

    def advance(self, node: _MonitorNode, state,
                depth: int) -> _MonitorNode:
        """Feed one scheduler node's prefix to the remaining automata.

        Returns ``node`` unchanged when nothing was decided (the common
        case; free once every automaton is decided or the budgets are
        spent, and nearly free when the last steps emitted no
        significant event)."""
        if not node.active:
            return node
        if (self.probes >= self._budget
                or self.projections >= self._proj_budget):
            return node
        seen, fresh = self._fresh_significant(state, node)
        if not fresh:
            if seen == node.seen:
                return node
            return _MonitorNode(node.active, node.decided, seen)
        try:
            self.projections += 1
            prefix = state.computation()
            if self._corr is not None:
                from ..verify.projection import project

                prefix = project(prefix, self._corr)
            prefix = self._spec.label_threads(prefix)
            fp = prefix.stable_fingerprint()
        except Exception:
            self.probe_errors += 1
            return _MonitorNode(node.active, node.decided, seen)
        active = []
        decided = list(node.decided)
        for idx in node.active:
            automaton = self._watch[idx]
            verdict = self._guard(automaton, prefix, fp)
            if verdict is None:
                active.append(idx)
                continue
            decided.append((automaton.name, verdict))
            if verdict:
                self.accepts += 1
            else:
                self.cuts += 1
        return _MonitorNode(tuple(active), tuple(decided), seen)

    def _guard(self, automaton: RestrictionAutomaton, prefix,
               fp: str) -> Optional[bool]:
        key = (automaton.name, fp)
        if key in self._memo:
            return self._memo[key]
        self.probes += 1
        try:
            verdict = automaton.probe(prefix, self._mode, self._cap)
        except Exception:
            self.probe_errors += 1
            verdict = None
        if len(self._memo) < _GUARD_MEMO_CAP:
            self._memo[key] = verdict
        return verdict

    def decided(self, node: _MonitorNode) -> Tuple[Tuple[str, bool], ...]:
        return node.decided
