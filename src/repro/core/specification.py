"""GEM specifications: the unit of description (Section 3).

"A language or concurrency problem may be described by characterizing it
as a GEM specification σ.  Each specification is composed of a set of
logic formulae (restrictions) over the domain of all possible GEM
computations.  A computation C is legal with respect to a specification
σ if C satisfies each restriction in σ."

A :class:`Specification` aggregates:

* element declarations (each carrying its own restrictions),
* group declarations (ditto) plus the derived
  :class:`~repro.core.group.GroupStructure`,
* specification-level restrictions,
* thread types (Section 8.3) -- these are applied to label a computation
  before restrictions are evaluated, since restrictions may mention
  thread relationships.

``legal(C, σ)`` is implemented by :mod:`repro.core.checker`;
:meth:`Specification.check` is the convenience entry point.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .computation import Computation, ComputationBuilder
from .element import ElementDecl
from .errors import SpecificationError
from .formula import Restriction
from .gemtypes import GroupInstance
from .group import GroupDecl, GroupStructure
from .ids import ElementName, GroupName
from .threads import ThreadType


class Specification:
    """An immutable GEM specification σ."""

    def __init__(
        self,
        name: str,
        elements: Iterable[ElementDecl] = (),
        groups: Iterable[GroupDecl] = (),
        restrictions: Iterable[Restriction] = (),
        thread_types: Iterable[ThreadType] = (),
    ) -> None:
        self.name = name
        self._elements: Dict[ElementName, ElementDecl] = {}
        for decl in elements:
            if decl.name in self._elements:
                raise SpecificationError(
                    f"specification {name!r} declares element {decl.name!r} twice"
                )
            self._elements[decl.name] = decl
        self._group_decls: Tuple[GroupDecl, ...] = tuple(groups)
        self._restrictions: Tuple[Restriction, ...] = tuple(restrictions)
        self._thread_types: Tuple[ThreadType, ...] = tuple(thread_types)
        names = [r.name for r in self.all_restrictions()]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SpecificationError(
                f"specification {name!r} has duplicate restriction names: "
                f"{sorted(dupes)}"
            )
        # build once to validate member references / containment cycles
        self._structure = GroupStructure(self._elements, self._group_decls)

    # -- access ---------------------------------------------------------------

    def element_names(self) -> Tuple[ElementName, ...]:
        return tuple(self._elements)

    def element(self, name: ElementName) -> ElementDecl:
        try:
            return self._elements[name]
        except KeyError:
            raise SpecificationError(
                f"specification {self.name!r} declares no element {name!r}"
            ) from None

    def element_or_none(self, name: ElementName) -> Optional[ElementDecl]:
        return self._elements.get(name)

    @property
    def elements(self) -> Tuple[ElementDecl, ...]:
        return tuple(self._elements.values())

    @property
    def groups(self) -> Tuple[GroupDecl, ...]:
        return self._group_decls

    @property
    def thread_types(self) -> Tuple[ThreadType, ...]:
        return self._thread_types

    def group_structure(self) -> GroupStructure:
        return self._structure

    def all_restrictions(self) -> Tuple[Restriction, ...]:
        """Specification-level, element-level, and group-level restrictions.

        Element/group declarations store restrictions opaquely; only
        :class:`Restriction` instances participate in checking.
        """
        out: List[Restriction] = list(self._restrictions)
        for decl in self._elements.values():
            out.extend(r for r in decl.restrictions if isinstance(r, Restriction))
        for g in self._group_decls:
            out.extend(r for r in g.restrictions if isinstance(r, Restriction))
        return tuple(out)

    def restriction(self, name: str) -> Restriction:
        for r in self.all_restrictions():
            if r.name == name:
                return r
        raise SpecificationError(
            f"specification {self.name!r} has no restriction {name!r}"
        )

    # -- construction helpers ---------------------------------------------------

    def extended(
        self,
        name: Optional[str] = None,
        elements: Iterable[ElementDecl] = (),
        groups: Iterable[GroupDecl] = (),
        restrictions: Iterable[Restriction] = (),
        thread_types: Iterable[ThreadType] = (),
    ) -> "Specification":
        """A new specification with additional declarations."""
        return Specification(
            name or self.name,
            list(self._elements.values()) + list(elements),
            list(self._group_decls) + list(groups),
            list(self._restrictions) + list(restrictions),
            list(self._thread_types) + list(thread_types),
        )

    def without_restrictions(self, names: Iterable[str]) -> "Specification":
        """Copy with the named specification-level restrictions removed.

        Used to build negative controls (mutant specifications).  Only
        specification-level restrictions can be removed this way.
        """
        drop = set(names)
        unknown = drop - {r.name for r in self._restrictions}
        if unknown:
            raise SpecificationError(
                f"cannot remove unknown restrictions {sorted(unknown)}"
            )
        return Specification(
            self.name,
            self._elements.values(),
            self._group_decls,
            [r for r in self._restrictions if r.name not in drop],
            self._thread_types,
        )

    def builder(self) -> ComputationBuilder:
        """A computation builder carrying this spec's group structure."""
        return ComputationBuilder(self._structure)

    def label_threads(self, computation: Computation) -> Computation:
        """Apply all of this specification's thread types to ``computation``."""
        out = computation
        for tt in self._thread_types:
            out = tt.label(out)
        return out

    # -- checking ---------------------------------------------------------------

    def check(self, computation: Computation, **kwargs) -> "CheckResult":  # noqa: F821
        """Full legality + restriction check (see :mod:`repro.core.checker`)."""
        from .checker import check_computation

        return check_computation(computation, self, **kwargs)

    def legal(self, computation: Computation, **kwargs) -> bool:
        """The paper's ``legal(C, σ)`` predicate."""
        return self.check(computation, **kwargs).ok

    def __repr__(self) -> str:
        return (
            f"Specification({self.name!r}: {len(self._elements)} elements, "
            f"{len(self._group_decls)} groups, "
            f"{len(self.all_restrictions())} restrictions)"
        )

    def describe(self) -> str:
        """A textual listing in the paper's declaration style.

        Elements with their EVENTS and RESTRICTIONS, groups with members
        and PORTS, specification-level RESTRICTIONS, and THREAD types --
        the form in which Section 8.3 presents the Readers/Writers
        specification.
        """
        lines: List[str] = [f"SPECIFICATION {self.name}"]
        for decl in self._elements.values():
            lines.append(f"  {decl.name} = ELEMENT")
            if decl.event_classes:
                lines.append("    EVENTS")
                for ec in decl.event_classes:
                    params = ", ".join(
                        f"{p.name}:{p.type_name}" for p in ec.params)
                    lines.append(f"      {ec.name}({params})")
            named = [r for r in decl.restrictions if isinstance(r, Restriction)]
            if named:
                lines.append("    RESTRICTIONS")
                for r in named:
                    lines.append(f"      {r.name}")
        for g in self._group_decls:
            lines.append(f"  {g.name} = GROUP({', '.join(g.members)})")
            if g.ports:
                ports = ", ".join(str(p) for p in g.ports)
                lines.append(f"    PORTS({ports})")
        if self._restrictions:
            lines.append("  RESTRICTIONS")
            for r in self._restrictions:
                suffix = f"  -- {r.comment}" if r.comment else ""
                lines.append(f"    {r.name}{suffix}")
        for tt in self._thread_types:
            for path in tt.paths:
                lines.append(f"  THREAD {tt.name} = ({path})")
        return "\n".join(lines)


def from_group_instances(
    name: str,
    instances: Sequence[GroupInstance],
    extra_elements: Iterable[ElementDecl] = (),
    extra_groups: Iterable[GroupDecl] = (),
    restrictions: Iterable[Restriction] = (),
    thread_types: Iterable[ThreadType] = (),
) -> Specification:
    """Assemble a specification from instantiated group types."""
    elements: List[ElementDecl] = list(extra_elements)
    groups: List[GroupDecl] = list(extra_groups)
    all_restrictions: List[Restriction] = list(restrictions)
    for inst in instances:
        elements.extend(inst.elements)
        groups.append(inst.group)
        groups.extend(inst.subgroups)
        all_restrictions.extend(inst.restrictions)
    return Specification(name, elements, groups, all_restrictions, thread_types)
