"""Compiling GEM restrictions to bitmask closure pipelines.

The lattice interpreter in :mod:`repro.core.checker` is a recursive
tree-walk: every evaluation re-dispatches on ``Formula`` node types,
copies dict environments per quantifier binding, materialises
``frozenset`` histories, and re-enumerates quantifier domains through
``Domain.events``.  This module performs that work **once per
(specification, computation)** instead of once per evaluation:

* each ``Restriction`` becomes a pipeline of Python closures evaluated
  over **bitmask histories** (see :mod:`repro.core.evalcore`): a history
  is an ``int``, the child adding event *i* is ``m | (1 << i)``, and the
  relations are per-event successor masks;
* **static quantifier-domain pruning**: a ``∀e @ EL`` quantifier
  iterates a tuple of event indices precomputed at compile time from
  the element/class extent, not the whole event set, and never calls
  ``Domain.events`` again;
* **constant folding**: a history-independent subformula with no free
  variables is evaluated once at compile time and replaced by its
  truth value (skipped if evaluation raises, so interpreter-visible
  errors still surface at check time);
* **guard hoisting**: ``□(g ⊃ p)`` with history-independent ``g``
  compiles to ``g ⊃ □p`` (and ``◇(g ∧ p)`` to ``g ∧ ◇p``), keeping the
  guard out of the lattice recursion; ``□(p ∧ q)`` distributes to
  ``□p ∧ □q`` so each conjunct gets the cheapest strategy it admits;
* **monotone latching**: for the monotone formula class documented in
  :mod:`repro.core.checker` (built from ``occurred``, ∧, ∨ and
  quantifiers -- once true of a history, true of every extension),
  ``□q`` collapses to ``q`` at the current history, ``◇q`` collapses to
  ``q`` at the complete history (every maximal path in the finite
  lattice ends there), and monotone quantifier nodes latch their first
  true history per binding and short-circuit on any extension of it;
* the remaining (non-monotone) ``□``/``◇`` bodies get the same
  memoised AG/AF walk as the interpreter, but **incremental**: child
  masks are ``h | (1 << i)`` and addable sets are updated from the
  parent's instead of recomputed.

The interpreter keeps its exact semantics and acts as the reference
oracle; anything the compiler cannot express -- ``PyPred`` escape
hatches, unknown ``Formula`` subclasses, unbound variables -- makes the
whole restriction **fall back** to the interpreter (counted by the
``checker.fallbacks`` metric), so ``temporal_mode="compiled"`` is
behaviour-preserving by construction: compiled restrictions are proven
equivalent (see ``tests/test_compile.py`` and the ``compiled-differential``
fuzz oracle), and everything else *is* the interpreter.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .computation import Computation
from .errors import ComputationError
from .evalcore import EventIndex, event_index, iter_bits
from .formula import (
    And,
    AtControl,
    AtElement,
    AtMostOne,
    Concurrent,
    Const,
    DataCmp,
    DataEq,
    DistinctThreads,
    ElementPrecedes,
    Enables,
    EventEq,
    Eventually,
    Exists,
    ExistsUnique,
    FalseF,
    ForAll,
    Formula,
    Henceforth,
    Iff,
    Implies,
    New,
    Not,
    Occurred,
    Or,
    Param,
    Potential,
    Restriction,
    SameThread,
    TemporallyPrecedes,
    TrueF,
)


class _Uncompilable(Exception):
    """Internal: this restriction needs the interpreter."""


class _Node:
    """One compiled subformula: an evaluator plus its static analysis.

    ``fn(mask, env) -> bool`` evaluates at history ``mask`` with ``env``
    a slot-indexed list of bound event indices.  ``monotone`` means
    "once true of a mask, true of every superset mask" (with the same
    bindings); ``history_free`` means the value ignores the mask
    entirely; ``free_slots`` are the env slots the evaluator reads.
    """

    __slots__ = ("fn", "monotone", "history_free", "free_slots")

    def __init__(self, fn: Callable[[int, list], bool], monotone: bool,
                 history_free: bool, free_slots: frozenset):
        self.fn = fn
        self.monotone = monotone
        self.history_free = history_free
        self.free_slots = free_slots


#: Formula types the compiler knows how to translate.  Exact-type
#: matched: a user subclass with overridden semantics falls back to the
#: interpreter rather than being silently compiled as its base class.
_LEAVES = frozenset((TrueF, FalseF, Occurred, AtElement, Enables,
                     ElementPrecedes, TemporallyPrecedes, Concurrent,
                     EventEq, New, Potential, SameThread, DistinctThreads))
_CONNECTIVES = (Not, And, Or, Implies, Iff, Henceforth, Eventually)
_QUANTIFIERS = (ForAll, Exists, ExistsUnique, AtMostOne)


def is_compilable(formula: Formula) -> bool:
    """Static check: can the compiler translate this formula?

    ``PyPred`` nodes, unrecognised ``Formula`` subclasses, and exotic
    terms force the interpreter fallback for the whole restriction.
    """
    t = type(formula)
    if t in _LEAVES:
        return True
    if t is DataEq:
        return (type(formula.left) in (Const, Param)
                and type(formula.right) in (Const, Param))
    if t is DataCmp:
        return (formula.op in DataCmp._OPS
                and type(formula.left) in (Const, Param)
                and type(formula.right) in (Const, Param))
    if t is AtControl:
        return True
    if t in _CONNECTIVES or t in _QUANTIFIERS:
        return all(is_compilable(c) for c in formula._children())
    return False


class CompiledRestriction:
    """One restriction bound to one computation, ready to evaluate."""

    __slots__ = ("restriction", "temporal", "_fn", "_nslots", "_spec")

    def __init__(self, restriction: Restriction, temporal: bool,
                 fn: Callable[[int, list], bool], nslots: int,
                 spec: "CompiledSpec"):
        self.restriction = restriction
        self.temporal = temporal
        self._fn = fn
        self._nslots = nslots
        self._spec = spec

    def holds(self) -> bool:
        """Evaluate: temporal restrictions start at the empty history
        (AG/AF over the lattice), immediate ones at the complete one --
        the same entry points the interpreter uses."""
        env = [0] * self._nslots
        if self.temporal:
            return bool(self._fn(0, env))
        return bool(self._fn(self._spec.index.full_mask, env))


class CompiledSpec:
    """All compiled restrictions of one specification over one computation.

    Shares one :class:`EventIndex`, one addable-mask cache and one
    visit budget across its restrictions, mirroring the single
    ``LatticeChecker`` that ``check_computation`` shares in interpreted
    mode.  ``visited`` counts compiled (node, history) evaluations
    against ``history_cap`` (the ``checker.compiled_evals`` metric);
    restrictions the compiler rejected map to ``None`` and are listed
    in ``fallback_names``.
    """

    def __init__(self, computation: Computation,
                 restrictions: Sequence[Restriction],
                 history_cap: int,
                 compilable: Optional[Dict[str, bool]] = None) -> None:
        self.computation = computation
        self.index: EventIndex = event_index(computation)
        self.cap = history_cap
        self.visited = 0
        self._addable: Dict[int, int] = {}
        self.compiled: Dict[str, Optional[CompiledRestriction]] = {}
        self.fallback_names: Tuple[str, ...] = ()
        fallbacks: List[str] = []
        for r in restrictions:
            ok = (compilable[r.name] if compilable is not None
                  else is_compilable(r.formula))
            cr = _compile_restriction(self, r) if ok else None
            self.compiled[r.name] = cr
            if cr is None:
                fallbacks.append(r.name)
        self.fallback_names = tuple(fallbacks)

    def restriction(self, restriction: Restriction
                    ) -> Optional[CompiledRestriction]:
        """The compiled form, or ``None`` if it fell back."""
        return self.compiled.get(restriction.name)

    def distinct_histories(self) -> int:
        """Distinct history masks whose addable set was derived -- the
        explored slice of the lattice (cf.
        :meth:`LatticeChecker.distinct_histories`)."""
        return len(self._addable)

    # -- kernel services shared by the compiled closures -------------------

    def bump(self) -> None:
        self.visited += 1
        if self.visited > self.cap:
            raise ComputationError(
                f"compiled checker visited more than {self.cap} "
                "(formula, history) pairs; raise history_cap, shrink the "
                "computation, or leave slicing enabled (--slice) so regular "
                "restrictions bypass the walk"
            )

    def addable(self, mask: int) -> int:
        """Addable-events mask, cached per history across every
        restriction and temporal node of this spec."""
        a = self._addable.get(mask)
        if a is None:
            a = self.index.addable_mask(mask)
            self._addable[mask] = a
        return a

    def addable_step(self, parent_addable: int, i: int, child: int) -> int:
        """Incremental addable update: ``child = parent | (1 << i)``.

        Only events temporally *after* ``i`` can become newly addable,
        so the scan is over ``i``'s successors instead of all events.
        """
        cached = self._addable.get(child)
        if cached is not None:
            return cached
        idx = self.index
        acc = parent_addable & ~(1 << i)
        pred = idx.temporal_pred
        for j in iter_bits(idx.temporal_succ[i] & ~child):
            if not pred[j] & ~child:
                acc |= 1 << j
        self._addable[child] = acc
        return acc


def _compile_restriction(spec: CompiledSpec, restriction: Restriction
                         ) -> Optional[CompiledRestriction]:
    try:
        compiler = _Compiler(spec)
        node = compiler.compile(restriction.formula)
    except _Uncompilable:
        return None
    return CompiledRestriction(
        restriction, restriction.formula.is_temporal(),
        node.fn, max(compiler.nslots, 1), spec)


class _Compiler:
    """One-pass compiler for a single restriction over one computation."""

    def __init__(self, spec: CompiledSpec) -> None:
        self.spec = spec
        self.idx = spec.index
        self.scope: Dict[str, List[int]] = {}
        self.depth = 0
        self.nslots = 0

    # -- helpers -----------------------------------------------------------

    def _slot(self, var: str) -> int:
        stack = self.scope.get(var)
        if not stack:
            raise _Uncompilable(f"unbound variable {var!r}")
        return stack[-1]

    def _finish(self, node: _Node) -> _Node:
        """Constant-fold closed history-independent subformulas."""
        if node.history_free and not node.free_slots:
            try:
                value = bool(node.fn(0, [0] * max(self.nslots, 1)))
            except Exception:
                return node  # evaluation raises: keep it lazy so the
                # interpreter-visible error still surfaces at check time
            fn = (_const_true if value else _const_false)
            return _Node(fn, True, True, frozenset())
        return node

    def _latch(self, node: _Node) -> _Node:
        """Monotone latching: remember the first true history per
        binding; any extension of it is true without re-evaluation."""
        free = tuple(sorted(node.free_slots))
        cache: Dict[Tuple, int] = {}
        inner = node.fn

        def fn(m, env):
            key = tuple(env[s] for s in free)
            latched = cache.get(key)
            if latched is not None and m & latched == latched:
                return True
            if inner(m, env):
                if latched is None or m & latched == m:
                    cache[key] = m
                return True
            return False

        return _Node(fn, node.monotone, node.history_free, node.free_slots)

    # -- dispatch ----------------------------------------------------------

    def compile(self, f: Formula) -> _Node:
        t = type(f)
        if t is TrueF:
            return _Node(_const_true, True, True, frozenset())
        if t is FalseF:
            return _Node(_const_false, True, True, frozenset())
        if t is Occurred:
            s = self._slot(f.var)
            return _Node(lambda m, env: bool(m >> env[s] & 1),
                         True, False, frozenset((s,)))
        if t is AtElement:
            s = self._slot(f.var)
            ok = tuple(ev.element == f.element for ev in self.idx.events)
            return _Node(lambda m, env: ok[env[s]] and bool(m >> env[s] & 1),
                         True, False, frozenset((s,)))
        if t is Enables:
            return self._pair(f.a, f.b, self.idx.enable_succ)
        if t is ElementPrecedes:
            return self._pair(f.a, f.b, self.idx.element_succ)
        if t is TemporallyPrecedes:
            return self._pair(f.a, f.b, self.idx.temporal_succ)
        if t is Concurrent:
            sa, sb = self._slot(f.a), self._slot(f.b)
            succ = self.idx.temporal_succ

            def concurrent(m, env):
                ia, ib = env[sa], env[sb]
                return (ia != ib and not succ[ia] >> ib & 1
                        and not succ[ib] >> ia & 1)

            return self._finish(
                _Node(concurrent, True, True, frozenset((sa, sb))))
        if t is EventEq:
            sa, sb = self._slot(f.a), self._slot(f.b)
            return self._finish(
                _Node(lambda m, env: env[sa] == env[sb],
                      True, True, frozenset((sa, sb))))
        if t is SameThread:
            sa, sb = self._slot(f.a), self._slot(f.b)
            threads = self.idx.threads
            return self._finish(_Node(
                lambda m, env: bool(threads[env[sa]] & threads[env[sb]]),
                True, True, frozenset((sa, sb))))
        if t is DistinctThreads:
            sa, sb = self._slot(f.a), self._slot(f.b)
            threads = self.idx.threads
            return self._finish(_Node(
                lambda m, env: not (threads[env[sa]] & threads[env[sb]]),
                True, True, frozenset((sa, sb))))
        if t is DataEq:
            lf, lfree = self._term(f.left)
            rf, rfree = self._term(f.right)
            return self._finish(
                _Node(lambda m, env: lf(env) == rf(env),
                      True, True, lfree | rfree))
        if t is DataCmp:
            op = DataCmp._OPS.get(f.op)
            if op is None:
                raise _Uncompilable(f"unknown comparison {f.op!r}")
            lf, lfree = self._term(f.left)
            rf, rfree = self._term(f.right)
            return self._finish(
                _Node(lambda m, env: bool(op(lf(env), rf(env))),
                      True, True, lfree | rfree))
        if t is New:
            s = self._slot(f.var)
            succ = self.idx.temporal_succ

            def new(m, env):
                i = env[s]
                return bool(m >> i & 1) and not succ[i] & m

            return _Node(new, False, False, frozenset((s,)))
        if t is Potential:
            s = self._slot(f.var)
            pred = self.idx.temporal_pred

            def potential(m, env):
                i = env[s]
                return not m >> i & 1 and not pred[i] & ~m

            return _Node(potential, False, False, frozenset((s,)))
        if t is AtControl:
            s = self._slot(f.var)
            targets = 0
            for ev in f.dom.events(self.idx.computation):
                targets |= 1 << self.idx.index_of[ev.eid]
            enable = self.idx.enable_succ

            def at_control(m, env):
                i = env[s]
                return bool(m >> i & 1) and not enable[i] & targets & m

            return _Node(at_control, False, False, frozenset((s,)))
        if t is Not:
            body = self.compile(f.body)
            bfn = body.fn
            return self._finish(
                _Node(lambda m, env: not bfn(m, env),
                      body.history_free, body.history_free,
                      body.free_slots))
        if t is And:
            return self._combine_and([self.compile(p) for p in f.parts])
        if t is Or:
            return self._combine_or([self.compile(p) for p in f.parts])
        if t is Implies:
            return self._implies(self.compile(f.antecedent),
                                 self.compile(f.consequent))
        if t is Iff:
            left, right = self.compile(f.left), self.compile(f.right)
            lfn, rfn = left.fn, right.fn
            hf = left.history_free and right.history_free
            return self._finish(
                _Node(lambda m, env: bool(lfn(m, env)) == bool(rfn(m, env)),
                      hf, hf, left.free_slots | right.free_slots))
        if t in (ForAll, Exists, ExistsUnique, AtMostOne):
            return self._quantifier(f)
        if t is Henceforth:
            return self._henceforth(f)
        if t is Eventually:
            return self._eventually(f)
        raise _Uncompilable(f"cannot compile {type(f).__name__}")

    # -- pieces ------------------------------------------------------------

    def _pair(self, a: str, b: str, succ: List[int]) -> _Node:
        sa, sb = self._slot(a), self._slot(b)

        def fn(m, env):
            ia, ib = env[sa], env[sb]
            return (bool(m >> ia & 1) and bool(m >> ib & 1)
                    and bool(succ[ia] >> ib & 1))

        return _Node(fn, True, False, frozenset((sa, sb)))

    def _term(self, t) -> Tuple[Callable[[list], object], frozenset]:
        if type(t) is Const:
            value = t.val
            return (lambda env: value), frozenset()
        if type(t) is Param:
            s = self._slot(t.var)
            name = t.name
            events = self.idx.events
            # evaluated lazily per binding, so a missing parameter
            # raises at check time exactly like the interpreter
            return (lambda env: events[env[s]].param(name)), frozenset((s,))
        raise _Uncompilable(f"cannot compile term {type(t).__name__}")

    def _combine_and(self, nodes: List[_Node]) -> _Node:
        fns = [n.fn for n in nodes]
        if len(fns) == 2:
            f0, f1 = fns
            fn = lambda m, env: bool(f0(m, env)) and bool(f1(m, env))  # noqa: E731
        else:
            def fn(m, env):
                for g in fns:
                    if not g(m, env):
                        return False
                return True
        return self._finish(_Node(
            fn,
            all(n.monotone for n in nodes),
            all(n.history_free for n in nodes),
            frozenset().union(*(n.free_slots for n in nodes))))

    def _combine_or(self, nodes: List[_Node]) -> _Node:
        fns = [n.fn for n in nodes]
        if len(fns) == 2:
            f0, f1 = fns
            fn = lambda m, env: bool(f0(m, env)) or bool(f1(m, env))  # noqa: E731
        else:
            def fn(m, env):
                for g in fns:
                    if g(m, env):
                        return True
                return False
        return self._finish(_Node(
            fn,
            all(n.monotone for n in nodes),
            all(n.history_free for n in nodes),
            frozenset().union(*(n.free_slots for n in nodes))))

    def _implies(self, ante: _Node, cons: _Node) -> _Node:
        afn, cfn = ante.fn, cons.fn
        hf = ante.history_free and cons.history_free
        # ¬g ∨ p is monotone when g is history-independent (¬g constant
        # over the lattice) and p is monotone
        mono = hf or (ante.history_free and cons.monotone)
        return self._finish(_Node(
            lambda m, env: (not afn(m, env)) or bool(cfn(m, env)),
            mono, hf, ante.free_slots | cons.free_slots))

    def _quantifier(self, f) -> _Node:
        # static domain pruning: the extent of the element/class domain
        # is resolved to a tuple of event indices exactly once
        dom_idx = tuple(self.idx.index_of[ev.eid]
                        for ev in f.dom.events(self.idx.computation))
        slot = self.depth
        self.depth += 1
        self.nslots = max(self.nslots, self.depth)
        self.scope.setdefault(f.var, []).append(slot)
        try:
            body = self.compile(f.body)
        finally:
            self.scope[f.var].pop()
            self.depth -= 1
        bfn = body.fn
        t = type(f)
        if t is ForAll:
            def fn(m, env):
                for i in dom_idx:
                    env[slot] = i
                    if not bfn(m, env):
                        return False
                return True
            mono, hf = body.monotone, body.history_free
        elif t is Exists:
            def fn(m, env):
                for i in dom_idx:
                    env[slot] = i
                    if bfn(m, env):
                        return True
                return False
            mono, hf = body.monotone, body.history_free
        elif t is ExistsUnique:
            def fn(m, env):
                count = 0
                for i in dom_idx:
                    env[slot] = i
                    if bfn(m, env):
                        count += 1
                        if count > 1:
                            return False
                return count == 1
            mono, hf = body.history_free, body.history_free
        else:  # AtMostOne
            def fn(m, env):
                count = 0
                for i in dom_idx:
                    env[slot] = i
                    if bfn(m, env):
                        count += 1
                        if count > 1:
                            return False
                return True
            mono, hf = body.history_free, body.history_free
        node = _Node(fn, mono, hf, body.free_slots - {slot})
        node = self._finish(node)
        if node.monotone and not node.history_free:
            node = self._latch(node)
        return node

    # -- temporal ----------------------------------------------------------

    def _henceforth(self, f: Henceforth) -> _Node:
        body = f.body
        # □ distributes over ∧, letting each conjunct pick its own
        # strategy (monotone conjuncts collapse, others walk)
        if type(body) is And:
            return self._combine_and(
                [self._henceforth(Henceforth(p)) for p in body.parts])
        # guard hoisting: □(g ⊃ p) ≡ g ⊃ □p for history-independent g
        if type(body) is Implies:
            ante = self.compile(body.antecedent)
            if ante.history_free:
                return self._implies(
                    ante, self._henceforth(Henceforth(body.consequent)))
        node = self.compile(body)
        if node.monotone:
            # AG q ≡ q for monotone q: true here means true at every
            # extension, false here already refutes the □
            return node
        return self._always_walk(node)

    def _eventually(self, f: Eventually) -> _Node:
        body = f.body
        # guard hoisting: ◇(g ∧ p) ≡ g ∧ ◇p for history-independent g
        if type(body) is And:
            guards = [p for p in body.parts
                      if not p.is_temporal() and self._is_history_free(p)]
            rest = [p for p in body.parts if p not in guards]
            if guards and rest:
                inner = rest[0] if len(rest) == 1 else And(tuple(rest))
                return self._combine_and(
                    [self.compile(g) for g in guards]
                    + [self._eventually(Eventually(inner))])
        node = self.compile(body)
        if node.monotone:
            # AF q ≡ q at ⊤ for monotone q: every maximal path of the
            # finite lattice ends at the complete history, and a q true
            # anywhere stays true there
            full = self.idx.full_mask
            bfn = node.fn
            free = tuple(sorted(node.free_slots))
            cache: Dict[Tuple, bool] = {}

            def fn(m, env):
                key = tuple(env[s] for s in free)
                cached = cache.get(key)
                if cached is None:
                    cached = bool(bfn(full, env))
                    cache[key] = cached
                return cached

            return self._finish(
                _Node(fn, True, True, node.free_slots))
        return self._eventually_walk(node)

    def _is_history_free(self, formula: Formula) -> bool:
        """Cheap static probe used only to pick a hoisting split."""
        try:
            probe = _Compiler(self.spec)
            probe.scope = {v: list(s) for v, s in self.scope.items()}
            probe.depth = self.depth
            probe.nslots = self.nslots
            return probe.compile(formula).history_free
        except _Uncompilable:
            return False

    def _always_walk(self, body: _Node) -> _Node:
        """AG body over the lattice: memoised, incremental DFS."""
        spec = self.spec
        bfn = body.fn
        free = tuple(sorted(body.free_slots))
        memo: Dict[Tuple, bool] = {}

        def fn(m, env):
            key = (m, tuple(env[s] for s in free))
            cached = memo.get(key)
            if cached is not None:
                return cached
            spec.bump()
            result = True
            if not bfn(m, env):
                result = False
            else:
                seen = {m}
                stack = [(m, spec.addable(m))]
                while stack:
                    h, add = stack.pop()
                    bits = add
                    while bits:
                        low = bits & -bits
                        bits ^= low
                        nm = h | low
                        if nm in seen:
                            continue
                        seen.add(nm)
                        spec.bump()
                        if not bfn(nm, env):
                            result = False
                            stack.clear()
                            break
                        stack.append((
                            nm,
                            spec.addable_step(add, low.bit_length() - 1, nm),
                        ))
            memo[key] = result
            return result

        # AG is monotone in the history: extensions see a subset of the
        # lattice above, so a true □ stays true
        return _Node(fn, True, False, body.free_slots)

    def _eventually_walk(self, body: _Node) -> _Node:
        """AF body: every maximal path hits a body-history (memoised)."""
        spec = self.spec
        bfn = body.fn
        free = tuple(sorted(body.free_slots))
        memo: Dict[Tuple, bool] = {}

        def fn(m, env):
            key = (m, tuple(env[s] for s in free))
            cached = memo.get(key)
            if cached is not None:
                return cached
            spec.bump()
            if bfn(m, env):
                memo[key] = True
                return True
            add = spec.addable(m)
            if not add:
                memo[key] = False
                return False
            result = True
            bits = add
            while bits:
                low = bits & -bits
                bits ^= low
                if not fn(m | low, env):
                    result = False
                    break
            memo[key] = result
            return result

        return _Node(fn, False, False, body.free_slots)


def _const_true(m, env) -> bool:
    return True


def _const_false(m, env) -> bool:
    return False


# ---------------------------------------------------------------------------
# Plans: the computation-independent half of compilation
# ---------------------------------------------------------------------------


class SpecPlan:
    """Computation-independent compilation plan for a specification.

    Holds the restriction list and the per-restriction compilability
    analysis; :meth:`bind` does the (cheap) per-computation closure
    generation.  Build one per worker -- the engine's ``WorkerState``
    primes :func:`plan_for`'s per-spec cache before forking, so every
    worker inherits the analysed plan instead of re-walking formula
    ASTs per computation.
    """

    __slots__ = ("restrictions", "compilable")

    def __init__(self, spec) -> None:
        self.restrictions: Tuple[Restriction, ...] = tuple(
            spec.all_restrictions())
        self.compilable: Dict[str, bool] = {
            r.name: is_compilable(r.formula) for r in self.restrictions
        }

    def bind(self, computation: Computation,
             history_cap: int) -> CompiledSpec:
        """Compile the plan's restrictions against one computation."""
        return CompiledSpec(computation, self.restrictions, history_cap,
                            compilable=self.compilable)


#: Cross-instance plan memo, keyed by spec fingerprint.  A resident
#: serve worker receives a *fresh* Specification instance per submitted
#: job even when the spec content is identical (inline fuzz-spec
#: resubmission, catalog case rebuilds); the fingerprint key lets those
#: reuse the analysed plan instead of re-walking formula ASTs.  FIFO
#: eviction; tiny (plans hold per-restriction analysis, not closures).
_PLAN_MEMO: Dict[str, SpecPlan] = {}
_PLAN_MEMO_CAP = 128


def plan_for(spec) -> SpecPlan:
    """The specification's :class:`SpecPlan`, built once per spec
    *content*: cached on the spec instance (shared by fork-inherited
    engine workers) and, across instances, in a module-level memo keyed
    by :func:`repro.core.automata.spec_fingerprint` -- safe because the
    plan holds only formula-level analysis, and restrictions the
    analysis cannot see through (``PyPred``) are marked non-compilable,
    so a memoised plan never evaluates another instance's closures."""
    plan: Optional[SpecPlan] = getattr(spec, "_compile_plan", None)
    if plan is None:
        from .automata import spec_fingerprint

        key = spec_fingerprint(spec)
        plan = _PLAN_MEMO.get(key)
        if plan is None:
            plan = SpecPlan(spec)
            while len(_PLAN_MEMO) >= _PLAN_MEMO_CAP:
                _PLAN_MEMO.pop(next(iter(_PLAN_MEMO)))
            _PLAN_MEMO[key] = plan
        spec._compile_plan = plan
    return plan


def bind_restriction(computation: Computation, restriction: Restriction,
                     history_cap: int) -> CompiledSpec:
    """Compile a single bare restriction (no specification context)."""
    return CompiledSpec(computation, (restriction,), history_cap)
