"""Checking computations against GEM specifications.

This is the "tool" half of the paper's title: given a computation C and
a specification σ, decide ``legal(C, σ)`` and report *why not* when the
answer is no.

Immediate restrictions are evaluated at the complete computation (its
full history).  Temporal restrictions (containing □ or ◇) are
interpreted over valid history sequences (Section 7) in one of two
modes:

``exact``
    Enumerate maximal valid history sequences from the empty history and
    require the formula to hold on every one.  With ``max_step=1`` the
    sequences are the linear extensions of the temporal order; with
    ``max_step=None`` arbitrary antichain steps are allowed (the full
    Section 7 semantics).  Exact but exponential; use for small
    computations and cross-validation.

``lattice``
    Evaluate recursively over the lattice of histories, reading □ as
    "at every history reachable from here" (AG) and ◇ as "on every
    path from here, eventually" (AF), with memoisation keyed by
    (subformula, history, relevant bindings).

``compiled`` (default)
    Same lattice semantics, but each restriction is first compiled by
    :mod:`repro.core.compile` into closures over bitmask histories,
    with quantifier-domain pruning, constant folding, guard hoisting
    and monotone latching.  Restrictions the compiler cannot express
    (``PyPred``, unknown nodes) transparently fall back to the
    ``lattice`` interpreter (the ``checker.fallbacks`` metric counts
    them), and the interpreter remains the reference oracle the
    compiled mode is differentially tested against.  Failure
    explanations and witnesses are always produced by the interpreter,
    so diagnostics are identical across the two modes.

The lattice/exact modes agree on the formula shapes used throughout this
reproduction.  For ``□p`` with immediate ``p`` they agree always: a vhs
visits only reachable histories, and every reachable history lies on
some maximal vhs.  For ``◇p`` and for nesting like ``□(p ⊃ ◇q)`` they
agree whenever the temporal operands are *monotone* assertions
(built from ``occurred``, conjunction, disjunction, and quantifiers
— once true of a history, true of every extension), which covers every
temporal restriction in this repository; ``tests/test_checker.py``
cross-validates the modes on randomised computations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .computation import Computation
from .errors import ComputationError, SpecificationError
from .formula import (
    And,
    AtControl,
    Eventually,
    Exists,
    ExistsUnique,
    AtMostOne,
    ForAll,
    Formula,
    Henceforth,
    Iff,
    Implies,
    Not,
    Or,
    Restriction,
)
from .history import (
    History,
    HistorySequence,
    empty_history,
    full_history,
    maximal_history_sequences,
)
from .legality import check_legality
from .specification import Specification

#: Default cap on exact-mode vhs enumeration.
DEFAULT_VHS_CAP = 20_000
#: Default cap on distinct histories explored in lattice mode.
DEFAULT_HISTORY_CAP = 2_000_000


@dataclass(frozen=True)
class RestrictionOutcome:
    """Verdict for one restriction on one computation.

    ``provenance`` records how a temporal verdict was obtained when
    slicing or DFA routing was requested -- ``"slice"`` (exact, no
    lattice walk), ``"walk"`` (slice declined, lattice/compiled walk
    decided it), ``"dfa"`` (restriction automaton resolved it at the
    full history, no walk), or ``"dfa-early"`` (the exploration-time
    automaton monitor decided it on a proper prefix and the check was
    skipped); empty otherwise.  Excluded from equality and ``__str__``
    so report signatures and differential oracles stay byte-identical
    with and without either routing.
    """

    name: str
    holds: bool
    detail: str = ""
    provenance: str = field(default="", compare=False)

    def __str__(self) -> str:
        verdict = "OK " if self.holds else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{verdict}] {self.name}{suffix}"


@dataclass
class CheckResult:
    """Outcome of checking one computation against one specification."""

    spec_name: str
    legality_violations: List = field(default_factory=list)
    outcomes: List[RestrictionOutcome] = field(default_factory=list)
    #: temporal restrictions decided exactly on the slice / via the walk
    #: after the slice declined (both 0 unless ``use_slice`` was set)
    slice_hits: int = 0
    slice_fallbacks: int = 0
    #: temporal restrictions decided by the automaton route -- early
    #: (monitor verdicts) or at the full history (leaf-resolvable) --
    #: and restrictions whose shape the DFA compiler rejected (both 0
    #: unless ``use_dfa`` was set)
    dfa_hits: int = 0
    dfa_inert: int = 0

    @property
    def ok(self) -> bool:
        return not self.legality_violations and all(o.holds for o in self.outcomes)

    def failed_restrictions(self) -> List[str]:
        return [o.name for o in self.outcomes if not o.holds]

    def summary(self) -> str:
        lines = [
            f"check against {self.spec_name!r}: "
            f"{'LEGAL' if self.ok else 'ILLEGAL'}"
        ]
        for v in self.legality_violations:
            lines.append(f"  legality: {v}")
        for o in self.outcomes:
            lines.append(f"  {o}")
        return "\n".join(lines)


class LatticeChecker:
    """Temporal evaluation over the history lattice of one computation.

    Stateful only in its memo tables; safe to reuse for many formulae
    over the same computation.
    """

    def __init__(self, computation: Computation,
                 history_cap: int = DEFAULT_HISTORY_CAP):
        self._comp = computation
        self._cap = history_cap
        # memo: (formula, events, env-key, mode) -> bool; keyed on the
        # formula object itself (structural equality) rather than id() --
        # ids are reused after garbage collection, which poisons the memo
        self._memo: Dict[Tuple, bool] = {}
        self._visited = 0

    @property
    def visited(self) -> int:
        """(formula, history) pairs evaluated so far (memo misses)."""
        return self._visited

    def distinct_histories(self) -> int:
        """Distinct history prefixes in the memo -- the explored slice
        of the computation's history lattice."""
        return len({key[1] for key in self._memo})

    def _env_key(self, env: Dict) -> Tuple:
        return tuple(sorted((k, v.eid) for k, v in env.items()))

    def holds(self, formula: Formula, history: Optional[History] = None,
              env: Optional[Dict] = None) -> bool:
        """Evaluate ``formula`` at ``history`` (default: empty history)."""
        if history is None:
            history = empty_history(self._comp)
        return self._eval(formula, history, dict(env or {}))

    def _eval(self, formula: Formula, history: History, env: Dict) -> bool:
        if not formula.is_temporal():
            return formula.holds_at(history, env)
        if isinstance(formula, Henceforth):
            return self._always(formula.body, history, env)
        if isinstance(formula, Eventually):
            return self._eventually(formula.body, history, env)
        if isinstance(formula, Not):
            return not self._eval(formula.body, history, env)
        if isinstance(formula, And):
            return all(self._eval(p, history, env) for p in formula.parts)
        if isinstance(formula, Or):
            return any(self._eval(p, history, env) for p in formula.parts)
        if isinstance(formula, Implies):
            return (not self._eval(formula.antecedent, history, env)) or self._eval(
                formula.consequent, history, env
            )
        if isinstance(formula, Iff):
            return self._eval(formula.left, history, env) == self._eval(
                formula.right, history, env
            )
        if isinstance(formula, (ForAll, Exists, ExistsUnique, AtMostOne)):
            results = (
                self._eval(formula.body, history, self._bind(env, formula.var, ev))
                for ev in formula.dom.events(self._comp)
            )
            if isinstance(formula, ForAll):
                return all(results)
            if isinstance(formula, Exists):
                return any(results)
            count = 0
            for r in results:
                if r:
                    count += 1
                    if count > 1:
                        break
            return count == 1 if isinstance(formula, ExistsUnique) else count <= 1
        raise SpecificationError(
            f"lattice checker cannot handle node {type(formula).__name__} "
            "with temporal content"
        )

    @staticmethod
    def _bind(env: Dict, var: str, ev) -> Dict:
        env2 = dict(env)
        env2[var] = ev
        return env2

    def _bump(self) -> None:
        self._visited += 1
        if self._visited > self._cap:
            raise ComputationError(
                f"lattice checker visited more than {self._cap} "
                "(formula, history) pairs; raise history_cap, shrink the "
                "computation, or leave slicing enabled (--slice) so regular "
                "restrictions bypass the walk"
            )

    def _always(self, body: Formula, history: History, env: Dict) -> bool:
        """AG body: body holds at every history ⊇ ``history``."""
        key = (body, history.events, self._env_key(env), "AG")
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        self._bump()
        result = True
        if not self._eval(body, history, env):
            result = False
        else:
            seen = {history.events}
            stack = [history]
            while stack:
                h = stack.pop()
                for eid in h.addable():
                    nxt_events = h.events | {eid}
                    if nxt_events in seen:
                        continue
                    seen.add(nxt_events)
                    nxt = History(self._comp, nxt_events, _trusted=True)
                    self._bump()
                    if not self._eval(body, nxt, env):
                        result = False
                        stack.clear()
                        break
                    stack.append(nxt)
        self._memo[key] = result
        return result

    def _eventually(self, body: Formula, history: History, env: Dict) -> bool:
        """AF body: every maximal path from ``history`` hits a body-history."""
        key = (body, history.events, self._env_key(env), "AF")
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        self._bump()
        if self._eval(body, history, env):
            self._memo[key] = True
            return True
        addable = sorted(history.addable())
        if not addable:
            self._memo[key] = False
            return False
        result = all(
            self._eventually(
                body, History(self._comp, history.events | {eid}, _trusted=True), env
            )
            for eid in addable
        )
        self._memo[key] = result
        return result


def check_restriction(
    computation: Computation,
    restriction: Restriction,
    temporal_mode: str = "compiled",
    vhs_cap: int = DEFAULT_VHS_CAP,
    max_step: Optional[int] = 1,
    history_cap: int = DEFAULT_HISTORY_CAP,
    with_witness: bool = False,
    use_slice: bool = False,
    use_dfa: bool = False,
    decided: Optional[Dict[str, bool]] = None,
    _lattice: Optional[LatticeChecker] = None,
    _compiled: Optional[object] = None,
    _slice: Optional[object] = None,
    _automata: Optional[object] = None,
    metrics: Optional[object] = None,
    tracer: Optional[object] = None,
) -> RestrictionOutcome:
    """Check a single restriction on a (thread-labelled) computation.

    With ``with_witness``, a failing outcome's detail carries a located
    counterexample (the failing history and quantifier bindings) from
    :mod:`repro.core.witness` -- costs roughly one extra check.

    With ``use_slice``, temporal restrictions are first offered to
    :class:`repro.core.slice.SliceChecker`: shapes it classifies as
    regular or linear are decided *exactly* on the slice, without any
    lattice walk and regardless of ``history_cap`` pressure
    (``checker.slice_hits``); the rest fall through to the normal
    compiled/lattice path (``checker.slice_fallbacks``).  Verdicts and
    detail strings are identical either way -- the slice-differential
    fuzz oracle gates that -- so the default is off here and the engine
    turns it on.  ``_slice`` shares one :class:`SliceChecker` across a
    spec's restrictions, like ``_lattice``/``_compiled``.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`, duck-typed so
    this module needs no obs import) receives ``checker.evals`` /
    ``checker.seconds`` per restriction (plus
    ``checker.compiled_evals`` / ``checker.fallbacks`` in compiled
    mode).  ``tracer`` (a :class:`repro.obs.Tracer`) wraps the
    evaluation in a ``restriction`` span, and on failure records a
    subformula evaluation trace (:mod:`repro.obs.explain`) explaining
    which binding / history prefix / temporal unrolling flipped the
    verdict; explanations always come from the reference interpreter,
    also under ``temporal_mode="compiled"``.

    ``_compiled`` is the :class:`repro.core.compile.CompiledSpec`
    shared across a spec's restrictions by :func:`check_computation`;
    without it, compiled mode compiles the single restriction on the
    spot.

    With ``use_dfa``, temporal restrictions route through
    :mod:`repro.core.automata`: a verdict already present in
    ``decided`` (the exploration-time automaton monitor's early
    decisions, semantically equal to what this check would derive) is
    taken as-is (``provenance="dfa-early"``), and restrictions whose
    automaton is leaf-resolvable (◇ with monotone bodies) are evaluated
    at the full history with no lattice walk (``provenance="dfa"``).
    Failing verdicts still re-derive witnesses/explanations through the
    interpreter via ``fail()``, so diagnostics are byte-identical with
    the route off.  ``_automata`` shares one
    :class:`repro.core.automata.AutomataPlan` across a spec's
    restrictions.
    """
    tracing = tracer is not None and getattr(tracer, "enabled", False)

    def fail(detail: str) -> RestrictionOutcome:
        if tracing:
            from ..obs.explain import explain_restriction

            explanation = explain_restriction(computation, restriction,
                                              history_cap=history_cap)
            if explanation is not None:
                tracer.add_explanation(explanation.to_record())
        if with_witness:
            from .witness import find_witness

            witness = find_witness(computation, restriction,
                                   history_cap=history_cap)
            if witness is not None:
                detail = f"{detail}; witness: {witness.describe()}"
        return RestrictionOutcome(restriction.name, False, detail)

    #: "" (slice not consulted) | "slice" (exact verdict) | "walk" (declined)
    slice_state = [""]
    #: "" | "dfa-early" (monitor verdict reused) | "dfa" (leaf-resolved)
    dfa_state = [""]

    def decide() -> RestrictionOutcome:
        formula = restriction.formula
        temporal = formula.is_temporal()
        mode = temporal_mode
        if temporal and decided is not None and restriction.name in decided:
            dfa_state[0] = "dfa-early"
            if metrics is not None:
                metrics.inc("checker.dfa_early", 1,
                            restriction=restriction.name)
            if decided[restriction.name]:
                return RestrictionOutcome(restriction.name, True)
            # verdict semantically equal to the walk's; detail matches
            # byte-for-byte and fail() re-derives witnesses/explanations
            # through the interpreter, so diagnostics are route-invariant
            return fail("fails over the history lattice")
        if use_dfa and temporal and mode in ("compiled", "lattice"):
            from .automata import classify_restriction

            automaton = (_automata.automaton(restriction.name)
                         if _automata is not None
                         else classify_restriction(restriction))
            if automaton is not None and automaton.leaf_resolvable:
                dfa_state[0] = "dfa"
                if metrics is not None:
                    metrics.inc("checker.dfa_hits", 1,
                                restriction=restriction.name)
                if automaton.resolve_at_top(computation):
                    return RestrictionOutcome(restriction.name, True)
                return fail("fails over the history lattice")
        if use_slice and temporal and mode in ("compiled", "lattice"):
            from .slice import SliceChecker

            slicer = _slice if _slice is not None else SliceChecker(
                computation)
            analysis = slicer.analyze(restriction)
            if analysis.verdict is not None:
                slice_state[0] = "slice"
                if metrics is not None:
                    metrics.inc("checker.slice_hits", 1,
                                restriction=restriction.name)
                if analysis.verdict:
                    return RestrictionOutcome(restriction.name, True)
                # same detail string as the walk: the slice decides the
                # same branching semantics, and fail() re-derives
                # witnesses/explanations through the interpreter
                return fail("fails over the history lattice")
            slice_state[0] = "walk"
            if metrics is not None:
                metrics.inc("checker.slice_fallbacks", 1,
                            restriction=restriction.name)
        if mode == "compiled":
            from .compile import bind_restriction

            cspec = _compiled if _compiled is not None else bind_restriction(
                computation, restriction, history_cap)
            compiled = cspec.restriction(restriction)
            if compiled is not None:
                visited_before = cspec.visited
                holds = compiled.holds()
                if metrics is not None:
                    evals[0] = cspec.visited - visited_before
                    metrics.inc("checker.compiled_evals", max(evals[0], 1),
                                restriction=restriction.name)
                if holds:
                    return RestrictionOutcome(restriction.name, True)
                # detail strings match the interpreter byte for byte,
                # and fail() re-derives witnesses/explanations through
                # the interpreter, so failure output is mode-invariant
                return fail("fails over the history lattice" if temporal
                            else "fails at complete computation")
            # PyPred or an unknown node: whole-restriction fallback to
            # the reference interpreter
            if metrics is not None:
                metrics.inc("checker.fallbacks", 1,
                            restriction=restriction.name)
            mode = "lattice"
        if not temporal:
            holds = formula.holds_at(full_history(computation))
            if holds:
                return RestrictionOutcome(restriction.name, True)
            return fail("fails at complete computation")
        if mode == "lattice":
            checker = _lattice or LatticeChecker(computation, history_cap)
            visited_before = checker.visited
            holds = checker.holds(formula)
            if metrics is not None:
                evals[0] = checker.visited - visited_before
            if holds:
                return RestrictionOutcome(restriction.name, True)
            return fail("fails over the history lattice")
        if mode == "exact":
            count = 0
            for seq in maximal_history_sequences(computation, cap=vhs_cap,
                                                 max_step=max_step):
                count += 1
                if not formula.holds_on(seq):
                    return RestrictionOutcome(
                        restriction.name, False,
                        f"fails on vhs #{count} (steps: "
                        f"{[sorted(map(str, h.events)) for h in seq]})")
            if metrics is not None:
                evals[0] = count
            return RestrictionOutcome(restriction.name, True,
                                      f"holds on all {count} maximal vhs")
        raise SpecificationError(f"unknown temporal_mode {mode!r}")

    def stamp(outcome: RestrictionOutcome) -> RestrictionOutcome:
        if dfa_state[0] and not outcome.provenance:
            return replace(outcome, provenance=dfa_state[0])
        if slice_state[0] and not outcome.provenance:
            return replace(outcome, provenance=slice_state[0])
        return outcome

    if metrics is None and not tracing:
        return stamp(decide())

    #: lattice visits (or vhs count), at least 1 for the top-level pass
    evals = [0]
    started = time.perf_counter()
    if tracing:
        with tracer.span("restriction", attrs={"name": restriction.name}):
            outcome = decide()
    else:
        outcome = decide()
    if metrics is not None:
        metrics.inc("checker.evals", max(evals[0], 1),
                    restriction=restriction.name)
        metrics.observe("checker.seconds", time.perf_counter() - started,
                        restriction=restriction.name)
    return stamp(outcome)


def check_computation(
    computation: Computation,
    spec: Specification,
    temporal_mode: str = "compiled",
    vhs_cap: int = DEFAULT_VHS_CAP,
    max_step: Optional[int] = 1,
    history_cap: int = DEFAULT_HISTORY_CAP,
    label_threads: bool = True,
    use_slice: bool = False,
    use_dfa: bool = False,
    decided: Optional[Dict[str, bool]] = None,
    metrics: Optional[object] = None,
    tracer: Optional[object] = None,
) -> CheckResult:
    """Full ``legal(C, σ)`` check: legality rules plus every restriction.

    Thread labels are (re)applied before restriction evaluation unless
    ``label_threads`` is false (pass false when the computation already
    carries labels you want preserved exactly).

    In the default ``compiled`` mode the specification's restrictions
    are compiled once (the per-spec analysis plan is cached on the spec
    instance, so engine workers inherit it across computations) and
    share one bitmask kernel per computation; restrictions the compiler
    rejects fall back to the shared :class:`LatticeChecker`.

    ``metrics``/``tracer`` thread through to :func:`check_restriction`;
    the lattice size actually explored for this computation lands in
    the ``checker.lattice_histories`` histogram.
    """
    result = CheckResult(spec.name)
    result.legality_violations = check_legality(computation, spec)
    labelled = spec.label_threads(computation) if label_threads else computation
    lattice = LatticeChecker(labelled, history_cap)
    compiled = None
    if temporal_mode == "compiled":
        from .compile import plan_for

        compiled = plan_for(spec).bind(labelled, history_cap)
    slicer = None
    if use_slice and temporal_mode in ("lattice", "compiled"):
        from .slice import SliceChecker

        slicer = SliceChecker(labelled)
    automata = None
    if use_dfa and temporal_mode in ("lattice", "compiled"):
        from .automata import automata_plan_for

        automata = automata_plan_for(spec)
    for restriction in spec.all_restrictions():
        result.outcomes.append(
            check_restriction(
                labelled,
                restriction,
                temporal_mode=temporal_mode,
                vhs_cap=vhs_cap,
                max_step=max_step,
                history_cap=history_cap,
                use_slice=use_slice,
                use_dfa=use_dfa,
                decided=decided,
                _lattice=lattice if temporal_mode in ("lattice", "compiled")
                else None,
                _compiled=compiled,
                _slice=slicer,
                _automata=automata,
                metrics=metrics,
                tracer=tracer,
            )
        )
    result.slice_hits = sum(
        1 for o in result.outcomes if o.provenance == "slice")
    result.slice_fallbacks = sum(
        1 for o in result.outcomes if o.provenance == "walk")
    result.dfa_hits = sum(
        1 for o in result.outcomes if o.provenance in ("dfa", "dfa-early"))
    if automata is not None:
        from .automata import INERT

        result.dfa_inert = sum(
            1 for a in automata.automata.values() if a.kind == INERT)
    if metrics is not None:
        metrics.inc("checker.computations")
        if temporal_mode == "lattice":
            metrics.observe("checker.lattice_histories",
                            lattice.distinct_histories(), spec=spec.name)
        elif temporal_mode == "compiled":
            metrics.observe("checker.lattice_histories",
                            compiled.distinct_histories(), spec=spec.name)
    return result


def check_safety_at_all_histories(
    computation: Computation, formula: Formula,
    history_cap: int = DEFAULT_HISTORY_CAP,
) -> bool:
    """Convenience: does an immediate ``formula`` hold at *every* history?

    Equivalent to checking ``□ formula`` over all valid history
    sequences (every reachable history lies on some maximal vhs).
    """
    checker = LatticeChecker(computation, history_cap)
    return checker.holds(Henceforth(formula))
