"""Bitmask evaluation kernel shared by the compiled checker.

The lattice interpreter (:mod:`repro.core.checker`) represents a history
as a ``frozenset`` of :class:`~repro.core.ids.EventId` and re-derives
frontier/addable sets through Python iterators on every call.  The
compiled checker (:mod:`repro.core.compile`) instead fixes one dense
event indexing per computation and works with plain ``int`` bitmasks:

* a history is an ``int`` with bit *i* set iff event *i* has occurred;
* the child of history ``m`` adding event *i* is ``m | (1 << i)``;
* the relations ``⊳``, ``⇒ₑ`` and ``⇒`` are per-event successor masks
  (re-using :class:`~repro.core.order.Relation`'s ``succ_bits`` tables
  -- the temporal relation is already transitively closed, so its raw
  successor table *is* the closure);
* ``addable(m)`` is "every bit i ∉ m whose temporal-predecessor mask is
  contained in m", one AND-NOT per event.

An :class:`EventIndex` is built once per computation and cached on the
:class:`~repro.core.computation.Computation` instance, so the engine's
workers, the fuzz oracles and repeated ``check_computation`` calls all
share the same tables.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .computation import Computation
from .event import Event
from .history import History
from .ids import EventId


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class EventIndex:
    """Dense event indexing plus relation bitmask tables for one computation.

    Event *i* is ``computation.events[i]`` (builder insertion order), so
    the indexing is deterministic run to run.  All masks use that
    indexing.
    """

    __slots__ = (
        "computation",
        "events",
        "n",
        "full_mask",
        "index_of",
        "temporal_succ",
        "temporal_pred",
        "enable_succ",
        "element_succ",
        "threads",
    )

    def __init__(self, computation: Computation) -> None:
        self.computation = computation
        self.events: Tuple[Event, ...] = computation.events
        n = len(self.events)
        self.n = n
        self.full_mask = (1 << n) - 1
        self.index_of: Dict[EventId, int] = {
            ev.eid: i for i, ev in enumerate(self.events)
        }
        temporal = computation.temporal_relation
        # ⇒ is transitively closed at construction, so the raw successor
        # table equals the closure; closure_table() shares the Relation's
        # memoised list rather than recomputing reachability
        closure = temporal.closure_table()
        remap = [self.index_of[node] for node in temporal.nodes]
        self.temporal_succ: List[int] = [0] * n
        for rel_i, bits in enumerate(closure):
            acc = 0
            for rel_j in iter_bits(bits):
                acc |= 1 << remap[rel_j]
            self.temporal_succ[remap[rel_i]] = acc
        self.temporal_pred: List[int] = _transpose(self.temporal_succ)
        enable = computation.enable_relation
        enable_remap = [self.index_of[node] for node in enable.nodes]
        self.enable_succ: List[int] = [0] * n
        for rel_i, bits in enumerate(enable.succ_table()):
            acc = 0
            for rel_j in iter_bits(bits):
                acc |= 1 << enable_remap[rel_j]
            self.enable_succ[enable_remap[rel_i]] = acc
        # ⇒ₑ: same element, smaller occurrence number
        self.element_succ: List[int] = [0] * n
        by_element: Dict[str, List[int]] = {}
        for i, ev in enumerate(self.events):
            by_element.setdefault(ev.eid.element, []).append(i)
        for members in by_element.values():
            members.sort(key=lambda i: self.events[i].eid.index)
            for pos, i in enumerate(members):
                acc = 0
                for j in members[pos + 1:]:
                    acc |= 1 << j
                self.element_succ[i] = acc
        self.threads: Tuple[frozenset, ...] = tuple(
            ev.threads for ev in self.events)

    # -- history/mask conversion ------------------------------------------

    def mask_of(self, eids) -> int:
        """Bitmask of an iterable of event ids."""
        acc = 0
        index_of = self.index_of
        for eid in eids:
            acc |= 1 << index_of[eid]
        return acc

    def history_of(self, mask: int) -> History:
        """The :class:`History` a mask denotes (trusted: masks produced
        by the kernel are down-closed by construction)."""
        events = self.events
        return History(
            self.computation,
            (events[i].eid for i in iter_bits(mask)),
            _trusted=True,
        )

    # -- lattice steps ------------------------------------------------------

    def addable_mask(self, mask: int) -> int:
        """Events that could extend history ``mask`` (the *potential*
        events): not occurred, every temporal predecessor occurred."""
        acc = 0
        pred = self.temporal_pred
        remaining = self.full_mask & ~mask
        for i in iter_bits(remaining):
            if not pred[i] & ~mask:
                acc |= 1 << i
        return acc

    def frontier_mask(self, mask: int) -> int:
        """Members of ``mask`` with no temporal successor inside it."""
        acc = 0
        succ = self.temporal_succ
        for i in iter_bits(mask):
            if not succ[i] & mask:
                acc |= 1 << i
        return acc

    def down_closure(self, mask: int) -> int:
        """``mask`` plus every temporal predecessor of its members -- the
        least history containing them (⇒ is transitively closed, so one
        pass over the predecessor table suffices)."""
        acc = mask
        pred = self.temporal_pred
        for i in iter_bits(mask):
            acc |= pred[i]
        return acc

    def up_closure(self, mask: int) -> int:
        """``mask`` plus every temporal successor of its members; its
        complement is the greatest history avoiding ``mask``."""
        acc = mask
        succ = self.temporal_succ
        for i in iter_bits(mask):
            acc |= succ[i]
        return acc


def _transpose(table: List[int]) -> List[int]:
    out = [0] * len(table)
    for i, bits in enumerate(table):
        mask = 1 << i
        for j in iter_bits(bits):
            out[j] |= mask
    return out


def event_index(computation: Computation) -> EventIndex:
    """The computation's :class:`EventIndex`, built once and cached on
    the instance (like :class:`Relation`'s closure tables)."""
    cached: Optional[EventIndex] = computation._evalcore
    if cached is None:
        cached = EventIndex(computation)
        computation._evalcore = cached
    return cached
