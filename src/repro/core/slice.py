"""Computation slicing: exact temporal verdicts without walking chains.

The lattice interpreter answers ``□p`` / ``◇p`` by exploring the history
lattice history by history; the compiled checker does the same walk over
bitmasks.  Both are exponential in the width of the temporal order, and
``history_cap`` turns "verified" into "sampled" exactly on the large
computations we care about.  Following the computation-slicing line of
work (Chauhan–Garg, see PAPERS.md), many restriction shapes admit a
*slice*: a small, lattice-structured description of the set of cuts
(histories) satisfying a predicate, on which □/◇ legality can be decided
exactly in polynomial time.

This module grounds a :class:`~repro.core.formula.Restriction` against
one computation's :class:`~repro.core.evalcore.EventIndex` into a
propositional tree over *occurrence literals* ("event i has occurred"),
then decides the branching temporal semantics the lattice interpreter
implements (□ = AG, ◇ = AF) by cube reasoning:

* the cuts satisfying a conjunction of literals form a sublattice
  ``[down-closure(pos), full \\ up-closure(neg)]`` -- a single *cube*
  ``(pos, neg)``, closed under joins and meets;
* ``□q`` at cut ``m`` is "no cut above ``m`` satisfies ¬q", decided per
  cube of the DNF of ¬q by inspecting the cube's two extremal cuts;
* ``◇q`` at cut ``m`` is ¬EG¬q; EG is decided exactly on monotone or
  antitone regions (every cube positive-only, or every cube
  negative-only), where truth along one chain is determined by truth at
  the endpoints.

Shapes outside this fragment -- ``PyPred``, counting quantifiers over
non-constant bodies, mixed-polarity regions under ◇, entangled nested
temporal operators -- raise :class:`SliceError`, and the checker falls
back to the walk (counted by ``checker.slice_fallbacks``, the same
pattern as ``checker.fallbacks`` for the compiler).  The slice can
therefore only *add* exact verdicts; it never changes one.  A standing
differential oracle (``slice-differential`` in :mod:`repro.fuzz`) and
``tests/test_slice.py`` keep it byte-equal to the interpreter.

Classification vocabulary (reported by :meth:`SliceChecker.analyze`):

``immediate``
    No temporal operator; the checker already evaluates these directly
    at the complete computation, so the slice declines them.

``regular``
    Every DNF computed while deciding the restriction had at most one
    cube: the satisfying cuts of every queried subformula form a single
    sublattice (a regular predicate in the slicing literature).

``linear``
    Decided exactly, but some region was a union of several cubes (a
    finite union of sublattices -- linear predicates).

``non-regular``
    Outside the fragment; the verdict is ``None`` and the caller walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .computation import Computation
from .evalcore import EventIndex, event_index, iter_bits
from .formula import (
    And,
    AtControl,
    AtElement,
    AtMostOne,
    Concurrent,
    DataCmp,
    DataEq,
    DistinctThreads,
    ElementPrecedes,
    Enables,
    EventEq,
    Eventually,
    Exists,
    ExistsUnique,
    FalseF,
    ForAll,
    Formula,
    Henceforth,
    Iff,
    Implies,
    New,
    Not,
    Occurred,
    Or,
    Potential,
    Restriction,
    SameThread,
    TemporallyPrecedes,
    TrueF,
)
from .history import empty_history

#: Cap on grounded-tree nodes (quantifier expansion is quadratic in
#: domain sizes for the paper's pairwise restrictions).
DEFAULT_NODE_CAP = 50_000
#: Cap on cubes per DNF; past it the region is treated as non-regular.
DEFAULT_CUBE_CAP = 256
#: Cap on evaluation steps (cube visits + memo misses).
DEFAULT_VISIT_CAP = 250_000

_T = ("const", True)
_F = ("const", False)


class SliceError(Exception):
    """The restriction falls outside the sliceable fragment.

    Internal control flow only: :meth:`SliceChecker.analyze` converts it
    into a ``non-regular`` analysis and the checker falls back to the
    lattice walk.  Never escapes ``check_restriction``.
    """


def _const(value: bool):
    return _T if value else _F


def _lit(i: int, positive: bool):
    return ("lit", i, positive)


def _not(node):
    kind = node[0]
    if kind == "const":
        return _const(not node[1])
    if kind == "lit":
        return _lit(node[1], not node[2])
    if kind == "not":
        return node[1]
    return ("not", node)


def _and(parts):
    out: List[tuple] = []
    for p in parts:
        if p[0] == "const":
            if not p[1]:
                return _F
            continue
        if p[0] == "and":
            out.extend(p[1])
        else:
            out.append(p)
    out = list(dict.fromkeys(out))
    if not out:
        return _T
    if len(out) == 1:
        return out[0]
    return ("and", tuple(out))


def _or(parts):
    out: List[tuple] = []
    for p in parts:
        if p[0] == "const":
            if p[1]:
                return _T
            continue
        if p[0] == "or":
            out.extend(p[1])
        else:
            out.append(p)
    out = list(dict.fromkeys(out))
    if not out:
        return _F
    if len(out) == 1:
        return out[0]
    return ("or", tuple(out))


@dataclass(frozen=True)
class SliceCube:
    """One sublattice of cuts: ``pos ⊆ cut`` and ``cut ∩ ↑neg = ∅``.

    ``pos`` is stored down-closed, so the cube's least cut is ``pos``
    itself and its greatest is ``full \\ up-closure(neg)``.  The cube is
    closed under unions and intersections of its cuts -- the join/meet
    closure law ``tests/test_slice.py`` pins.
    """

    pos: int
    neg: int

    def min_mask(self, index: EventIndex) -> int:
        return self.pos

    def max_mask(self, index: EventIndex) -> int:
        return index.full_mask & ~index.up_closure(self.neg)

    def contains(self, index: EventIndex, mask: int) -> bool:
        """Cube membership for a down-closed ``mask``."""
        return (self.pos & ~mask) == 0 and not (
            mask & index.up_closure(self.neg))

    def cuts(self, index: EventIndex, cap: Optional[int] = None
             ) -> Tuple[int, ...]:
        """Every cut in the cube, ascending; ``cap`` raises past it."""
        hi = self.max_mask(index)
        if self.pos & ~hi:
            return ()
        seen = {self.pos}
        queue = [self.pos]
        out: List[int] = []
        while queue:
            m = queue.pop()
            out.append(m)
            if cap is not None and len(out) > cap:
                raise SliceError(f"cube holds more than {cap} cuts")
            for i in iter_bits(index.addable_mask(m) & hi):
                nm = m | (1 << i)
                if nm not in seen:
                    seen.add(nm)
                    queue.append(nm)
        out.sort()
        return tuple(out)


@dataclass(frozen=True)
class SliceAnalysis:
    """Outcome of slicing one restriction on one computation.

    ``verdict`` is the exact legality answer when ``kind`` is
    ``regular`` or ``linear``; ``None`` means the caller must walk
    (``immediate`` restrictions are declined by design, ``non-regular``
    ones fall outside the fragment -- ``detail`` says why).
    """

    kind: str  # "immediate" | "regular" | "linear" | "non-regular"
    verdict: Optional[bool]
    detail: str = ""

    @property
    def exact(self) -> bool:
        return self.verdict is not None


class SliceChecker:
    """Slice-based temporal evaluation for one (thread-labelled) computation.

    Stateful only in its memo tables, like :class:`LatticeChecker`; safe
    to share across a specification's restrictions.  ``analyze`` caches
    per restriction, so the engine's resident workers pay the grounding
    cost once per (computation, restriction) pair.
    """

    def __init__(self, computation: Computation,
                 node_cap: int = DEFAULT_NODE_CAP,
                 cube_cap: int = DEFAULT_CUBE_CAP,
                 visit_cap: int = DEFAULT_VISIT_CAP):
        self._comp = computation
        self._index = event_index(computation)
        self._empty = empty_history(computation)
        self._node_cap = node_cap
        self._cube_cap = cube_cap
        self._visit_cap = visit_cap
        self._analyses: Dict[Restriction, SliceAnalysis] = {}
        # memo keys use id(node); every node that enters a memo is also
        # appended to _keep so its id stays live for the checker's life
        self._nnf_memo: Dict[Tuple[int, bool], tuple] = {}
        self._dnf_memo: Dict[int, tuple] = {}
        self._eval_memo: Dict[Tuple[int, int], bool] = {}
        self._keep: List[object] = []
        self._visited = 0
        self._nodes = 0
        self._max_cubes = 1

    @property
    def visited(self) -> int:
        """Evaluation steps so far (cube visits + eval memo misses)."""
        return self._visited

    # -- public API ---------------------------------------------------------

    def analyze(self, restriction: Restriction) -> SliceAnalysis:
        """Classify ``restriction`` and, when sliceable, decide it exactly."""
        hit = self._analyses.get(restriction)
        if hit is not None:
            return hit
        analysis = self._analyze(restriction)
        self._analyses[restriction] = analysis
        return analysis

    def holds(self, restriction: Restriction) -> Optional[bool]:
        """Exact verdict, or ``None`` when the restriction is not sliceable."""
        return self.analyze(restriction).verdict

    def _analyze(self, restriction: Restriction) -> SliceAnalysis:
        formula = restriction.formula
        if not formula.is_temporal():
            return SliceAnalysis(
                "immediate", None,
                "no temporal operator; checked at the complete computation")
        self._max_cubes = 1
        try:
            root = self._ground(formula, {})
            self._keep.append(root)
            verdict = self._eval_at(root, 0)
        except SliceError as exc:
            return SliceAnalysis("non-regular", None, str(exc))
        kind = "regular" if self._max_cubes <= 1 else "linear"
        return SliceAnalysis(kind, verdict, f"max {self._max_cubes} cube(s)")

    # -- grounding: Formula × Env → literal tree ----------------------------

    def _event(self, env: Dict, var: str):
        try:
            return env[var]
        except KeyError:
            raise SliceError(f"unbound variable {var!r}") from None

    def _bit(self, env: Dict, var: str) -> int:
        ev = self._event(env, var)
        try:
            return self._index.index_of[ev.eid]
        except KeyError:
            raise SliceError(
                f"{ev.eid} bound to {var!r} is not in the computation"
            ) from None

    def _ground(self, f: Formula, env: Dict) -> tuple:
        self._nodes += 1
        if self._nodes > self._node_cap:
            raise SliceError(
                f"grounded formula exceeds {self._node_cap} nodes")
        idx = self._index
        comp = self._comp
        if isinstance(f, TrueF):
            return _T
        if isinstance(f, FalseF):
            return _F
        if isinstance(f, Not):
            return _not(self._ground(f.body, env))
        if isinstance(f, And):
            return _and([self._ground(p, env) for p in f.parts])
        if isinstance(f, Or):
            return _or([self._ground(p, env) for p in f.parts])
        if isinstance(f, Implies):
            return _or([_not(self._ground(f.antecedent, env)),
                        self._ground(f.consequent, env)])
        if isinstance(f, Iff):
            a = self._ground(f.left, env)
            b = self._ground(f.right, env)
            return _or([_and([a, b]), _and([_not(a), _not(b)])])
        if isinstance(f, Henceforth):
            body = self._ground(f.body, env)
            # AG/AF of a history-independent truth value is that value
            return body if body[0] == "const" else ("box", body)
        if isinstance(f, Eventually):
            body = self._ground(f.body, env)
            return body if body[0] == "const" else ("dia", body)
        if isinstance(f, (ForAll, Exists)):
            parts = [self._ground(f.body, {**env, f.var: ev})
                     for ev in f.dom.events(comp)]
            return _and(parts) if isinstance(f, ForAll) else _or(parts)
        if isinstance(f, (ExistsUnique, AtMostOne)):
            parts = [self._ground(f.body, {**env, f.var: ev})
                     for ev in f.dom.events(comp)]
            if any(p[0] != "const" for p in parts):
                raise SliceError(
                    "counting quantifier over a history-dependent body")
            count = sum(1 for p in parts if p[1])
            return _const(count == 1 if isinstance(f, ExistsUnique)
                          else count <= 1)
        if isinstance(f, Occurred):
            return _lit(self._bit(env, f.var), True)
        if isinstance(f, AtElement):
            ev = self._event(env, f.var)
            if ev.element != f.element:
                return _F
            return _lit(self._bit(env, f.var), True)
        if isinstance(f, (Enables, ElementPrecedes, TemporallyPrecedes)):
            ea = self._event(env, f.a)
            eb = self._event(env, f.b)
            rel = (comp.enables if isinstance(f, Enables)
                   else comp.element_precedes if isinstance(f, ElementPrecedes)
                   else comp.temporally_precedes)
            if not rel(ea.eid, eb.eid):
                return _F
            return _and([_lit(self._bit(env, f.a), True),
                         _lit(self._bit(env, f.b), True)])
        if isinstance(f, Concurrent):
            return _const(comp.concurrent(self._event(env, f.a).eid,
                                          self._event(env, f.b).eid))
        if isinstance(f, EventEq):
            return _const(self._event(env, f.a).eid
                          == self._event(env, f.b).eid)
        if isinstance(f, New):
            i = self._bit(env, f.var)
            return _and([_lit(i, True)]
                        + [_lit(s, False)
                           for s in iter_bits(idx.temporal_succ[i])])
        if isinstance(f, Potential):
            i = self._bit(env, f.var)
            return _and([_lit(i, False)]
                        + [_lit(p, True)
                           for p in iter_bits(idx.temporal_pred[i])])
        if isinstance(f, AtControl):
            i = self._bit(env, f.var)
            targets = 0
            for t in f.dom.events(comp):
                ti = idx.index_of.get(t.eid)
                if ti is not None:
                    targets |= 1 << ti
            forbidden = idx.enable_succ[i] & targets
            return _and([_lit(i, True)]
                        + [_lit(t, False) for t in iter_bits(forbidden)])
        if isinstance(f, (SameThread, DistinctThreads)):
            shared = bool(self._event(env, f.a).threads
                          & self._event(env, f.b).threads)
            return _const(shared if isinstance(f, SameThread) else not shared)
        if isinstance(f, (DataEq, DataCmp)):
            # history-independent, but the interpreter may short-circuit
            # past a raising comparison; eager grounding must fall back
            # rather than diverge, so any failure is a SliceError
            try:
                return _const(bool(f._eval(self._empty, env)))
            except SliceError:
                raise
            except Exception as exc:
                raise SliceError(
                    f"data predicate {f.describe()} not groundable: {exc}"
                ) from None
        raise SliceError(f"no slice grounding for {type(f).__name__}")

    # -- negation normal form ----------------------------------------------

    def _nnf(self, node: tuple, neg: bool) -> tuple:
        """Push negation to literals.  Negated temporal operators stay as
        ``("not", ("box"/"dia", q))`` literals: under the branching
        semantics ¬□q is EF¬q, *not* ◇¬q, so ¬ must not cross □/◇."""
        key = (id(node), neg)
        hit = self._nnf_memo.get(key)
        if hit is not None:
            return hit
        kind = node[0]
        if kind == "const":
            out = _const(node[1] != neg)
        elif kind == "lit":
            out = _lit(node[1], node[2] != neg)
        elif kind == "not":
            out = self._nnf(node[1], not neg)
        elif kind == "and":
            parts = [self._nnf(p, neg) for p in node[1]]
            out = _or(parts) if neg else _and(parts)
        elif kind == "or":
            parts = [self._nnf(p, neg) for p in node[1]]
            out = _and(parts) if neg else _or(parts)
        elif kind in ("box", "dia"):
            out = ("not", node) if neg else node
        else:
            raise SliceError(f"cannot normalise slice node {kind!r}")
        self._nnf_memo[key] = out
        self._keep.append(node)
        self._keep.append(out)
        return out

    # -- disjunctive normal form over cubes ---------------------------------

    def _dnf(self, node: tuple) -> tuple:
        """Cubes ``(pos, neg, temporal_children)`` whose union is ``node``.
        Input must be in NNF."""
        key = id(node)
        hit = self._dnf_memo.get(key)
        if hit is not None:
            return hit
        kind = node[0]
        if kind == "const":
            cubes: Tuple = ((0, 0, ()),) if node[1] else ()
        elif kind == "lit":
            bit = 1 << node[1]
            cubes = ((bit, 0, ()),) if node[2] else ((0, bit, ()),)
        elif kind in ("box", "dia"):
            cubes = ((0, 0, (node,)),)
        elif kind == "not":
            if node[1][0] not in ("box", "dia"):
                raise SliceError("negation inside DNF input is not in NNF")
            cubes = ((0, 0, (node,)),)
        elif kind == "or":
            acc: List[tuple] = []
            for p in node[1]:
                acc.extend(self._dnf(p))
            cubes = tuple(acc)
        elif kind == "and":
            acc = [(0, 0, ())]
            for p in node[1]:
                nxt: List[tuple] = []
                for pos, negm, children in acc:
                    for p2, n2, c2 in self._dnf(p):
                        np_, nn = pos | p2, negm | n2
                        if np_ & nn:
                            continue  # contradictory cube, drop
                        nc = children + tuple(
                            c for c in c2 if c not in children)
                        nxt.append((np_, nn, nc))
                        if len(nxt) > self._cube_cap:
                            raise SliceError(
                                f"DNF exceeds {self._cube_cap} cubes")
                acc = nxt
            cubes = tuple(acc)
        else:
            raise SliceError(f"cannot DNF slice node {kind!r}")
        if len(cubes) > self._cube_cap:
            raise SliceError(f"DNF exceeds {self._cube_cap} cubes")
        self._max_cubes = max(self._max_cubes, len(cubes))
        self._dnf_memo[key] = cubes
        self._keep.append(node)
        return cubes

    # -- evaluation ---------------------------------------------------------

    def _bump(self) -> None:
        self._visited += 1
        if self._visited > self._visit_cap:
            raise SliceError(
                f"slice evaluation exceeded {self._visit_cap} steps")

    def _eval_at(self, node: tuple, mask: int) -> bool:
        """Exact truth of ``node`` at the cut ``mask``, matching the
        lattice interpreter's branching semantics (□ = AG, ◇ = AF)."""
        kind = node[0]
        if kind == "const":
            return node[1]
        if kind == "lit":
            return bool(mask >> node[1] & 1) == node[2]
        key = (id(node), mask)
        hit = self._eval_memo.get(key)
        if hit is not None:
            return hit
        self._bump()
        if kind == "not":
            out = not self._eval_at(node[1], mask)
        elif kind == "and":
            out = all(self._eval_at(p, mask) for p in node[1])
        elif kind == "or":
            out = any(self._eval_at(p, mask) for p in node[1])
        elif kind == "box":
            # AG q at m  ⇔  no cut ⊇ m satisfies ¬q
            out = not self._sat_up(self._nnf(node[1], True), mask)
        elif kind == "dia":
            # AF q at m  ⇔  no maximal chain from m keeps ¬q throughout
            out = not self._eg(self._nnf(node[1], True), mask)
        else:
            raise SliceError(f"cannot evaluate slice node {kind!r}")
        self._eval_memo[key] = out
        self._keep.append(node)
        return out

    def _sat_up(self, node: tuple, mask: int) -> bool:
        """∃ a cut ``h ⊇ mask`` satisfying ``node`` (NNF input).

        Per DNF cube the candidate cuts form the sublattice
        ``[low, hi] = [closure(mask|pos), full \\ ↑neg]``.  Temporal
        children are decided at the two extremal cuts: every child that
        evaluates without error is a monotone, antitone or constant
        function of the cut (AG is monotone, ¬AG antitone; AF/EG verdicts
        are only ever produced on shape-certified monotone/antitone
        regions, see :meth:`_eg`), so truth at an endpoint witnesses the
        cube and falsity at both endpoints refutes it.  Mixed-direction
        children are genuinely entangled and raise."""
        idx = self._index
        for pos, neg, children in self._dnf(node):
            self._bump()
            low = idx.down_closure(mask | pos)
            if low & neg:
                continue  # any candidate would contain a forbidden event
            if not children:
                return True  # low itself is a satisfying cut
            hi = idx.full_mask & ~idx.up_closure(neg)
            at_low = [self._eval_at(c, low) for c in children]
            if all(at_low):
                return True
            at_hi = [self._eval_at(c, hi) for c in children]
            if all(at_hi):
                return True
            if any(not lo and not hi_ for lo, hi_ in zip(at_low, at_hi)):
                continue  # some child is false on the whole interval
            raise SliceError("entangled temporal scenario in slice cube")
        return False

    def _eg(self, node: tuple, mask: int) -> bool:
        """∃ a maximal chain from ``mask`` with ``node`` true at every cut.

        Exact on three certified shapes -- ``node`` false at the full
        history (no chain can end true), monotone regions (every cube
        positive-only: truth at ``mask`` persists along any chain) and
        antitone regions (every cube negative-only: truth at the full
        history implies truth everywhere).  The shape check runs before
        any mask-specific answer so that every non-exceptional verdict
        certifies the region globally -- :meth:`_sat_up`'s endpoint rule
        relies on that."""
        cubes = self._dnf(node)
        if any(c[2] for c in cubes):
            raise SliceError("nested temporal operator under ◇")
        self._bump()
        if not self._eval_at(node, self._index.full_mask):
            return False  # every maximal chain ends at the full history
        monotone = all(c[1] == 0 for c in cubes)
        antitone = all(c[0] == 0 for c in cubes)
        if not (monotone or antitone):
            raise SliceError("◇ body over a mixed-polarity cube region")
        return self._eval_at(node, mask)


def classify_restriction(computation: Computation,
                         restriction: Restriction) -> str:
    """Slice classification of one restriction on one computation."""
    return SliceChecker(computation).analyze(restriction).kind


def predicate_cubes(computation: Computation, formula: Formula,
                    env: Optional[Dict] = None) -> Tuple[SliceCube, ...]:
    """The slice of an *immediate* formula, as cubes of cuts.

    Grounds ``formula`` (under ``env``) and returns the non-empty cubes
    of its DNF, each normalised so ``pos`` is down-closed.  The union of
    the cubes' cuts is exactly the set of histories satisfying the
    formula -- the property the Hypothesis laws in ``tests/test_slice.py``
    exercise.  Raises :class:`SliceError` on temporal or non-groundable
    formulas.
    """
    checker = SliceChecker(computation)
    root = checker._ground(formula, dict(env or {}))
    node = checker._nnf(root, False)
    idx = checker._index
    out: List[SliceCube] = []
    for pos, neg, children in checker._dnf(node):
        if children:
            raise SliceError("temporal operator inside an immediate predicate")
        low = idx.down_closure(pos)
        if low & idx.up_closure(neg):
            continue  # empty cube: a required event forces a forbidden one
        out.append(SliceCube(low, neg))
    return tuple(out)
