"""The GEM model core: events, elements, groups, computations,
histories, restrictions, threads, types, specifications, and the checker.

See DESIGN.md for the map from paper sections to modules.  The names
re-exported here are the library's primary public API::

    from repro.core import (
        ComputationBuilder, Specification, EventClass, ElementDecl, ...
    )
"""

from .abbreviations import (
    chain,
    fork,
    join,
    mutual_exclusion_of,
    nondet_prerequisite,
    prerequisite,
)
from .checker import (
    CheckResult,
    LatticeChecker,
    RestrictionOutcome,
    check_computation,
    check_restriction,
    check_safety_at_all_histories,
)
from .compile import (
    CompiledRestriction,
    CompiledSpec,
    SpecPlan,
    bind_restriction,
    is_compilable,
    plan_for,
)
from .compose import parallel_compose, restrict_events, sequential_compose
from .computation import Computation, ComputationBuilder
from .evalcore import EventIndex, event_index, iter_bits
from .element import ElementDecl, EventClassRef
from .errors import (
    ComputationError,
    CycleError,
    GemError,
    LegalityViolation,
    RestrictionViolation,
    SpecificationError,
    VerificationError,
)
from .event import Event, EventClass, ParamSpec
from .formula import (
    AllEvents,
    And,
    AtControl,
    AtElement,
    AtMostOne,
    ClassAnywhere,
    ClassAt,
    Concurrent,
    Const,
    DataCmp,
    DataEq,
    DistinctThreads,
    Domain,
    ElementPrecedes,
    Enables,
    EventEq,
    Eventually,
    Exists,
    ExistsUnique,
    FalseF,
    ForAll,
    Formula,
    Henceforth,
    Iff,
    Implies,
    New,
    Not,
    Occurred,
    Or,
    Param,
    Potential,
    PyPred,
    Restriction,
    SameThread,
    TemporallyPrecedes,
    TrueF,
    UnionDomain,
    domain,
    term,
)
from .gemtypes import ElementType, GroupInstance, GroupType
from .group import ROOT_GROUP, GroupDecl, GroupStructure
from .history import (
    History,
    HistorySequence,
    all_histories,
    count_maximal_history_sequences,
    empty_history,
    full_history,
    maximal_history_sequences,
)
from .ids import (
    ElementName,
    EventClassName,
    EventId,
    GroupName,
    ThreadId,
    indexed,
    qualified,
)
from .legality import check_legality
from .order import Relation, RelationBuilder
from .dot import computation_to_dot, history_lattice_to_dot
from .dynamic_groups import (
    ADD_GROUP_MEMBER,
    CREATE_GROUP,
    DynamicGroupStructure,
    check_dynamic_scope,
    is_structure_event,
    structure_element_decl,
)
from .io import (
    computation_from_json,
    computation_from_json_str,
    computation_to_json,
    computation_to_json_str,
)
from .specification import Specification, from_group_instances
from .threads import ClassPattern, Path, ThreadType, label_all
from .witness import Witness, find_witness

__all__ = [
    # relations & computations
    "Relation", "RelationBuilder", "Computation", "ComputationBuilder",
    "parallel_compose", "sequential_compose", "restrict_events",
    # structure
    "Event", "EventClass", "ParamSpec", "ElementDecl", "EventClassRef",
    "GroupDecl", "GroupStructure", "ROOT_GROUP",
    "ElementType", "GroupType", "GroupInstance",
    # identity
    "EventId", "ThreadId", "ElementName", "GroupName", "EventClassName",
    "qualified", "indexed",
    # histories
    "History", "HistorySequence", "empty_history", "full_history",
    "all_histories", "maximal_history_sequences",
    "count_maximal_history_sequences",
    # formulas
    "Formula", "Restriction", "TrueF", "FalseF", "Not", "And", "Or",
    "Implies", "Iff", "ForAll", "Exists", "ExistsUnique", "AtMostOne",
    "Occurred", "AtElement", "Enables", "ElementPrecedes",
    "TemporallyPrecedes", "Concurrent", "EventEq", "DataEq", "DataCmp",
    "New", "Potential", "AtControl", "SameThread", "DistinctThreads",
    "PyPred", "Henceforth", "Eventually",
    "Domain", "ClassAt", "ClassAnywhere", "UnionDomain", "AllEvents",
    "domain", "term", "Const", "Param",
    # abbreviations
    "prerequisite", "nondet_prerequisite", "fork", "join", "chain",
    "mutual_exclusion_of",
    # threads
    "ThreadType", "Path", "ClassPattern", "label_all",
    # specifications & checking
    "Specification", "from_group_instances", "check_legality",
    "check_computation", "check_restriction",
    "check_safety_at_all_histories", "CheckResult", "RestrictionOutcome",
    "LatticeChecker",
    # compiled checking
    "CompiledRestriction", "CompiledSpec", "SpecPlan", "bind_restriction",
    "is_compilable", "plan_for", "EventIndex", "event_index", "iter_bits",
    # errors
    "GemError", "SpecificationError", "ComputationError", "CycleError",
    "LegalityViolation", "RestrictionViolation", "VerificationError",
    # witnesses, rendering, serialisation
    "Witness", "find_witness",
    "computation_to_dot", "history_lattice_to_dot",
    "computation_to_json", "computation_to_json_str",
    "computation_from_json", "computation_from_json_str",
    # dynamic groups (footnote 5)
    "DynamicGroupStructure", "check_dynamic_scope", "is_structure_event",
    "structure_element_decl", "CREATE_GROUP", "ADD_GROUP_MEMBER",
]
