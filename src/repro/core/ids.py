"""Identifier types used throughout the GEM model.

GEM names three kinds of structural objects -- elements, groups, and
event classes -- and two kinds of per-computation objects -- events and
thread instances.  All of them are identified by small immutable values
so that they can be used as dictionary keys and members of frozensets.

Identifiers are deliberately plain (strings and small frozen dataclasses)
rather than opaque handles: a GEM specification is a *textual* artifact
in the paper, and keeping names human-readable makes specifications,
counterexamples, and verification reports legible.

The paper identifies an event by "naming the element at which it occurs
and its occurrence number" (Section 4): the i-th event at element ``Var``
is ``Var^i``.  :class:`EventId` mirrors that convention exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

# Structural names are plain strings.  Hierarchical names (an element
# belonging to a group instance, an indexed element such as ``data[3]``)
# use ``.`` and ``[...]`` in the conventional way, e.g. ``db.control`` or
# ``db.data[3]``.
ElementName = str
GroupName = str
EventClassName = str
ThreadTypeName = str


@dataclass(frozen=True, order=True)
class EventId:
    """Unique identity of an event occurrence: ``element^index``.

    ``index`` is the 1-based occurrence number of the event at its
    element, following the paper's ``Var.assign_i`` / ``Var^i`` notation.
    Because every event belongs to exactly one element and all events at
    an element are totally ordered, the pair is a unique identity.
    """

    element: ElementName
    index: int

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError(
                f"occurrence numbers are 1-based, got {self.index} at {self.element!r}"
            )

    def __str__(self) -> str:
        return f"{self.element}^{self.index}"


@dataclass(frozen=True, order=True)
class ThreadId:
    """Identity of one thread instance: a thread type plus a serial number.

    The paper writes ``pi_RW-i`` for the i-th instance of thread type
    ``pi_RW``.  Thread identifiers are created when the first event of a
    thread occurs and are "passed along" the chain of enabled events.
    """

    thread_type: ThreadTypeName
    serial: int

    def __str__(self) -> str:
        return f"{self.thread_type}-{self.serial}"


def qualified(*parts: str) -> str:
    """Join name parts with ``.`` to form a hierarchical GEM name.

    >>> qualified("db", "control")
    'db.control'
    """
    if not parts:
        raise ValueError("qualified() needs at least one name part")
    return ".".join(parts)


def indexed(base: str, index: object) -> str:
    """Form an indexed element/group name, e.g. ``data[3]``.

    >>> indexed("data", 3)
    'data[3]'
    """
    return f"{base}[{index}]"


def split_qualified(name: str) -> Tuple[str, ...]:
    """Split a hierarchical name into its parts.

    >>> split_qualified("db.data[3]")
    ('db', 'data[3]')
    """
    return tuple(name.split("."))
