"""The GEM restriction language: first-order logic + temporal operators.

"Restrictions are first-order logic formulae composed of GEM predicates,
the two temporal operators ◇ and □, and equality between events, groups,
and event data" (Section 8.2).

This module gives restrictions an explicit AST with two evaluation
entry points:

* :meth:`Formula.holds_at` -- evaluate as an *immediate assertion* at a
  single :class:`~repro.core.history.History` (GEM predicates are read
  off the prefix: ``occurred(e)`` means membership, order predicates are
  restricted to occurred events);
* :meth:`Formula.holds_on` -- evaluate over a
  :class:`~repro.core.history.HistorySequence` (a vhs).  An immediate
  assertion is true of a sequence iff it is true of the sequence's first
  history; ``□p`` quantifies over all tails, ``◇p`` over some tail,
  exactly as Section 7 defines them (finite-sequence semantics).

Quantifier domains range over the events *of the computation* (not just
of the current history): this is what lets restrictions such as readers'
priority say "if the write has occurred, the read must have occurred" --
the read event is quantified over even in histories where it has not yet
occurred, with ``occurred`` making the distinction.

Variables are bound to :class:`~repro.core.event.Event` objects.  Data
parameters are reached through :class:`Param` terms.  A ``PyPred``
escape hatch admits predicates that are clumsy to spell in the AST; it
is used sparingly and is always named so counterexamples stay readable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .computation import Computation
from .element import EventClassRef
from .errors import SpecificationError
from .event import Event
from .history import History, HistorySequence
from .ids import EventClassName

Env = Dict[str, Event]


# ---------------------------------------------------------------------------
# Quantifier domains
# ---------------------------------------------------------------------------


class Domain:
    """Where a quantified variable ranges.  Subclasses enumerate events."""

    def events(self, computation: Computation) -> Tuple[Event, ...]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ClassAt(Domain):
    """Events of one class at one element: the paper's ``e : Var.Assign``."""

    ref: EventClassRef

    def events(self, computation: Computation) -> Tuple[Event, ...]:
        return computation.events_of(self.ref)

    def describe(self) -> str:
        return str(self.ref)


@dataclass(frozen=True)
class ClassAnywhere(Domain):
    """Events of one class regardless of element (``e : Assign``)."""

    event_class: EventClassName

    def events(self, computation: Computation) -> Tuple[Event, ...]:
        return computation.events_of_class(self.event_class)

    def describe(self) -> str:
        return self.event_class


@dataclass(frozen=True)
class UnionDomain(Domain):
    """Union of several domains -- the paper's ``{Event Class Set}``."""

    parts: Tuple[Domain, ...]

    def events(self, computation: Computation) -> Tuple[Event, ...]:
        seen: Dict[object, Event] = {}
        for part in self.parts:
            for ev in part.events(computation):
                seen.setdefault(ev.eid, ev)
        return tuple(seen.values())

    def describe(self) -> str:
        return "{" + ", ".join(p.describe() for p in self.parts) + "}"


@dataclass(frozen=True)
class AllEvents(Domain):
    """Every event of the computation."""

    def events(self, computation: Computation) -> Tuple[Event, ...]:
        return computation.events

    def describe(self) -> str:
        return "<any>"


def domain(spec: Union[Domain, EventClassRef, str, Iterable]) -> Domain:
    """Coerce common spellings into a :class:`Domain`.

    Strings containing a dot parse as ``element.Class``; bare strings are
    class-anywhere; iterables form unions.
    """
    if isinstance(spec, Domain):
        return spec
    if isinstance(spec, EventClassRef):
        return ClassAt(spec)
    if isinstance(spec, str):
        if "." in spec:
            return ClassAt(EventClassRef.parse(spec))
        return ClassAnywhere(spec)
    if isinstance(spec, Iterable):
        return UnionDomain(tuple(domain(s) for s in spec))
    raise SpecificationError(f"cannot interpret {spec!r} as a quantifier domain")


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """A data term: evaluates to a value under an environment."""

    def value(self, env: Env) -> Any:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Term):
    """A literal value."""

    val: Any

    def value(self, env: Env) -> Any:
        return self.val

    def describe(self) -> str:
        return repr(self.val)


@dataclass(frozen=True)
class Param(Term):
    """``var.name`` -- a data parameter of a bound event."""

    var: str
    name: str

    def value(self, env: Env) -> Any:
        return env[self.var].param(self.name)

    def describe(self) -> str:
        return f"{self.var}.{self.name}"


def term(spec: Union[Term, Any]) -> Term:
    return spec if isinstance(spec, Term) else Const(spec)


# ---------------------------------------------------------------------------
# Formula base and boolean connectives
# ---------------------------------------------------------------------------


class Formula:
    """Base class.  Immutable; combine with ``&``, ``|``, ``~``, ``>>``."""

    def holds_at(self, history: History, env: Optional[Env] = None) -> bool:
        """Evaluate as an immediate assertion at ``history``."""
        return self._eval(history, dict(env or {}))

    def holds_on(self, seq: HistorySequence, env: Optional[Env] = None) -> bool:
        """Evaluate over a valid history sequence."""
        return self._eval_seq(seq, 0, dict(env or {}))

    # subclasses implement _eval; temporal subclasses override _eval_seq
    def _eval(self, history: History, env: Env) -> bool:
        raise NotImplementedError

    def _eval_seq(self, seq: HistorySequence, i: int, env: Env) -> bool:
        # an immediate assertion is true of a sequence iff true of its
        # first history (Section 7)
        return self._eval(seq[i], env)

    def is_temporal(self) -> bool:
        """Does the formula contain □ or ◇ anywhere?"""
        return any(child.is_temporal() for child in self._children())

    def _children(self) -> Tuple["Formula", ...]:
        return ()

    def describe(self) -> str:
        raise NotImplementedError

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        """``p >> q`` is implication ``p ⊃ q``."""
        return Implies(self, other)

    def __repr__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class TrueF(Formula):
    def _eval(self, history: History, env: Env) -> bool:
        return True

    def describe(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseF(Formula):
    def _eval(self, history: History, env: Env) -> bool:
        return False

    def describe(self) -> str:
        return "false"


@dataclass(frozen=True)
class Not(Formula):
    body: Formula

    def _eval(self, history: History, env: Env) -> bool:
        return not self.body._eval(history, env)

    def _eval_seq(self, seq: HistorySequence, i: int, env: Env) -> bool:
        return not self.body._eval_seq(seq, i, env)

    def _children(self) -> Tuple[Formula, ...]:
        return (self.body,)

    def describe(self) -> str:
        return f"¬({self.body.describe()})"


@dataclass(frozen=True)
class And(Formula):
    parts: Tuple[Formula, ...]

    def _eval(self, history: History, env: Env) -> bool:
        return all(p._eval(history, env) for p in self.parts)

    def _eval_seq(self, seq: HistorySequence, i: int, env: Env) -> bool:
        return all(p._eval_seq(seq, i, env) for p in self.parts)

    def _children(self) -> Tuple[Formula, ...]:
        return self.parts

    def describe(self) -> str:
        return "(" + " ∧ ".join(p.describe() for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Formula):
    parts: Tuple[Formula, ...]

    def _eval(self, history: History, env: Env) -> bool:
        return any(p._eval(history, env) for p in self.parts)

    def _eval_seq(self, seq: HistorySequence, i: int, env: Env) -> bool:
        return any(p._eval_seq(seq, i, env) for p in self.parts)

    def _children(self) -> Tuple[Formula, ...]:
        return self.parts

    def describe(self) -> str:
        return "(" + " ∨ ".join(p.describe() for p in self.parts) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    antecedent: Formula
    consequent: Formula

    def _eval(self, history: History, env: Env) -> bool:
        return (not self.antecedent._eval(history, env)) or self.consequent._eval(
            history, env
        )

    def _eval_seq(self, seq: HistorySequence, i: int, env: Env) -> bool:
        return (not self.antecedent._eval_seq(seq, i, env)) or (
            self.consequent._eval_seq(seq, i, env)
        )

    def _children(self) -> Tuple[Formula, ...]:
        return (self.antecedent, self.consequent)

    def describe(self) -> str:
        return f"({self.antecedent.describe()} ⊃ {self.consequent.describe()})"


@dataclass(frozen=True)
class Iff(Formula):
    left: Formula
    right: Formula

    def _eval(self, history: History, env: Env) -> bool:
        return self.left._eval(history, env) == self.right._eval(history, env)

    def _eval_seq(self, seq: HistorySequence, i: int, env: Env) -> bool:
        return self.left._eval_seq(seq, i, env) == self.right._eval_seq(seq, i, env)

    def _children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"({self.left.describe()} ≡ {self.right.describe()})"


# ---------------------------------------------------------------------------
# Quantifiers
# ---------------------------------------------------------------------------


def _computation_of(history: History) -> Computation:
    return history.computation


class _Quantifier(Formula):
    """Shared machinery: bind ``var`` over ``dom`` and fold the body."""

    def __init__(self, var: str, dom: Union[Domain, EventClassRef, str, Iterable],
                 body: Formula):
        self.var = var
        self.dom = domain(dom)
        self.body = body

    def _bindings(self, history: History, env: Env) -> Iterator[Env]:
        for ev in self.dom.events(history.computation):
            env2 = dict(env)
            env2[self.var] = ev
            yield env2

    def _children(self) -> Tuple[Formula, ...]:
        return (self.body,)

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.var == other.var  # type: ignore[attr-defined]
            and self.dom == other.dom  # type: ignore[attr-defined]
            and self.body == other.body  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.var, self.dom, self.body))


class ForAll(_Quantifier):
    """``(∀ var : Domain) body``."""

    def _eval(self, history: History, env: Env) -> bool:
        return all(self.body._eval(history, e) for e in self._bindings(history, env))

    def _eval_seq(self, seq: HistorySequence, i: int, env: Env) -> bool:
        return all(
            self.body._eval_seq(seq, i, e) for e in self._bindings(seq[i], env)
        )

    def describe(self) -> str:
        return f"(∀ {self.var}:{self.dom.describe()}) {self.body.describe()}"


class Exists(_Quantifier):
    """``(∃ var : Domain) body``."""

    def _eval(self, history: History, env: Env) -> bool:
        return any(self.body._eval(history, e) for e in self._bindings(history, env))

    def _eval_seq(self, seq: HistorySequence, i: int, env: Env) -> bool:
        return any(
            self.body._eval_seq(seq, i, e) for e in self._bindings(seq[i], env)
        )

    def describe(self) -> str:
        return f"(∃ {self.var}:{self.dom.describe()}) {self.body.describe()}"


class ExistsUnique(_Quantifier):
    """``(∃! var : Domain) body`` -- exactly one binding satisfies the body."""

    def _count(self, history: History, env: Env, seq=None, i=0) -> int:
        count = 0
        for e in self._bindings(history, env):
            ok = (
                self.body._eval_seq(seq, i, e)
                if seq is not None
                else self.body._eval(history, e)
            )
            if ok:
                count += 1
                if count > 1:
                    break
        return count

    def _eval(self, history: History, env: Env) -> bool:
        return self._count(history, env) == 1

    def _eval_seq(self, seq: HistorySequence, i: int, env: Env) -> bool:
        return self._count(seq[i], env, seq, i) == 1

    def describe(self) -> str:
        return f"(∃! {self.var}:{self.dom.describe()}) {self.body.describe()}"


class AtMostOne(_Quantifier):
    """``(∃ at most one var : Domain) body`` -- the paper's phrasing."""

    def _eval(self, history: History, env: Env) -> bool:
        count = 0
        for e in self._bindings(history, env):
            if self.body._eval(history, e):
                count += 1
                if count > 1:
                    return False
        return True

    def _eval_seq(self, seq: HistorySequence, i: int, env: Env) -> bool:
        count = 0
        for e in self._bindings(seq[i], env):
            if self.body._eval_seq(seq, i, e):
                count += 1
                if count > 1:
                    return False
        return True

    def describe(self) -> str:
        return f"(∃≤1 {self.var}:{self.dom.describe()}) {self.body.describe()}"


# ---------------------------------------------------------------------------
# Atomic GEM predicates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Occurred(Formula):
    """``occurred(var)`` -- the bound event is in the history."""

    var: str

    def _eval(self, history: History, env: Env) -> bool:
        return history.occurred(env[self.var].eid)

    def describe(self) -> str:
        return f"occurred({self.var})"


@dataclass(frozen=True)
class AtElement(Formula):
    """``var @ EL`` -- the bound event occurs at element EL."""

    var: str
    element: str

    def _eval(self, history: History, env: Env) -> bool:
        ev = env[self.var]
        return ev.element == self.element and history.occurred(ev.eid)

    def describe(self) -> str:
        return f"{self.var} @ {self.element}"


@dataclass(frozen=True)
class Enables(Formula):
    """``a ⊳ b`` -- a directly enables b; both occurred in the history."""

    a: str
    b: str

    def _eval(self, history: History, env: Env) -> bool:
        ea, eb = env[self.a], env[self.b]
        return (
            history.occurred(ea.eid)
            and history.occurred(eb.eid)
            and history.computation.enables(ea.eid, eb.eid)
        )

    def describe(self) -> str:
        return f"{self.a} ⊳ {self.b}"


@dataclass(frozen=True)
class ElementPrecedes(Formula):
    """``a ⇒ₑ b`` -- element order; both occurred in the history."""

    a: str
    b: str

    def _eval(self, history: History, env: Env) -> bool:
        ea, eb = env[self.a], env[self.b]
        return (
            history.occurred(ea.eid)
            and history.occurred(eb.eid)
            and history.computation.element_precedes(ea.eid, eb.eid)
        )

    def describe(self) -> str:
        return f"{self.a} ⇒ₑ {self.b}"


@dataclass(frozen=True)
class TemporallyPrecedes(Formula):
    """``a ⇒ b`` -- temporal order; both occurred in the history."""

    a: str
    b: str

    def _eval(self, history: History, env: Env) -> bool:
        ea, eb = env[self.a], env[self.b]
        return (
            history.occurred(ea.eid)
            and history.occurred(eb.eid)
            and history.computation.temporally_precedes(ea.eid, eb.eid)
        )

    def describe(self) -> str:
        return f"{self.a} ⇒ {self.b}"


@dataclass(frozen=True)
class Concurrent(Formula):
    """Potentially concurrent: distinct and temporally unordered."""

    a: str
    b: str

    def _eval(self, history: History, env: Env) -> bool:
        return history.computation.concurrent(env[self.a].eid, env[self.b].eid)

    def describe(self) -> str:
        return f"{self.a} ∥ {self.b}"


@dataclass(frozen=True)
class EventEq(Formula):
    """``a = b`` between bound events."""

    a: str
    b: str

    def _eval(self, history: History, env: Env) -> bool:
        return env[self.a].eid == env[self.b].eid

    def describe(self) -> str:
        return f"{self.a} = {self.b}"


@dataclass(frozen=True)
class DataEq(Formula):
    """Equality between two data terms (``send.par1 = receive.par2``)."""

    left: Term
    right: Term

    def _eval(self, history: History, env: Env) -> bool:
        return self.left.value(env) == self.right.value(env)

    def describe(self) -> str:
        return f"{self.left.describe()} = {self.right.describe()}"


@dataclass(frozen=True)
class DataCmp(Formula):
    """An ordered comparison between two data terms."""

    left: Term
    op: str  # one of < <= > >= !=
    right: Term

    _OPS = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "!=": lambda a, b: a != b,
    }

    def _eval(self, history: History, env: Env) -> bool:
        try:
            fn = self._OPS[self.op]
        except KeyError:
            raise SpecificationError(f"unknown comparison operator {self.op!r}")
        return fn(self.left.value(env), self.right.value(env))

    def describe(self) -> str:
        return f"{self.left.describe()} {self.op} {self.right.describe()}"


@dataclass(frozen=True)
class New(Formula):
    """``new(var)`` -- var occurred and nothing observably followed it."""

    var: str

    def _eval(self, history: History, env: Env) -> bool:
        return history.new(env[self.var].eid)

    def describe(self) -> str:
        return f"new({self.var})"


@dataclass(frozen=True)
class Potential(Formula):
    """``potential(var)`` -- var could legally extend the history."""

    var: str

    def _eval(self, history: History, env: Env) -> bool:
        return history.potential(env[self.var].eid)

    def describe(self) -> str:
        return f"potential({self.var})"


class AtControl(Formula):
    """``var at E`` -- var occurred and has not enabled an E event (§8.2.4)."""

    def __init__(self, var: str, dom: Union[Domain, EventClassRef, str, Iterable]):
        self.var = var
        self.dom = domain(dom)

    def _eval(self, history: History, env: Env) -> bool:
        targets = (ev.eid for ev in self.dom.events(history.computation))
        return history.at(env[self.var].eid, targets)

    def describe(self) -> str:
        return f"{self.var} at {self.dom.describe()}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AtControl)
            and self.var == other.var
            and self.dom == other.dom
        )

    def __hash__(self) -> int:
        return hash(("AtControl", self.var, self.dom))


@dataclass(frozen=True)
class SameThread(Formula):
    """The two bound events share at least one thread identifier."""

    a: str
    b: str

    def _eval(self, history: History, env: Env) -> bool:
        return bool(env[self.a].threads & env[self.b].threads)

    def describe(self) -> str:
        return f"samethread({self.a}, {self.b})"


@dataclass(frozen=True)
class DistinctThreads(Formula):
    """The two bound events' thread label sets are disjoint."""

    a: str
    b: str

    def _eval(self, history: History, env: Env) -> bool:
        return not (env[self.a].threads & env[self.b].threads)

    def describe(self) -> str:
        return f"distinctthreads({self.a}, {self.b})"


class PyPred(Formula):
    """Named escape hatch: a Python predicate over (history, env).

    Use when the prose restriction is far easier to state directly in
    Python than in the AST.  Keep the name specific -- it is what appears
    in counterexample reports.
    """

    def __init__(self, name: str, fn: Callable[[History, Env], bool]):
        self.name = name
        self.fn = fn

    def _eval(self, history: History, env: Env) -> bool:
        return bool(self.fn(history, env))

    def describe(self) -> str:
        return f"<{self.name}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PyPred) and self.name == other.name and self.fn is other.fn

    def __hash__(self) -> int:
        return hash(("PyPred", self.name, id(self.fn)))


# ---------------------------------------------------------------------------
# Temporal operators (Section 7)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Henceforth(Formula):
    """``□ p`` -- p holds of every tail of the sequence."""

    body: Formula

    def _eval(self, history: History, env: Env) -> bool:
        raise SpecificationError(
            "□ is a temporal operator; evaluate it on a history sequence "
            "(holds_on), not a single history"
        )

    def _eval_seq(self, seq: HistorySequence, i: int, env: Env) -> bool:
        return all(self.body._eval_seq(seq, j, env) for j in range(i, len(seq)))

    def is_temporal(self) -> bool:
        return True

    def _children(self) -> Tuple[Formula, ...]:
        return (self.body,)

    def describe(self) -> str:
        return f"□({self.body.describe()})"


@dataclass(frozen=True)
class Eventually(Formula):
    """``◇ p`` -- p holds of some tail of the sequence."""

    body: Formula

    def _eval(self, history: History, env: Env) -> bool:
        raise SpecificationError(
            "◇ is a temporal operator; evaluate it on a history sequence "
            "(holds_on), not a single history"
        )

    def _eval_seq(self, seq: HistorySequence, i: int, env: Env) -> bool:
        return any(self.body._eval_seq(seq, j, env) for j in range(i, len(seq)))

    def is_temporal(self) -> bool:
        return True

    def _children(self) -> Tuple[Formula, ...]:
        return (self.body,)

    def describe(self) -> str:
        return f"◇({self.body.describe()})"


# ---------------------------------------------------------------------------
# Restrictions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Restriction:
    """A named restriction: the unit a GEM specification is made of.

    ``formula`` may be immediate (checked at the complete computation)
    or temporal (checked over valid history sequences); the checker
    dispatches on :meth:`Formula.is_temporal`.
    """

    name: str
    formula: Formula
    comment: str = ""

    def describe(self) -> str:
        suffix = f"  -- {self.comment}" if self.comment else ""
        return f"{self.name}: {self.formula.describe()}{suffix}"
