"""Graphviz DOT rendering of computations and history lattices.

Pure text generation -- no graphviz dependency; feed the output to
``dot -Tsvg`` or any renderer.  Two views:

* :func:`computation_to_dot` -- events as nodes, clustered by element,
  solid arrows for enable edges, dashed arrows for element-order
  *covers* (consecutive events at one element), so the picture shows
  exactly the two primitive relations whose closure is the temporal
  order;
* :func:`history_lattice_to_dot` -- the down-set lattice (Section 7),
  nodes labelled by their event sets, edges for single-event
  extensions.  Exponential; guarded by a cap.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .computation import Computation
from .errors import ComputationError
from .history import all_histories


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _node_id(eid) -> str:
    return _quote(str(eid))


def computation_to_dot(
    computation: Computation,
    title: str = "computation",
    show_params: bool = False,
    cluster_by_element: bool = True,
) -> str:
    """Render a computation as a DOT digraph."""
    lines: List[str] = [f"digraph {_quote(title)} {{"]
    lines.append('  rankdir="LR";')
    lines.append('  node [shape=box, fontsize=10];')

    def label(ev) -> str:
        if show_params:
            return ev.describe()
        return f"{ev.eid}:{ev.event_class}"

    if cluster_by_element:
        for i, element in enumerate(computation.elements()):
            lines.append(f"  subgraph cluster_{i} {{")
            lines.append(f"    label={_quote(element)};")
            lines.append('    style="rounded";')
            for ev in computation.events_at(element):
                lines.append(
                    f"    {_node_id(ev.eid)} [label={_quote(label(ev))}];")
            lines.append("  }")
    else:
        for ev in computation.events:
            lines.append(f"  {_node_id(ev.eid)} [label={_quote(label(ev))}];")

    for a, b in computation.enable_relation.pairs():
        lines.append(f"  {_node_id(a)} -> {_node_id(b)};")
    for element in computation.elements():
        seq = computation.events_at(element)
        for prev, nxt in zip(seq, seq[1:]):
            lines.append(
                f"  {_node_id(prev.eid)} -> {_node_id(nxt.eid)} "
                '[style=dashed, constraint=false];')
    lines.append("}")
    return "\n".join(lines)


def history_lattice_to_dot(
    computation: Computation,
    title: str = "histories",
    cap: int = 256,
) -> str:
    """Render the history lattice as a DOT digraph (capped)."""
    histories = all_histories(computation, cap=cap)
    index: Dict[frozenset, int] = {h.events: i for i, h in enumerate(histories)}
    lines: List[str] = [f"digraph {_quote(title)} {{"]
    lines.append('  rankdir="BT";')
    lines.append('  node [shape=ellipse, fontsize=9];')
    for h, i in ((h, index[h.events]) for h in histories):
        label = "{" + ", ".join(sorted(str(e) for e in h.events)) + "}"
        if not h.events:
            label = "∅"
        lines.append(f"  h{i} [label={_quote(label)}];")
    for h in histories:
        i = index[h.events]
        for eid in h.addable():
            j = index.get(h.events | {eid})
            if j is not None:
                lines.append(f"  h{i} -> h{j} [label={_quote(str(eid))}];")
    lines.append("}")
    return "\n".join(lines)
