"""JSON serialisation of computations.

A computation is a value: events (identity, class, parameters, thread
labels) plus enable edges.  This module round-trips that value through
a stable JSON shape, so computations can be stored as golden files,
diffed in review, or shipped to other tools.

Parameters must be JSON-representable (the library's own interpreters
only emit ints, strings, bools, None, and lists thereof; tuples are
normalised to lists on the way out and left as lists on the way in).

Shape::

    {
      "format": "gem-computation",
      "version": 1,
      "events": [
        {"element": "Var", "index": 1, "class": "Assign",
         "params": {"newval": 5}, "threads": [["pi_RW", 1]]},
        ...
      ],
      "enables": [[["Var", 1], ["Var", 2]], ...]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from .computation import Computation
from .errors import ComputationError
from .event import Event
from .ids import EventId, ThreadId

FORMAT = "gem-computation"
VERSION = 1


def _param_out(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_param_out(v) for v in value]
    if isinstance(value, list):
        return [_param_out(v) for v in value]
    if isinstance(value, dict):
        return {k: _param_out(v) for k, v in value.items()}
    return value


def computation_to_json(computation: Computation) -> Dict[str, Any]:
    """The JSON-ready dict for ``computation``."""
    events = []
    for ev in computation.events:
        events.append({
            "element": ev.element,
            "index": ev.index,
            "class": ev.event_class,
            "params": {k: _param_out(v) for k, v in ev.params},
            "threads": sorted(
                [t.thread_type, t.serial] for t in ev.threads),
        })
    enables = [
        [[a.element, a.index], [b.element, b.index]]
        for a, b in computation.enable_relation.pairs()
    ]
    return {
        "format": FORMAT,
        "version": VERSION,
        "events": events,
        "enables": sorted(enables),
    }


def computation_to_json_str(computation: Computation, indent: int = 2) -> str:
    return json.dumps(computation_to_json(computation), indent=indent,
                      sort_keys=True)


def computation_from_json(data: Dict[str, Any]) -> Computation:
    """Rebuild a computation from its JSON dict."""
    if data.get("format") != FORMAT:
        raise ComputationError(
            f"not a {FORMAT} document (format={data.get('format')!r})")
    if data.get("version") != VERSION:
        raise ComputationError(
            f"unsupported version {data.get('version')!r}")
    events: List[Event] = []
    for record in data["events"]:
        threads = frozenset(
            ThreadId(t[0], t[1]) for t in record.get("threads", ()))
        events.append(Event(
            eid=EventId(record["element"], record["index"]),
            event_class=record["class"],
            params=tuple(sorted(record.get("params", {}).items())),
            threads=threads,
        ))
    enables: List[Tuple[EventId, EventId]] = [
        (EventId(a[0], a[1]), EventId(b[0], b[1]))
        for a, b in data.get("enables", ())
    ]
    return Computation(events, enables)


def computation_from_json_str(text: str) -> Computation:
    return computation_from_json(json.loads(text))


def dump(computation: Computation, path: str) -> None:
    """Write a computation to a JSON file."""
    with open(path, "w") as fh:
        fh.write(computation_to_json_str(computation))


def load(path: str) -> Computation:
    """Read a computation from a JSON file."""
    with open(path) as fh:
        return computation_from_json_str(fh.read())
