"""Composition operators on computations.

GEM computations are values; specifications admit *sets* of them.  When
building computations programmatically -- fixtures, synthetic workloads,
counterexample surgery -- three operations recur:

* :func:`parallel_compose` -- the disjoint union of two computations
  over disjoint element sets: no order between their events (they are
  pairwise potentially concurrent);
* :func:`sequential_compose` -- run one computation wholly before
  another: the second's events are renumbered after the first's at
  shared elements, and every maximal event of the first enables every
  minimal event of the second (an explicit barrier);
* :func:`restrict_events` -- the sub-computation induced by a
  downward-closed event set (a history, as a computation in its own
  right).

All three return ordinary immutable :class:`Computation` objects, and
all three preserve legality-relevant structure (identity scheme, edge
validity); tests assert the algebraic laws that make them safe to use
(associativity up to fingerprint, concurrency/ordering guarantees).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from .computation import Computation
from .errors import ComputationError
from .event import Event
from .ids import EventId


def parallel_compose(a: Computation, b: Computation) -> Computation:
    """Disjoint union: events of ``a`` and ``b`` side by side, unordered.

    The element sets must be disjoint -- with a shared element the union
    would have to invent an interleaving, which is
    :func:`sequential_compose`'s job or the caller's decision.
    """
    shared = set(a.elements()) & set(b.elements())
    if shared:
        raise ComputationError(
            f"parallel composition requires disjoint elements; shared: "
            f"{sorted(shared)}")
    events = list(a.events) + list(b.events)
    edges = list(a.enable_relation.pairs()) + list(b.enable_relation.pairs())
    return Computation(events, edges)


def sequential_compose(a: Computation, b: Computation,
                       barrier: bool = True) -> Computation:
    """``a`` wholly before ``b``.

    Events of ``b`` at elements also used by ``a`` are renumbered to
    follow ``a``'s occurrences (the element order then puts them after).
    With ``barrier`` (default), every maximal event of ``a`` additionally
    enables every minimal event of ``b``, so *all* of ``b`` is
    temporally after *all* of ``a`` even across disjoint elements.
    Without it, only shared elements order the two parts.
    """
    offsets: Dict[str, int] = {el: len(a.events_at(el)) for el in a.elements()}

    def shift(eid: EventId) -> EventId:
        return EventId(eid.element, eid.index + offsets.get(eid.element, 0))

    shifted_events: List[Event] = [
        Event(shift(ev.eid), ev.event_class, ev.params, ev.threads)
        for ev in b.events
    ]
    shifted_edges: List[Tuple[EventId, EventId]] = [
        (shift(x), shift(y)) for x, y in b.enable_relation.pairs()
    ]
    events = list(a.events) + shifted_events
    edges = list(a.enable_relation.pairs()) + shifted_edges
    if barrier and len(a) and len(b):
        a_maximal = a.temporal_relation.maximal_nodes()
        b_minimal = [shift(x) for x in b.temporal_relation.minimal_nodes()]
        for x in a_maximal:
            for y in b_minimal:
                edges.append((x, y))
    return Computation(events, edges)


def restrict_events(comp: Computation, keep: Iterable[EventId]) -> Computation:
    """The sub-computation induced by a *downward-closed* event set.

    Raises :class:`ComputationError` when ``keep`` is not a history of
    ``comp`` -- cutting an event but keeping its successor would forge
    causality.
    """
    keep_set: Set[EventId] = set(keep)
    unknown = [e for e in keep_set if e not in comp]
    if unknown:
        raise ComputationError(f"unknown events: {sorted(unknown)[:3]}")
    if not comp.temporal_relation.is_down_closed(keep_set):
        raise ComputationError(
            "event set is not downward closed; the restriction would "
            "forge causality")
    events = [ev for ev in comp.events if ev.eid in keep_set]
    edges = [
        (x, y) for x, y in comp.enable_relation.pairs()
        if x in keep_set and y in keep_set
    ]
    return Computation(events, edges)
