"""Persistent/ample-set partial-order reduction for exploration.

GEM computations are partial orders: the N! interleavings of N pairwise
independent actions all build the *same* computation, and every verdict
the engine produces is a pure function of the computation (PR 1's
dedupe layer exploits exactly this after the fact).  Chauhan & Garg
("Necessary and Sufficient Conditions on Partial Orders for Modeling
Concurrent Computations", PAPERS.md) formalise when distinct
interleavings realise the same partial order -- the license to prune
them at *generation* time instead of deduplicating them afterwards.

This module implements the classic ample-set selective search
(Godefroid's persistent sets, specialised to the replay-based
explorer):

* interpreters declare **footprints** (:class:`~repro.sim.runtime.
  Footprint`): per enabled action, the tokens it reads/writes; per
  live process, an over-approximation of everything it may still
  touch.  Two actions with non-conflicting footprints are independent
  -- they commute to the same computation;
* at each branch point the selector looks for a process all of whose
  enabled actions are *safe* (independent of every other process's
  entire future); the first such process's actions form the **ample
  set** and only they are expanded.  If no process qualifies, the
  state is fully expanded;
* the **ignoring-prevention proviso** ("cycle proviso"): a per-path
  postponement counter per process.  A process that has had an enabled
  action for :data:`DEFAULT_PROVISO_LIMIT` consecutive steps without
  moving forces full expansion, bounding how long a reduction can defer
  anyone.  The counters are a function of the choice path alone, so
  shard planning and workers recompute them identically during prefix
  replay -- ample sets stay deterministic across ``--jobs``.

Soundness (what the differential suite in ``tests/test_por.py``
asserts): on exploration that terminates without truncation, the
reduced run set contains at least one interleaving of every reachable
computation -- identical fingerprint *sets*, hence identical verdicts
and witnesses, as full exploration.  Truncated exploration may cut
different prefixes; the proviso bounds the divergence but equality is
only guaranteed untruncated.

Why no "invisibility" condition: classic ample-set POR needs ample
actions invisible to the property.  Here every property is evaluated
on the computation, and equivalent interleavings produce *identical*
computations, so every action is trivially "invisible" to the quotient
the checker sees.

:func:`event_independent` is the event-level face of the same relation
-- two events of a *built* computation are independent iff neither
reaches the other through the temporal order (``⇒``, which contains
``⊳`` and the element order ``⇒ₑ``, via
:class:`~repro.core.evalcore.EventIndex`'s closure tables).  The
Hypothesis property tests check it is symmetric, irreflexive, and
satisfies the lattice diamond: commuting independent events from any
reachable history yields the same history mask.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.evalcore import EventIndex
# advance_postponed lives in the sim layer (it only touches Actions, and
# the scheduler's prefix replay needs it without importing the engine);
# re-exported here because it is conceptually part of the reduction
from ..sim.runtime import Action, Footprint, SimState, advance_postponed

__all__ = [
    "DEFAULT_PROVISO_LIMIT", "AmpleSelector", "advance_postponed",
    "make_selector", "event_independent", "independent_pairs",
]

#: Full expansion is forced at a state where some enabled process has
#: been postponed this many consecutive steps.  Large enough to never
#: fire on the bounded workloads in this repo (their spines are short),
#: small enough to bound ignoring under step-truncated exploration.
DEFAULT_PROVISO_LIMIT = 64

#: Postponement counters: process name -> consecutive preceding steps
#: at which it had an enabled action but was not the one stepped.
Postponed = Dict[str, int]


class AmpleSelector:
    """Chooses the subset of enabled actions to expand at each state.

    One selector instance accumulates reduction statistics over however
    many nodes it is consulted on (one per explore task in the engine;
    the parent merges counts).  Selection itself is stateless: a pure
    function of ``(state, actions, postponed)``.
    """

    def __init__(self, proviso_limit: int = DEFAULT_PROVISO_LIMIT) -> None:
        self.proviso_limit = proviso_limit
        #: branch points consulted (states with >= 2 enabled actions)
        self.nodes = 0
        #: branch points where a strict subset was expanded
        self.reduced_nodes = 0
        #: enabled branches not expanded, summed over reduced nodes --
        #: each pruned branch roots at least one pruned interleaving
        self.pruned = 0
        #: full expansions forced by the ignoring-prevention proviso
        self.proviso_expansions = 0

    # -- selection ---------------------------------------------------------

    def ample(self, state: SimState, actions: Sequence[Action],
              postponed: Optional[Postponed]) -> List[int]:
        """Indices (into ``actions``) to expand at this state.

        Returns all indices when the interpreter declares no footprints,
        when any footprint is unknown, when the proviso fires, or when
        no process's action set is safe.
        """
        every = list(range(len(actions)))
        if len(actions) <= 1:
            return every
        self.nodes += 1
        fp_of = getattr(state, "por_action_footprint", None)
        rem_of = getattr(state, "por_remaining_footprints", None)
        if fp_of is None or rem_of is None:
            return every
        if postponed:
            limit = self.proviso_limit
            enabled_procs = {a.process for a in actions}
            if any(postponed.get(p, 0) >= limit for p in enabled_procs):
                self.proviso_expansions += 1
                return every
        remaining: Dict[str, Footprint] = rem_of()
        # group indices by process, first-appearance order; the ample
        # set must contain *all* enabled actions of its process
        groups: Dict[str, List[int]] = {}
        order: List[str] = []
        for i, action in enumerate(actions):
            if action.process not in groups:
                groups[action.process] = []
                order.append(action.process)
            groups[action.process].append(i)
        for process in order:
            group = groups[process]
            if self._group_safe(fp_of, actions, group, process, remaining):
                if len(group) < len(actions):
                    self.reduced_nodes += 1
                    self.pruned += len(actions) - len(group)
                return group
        return every

    @staticmethod
    def _group_safe(fp_of, actions: Sequence[Action], group: List[int],
                    process: str, remaining: Dict[str, Footprint]) -> bool:
        """All of ``process``'s enabled actions independent of every
        other process's entire future."""
        footprints = []
        for i in group:
            fp = fp_of(actions[i])
            if fp is None:
                return False
            footprints.append(fp)
        for other, rest in remaining.items():
            if other == process:
                continue
            if any(fp.conflicts(rest) for fp in footprints):
                return False
        return True


def make_selector(por: bool,
                  proviso_limit: int = DEFAULT_PROVISO_LIMIT
                  ) -> Optional[AmpleSelector]:
    """An :class:`AmpleSelector` when ``por`` is on, else ``None`` (the
    scheduler treats ``None`` as full expansion everywhere)."""
    return AmpleSelector(proviso_limit) if por else None


# ---------------------------------------------------------------------------
# Event-level independence (built computations)
# ---------------------------------------------------------------------------


def event_independent(index: EventIndex, i: int, j: int) -> bool:
    """Independence of events ``i`` and ``j`` of a built computation.

    Two distinct events are independent iff neither temporally reaches
    the other: ``⇒`` is the transitive closure of the enable relation
    ``⊳`` and the element order ``⇒ₑ`` (events at the same element are
    always ordered), so independence means "at distinct elements, with
    no enable/port path between them" -- exactly the pairs whose order
    of occurrence the computation does not record.  Uses the
    :class:`EventIndex` closure bitmasks, so the check is O(1).
    """
    if i == j:
        return False
    return not (index.temporal_succ[i] >> j) & 1 \
        and not (index.temporal_succ[j] >> i) & 1


def independent_pairs(index: EventIndex) -> List[Tuple[int, int]]:
    """All unordered independent pairs ``(i, j)`` with ``i < j``."""
    out: List[Tuple[int, int]] = []
    for i in range(index.n):
        succ_i = index.temporal_succ[i]
        for j in range(i + 1, index.n):
            if not (succ_i >> j) & 1 and not (index.temporal_succ[j] >> i) & 1:
                out.append((i, j))
    return out
