"""Persistent verification-result cache.

Re-verifying an unchanged program against unchanged restrictions should
be incremental: exploration still enumerates the runs (cheap, and the
run/deadlock/truncation census must stay honest), but no restriction is
re-checked for a computation whose verdict is already known.

Keying
------
An entry is keyed by the pair

    (computation stable fingerprint, specification key)

where the *specification key* digests every declarative input that a
verdict depends on: the problem specification's restrictions (name +
formula text), elements and groups, the correspondence rules, the
program specification (if any), and the temporal mode.  Each
specification key gets its own JSON file in the cache directory, so
unrelated workloads never collide and invalidation is per-workload.

Invalidation
------------
Versioned: every file records :data:`CACHE_FORMAT_VERSION` and its own
specification key; a mismatch on either (format change, or a hash
collision in the filename) discards the file wholesale.  Changing any
restriction formula, correspondence rule, or the temporal mode changes
the specification key and therefore simply misses the old file.

Honesty caveat: callables embedded in specifications (correspondence
``where``/``params`` functions, ``PyPred`` leaves) contribute only
their *names* to the key -- Python closures have no stable content
digest.  Changing such a function's behaviour without renaming it
requires clearing the cache (or bumping the version); docs/ENGINE.md
states this contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..core.errors import VerificationError
from ..core.specification import Specification
from ..verify.correspondence import Correspondence

#: Bump to invalidate every existing cache file (semantic change in
#: what an outcome record means or how keys are derived).
CACHE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class CheckOutcome:
    """The cached verdict for one distinct computation.

    Pure function of (computation, specifications): which problem
    restrictions failed, whether the projection was legal, and whether
    the raw computation satisfied the program specification.  Run-level
    facts (deadlock, truncation) are properties of the *run*, not the
    computation, and are deliberately not cached.
    """

    failed_restrictions: Tuple[str, ...] = ()
    legality_ok: bool = True
    program_spec_ok: bool = True

    def to_json(self) -> dict:
        return {
            "failed": list(self.failed_restrictions),
            "legal": self.legality_ok,
            "prog_ok": self.program_spec_ok,
        }

    @staticmethod
    def from_json(data: dict) -> "CheckOutcome":
        return CheckOutcome(
            failed_restrictions=tuple(data["failed"]),
            legality_ok=bool(data["legal"]),
            program_spec_ok=bool(data["prog_ok"]),
        )


def _spec_parts(spec: Specification) -> list:
    parts = [f"spec:{spec.name}"]
    parts.extend(sorted(f"element:{name}" for name in spec.element_names()))
    parts.extend(sorted(
        f"group:{g.name}:{','.join(sorted(map(str, g.members)))}"
        for g in spec.groups
    ))
    parts.extend(sorted(
        f"restriction:{r.name}={r.formula.describe()}"
        for r in spec.all_restrictions()
    ))
    parts.extend(sorted(f"thread:{t.name}" for t in spec.thread_types))
    return parts


def _target_name(target) -> str:
    if callable(target):
        return f"<fn:{getattr(target, '__name__', 'anon')}>"
    return str(target)


def spec_cache_key(
    problem_spec: Specification,
    correspondence: Correspondence,
    program_spec: Optional[Specification] = None,
    temporal_mode: str = "lattice",
) -> str:
    """Digest of every declarative input a cached verdict depends on."""
    parts = [f"format:{CACHE_FORMAT_VERSION}", f"mode:{temporal_mode}"]
    parts.extend(_spec_parts(problem_spec))
    for rule in correspondence.rules:
        parts.append(
            "rule:" + ":".join([
                rule.name, rule.element, rule.event_class,
                _target_name(rule.target_element), rule.target_class,
                _target_name(rule.where) if rule.where else "-",
                _target_name(rule.params) if rule.params else "-",
            ])
        )
    parts.append(
        "process_of:" + (_target_name(correspondence.process_of)
                         if correspondence.process_of else "-"))
    parts.append(
        "edge_filter:" + (_target_name(correspondence.edge_filter)
                          if correspondence.edge_filter else "-"))
    if program_spec is None:
        parts.append("program-spec:none")
    else:
        parts.append("program-")
        parts.extend(_spec_parts(program_spec))
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()[:32]


class ResultCache:
    """On-disk outcome store for one specification key.

    Loads eagerly (one small JSON file), accumulates fresh outcomes in
    memory, and persists atomically (temp file + rename) on
    :meth:`save`, so a crashed or interrupted verification never leaves
    a torn cache file behind.
    """

    def __init__(self, directory: "str | os.PathLike", key: str) -> None:
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise VerificationError(
                f"cache path {self.directory} exists and is not a directory")
        self.key = key
        self.path = self.directory / f"gem-cache-{key}.json"
        self._outcomes: Dict[str, CheckOutcome] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return  # missing or corrupt: start empty
        if (data.get("version") != CACHE_FORMAT_VERSION
                or data.get("key") != self.key):
            return  # versioned invalidation: stale format or foreign key
        try:
            self._outcomes = {
                fp: CheckOutcome.from_json(rec)
                for fp, rec in data.get("outcomes", {}).items()
            }
        except (KeyError, TypeError):
            self._outcomes = {}

    def get(self, fingerprint: str) -> Optional[CheckOutcome]:
        return self._outcomes.get(fingerprint)

    def put(self, fingerprint: str, outcome: CheckOutcome) -> None:
        if self._outcomes.get(fingerprint) == outcome:
            return
        self._outcomes[fingerprint] = outcome
        self._dirty = True

    def update(self, fresh: Dict[str, CheckOutcome]) -> None:
        for fp, outcome in fresh.items():
            self.put(fp, outcome)

    def snapshot(self) -> Dict[str, CheckOutcome]:
        """Read-only copy for handing to worker processes."""
        return dict(self._outcomes)

    def save(self) -> None:
        """Atomically persist (no-op when nothing changed)."""
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": self.key,
            "outcomes": {
                fp: out.to_json() for fp, out in sorted(self._outcomes.items())
            },
        }
        fd, tmp = tempfile.mkstemp(
            prefix=self.path.name + ".", dir=str(self.directory))
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._dirty = False

    def __len__(self) -> int:
        return len(self._outcomes)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._outcomes
