"""Persistent verification-result cache.

Re-verifying an unchanged program against unchanged restrictions should
be incremental: exploration still enumerates the runs (cheap, and the
run/deadlock/truncation census must stay honest), but no restriction is
re-checked for a computation whose verdict is already known.

Keying
------
An entry is keyed by the pair

    (computation stable fingerprint, specification key)

where the *specification key* digests every declarative input that a
verdict depends on: the problem specification's restrictions (name +
formula text), elements and groups, the correspondence rules, the
program specification (if any), and the temporal mode.  Routing
accelerators (slice, DFA) never participate: their verdicts are
byte-identical to the walk's, so entries are shared across
``--slice``/``--dfa`` settings by design.  Each
specification key gets its own JSON file in the cache directory, so
unrelated workloads never collide and invalidation is per-workload.

Invalidation
------------
Versioned: every file records :data:`CACHE_FORMAT_VERSION` and its own
specification key; a mismatch on either (format change, or a hash
collision in the filename) discards the file wholesale.  Changing any
restriction formula, correspondence rule, or the temporal mode changes
the specification key and therefore simply misses the old file.

Honesty caveat: callables embedded in specifications (correspondence
``where``/``params`` functions, ``PyPred`` leaves) contribute only
their *names* to the key -- Python closures have no stable content
digest.  Changing such a function's behaviour without renaming it
requires clearing the cache (or bumping the version); docs/ENGINE.md
states this contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
import warnings
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from ..core.errors import VerificationError
from ..core.specification import Specification
from ..obs.metrics import MetricsRegistry
from ..verify.correspondence import Correspondence

#: Bump to invalidate every existing cache file (semantic change in
#: what an outcome record means or how keys are derived).
#: v2: outcomes carry slice provenance counters.
CACHE_FORMAT_VERSION = 2


@dataclass(frozen=True)
class CheckOutcome:
    """The cached verdict for one distinct computation.

    Pure function of (computation, specifications): which problem
    restrictions failed, whether the projection was legal, and whether
    the raw computation satisfied the program specification.  Run-level
    facts (deadlock, truncation) are properties of the *run*, not the
    computation, and are deliberately not cached.  ``slice_hits`` /
    ``slice_fallbacks`` record how many temporal restrictions the
    computation-slicing path decided exactly vs handed back to the walk
    -- provenance, also a pure function of the same inputs.
    ``dfa_hits`` / ``dfa_inert`` are the automaton route's analogues
    (restrictions resolved by a DFA -- early or at the full history --
    vs shapes the compiler classified inert); tolerated as absent in
    older cache files since they are provenance, not semantics.
    """

    failed_restrictions: Tuple[str, ...] = ()
    legality_ok: bool = True
    program_spec_ok: bool = True
    slice_hits: int = 0
    slice_fallbacks: int = 0
    dfa_hits: int = 0
    dfa_inert: int = 0

    def to_json(self) -> dict:
        return {
            "failed": list(self.failed_restrictions),
            "legal": self.legality_ok,
            "prog_ok": self.program_spec_ok,
            "slice_hits": self.slice_hits,
            "slice_fb": self.slice_fallbacks,
            "dfa_hits": self.dfa_hits,
            "dfa_inert": self.dfa_inert,
        }

    @staticmethod
    def from_json(data: dict) -> "CheckOutcome":
        return CheckOutcome(
            failed_restrictions=tuple(data["failed"]),
            legality_ok=bool(data["legal"]),
            program_spec_ok=bool(data["prog_ok"]),
            slice_hits=int(data.get("slice_hits", 0)),
            slice_fallbacks=int(data.get("slice_fb", 0)),
            dfa_hits=int(data.get("dfa_hits", 0)),
            dfa_inert=int(data.get("dfa_inert", 0)),
        )


def _spec_parts(spec: Specification) -> list:
    parts = [f"spec:{spec.name}"]
    parts.extend(sorted(f"element:{name}" for name in spec.element_names()))
    parts.extend(sorted(
        f"group:{g.name}:{','.join(sorted(map(str, g.members)))}"
        for g in spec.groups
    ))
    parts.extend(sorted(
        f"restriction:{r.name}={r.formula.describe()}"
        for r in spec.all_restrictions()
    ))
    parts.extend(sorted(f"thread:{t.name}" for t in spec.thread_types))
    return parts


def _target_name(target) -> str:
    if callable(target):
        return f"<fn:{getattr(target, '__name__', 'anon')}>"
    return str(target)


def spec_cache_key(
    problem_spec: Specification,
    correspondence: Correspondence,
    program_spec: Optional[Specification] = None,
    temporal_mode: str = "lattice",
    history_cap: Optional[int] = None,
) -> str:
    """Digest of every declarative input a cached verdict depends on.

    ``history_cap`` participates only when explicitly overridden: a
    tighter cap can turn a computable verdict into a cap error, so
    capped and uncapped workloads must not share entries.
    """
    parts = [f"format:{CACHE_FORMAT_VERSION}", f"mode:{temporal_mode}"]
    if history_cap is not None:
        parts.append(f"history_cap:{history_cap}")
    parts.extend(_spec_parts(problem_spec))
    for rule in correspondence.rules:
        parts.append(
            "rule:" + ":".join([
                rule.name, rule.element, rule.event_class,
                _target_name(rule.target_element), rule.target_class,
                _target_name(rule.where) if rule.where else "-",
                _target_name(rule.params) if rule.params else "-",
            ])
        )
    parts.append(
        "process_of:" + (_target_name(correspondence.process_of)
                         if correspondence.process_of else "-"))
    parts.append(
        "edge_filter:" + (_target_name(correspondence.edge_filter)
                          if correspondence.edge_filter else "-"))
    if program_spec is None:
        parts.append("program-spec:none")
    else:
        parts.append("program-")
        parts.extend(_spec_parts(program_spec))
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()[:32]


@contextmanager
def _file_lock(path: Path, timeout: float = 5.0,
               poll: float = 0.01) -> Iterator[None]:
    """Cooperative cross-process lock (O_CREAT|O_EXCL lock file).

    A lock still held at ``timeout`` is presumed abandoned (a daemon
    killed mid-save) and stolen -- losing a save is worse than the
    benign double-write the steal risks, since outcomes are pure
    functions and merge-on-save makes writes commutative anyway.
    """
    lock_path = str(path)
    deadline = time.monotonic() + timeout
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            if time.monotonic() >= deadline:
                try:
                    os.unlink(lock_path)
                except OSError:
                    pass
                deadline = time.monotonic() + timeout
            time.sleep(poll)
    try:
        yield
    finally:
        os.close(fd)
        try:
            os.unlink(lock_path)
        except OSError:
            pass


class ResultCache:
    """On-disk outcome store for one specification key.

    Loads eagerly (one small JSON file; a corrupt or truncated file is
    warned about and treated as empty -- a daemon killed mid-write must
    not refuse to restart), accumulates fresh outcomes in memory, and
    persists atomically (temp file + ``os.replace``) on :meth:`save`.
    Saving first re-reads the file under a lock and folds in entries
    another process wrote since our load, so concurrent verifications
    sharing a cache directory lose nothing.
    """

    def __init__(self, directory: "str | os.PathLike", key: str) -> None:
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise VerificationError(
                f"cache path {self.directory} exists and is not a directory")
        self.key = key
        self.path = self.directory / f"gem-cache-{key}.json"
        self._outcomes: Dict[str, CheckOutcome] = {}
        self._dirty = False
        self._load()

    def _read_disk(self, warn: bool = False) -> Dict[str, CheckOutcome]:
        """Parse the on-disk file; empty dict when missing/stale/corrupt."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            return {}
        except (OSError, ValueError) as exc:
            if warn:
                warnings.warn(
                    f"result cache {self.path} is corrupt or truncated "
                    f"({exc!r}); starting empty", RuntimeWarning,
                    stacklevel=3)
            return {}
        if (data.get("version") != CACHE_FORMAT_VERSION
                or data.get("key") != self.key):
            return {}  # versioned invalidation: stale format or foreign key
        try:
            return {
                fp: CheckOutcome.from_json(rec)
                for fp, rec in data.get("outcomes", {}).items()
            }
        except (KeyError, TypeError) as exc:
            if warn:
                warnings.warn(
                    f"result cache {self.path} has malformed entries "
                    f"({exc!r}); starting empty", RuntimeWarning,
                    stacklevel=3)
            return {}

    def _load(self) -> None:
        self._outcomes = self._read_disk(warn=True)

    def get(self, fingerprint: str) -> Optional[CheckOutcome]:
        return self._outcomes.get(fingerprint)

    def put(self, fingerprint: str, outcome: CheckOutcome) -> None:
        if self._outcomes.get(fingerprint) == outcome:
            return
        self._outcomes[fingerprint] = outcome
        self._dirty = True

    def update(self, fresh: Dict[str, CheckOutcome]) -> None:
        for fp, outcome in fresh.items():
            self.put(fp, outcome)

    def snapshot(self) -> Dict[str, CheckOutcome]:
        """Read-only copy for handing to worker processes."""
        return dict(self._outcomes)

    def save(self) -> None:
        """Atomically persist (no-op when nothing changed).

        Write-to-temp + ``os.replace`` under a lock file, after folding
        in whatever another process saved since our load: concurrent
        ``update()``/``save()`` against one directory lose no entries.
        """
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        with _file_lock(self.path.with_name(self.path.name + ".lock")):
            on_disk = self._read_disk()
            for fp, outcome in on_disk.items():
                self._outcomes.setdefault(fp, outcome)
            payload = {
                "version": CACHE_FORMAT_VERSION,
                "key": self.key,
                "outcomes": {
                    fp: out.to_json()
                    for fp, out in sorted(self._outcomes.items())
                },
            }
            fd, tmp = tempfile.mkstemp(
                prefix=self.path.name + ".", dir=str(self.directory))
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, separators=(",", ":"))
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        self._dirty = False

    def __len__(self) -> int:
        return len(self._outcomes)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._outcomes


def _entry_bytes(fingerprint: str, outcome: CheckOutcome) -> int:
    """Rough in-memory footprint of one LRU entry (accounting unit)."""
    return (64 + len(fingerprint)
            + sum(len(name) + 8 for name in outcome.failed_restrictions))


class SharedCacheView:
    """One specification key's window onto a :class:`SharedResultCache`.

    Duck-compatible with the slice of :class:`ResultCache` the engine
    uses (``snapshot``/``update``/``save``/``get``/``put``), so
    :class:`repro.engine.Engine` can be pointed at the daemon's shared
    store instead of opening a private per-directory cache.
    """

    def __init__(self, shared: "SharedResultCache", key: str) -> None:
        self._shared = shared
        self.key = key

    def snapshot(self) -> Dict[str, CheckOutcome]:
        return self._shared.snapshot(self.key)

    def get(self, fingerprint: str) -> Optional[CheckOutcome]:
        return self._shared.get(self.key, fingerprint)

    def put(self, fingerprint: str, outcome: CheckOutcome) -> None:
        self._shared.update(self.key, {fingerprint: outcome})

    def update(self, fresh: Dict[str, CheckOutcome]) -> None:
        self._shared.update(self.key, fresh)

    def save(self) -> None:
        self._shared.save(self.key)


class SharedResultCache:
    """Cross-request outcome store for the resident daemon.

    One process-wide LRU over ``(specification key, computation
    fingerprint)`` entries with a **byte budget**: repeated submissions
    of overlapping workloads -- any case, any client -- are answered
    from here without re-checking, while an adversarial stream of
    distinct workloads can only ever pin ``max_bytes`` of memory
    (least-recently-touched entries are evicted first, whole-entry at a
    time).  Thread-safe: daemon executor threads share one instance.

    With a ``directory`` the store is also persistent: each key's
    entries load from / save to the same ``gem-cache-<key>.json`` files
    the one-shot ``--cache`` path uses (merge-on-save, so daemon and
    CLI can share a directory), making a daemon restart warm.

    Occupancy gauges (``cache.entries``/``cache.bytes``) and the
    ``cache.evictions`` counter land in ``metrics``; the daemon folds
    per-job hit/miss counts in alongside (see
    :mod:`repro.serve.daemon`).
    """

    def __init__(self, max_bytes: int = 32 << 20,
                 directory: "str | os.PathLike | None" = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.max_bytes = int(max_bytes)
        self.directory = directory
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lru: "OrderedDict[Tuple[str, str], CheckOutcome]" = OrderedDict()
        self._bytes = 0
        self._loaded_keys: set = set()
        self._disk: Dict[str, ResultCache] = {}
        self._lock = threading.Lock()

    # -- internals (call with the lock held) -------------------------------

    def _disk_cache(self, key: str) -> Optional[ResultCache]:
        if self.directory is None:
            return None
        cache = self._disk.get(key)
        if cache is None:
            cache = self._disk[key] = ResultCache(self.directory, key)
        return cache

    def _ensure_loaded(self, key: str) -> None:
        if key in self._loaded_keys:
            return
        self._loaded_keys.add(key)
        disk = self._disk_cache(key)
        if disk is not None:
            self._insert(key, disk.snapshot())

    def _insert(self, key: str, entries: Dict[str, CheckOutcome]) -> None:
        for fp, outcome in entries.items():
            k = (key, fp)
            if k in self._lru:
                self._lru.move_to_end(k)
                continue
            self._lru[k] = outcome
            self._bytes += _entry_bytes(fp, outcome)
        self._evict()
        self.metrics.set("cache.entries", len(self._lru))
        self.metrics.set("cache.bytes", self._bytes)

    def _evict(self) -> None:
        while self._bytes > self.max_bytes and self._lru:
            (key, fp), outcome = self._lru.popitem(last=False)
            self._bytes -= _entry_bytes(fp, outcome)
            self.metrics.inc("cache.evictions")

    # -- public surface ----------------------------------------------------

    def view(self, key: str) -> SharedCacheView:
        """The engine-facing adapter for one specification key."""
        return SharedCacheView(self, key)

    def snapshot(self, key: str) -> Dict[str, CheckOutcome]:
        """All entries for ``key`` (touches them in the LRU)."""
        with self._lock:
            self._ensure_loaded(key)
            out: Dict[str, CheckOutcome] = {}
            for (k, fp), outcome in list(self._lru.items()):
                if k == key:
                    out[fp] = outcome
                    self._lru.move_to_end((k, fp))
            return out

    def get(self, key: str, fingerprint: str) -> Optional[CheckOutcome]:
        with self._lock:
            self._ensure_loaded(key)
            k = (key, fingerprint)
            outcome = self._lru.get(k)
            if outcome is not None:
                self._lru.move_to_end(k)
            return outcome

    def update(self, key: str, fresh: Dict[str, CheckOutcome]) -> None:
        if not fresh:
            return
        with self._lock:
            self._ensure_loaded(key)
            self._insert(key, fresh)
            disk = self._disk_cache(key)
            if disk is not None:
                disk.update(fresh)

    def save(self, key: Optional[str] = None) -> None:
        """Persist one key's (or every key's) disk cache, if any."""
        with self._lock:
            caches = ([self._disk[key]] if key is not None
                      and key in self._disk else
                      list(self._disk.values()) if key is None else [])
            for cache in caches:
                cache.save()

    @property
    def entries(self) -> int:
        with self._lock:
            return len(self._lru)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes
