"""Frontier sharding: split the DFS tree into independent subtrees.

The explorer's choice tree is trivially partitionable: the subtrees
below any antichain of choice prefixes are disjoint, and every maximal
run lies in exactly one of them.  :func:`make_shards` grows such an
antichain from the root until it is wide enough to keep ``jobs``
workers busy (a few shards per worker absorbs uneven subtree sizes).

Interpreters with eager reductions produce long *spines* -- stretches
where exactly one action is enabled -- so naive fixed-depth splitting
finds no branching.  Expansion therefore walks each spine in place
(stepping the replayed state, no re-replay per level) until the next
genuine branch point or a leaf, and splits there.

Determinism is free: shards are produced in lexicographic prefix order,
which is exactly the order DFS visits their subtrees, so concatenating
per-shard run lists in shard order reproduces the serial run order --
indices, not just sets -- and the merged report is identical to the
serial one.

A prefix that ends at a leaf (nothing enabled, or the step bound
reached) stays in the list as a ``terminal`` shard; exploring it yields
exactly its one run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.runtime import Program, advance_postponed
from ..sim.scheduler import replay_prefix, replay_with_postponed

#: Never split through more than this many branch levels; beyond it the
#: replay cost of expansion outweighs any balance gain.
MAX_SPLIT_ROUNDS = 16


@dataclass(frozen=True)
class Shard:
    """One unit of exploration work: the subtree below ``prefix``."""

    prefix: Tuple[int, ...]
    terminal: bool = False

    def describe(self) -> str:
        kind = "leaf" if self.terminal else "subtree"
        return f"shard({kind} @ {list(self.prefix)})"


def _next_branch(
    program: Program, prefix: Tuple[int, ...], max_steps: int,
    por: Optional[object] = None,
) -> Tuple[Tuple[int, ...], List[int]]:
    """Walk the single-choice spine below ``prefix``.

    Returns ``(extended_prefix, branches)`` where ``branches`` is the
    list of choice indices explored at the first real branch point
    (empty for a leaf).  Extending through forced choices does not
    change the subtree, only names it more precisely.

    With ``por`` (an :class:`repro.engine.por.AmpleSelector`), branches
    are the *ample* indices -- the same function of the path the
    workers' exploration applies, so shard children are exactly the
    subtrees the reduced DFS would visit, and an ample singleton is a
    spine step even where several actions are enabled.
    """
    if por is None:
        state = replay_prefix(program, prefix)
        postponed: Optional[dict] = None
    else:
        state, postponed = replay_with_postponed(program, prefix)
    while True:
        actions = state.enabled()
        if not actions or len(prefix) >= max_steps:
            return prefix, []
        if por is None:
            branches = list(range(len(actions)))
        else:
            branches = por.ample(state, actions, postponed)
        if len(branches) > 1:
            return prefix, branches
        i = branches[0]
        if por is not None:
            postponed = advance_postponed(postponed, actions, actions[i])
        state.step(actions[i])
        prefix = prefix + (i,)


def make_shards(
    program: Program,
    target: int,
    max_steps: int,
    max_rounds: int = MAX_SPLIT_ROUNDS,
    por: Optional[object] = None,
) -> List[Shard]:
    """At least ``target`` shards covering the whole tree (best effort).

    Expands branch level by branch level, replacing each non-terminal
    shard with its children in choice-index order, so the returned list
    is always in DFS (lexicographic) order and always partitions the
    full run set.  Stops at ``target`` shards, after ``max_rounds``
    branch levels, or when every shard is terminal (a tree smaller than
    the target -- fine, workers just idle).

    ``por`` makes the plan partition the *reduced* tree instead: ample
    selection is deterministic per choice path, so planner and workers
    agree on which subtrees exist regardless of ``jobs``.
    """
    shards = [Shard((), False)]
    for _round in range(max_rounds):
        if len(shards) >= target:
            break
        if all(s.terminal for s in shards):
            break
        nxt: List[Shard] = []
        for shard in shards:
            if shard.terminal:
                nxt.append(shard)
                continue
            prefix, branches = _next_branch(program, shard.prefix, max_steps,
                                            por=por)
            if not branches:
                nxt.append(Shard(prefix, True))
            else:
                nxt.extend(Shard(prefix + (i,), False) for i in branches)
        shards = nxt
    return shards
