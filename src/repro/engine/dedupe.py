"""Computation deduplication: check each partial order once.

Interleaving explorers massively overcount: N schedulings of pairwise
independent actions are N *runs* but one *computation* (one partial
order), and every property this library checks is a function of the
partial order alone (legality, restrictions, projections all consume
the ``Computation``, never the choice sequence).  Chauhan & Garg make
the general point -- partial orders are the right quotient for
concurrent executions -- and GEM's own Section 3 semantics is stated
over computations, not schedules.

:class:`DedupeIndex` is the memo realising that quotient: runs are
keyed by :meth:`Computation.stable_fingerprint` and their (expensive)
check outcome is computed once, then replicated to every duplicate run.
The stable fingerprint (not Python's salted ``hash``) is used so that
indices populated in different worker processes, or loaded from the
on-disk cache, agree on keys.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, TypeVar

from ..sim.runtime import Run

T = TypeVar("T")


def run_fingerprint(run: Run) -> str:
    """Stable dedupe/cache key of a run: its computation's fingerprint."""
    return run.computation.stable_fingerprint()


class DedupeIndex:
    """Fingerprint-keyed outcome memo with provenance counters.

    Layered lookup: local memo first (a duplicate run in this process),
    then an optional read-only ``seed`` mapping (the persistent cache
    snapshot), then the supplied compute function.  Counters record
    where each *distinct* fingerprint's outcome came from, which is
    exactly what honest dedupe/cache-hit reporting needs.
    """

    def __init__(self, seed: Optional[Mapping[str, T]] = None) -> None:
        self._seed: Mapping[str, T] = seed or {}
        self._memo: Dict[str, T] = {}
        #: outcomes computed fresh in this index (fingerprint -> outcome);
        #: these are the entries a persistent cache has yet to learn
        self.fresh: Dict[str, T] = {}
        self.dedupe_hits = 0
        self.cache_hits = 0
        self.computed = 0

    def merge_seed(self, mapping: Mapping[str, T]) -> None:
        """Fold more seed entries in (resident workers learn what other
        workers computed in earlier jobs).  Local memo entries keep
        precedence -- outcomes are pure functions, so any overlap
        agrees; only the hit counters' attribution differs."""
        if not mapping:
            return
        merged = dict(self._seed)
        merged.update(mapping)
        self._seed = merged

    def outcome_for(self, fingerprint: str, compute: Callable[[], T]) -> T:
        """The outcome for ``fingerprint``, computing it at most once."""
        if fingerprint in self._memo:
            self.dedupe_hits += 1
            return self._memo[fingerprint]
        if fingerprint in self._seed:
            self.cache_hits += 1
            outcome = self._seed[fingerprint]
        else:
            self.computed += 1
            outcome = compute()
            self.fresh[fingerprint] = outcome
        self._memo[fingerprint] = outcome
        return outcome

    def distinct(self) -> int:
        """Distinct fingerprints seen so far."""
        return len(self._memo)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._memo or fingerprint in self._seed

    def __len__(self) -> int:
        return len(self._memo)
