"""Worker-pool execution of engine tasks (explore-and-check shards).

State transfer is by **fork inheritance, not pickling**: the parent
stores the full worker bundle (program, specifications, correspondence,
cache snapshot) in a module global immediately before creating the
pool; forked children find it there.  Only task descriptions (choice
prefixes / seeds) and result records -- tuples of primitives -- ever
cross the process boundary, so interpreters are free to hold closures,
lambdas, and other unpicklable machinery.  On platforms without the
``fork`` start method the engine degrades to in-process execution
(``effective_jobs`` reports what actually ran).

Each task both *explores* (its shard's subtree, or one seeded random
walk) and *checks*: checking is the expensive half, and shipping
computations back to the parent for checking would serialise it.
Verdicts are memoised per worker process in a :class:`DedupeIndex`
seeded with the persistent-cache snapshot, so a worker checks each
distinct partial order at most once no matter how many of its shards'
interleavings collapse to it.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import RunCapExceeded
from ..core.specification import Specification
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..sim.runtime import Program, Run
from ..sim.scheduler import explore, run_random
from ..verify.correspondence import Correspondence
from ..verify.projection import project
from .cache import CheckOutcome
from .dedupe import DedupeIndex, run_fingerprint
from .por import make_selector
from .stats import ProgressFn


@dataclass(frozen=True)
class Task:
    """One unit of pool work: explore a shard, or one sampled walk."""

    kind: str  # "explore" | "sample"
    prefix: Tuple[int, ...] = ()
    seed: int = 0


@dataclass(frozen=True)
class RunRecord:
    """Picklable digest of one run: everything the merge phase needs."""

    choices: Tuple[int, ...]
    fingerprint: str
    deadlocked: bool
    truncated: bool
    events: int


@dataclass
class TaskResult:
    """What one task sends back to the parent."""

    cap_exceeded: bool = False
    records: List[RunRecord] = field(default_factory=list)
    #: outcomes computed fresh during *this* task (cache write-back set)
    fresh_outcomes: Dict[str, CheckOutcome] = field(default_factory=dict)
    dedupe_hits: int = 0
    cache_hits: int = 0
    checks: int = 0
    #: partial-order reduction counters for this task's subtree (see
    #: :class:`repro.engine.por.AmpleSelector`); all zero with POR off
    por_nodes: int = 0
    por_reduced_nodes: int = 0
    por_pruned: int = 0
    por_proviso_expansions: int = 0
    #: serialised trace segment (``Tracer.to_records``), empty unless
    #: the worker state asked for tracing; grafted by the parent in
    #: shard order so the merged trace is deterministic
    spans: List[dict] = field(default_factory=list)
    #: serialised metric records (``MetricsRegistry.records``)
    metrics: List[dict] = field(default_factory=list)


class WorkerState:
    """The fork-inherited bundle every task executes against."""

    def __init__(
        self,
        program: Program,
        problem_spec: Specification,
        correspondence: Correspondence,
        program_spec: Optional[Specification],
        temporal_mode: str,
        max_steps: int,
        max_runs: int,
        cache_snapshot: Optional[Dict[str, CheckOutcome]] = None,
        trace: bool = False,
        por: bool = True,
    ) -> None:
        self.program = program
        self.problem_spec = problem_spec
        self.correspondence = correspondence
        self.program_spec = program_spec
        self.temporal_mode = temporal_mode
        self.max_steps = max_steps
        self.max_runs = max_runs
        #: when set, tasks record span segments and checker metrics
        self.trace = trace
        #: when set, explore tasks apply partial-order reduction
        self.por = por
        # per-process memo: forked children each mutate their own copy
        self.index = DedupeIndex(seed=cache_snapshot)
        if temporal_mode == "compiled":
            # prime the per-spec compilation plans (AST analysis) in
            # the parent, before the pool forks: every worker inherits
            # them and only does the cheap per-computation binding
            from ..core.compile import plan_for

            plan_for(problem_spec)
            if program_spec is not None:
                plan_for(program_spec)

    def compute_outcome(self, run: Run,
                        metrics: Optional[MetricsRegistry] = None
                        ) -> CheckOutcome:
        """Check one computation; pure function of (computation, specs)."""
        comp = run.computation
        program_spec_ok = True
        if self.program_spec is not None:
            program_spec_ok = self.program_spec.check(
                comp, temporal_mode=self.temporal_mode,
                metrics=metrics).ok
        projected = project(comp, self.correspondence)
        result = self.problem_spec.check(
            projected, temporal_mode=self.temporal_mode, metrics=metrics)
        return CheckOutcome(
            failed_restrictions=tuple(result.failed_restrictions()),
            legality_ok=not result.legality_violations,
            program_spec_ok=program_spec_ok,
        )


#: Set by :func:`run_tasks` in the parent just before the pool forks.
_STATE: Optional[WorkerState] = None


def _execute(task: Task) -> TaskResult:
    state = _STATE
    assert state is not None, "worker state not installed (fork lost?)"
    index = state.index
    fresh_before = set(index.fresh)
    dd0, ch0, cp0 = index.dedupe_hits, index.cache_hits, index.computed
    result = TaskResult()
    tracing = state.trace
    tracer = Tracer() if tracing else NULL_TRACER
    metrics = MetricsRegistry() if tracing else None
    # fingerprints already span-recorded within *this* task: the first
    # occurrence per task is a deterministic property of the run order,
    # unlike freshness (which depends on what other tasks ran in this
    # process), so "check" spans are jobs-invariant while the fresh /
    # cached distinction stays in non-structural meta
    seen_fps: set = set()

    def consume(run: Run) -> None:
        fp = run_fingerprint(run)
        if tracing and fp not in seen_fps:
            seen_fps.add(fp)
            computed_before = index.computed
            with tracer.span("check", attrs={"fp": fp[:12]}) as span:
                index.outcome_for(
                    fp, lambda: state.compute_outcome(run, metrics=metrics))
                span.set_meta(fresh=index.computed > computed_before)
        else:
            index.outcome_for(
                fp, lambda: state.compute_outcome(run, metrics=metrics))
        result.records.append(RunRecord(
            choices=run.choices,
            fingerprint=fp,
            deadlocked=run.deadlocked,
            truncated=run.truncated,
            events=len(run.computation),
        ))

    selector = make_selector(state.por) if task.kind == "explore" else None
    with tracer.span(
            "task",
            attrs={"kind": task.kind,
                   "prefix": ",".join(map(str, task.prefix)),
                   "seed": task.seed},
            meta={"worker": multiprocessing.current_process().name}):
        try:
            if task.kind == "explore":
                for run in explore(state.program, max_steps=state.max_steps,
                                   max_runs=state.max_runs,
                                   prefix=task.prefix, por=selector):
                    consume(run)
            elif task.kind == "sample":
                consume(run_random(state.program, task.seed,
                                   max_steps=state.max_steps))
            else:  # pragma: no cover - engine never builds other kinds
                raise ValueError(f"unknown task kind {task.kind!r}")
        except RunCapExceeded:
            # runs are discarded (the sampling fallback replaces them), but
            # verdicts already computed are valid and stay reported: later
            # tasks in this process may answer them from the memo alone, so
            # the parent must learn them here or its merge lookup goes blind
            result.cap_exceeded = True
            result.records = []

    result.fresh_outcomes = {
        fp: index.fresh[fp] for fp in set(index.fresh) - fresh_before
    }
    result.dedupe_hits = index.dedupe_hits - dd0
    result.cache_hits = index.cache_hits - ch0
    result.checks = index.computed - cp0
    if selector is not None:
        result.por_nodes = selector.nodes
        result.por_reduced_nodes = selector.reduced_nodes
        result.por_pruned = selector.pruned
        result.por_proviso_expansions = selector.proviso_expansions
    if tracing:
        result.spans = tracer.to_records()
        result.metrics = metrics.records() if metrics is not None else []
    return result


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def effective_jobs(jobs: int, n_tasks: int) -> int:
    """Workers that will actually run: fork-gated and task-bounded."""
    if jobs <= 1 or n_tasks <= 1 or not fork_available():
        return 1
    return min(jobs, n_tasks)


def run_tasks(
    state: WorkerState,
    tasks: Sequence[Task],
    jobs: int,
    progress: Optional[ProgressFn] = None,
) -> List[TaskResult]:
    """Execute ``tasks``, returning results in task order.

    ``jobs <= 1`` (or a single task, or no fork support) runs in-process
    -- the serial degenerate case shares every line of worker code with
    the parallel path, which is what makes "byte-identical reports" a
    structural property rather than a hope.
    """
    global _STATE
    workers = effective_jobs(jobs, len(tasks))
    _STATE = state
    try:
        results: List[TaskResult] = []
        if workers <= 1:
            for i, task in enumerate(tasks):
                results.append(_execute(task))
                if progress is not None:
                    progress("task:done", {
                        "task": i, "of": len(tasks),
                        "runs": len(results[-1].records),
                    })
            return results
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=workers) as pool:
            for i, res in enumerate(pool.imap(_execute, tasks, chunksize=1)):
                results.append(res)
                if progress is not None:
                    progress("task:done", {
                        "task": i, "of": len(tasks),
                        "runs": len(res.records),
                    })
        return results
    finally:
        _STATE = None
