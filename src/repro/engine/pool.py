"""Worker-pool execution of engine tasks (explore-and-check shards).

Two pool modes, one worker code path:

**Ephemeral** (the one-shot CLI path, :func:`run_tasks`): state transfer
is by **fork inheritance, not pickling** -- the parent stores the full
worker bundle (program, specifications, correspondence, cache snapshot)
in a module global immediately before creating the pool; forked
children find it there.  Only task descriptions (choice prefixes /
seeds) and result records -- tuples of primitives -- ever cross the
process boundary, so interpreters are free to hold closures, lambdas,
and other unpicklable machinery.

**Resident** (the ``repro serve`` daemon path): the pool forks *once*,
before any workload exists, so nothing can be fork-inherited.  Instead
each task carries a :class:`CaseRef` -- a pure-primitive description of
the workload (a catalog case name, or an inline fuzz-program spec) plus
the engine knobs -- and every worker process *rebuilds* the worker
bundle from it on first use, primes its compilation plans, and memoises
it per state key.  Later tasks for the same key reuse the hot state:
the per-process :class:`DedupeIndex` (and the compiled ``SpecPlan``
living on the rebuilt spec instances) survive across requests, which is
what makes warm resubmission cheap.  A per-job snapshot of the shared
result cache travels with the tasks and is merged into the worker's
dedupe seed, so outcomes learned by *other* workers in earlier jobs are
not recomputed.

On platforms without the ``fork`` start method both modes degrade to
in-process execution (``effective_jobs`` reports what actually ran);
the serial degenerate case shares every line of worker code with the
parallel path, which is what makes "byte-identical reports" a
structural property rather than a hope.

Each task both *explores* (its shard's subtree, or one seeded random
walk) and *checks*: checking is the expensive half, and shipping
computations back to the parent for checking would serialise it.
Verdicts are memoised per worker process in a :class:`DedupeIndex`
seeded with the cache snapshot, so a worker checks each distinct
partial order at most once no matter how many of its shards'
interleavings collapse to it.
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.checker import DEFAULT_HISTORY_CAP
from ..core.errors import RunCapExceeded, VerificationError
from ..core.specification import Specification
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..sim.runtime import Program, Run
from ..sim.scheduler import explore, run_random
from ..verify.correspondence import Correspondence
from ..verify.projection import project
from .cache import CheckOutcome
from .dedupe import DedupeIndex, run_fingerprint
from .por import make_selector
from .stats import ProgressFn


class JobCancelled(VerificationError):
    """Raised out of a pool run when its cancel hook fires.

    Cancellation is best-effort and lands *between* task results: tasks
    already dispatched to workers run to completion, but no further
    result is consumed and the verification never reaches its merge
    phase."""


@dataclass(frozen=True)
class Task:
    """One unit of pool work: explore a shard, or one sampled walk."""

    kind: str  # "explore" | "sample"
    prefix: Tuple[int, ...] = ()
    seed: int = 0


@dataclass(frozen=True)
class RunRecord:
    """Picklable digest of one run: everything the merge phase needs."""

    choices: Tuple[int, ...]
    fingerprint: str
    deadlocked: bool
    truncated: bool
    events: int


@dataclass
class TaskResult:
    """What one task sends back to the parent."""

    cap_exceeded: bool = False
    records: List[RunRecord] = field(default_factory=list)
    #: outcomes computed fresh during *this* task (cache write-back set)
    fresh_outcomes: Dict[str, CheckOutcome] = field(default_factory=dict)
    dedupe_hits: int = 0
    cache_hits: int = 0
    checks: int = 0
    #: partial-order reduction counters for this task's subtree (see
    #: :class:`repro.engine.por.AmpleSelector`); all zero with POR off
    por_nodes: int = 0
    por_reduced_nodes: int = 0
    por_pruned: int = 0
    por_proviso_expansions: int = 0
    #: slice-routing counters summed over this task's *fresh* outcomes
    #: (cached outcomes keep the provenance of the run that computed
    #: them); both zero with slicing off
    slice_hits: int = 0
    slice_fallbacks: int = 0
    #: automaton-monitor counters for this task's exploration (guard
    #: probes, rejecting/accepting sinks reached) plus DFA-routing
    #: tallies over fresh outcomes (hits summed; inert is a per-plan
    #: property, so the max, not the sum); all zero with --no-dfa
    dfa_probes: int = 0
    dfa_cuts: int = 0
    dfa_accepts: int = 0
    dfa_hits: int = 0
    dfa_inert: int = 0
    #: serialised trace segment (``Tracer.to_records``), empty unless
    #: the worker state asked for tracing; grafted by the parent in
    #: shard order so the merged trace is deterministic
    spans: List[dict] = field(default_factory=list)
    #: serialised metric records (``MetricsRegistry.records``)
    metrics: List[dict] = field(default_factory=list)


@dataclass(frozen=True)
class CaseRef:
    """Pure-primitive description of a workload a worker can rebuild.

    Either a catalog ``case`` name (resolved through
    :func:`repro.cli.case_catalog` -- the daemon's catalog *is* the CLI
    catalog) or an ``inline`` fuzz-program payload ``(procs, deps,
    bug)`` (see :class:`repro.fuzz.programs.FuzzProgramSpec`), plus
    every engine knob that participates in the worker bundle.  Frozen
    and picklable: this is what crosses the process boundary in
    resident mode instead of live program/spec objects.
    """

    case: Optional[str] = None
    mutant: bool = False
    inline: Optional[Tuple] = None  # (procs, deps, bug)
    temporal_mode: str = "compiled"
    max_steps: int = 10_000
    max_runs: int = 100_000
    history_cap: int = DEFAULT_HISTORY_CAP
    por: bool = True
    slice: bool = True
    dfa: bool = True
    trace: bool = False

    def state_key(self) -> str:
        """Memo key: two refs with equal keys build equivalent states."""
        return repr((self.case, self.mutant, self.inline,
                     self.temporal_mode, self.max_steps, self.max_runs,
                     self.history_cap, self.por, self.slice, self.dfa,
                     self.trace))

    def build_objects(self) -> Tuple[Program, Specification, Correspondence,
                                     Optional[Specification]]:
        """(program, problem_spec, correspondence, program_spec)."""
        if self.inline is not None:
            from ..fuzz.programs import (FuzzProgram, FuzzProgramSpec,
                                         fuzz_correspondence,
                                         fuzz_problem_spec)

            procs, deps, bug = self.inline
            fspec = FuzzProgramSpec(tuple(procs),
                                    tuple(tuple(d) for d in deps), bug)
            return (FuzzProgram(fspec), fuzz_problem_spec(fspec),
                    fuzz_correspondence(fspec), None)
        from ..cli import case_catalog

        entry = case_catalog().get(self.case or "")
        if entry is None:
            raise VerificationError(f"unknown case {self.case!r}")
        return entry.factory(self.mutant)

    def build(self) -> "WorkerState":
        program, spec, corr, pspec = self.build_objects()
        return WorkerState(
            program, spec, corr, pspec,
            temporal_mode=self.temporal_mode,
            max_steps=self.max_steps, max_runs=self.max_runs,
            trace=self.trace, por=self.por, slice=self.slice,
            dfa=self.dfa, history_cap=self.history_cap, case_ref=self,
        )


class WorkerState:
    """The worker bundle every task executes against.

    Ephemeral pools fork-inherit one instance; resident workers rebuild
    their own from ``case_ref`` and keep it (dedupe memo, primed plans)
    hot across jobs.
    """

    def __init__(
        self,
        program: Program,
        problem_spec: Specification,
        correspondence: Correspondence,
        program_spec: Optional[Specification],
        temporal_mode: str,
        max_steps: int,
        max_runs: int,
        cache_snapshot: Optional[Dict[str, CheckOutcome]] = None,
        trace: bool = False,
        por: bool = True,
        slice: bool = True,
        dfa: bool = True,
        history_cap: int = DEFAULT_HISTORY_CAP,
        case_ref: Optional[CaseRef] = None,
    ) -> None:
        self.program = program
        self.problem_spec = problem_spec
        self.correspondence = correspondence
        self.program_spec = program_spec
        self.temporal_mode = temporal_mode
        self.max_steps = max_steps
        self.max_runs = max_runs
        self.history_cap = history_cap
        #: when set, tasks record span segments and checker metrics
        self.trace = trace
        #: when set, explore tasks apply partial-order reduction
        self.por = por
        #: when set, checks route regular restrictions through the slice
        self.slice = slice
        #: when set, temporal restrictions route through compiled
        #: restriction automata (leaf resolution + prefix monitoring)
        self.dfa = dfa
        #: resident-mode rebuild recipe (None on the one-shot path)
        self.case_ref = case_ref
        #: the shared-cache snapshot this state was built with; resident
        #: pools ship it alongside tasks so workers can seed their memo
        self.cache_snapshot: Dict[str, CheckOutcome] = dict(
            cache_snapshot or {})
        #: highest seed generation merged so far (resident mode)
        self.seed_gen = 0
        # per-process memo: forked children each mutate their own copy
        self.index = DedupeIndex(seed=self.cache_snapshot)
        if temporal_mode == "compiled":
            # prime the per-spec compilation plans (AST analysis) before
            # any task runs: on the one-shot path this happens in the
            # parent pre-fork so every worker inherits them; on the
            # resident path it happens once per worker per state key
            from ..core.compile import plan_for

            plan_for(problem_spec)
            if program_spec is not None:
                plan_for(program_spec)
        if dfa and temporal_mode in ("compiled", "lattice"):
            # same pre-fork/per-key priming story for automata plans
            from ..core.automata import automata_plan_for

            automata_plan_for(problem_spec)
            if program_spec is not None:
                automata_plan_for(program_spec)

    def make_monitor(self):
        """A fresh per-task :class:`AutomatonMonitor`, or ``None``.

        ``None`` when the DFA route is off, the temporal mode is not
        automaton-eligible, or no restriction compiled to a monitorable
        automaton (the monitor would only burn probe budget)."""
        if not self.dfa or self.temporal_mode not in ("compiled", "lattice"):
            return None
        from ..core.automata import AutomatonMonitor, automata_plan_for

        plan = automata_plan_for(self.problem_spec)
        if not plan.monitorable:
            return None
        return AutomatonMonitor(
            plan, self.problem_spec, correspondence=self.correspondence,
            temporal_mode=self.temporal_mode, history_cap=self.history_cap)

    def compute_outcome(self, run: Run,
                        metrics: Optional[MetricsRegistry] = None
                        ) -> CheckOutcome:
        """Check one computation; pure function of (computation, specs)."""
        comp = run.computation
        program_spec_ok = True
        slice_hits = slice_fallbacks = 0
        dfa_hits = dfa_inert = 0
        if self.program_spec is not None:
            pres = self.program_spec.check(
                comp, temporal_mode=self.temporal_mode,
                history_cap=self.history_cap,
                use_slice=self.slice, use_dfa=self.dfa, metrics=metrics)
            program_spec_ok = pres.ok
            slice_hits += pres.slice_hits
            slice_fallbacks += pres.slice_fallbacks
            dfa_hits += pres.dfa_hits
            dfa_inert += pres.dfa_inert
        projected = project(comp, self.correspondence)
        # monitor verdicts were decided on projected prefixes of this
        # run, so they apply to the problem-spec check only
        decided = dict(run.decided) if run.decided else None
        result = self.problem_spec.check(
            projected, temporal_mode=self.temporal_mode,
            history_cap=self.history_cap, use_slice=self.slice,
            use_dfa=self.dfa, decided=decided, metrics=metrics)
        return CheckOutcome(
            failed_restrictions=tuple(result.failed_restrictions()),
            legality_ok=not result.legality_violations,
            program_spec_ok=program_spec_ok,
            slice_hits=slice_hits + result.slice_hits,
            slice_fallbacks=slice_fallbacks + result.slice_fallbacks,
            dfa_hits=dfa_hits + result.dfa_hits,
            dfa_inert=dfa_inert + result.dfa_inert,
        )


#: Set by the ephemeral pool in the parent just before it forks.
_STATE: Optional[WorkerState] = None

#: Resident-mode per-process memo: state key -> hot WorkerState.
_RESIDENT_STATES: Dict[str, WorkerState] = {}


def _execute_with(state: WorkerState, task: Task) -> TaskResult:
    index = state.index
    fresh_before = set(index.fresh)
    dd0, ch0, cp0 = index.dedupe_hits, index.cache_hits, index.computed
    result = TaskResult()
    tracing = state.trace
    tracer = Tracer() if tracing else NULL_TRACER
    metrics = MetricsRegistry() if tracing else None
    # fingerprints already span-recorded within *this* task: the first
    # occurrence per task is a deterministic property of the run order,
    # unlike freshness (which depends on what other tasks ran in this
    # process), so "check" spans are jobs-invariant while the fresh /
    # cached distinction stays in non-structural meta
    seen_fps: set = set()

    def consume(run: Run) -> None:
        fp = run_fingerprint(run)
        if tracing and fp not in seen_fps:
            seen_fps.add(fp)
            computed_before = index.computed
            with tracer.span("check", attrs={"fp": fp[:12]}) as span:
                index.outcome_for(
                    fp, lambda: state.compute_outcome(run, metrics=metrics))
                span.set_meta(fresh=index.computed > computed_before)
        else:
            index.outcome_for(
                fp, lambda: state.compute_outcome(run, metrics=metrics))
        result.records.append(RunRecord(
            choices=run.choices,
            fingerprint=fp,
            deadlocked=run.deadlocked,
            truncated=run.truncated,
            events=len(run.computation),
        ))

    selector = make_selector(state.por) if task.kind == "explore" else None
    monitor = state.make_monitor() if task.kind == "explore" else None
    with tracer.span(
            "task",
            attrs={"kind": task.kind,
                   "prefix": ",".join(map(str, task.prefix)),
                   "seed": task.seed},
            meta={"worker": multiprocessing.current_process().name}):
        try:
            if task.kind == "explore":
                for run in explore(state.program, max_steps=state.max_steps,
                                   max_runs=state.max_runs,
                                   prefix=task.prefix, por=selector,
                                   dfa=monitor):
                    consume(run)
            elif task.kind == "sample":
                consume(run_random(state.program, task.seed,
                                   max_steps=state.max_steps))
            else:  # pragma: no cover - engine never builds other kinds
                raise ValueError(f"unknown task kind {task.kind!r}")
        except RunCapExceeded:
            # runs are discarded (the sampling fallback replaces them), but
            # verdicts already computed are valid and stay reported: later
            # tasks in this process may answer them from the memo alone, so
            # the parent must learn them here or its merge lookup goes blind
            result.cap_exceeded = True
            result.records = []

    result.fresh_outcomes = {
        fp: index.fresh[fp] for fp in set(index.fresh) - fresh_before
    }
    result.dedupe_hits = index.dedupe_hits - dd0
    result.cache_hits = index.cache_hits - ch0
    result.checks = index.computed - cp0
    result.slice_hits = sum(
        o.slice_hits for o in result.fresh_outcomes.values())
    result.slice_fallbacks = sum(
        o.slice_fallbacks for o in result.fresh_outcomes.values())
    result.dfa_hits = sum(
        o.dfa_hits for o in result.fresh_outcomes.values())
    result.dfa_inert = max(
        (o.dfa_inert for o in result.fresh_outcomes.values()), default=0)
    if selector is not None:
        result.por_nodes = selector.nodes
        result.por_reduced_nodes = selector.reduced_nodes
        result.por_pruned = selector.pruned
        result.por_proviso_expansions = selector.proviso_expansions
    if monitor is not None:
        result.dfa_probes = monitor.probes
        result.dfa_cuts = monitor.cuts
        result.dfa_accepts = monitor.accepts
    if tracing:
        result.spans = tracer.to_records()
        result.metrics = metrics.records() if metrics is not None else []
    return result


def _execute(task: Task) -> TaskResult:
    state = _STATE
    assert state is not None, "worker state not installed (fork lost?)"
    return _execute_with(state, task)


def _resident_state(states: Dict[str, WorkerState], ref: CaseRef,
                    seed_gen: int,
                    seed: Optional[Dict[str, CheckOutcome]]) -> WorkerState:
    """Look up (or build and memoise) the hot state for ``ref``.

    ``seed`` is the parent's shared-cache snapshot for this job;
    ``seed_gen`` orders snapshots so each is merged at most once per
    process even though it rides along with every task of the job.
    """
    key = ref.state_key()
    state = states.get(key)
    if state is None:
        state = ref.build()
        states[key] = state
    if seed and state.seed_gen < seed_gen:
        state.index.merge_seed(seed)
    if state.seed_gen < seed_gen:
        state.seed_gen = seed_gen
    return state


def _execute_resident(
    arg: "Tuple[CaseRef, int, Optional[Dict[str, CheckOutcome]], Task]",
) -> TaskResult:
    ref, seed_gen, seed, task = arg
    state = _resident_state(_RESIDENT_STATES, ref, seed_gen, seed)
    return _execute_with(state, task)


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def effective_jobs(jobs: int, n_tasks: int) -> int:
    """Workers that will actually run: fork-gated and task-bounded."""
    if jobs <= 1 or n_tasks <= 1 or not fork_available():
        return 1
    return min(jobs, n_tasks)


#: Cancel hook signature: return truthy to abort the current pool run.
CancelFn = Callable[[], bool]


class WorkerPool:
    """Executes :class:`Task` batches across worker processes.

    ``resident=False`` (default) is the one-shot mode: each :meth:`run`
    installs the state for fork inheritance and forks a fresh pool for
    that batch -- exactly the historical :func:`run_tasks` behaviour,
    which is now a thin wrapper over this class.

    ``resident=True`` forks the pool *once*, immediately (before any
    workload exists), and keeps it serving :meth:`run` calls -- possibly
    concurrently, from several daemon executor threads -- until
    :meth:`close`.  Tasks are shipped as ``(case_ref, seed_gen,
    snapshot, task)`` tuples of primitives; workers rebuild and memoise
    state per :meth:`CaseRef.state_key`, so compilation plans and
    dedupe memos stay hot across requests.  Without fork support (or
    ``jobs <= 1``) the resident pool runs tasks in-process against the
    same per-key memo, serialised by a lock -- slower, never wrong.
    """

    def __init__(self, jobs: int, resident: bool = False) -> None:
        self.jobs = max(1, int(jobs))
        self.resident = resident
        self._pool = None
        self._seed_gen = 0
        self._gen_lock = threading.Lock()
        self._local_states: Dict[str, WorkerState] = {}
        self._local_lock = threading.Lock()
        if resident and self.jobs > 1 and fork_available():
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(processes=self.jobs)

    @property
    def workers(self) -> int:
        """Worker processes actually forked (1 = in-process)."""
        return self.jobs if self._pool is not None else 1

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ---------------------------------------------------------

    def run(
        self,
        state: WorkerState,
        tasks: Sequence[Task],
        progress: Optional[ProgressFn] = None,
        cancel: Optional[CancelFn] = None,
    ) -> List[TaskResult]:
        """Execute ``tasks`` against ``state``, results in task order."""
        if cancel is not None and cancel():
            raise JobCancelled("job cancelled before any task ran")
        if self.resident:
            return self._run_resident(state, tasks, progress, cancel)
        return self._run_ephemeral(state, tasks, progress, cancel)

    def _consume(self, iterator, n_tasks: int,
                 progress: Optional[ProgressFn],
                 cancel: Optional[CancelFn]) -> List[TaskResult]:
        results: List[TaskResult] = []
        for i, res in enumerate(iterator):
            results.append(res)
            if progress is not None:
                progress("task:done", {
                    "task": i, "of": n_tasks, "runs": len(res.records),
                })
            if cancel is not None and cancel():
                raise JobCancelled(
                    f"job cancelled after {i + 1}/{n_tasks} task(s)")
        return results

    def _run_ephemeral(self, state, tasks, progress, cancel):
        global _STATE
        workers = effective_jobs(self.jobs, len(tasks))
        _STATE = state
        try:
            if workers <= 1:
                return self._consume(
                    (_execute(t) for t in tasks), len(tasks), progress,
                    cancel)
            # fork *after* _STATE is installed: children inherit it
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=workers) as pool:
                return self._consume(
                    pool.imap(_execute, tasks, chunksize=1),
                    len(tasks), progress, cancel)
        finally:
            _STATE = None

    def _run_resident(self, state, tasks, progress, cancel):
        ref = state.case_ref
        if ref is None:
            raise VerificationError(
                "resident pool needs a WorkerState with a case_ref")
        with self._gen_lock:
            self._seed_gen += 1
            gen = self._seed_gen
        seed = dict(state.cache_snapshot) or None
        if self._pool is None:
            # in-process fallback: same per-key hot memo, serialised --
            # concurrent daemon jobs stay correct, just not parallel
            with self._local_lock:
                def run_local(task: Task) -> TaskResult:
                    st = _resident_state(self._local_states, ref, gen, seed)
                    return _execute_with(st, task)

                return self._consume(
                    (run_local(t) for t in tasks), len(tasks), progress,
                    cancel)
        args = [(ref, gen, seed, t) for t in tasks]
        return self._consume(
            self._pool.imap(_execute_resident, args, chunksize=1),
            len(tasks), progress, cancel)


def run_tasks(
    state: WorkerState,
    tasks: Sequence[Task],
    jobs: int,
    progress: Optional[ProgressFn] = None,
    cancel: Optional[CancelFn] = None,
) -> List[TaskResult]:
    """One-shot convenience: an ephemeral :class:`WorkerPool` run.

    ``jobs <= 1`` (or a single task, or no fork support) runs in-process
    -- the serial degenerate case shares every line of worker code with
    the parallel path, which is what makes "byte-identical reports" a
    structural property rather than a hope.
    """
    return WorkerPool(jobs).run(state, tasks, progress=progress,
                                cancel=cancel)
