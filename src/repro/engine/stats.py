"""Engine observability: phase timings, throughput, dedupe/cache ratios.

One :class:`EngineStats` record accompanies every engine verification.
It answers the questions a bench (or an operator staring at a slow
verification) actually asks: how many shards ran on how many workers,
how many interleavings collapsed to how many distinct partial orders,
how much the cache absorbed, and where the wall-clock time went.

Since the ``repro.obs`` subsystem landed, :class:`EngineStats` is a
**view over a** :class:`~repro.obs.metrics.MetricsRegistry` rather than
a parallel bookkeeping path: every counter attribute reads and writes
an ``engine.*`` metric, ``phase_seconds`` is derived from the
``engine.phase_seconds`` counters, and the registry (``stats.metrics``)
is what ``--trace`` exports -- so the stats block and the trace can
never disagree.

A *progress hook* -- any ``Callable[[str, Mapping[str, Any]], None]``
-- may be installed in the engine config; the engine calls it at phase
boundaries and per completed shard/task so long-running verifications
can drive progress bars or structured logs.  Hooks are **guarded**: a
hook that raises is warned about once and disabled for the rest of the
run, rather than killing a parallel verification mid-shard (see
:func:`guard_progress`).
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Callable, Dict, Mapping, Optional

from ..obs.metrics import MetricsRegistry

#: Progress hook signature: ``hook(event_name, info_mapping)``.
ProgressFn = Callable[[str, Mapping[str, Any]], None]


class GuardedProgress:
    """Wraps a progress hook: first raise warns and disables it."""

    def __init__(self, hook: ProgressFn) -> None:
        self._hook: Optional[ProgressFn] = hook

    @property
    def disabled(self) -> bool:
        return self._hook is None

    def __call__(self, event: str, info: Mapping[str, Any]) -> None:
        if self._hook is None:
            return
        try:
            self._hook(event, info)
        except Exception as exc:
            self._hook = None
            warnings.warn(
                f"progress hook raised {exc!r}; hook disabled for the rest "
                "of this run", RuntimeWarning, stacklevel=2)


def guard_progress(hook: Optional[ProgressFn]) -> Optional[ProgressFn]:
    """Idempotently wrap ``hook`` in a :class:`GuardedProgress`."""
    if hook is None or isinstance(hook, GuardedProgress):
        return hook
    return GuardedProgress(hook)


def _counter(metric: str, doc: str) -> property:
    def fget(self: "EngineStats") -> int:
        return int(self.metrics.get(metric))

    def fset(self: "EngineStats", value: int) -> None:
        self.metrics.set(metric, value)

    return property(fget, fset, doc=doc)


class EngineStats:
    """Everything the engine observed about one verification.

    A view: the numbers live in ``self.metrics`` (``engine.*``
    counters); only ``mode`` is a plain attribute (it is a string).
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 mode: str = "exhaustive") -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.mode = mode  # "exhaustive" | "sampled" | "reused"
        if not self.metrics.get("engine.jobs"):
            self.metrics.set("engine.jobs", 1)

    jobs = _counter("engine.jobs", "worker processes that actually ran")
    shards = _counter("engine.shards", "exploration shards")
    runs = _counter("engine.runs", "total runs checked")
    distinct_computations = _counter(
        "engine.distinct_computations", "distinct partial orders")
    checks_performed = _counter(
        "engine.checks_performed",
        "distinct computations whose verdicts were computed fresh this run")
    cache_hits = _counter(
        "engine.cache_hits",
        "distinct computations answered from the persistent cache")
    dedupe_hits = _counter(
        "engine.dedupe_hits",
        "run-level memo hits (duplicate interleavings folded away)")
    # partial-order reduction (repro.engine.por); the "por.*" namespace
    # rather than "engine.*" so traces group the reduction's own story
    por_nodes = _counter(
        "por.nodes", "branch points consulted by the ample selector")
    por_reduced_nodes = _counter(
        "por.reduced_nodes", "branch points where a strict subset expanded")
    por_pruned = _counter(
        "por.pruned_interleavings",
        "enabled branches not expanded (each roots >= 1 pruned "
        "interleaving)")
    por_proviso_expansions = _counter(
        "por.proviso_expansions",
        "full expansions forced by the ignoring-prevention proviso")
    # computation slicing (repro.core.slice): per-restriction routing
    # tallies summed over the fresh checks of this verification
    slice_hits = _counter(
        "checker.slice_hits",
        "temporal restriction checks decided exactly on the slice")
    slice_fallbacks = _counter(
        "checker.slice_fallbacks",
        "temporal restriction checks that fell back to the lattice walk")
    # restriction automata (repro.core.automata): exploration-time
    # monitor activity plus checker-side DFA routing
    dfa_probes = _counter(
        "dfa.probes", "guard probes the automaton monitor evaluated")
    dfa_cuts = _counter(
        "dfa.cuts",
        "branches cut early: a restriction hit its rejecting sink on a "
        "proper prefix")
    dfa_accepts = _counter(
        "dfa.accepts",
        "restrictions satisfied early on a proper prefix (accepting sink)")
    dfa_hits = _counter(
        "checker.dfa_hits",
        "restriction checks resolved by an automaton (leaf or early)")
    dfa_inert = _counter(
        "checker.dfa_inert",
        "restrictions whose shape compiled to no automaton (dfa-inert)")

    @property
    def cache_enabled(self) -> bool:
        return bool(self.metrics.get("engine.cache_enabled"))

    @cache_enabled.setter
    def cache_enabled(self, value: bool) -> None:
        self.metrics.set("engine.cache_enabled", 1 if value else 0)

    @property
    def por_enabled(self) -> bool:
        return bool(self.metrics.get("engine.por_enabled"))

    @por_enabled.setter
    def por_enabled(self, value: bool) -> None:
        self.metrics.set("engine.por_enabled", 1 if value else 0)

    @property
    def slice_enabled(self) -> bool:
        return bool(self.metrics.get("engine.slice_enabled"))

    @slice_enabled.setter
    def slice_enabled(self, value: bool) -> None:
        self.metrics.set("engine.slice_enabled", 1 if value else 0)

    @property
    def dfa_enabled(self) -> bool:
        return bool(self.metrics.get("engine.dfa_enabled"))

    @dfa_enabled.setter
    def dfa_enabled(self, value: bool) -> None:
        self.metrics.set("engine.dfa_enabled", 1 if value else 0)

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """Per-phase wall seconds (a fresh dict; mutate via
        :meth:`add_phase_seconds`)."""
        return self.metrics.by_label("engine.phase_seconds", "phase")

    def add_phase_seconds(self, name: str, seconds: float) -> None:
        self.metrics.inc("engine.phase_seconds", seconds, phase=name)

    @property
    def dedupe_ratio(self) -> float:
        """Runs per distinct computation (>= 1.0; 6.0 means 6x folding)."""
        if self.distinct_computations == 0:
            return 1.0
        return self.runs / self.distinct_computations

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of distinct computations answered from the cache."""
        total = self.cache_hits + self.checks_performed
        if total == 0:
            return 0.0
        return self.cache_hits / total

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def runs_per_second(self) -> float:
        elapsed = self.phase_seconds.get("explore+check", 0.0)
        if elapsed <= 0.0:
            return 0.0
        return self.runs / elapsed

    def describe(self) -> str:
        """Multi-line human-readable stats block (CLI ``--stats``)."""
        lines = [
            f"engine: {self.mode}, {self.jobs} worker(s), "
            f"{self.shards} shard(s)",
            f"  runs: {self.runs} "
            f"({self.distinct_computations} distinct computations, "
            f"dedupe ratio {self.dedupe_ratio:.2f}x)",
            f"  checks: {self.checks_performed} performed, "
            f"{self.cache_hits} from cache "
            f"(hit rate {self.cache_hit_rate:.0%})"
            + ("" if self.cache_enabled else " [cache disabled]"),
            (f"  por: {self.por_pruned} branch(es) pruned at "
             f"{self.por_reduced_nodes} of {self.por_nodes} branch "
             f"point(s), {self.por_proviso_expansions} proviso "
             "expansion(s)") if self.por_enabled else "  por: disabled",
            (f"  slice: {self.slice_hits} check(s) slice-exact, "
             f"{self.slice_fallbacks} walk-sampled fallback(s)")
            if self.slice_enabled else "  slice: disabled",
            (f"  dfa: {self.dfa_cuts} branch(es) cut early, "
             f"{self.dfa_accepts} satisfied early "
             f"({self.dfa_probes} probe(s)), {self.dfa_hits} check(s) "
             f"automaton-resolved, {self.dfa_inert} restriction(s) "
             "dfa-inert")
            if self.dfa_enabled else "  dfa: disabled",
            f"  throughput: {self.runs_per_second:.1f} runs/s",
        ]
        phases = ", ".join(
            f"{name} {secs:.3f}s" for name, secs in self.phase_seconds.items()
        )
        lines.append(f"  phases: {phases if phases else '(none timed)'}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EngineStats(mode={self.mode!r}, jobs={self.jobs}, "
                f"runs={self.runs})")


class PhaseTimer:
    """``with PhaseTimer(stats, "explore+check"): ...`` wall-time capture.

    Re-entering the same phase name accumulates, so retried phases (the
    exhaustive attempt followed by the sampling fallback) show their
    combined cost.  ``stats`` may be an :class:`EngineStats` (preferred:
    time lands in the metrics registry) or any object with a
    ``phase_seconds`` dict (the fuzzer's ``FuzzStats``).

    With a ``tracer``, the phase is also a ``phase:<name>`` span;
    ``self.span`` exposes it while open so callers can graft worker
    segments under it.
    """

    def __init__(self, stats: Any, name: str,
                 progress: Optional[ProgressFn] = None,
                 tracer: Optional[Any] = None) -> None:
        self._stats = stats
        self._name = name
        self._progress = progress
        self._tracer = tracer
        self._start = 0.0
        self.span: Optional[Any] = None

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        if self._tracer is not None:
            self.span = self._tracer.span(f"phase:{self._name}")
            self.span.__enter__()
        if self._progress is not None:
            self._progress("phase:start", {"phase": self._name})
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        if self.span is not None:
            self.span.__exit__(exc_type, exc, tb)
            self.span = None
        add = getattr(self._stats, "add_phase_seconds", None)
        if add is not None:
            add(self._name, elapsed)
        else:
            self._stats.phase_seconds[self._name] = (
                self._stats.phase_seconds.get(self._name, 0.0) + elapsed
            )
        if self._progress is not None:
            self._progress(
                "phase:end", {"phase": self._name, "seconds": elapsed}
            )
