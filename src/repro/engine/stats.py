"""Engine observability: phase timings, throughput, dedupe/cache ratios.

One :class:`EngineStats` record accompanies every engine verification.
It answers the questions a bench (or an operator staring at a slow
verification) actually asks: how many shards ran on how many workers,
how many interleavings collapsed to how many distinct partial orders,
how much the cache absorbed, and where the wall-clock time went.

A *progress hook* -- any ``Callable[[str, Mapping[str, Any]], None]`` --
may be installed in the engine config; the engine calls it at phase
boundaries and per completed shard/task so long-running verifications
can drive progress bars or structured logs.  Hooks must be cheap and
must not raise; the engine deliberately does not guard them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

#: Progress hook signature: ``hook(event_name, info_mapping)``.
ProgressFn = Callable[[str, Mapping[str, Any]], None]


@dataclass
class EngineStats:
    """Everything the engine observed about one verification."""

    jobs: int = 1
    shards: int = 0
    mode: str = "exhaustive"  # "exhaustive" | "sampled" | "reused"
    runs: int = 0
    distinct_computations: int = 0
    #: distinct computations whose verdicts were computed fresh this run
    checks_performed: int = 0
    #: distinct computations whose verdicts came from the persistent cache
    cache_hits: int = 0
    #: run-level memo hits (duplicate interleavings folded away)
    dedupe_hits: int = 0
    cache_enabled: bool = False
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def dedupe_ratio(self) -> float:
        """Runs per distinct computation (>= 1.0; 6.0 means 6x folding)."""
        if self.distinct_computations == 0:
            return 1.0
        return self.runs / self.distinct_computations

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of distinct computations answered from the cache."""
        total = self.cache_hits + self.checks_performed
        if total == 0:
            return 0.0
        return self.cache_hits / total

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def runs_per_second(self) -> float:
        elapsed = self.phase_seconds.get("explore+check", 0.0)
        if elapsed <= 0.0:
            return 0.0
        return self.runs / elapsed

    def describe(self) -> str:
        """Multi-line human-readable stats block (CLI ``--stats``)."""
        lines = [
            f"engine: {self.mode}, {self.jobs} worker(s), "
            f"{self.shards} shard(s)",
            f"  runs: {self.runs} "
            f"({self.distinct_computations} distinct computations, "
            f"dedupe ratio {self.dedupe_ratio:.2f}x)",
            f"  checks: {self.checks_performed} performed, "
            f"{self.cache_hits} from cache "
            f"(hit rate {self.cache_hit_rate:.0%})"
            + ("" if self.cache_enabled else " [cache disabled]"),
            f"  throughput: {self.runs_per_second:.1f} runs/s",
        ]
        phases = ", ".join(
            f"{name} {secs:.3f}s" for name, secs in self.phase_seconds.items()
        )
        lines.append(f"  phases: {phases if phases else '(none timed)'}")
        return "\n".join(lines)


class PhaseTimer:
    """``with PhaseTimer(stats, "explore+check"): ...`` wall-time capture.

    Re-entering the same phase name accumulates, so retried phases (the
    exhaustive attempt followed by the sampling fallback) show their
    combined cost.
    """

    def __init__(self, stats: EngineStats, name: str,
                 progress: Optional[ProgressFn] = None) -> None:
        self._stats = stats
        self._name = name
        self._progress = progress
        self._start = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        if self._progress is not None:
            self._progress("phase:start", {"phase": self._name})
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        self._stats.phase_seconds[self._name] = (
            self._stats.phase_seconds.get(self._name, 0.0) + elapsed
        )
        if self._progress is not None:
            self._progress(
                "phase:end", {"phase": self._name, "seconds": elapsed}
            )
