"""``repro.engine`` -- the parallel, deduplicating, cached verification
engine.

``PROG sat R`` quantifies over every legal computation of PROG; this
package is the execution layer that makes that quantification fast
without changing what it means.  Four ideas, four modules:

* **frontier sharding** (:mod:`.shard`) -- the DFS choice tree is split
  at a prefix frontier into independent subtrees that fan out across
  ``multiprocessing`` workers (fork-inherited state, no pickling of
  programs or specs: :mod:`.pool`);
* **computation deduplication** (:mod:`.dedupe`) -- runs are keyed by
  their partial order's stable fingerprint, so the N interleavings that
  collapse to one computation are checked once and the verdict is
  replicated to all N run indices;
* **persistent result caching** (:mod:`.cache`) -- verdicts are stored
  on disk keyed by ``(computation fingerprint, specification key)``
  with versioned invalidation, making re-verification of an unchanged
  workload incremental (zero restriction re-checks);
* **observability** (:mod:`.stats`, backed by :mod:`repro.obs`) -- an
  :class:`EngineStats` view over a metrics registry (shards, runs/s,
  dedupe ratio, cache hit rate, per-phase wall times), a guarded
  progress-callback hook, and optional span tracing: pass a
  :class:`repro.obs.Tracer` in the config and every phase, task and
  first-per-task check becomes a span, with worker segments merged
  deterministically in shard order.

Determinism guarantee
---------------------
For any ``jobs``, the engine produces a report identical to the serial
one: same verdicts, same run counts, same failing-run indices, same
``summary()`` text.  Shards are explored and merged in DFS prefix
order, so global run indices are the serial DFS indices; verdicts are
pure functions of the computation, so dedupe and caching cannot change
them -- only how often they are computed.  ``jobs=1`` is the degenerate
case of the same code path, not a separate implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.checker import DEFAULT_HISTORY_CAP
from ..core.specification import Specification
from ..obs.trace import NULL_TRACER
from ..sim.runtime import Program
from ..sim.scheduler import (
    DEFAULT_MAX_RUNS,
    DEFAULT_MAX_STEPS,
    ExplorationResult,
)
from ..verify.correspondence import Correspondence
from ..verify.sat import RestrictionVerdict, VerificationReport
from .cache import (
    CACHE_FORMAT_VERSION,
    CheckOutcome,
    ResultCache,
    SharedCacheView,
    SharedResultCache,
    spec_cache_key,
)
from .dedupe import DedupeIndex, run_fingerprint
from .por import (
    DEFAULT_PROVISO_LIMIT,
    AmpleSelector,
    event_independent,
    make_selector,
)
from .pool import (
    CaseRef,
    JobCancelled,
    RunRecord,
    Task,
    TaskResult,
    WorkerPool,
    WorkerState,
    effective_jobs,
    fork_available,
    run_tasks,
)
from .shard import Shard, make_shards
from .stats import (
    EngineStats,
    GuardedProgress,
    PhaseTimer,
    ProgressFn,
    guard_progress,
)

__all__ = [
    "Engine", "EngineConfig", "EngineStats", "ProgressFn",
    "GuardedProgress", "guard_progress",
    "Shard", "make_shards",
    "CheckOutcome", "ResultCache", "spec_cache_key", "CACHE_FORMAT_VERSION",
    "SharedResultCache", "SharedCacheView",
    "DedupeIndex", "run_fingerprint",
    "AmpleSelector", "make_selector", "event_independent",
    "DEFAULT_PROVISO_LIMIT",
    "WorkerPool", "CaseRef", "JobCancelled",
    "run_verification",
]


@dataclass
class EngineConfig:
    """Knobs for one engine instance (defaults match ``verify_program``)."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    max_steps: int = DEFAULT_MAX_STEPS
    max_runs: int = DEFAULT_MAX_RUNS
    sample: int = 200
    seed: int = 0
    #: "compiled" (default: bitmask-compiled restrictions with the
    #: interpreter as fallback), "lattice" (pure interpreter -- the
    #: ``--no-compile`` escape hatch) or "exact" (vhs enumeration)
    temporal_mode: str = "compiled"
    allow_deadlock: bool = False
    #: partial-order reduction (:mod:`repro.engine.por`): expand only an
    #: ample subset of enabled actions at each branch point.  Default on;
    #: ``--no-por`` turns it off (the fingerprint sets, verdicts and
    #: witnesses are identical either way on untruncated exploration --
    #: the reduced run census is just smaller)
    por: bool = True
    #: computation slicing (:mod:`repro.core.slice`): decide regular
    #: temporal restrictions exactly on the join-closed sublattice of
    #: satisfying cuts instead of walking the history lattice.  Default
    #: on; ``--no-slice`` turns it off (verdicts and details are
    #: identical either way -- non-regular shapes fall back to the walk)
    slice: bool = True
    #: restriction automata (:mod:`repro.core.automata`): compile
    #: temporal restrictions to DFAs over the event alphabet, resolve
    #: leaf-eligible checks by automaton, and monitor exploration
    #: prefixes so doomed branches record early verdicts.  Default on;
    #: ``--no-dfa`` turns it off (fingerprint sets, verdicts and
    #: witnesses are byte-identical either way -- non-regular shapes are
    #: dfa-inert and always take the ordinary route)
    dfa: bool = True
    #: target shards per worker; >1 absorbs uneven subtree sizes
    shard_factor: int = 4
    progress: Optional[ProgressFn] = None
    #: a :class:`repro.obs.Tracer` to record spans into (None = no-op).
    #: With tracing on, the shard target is pinned to a jobs-invariant
    #: constant so the span structure is identical for every ``jobs``.
    tracer: Optional[object] = None
    #: history-lattice size cap forwarded to every restriction check
    #: (the serve API's ``history_cap`` job flag)
    history_cap: int = DEFAULT_HISTORY_CAP
    #: a :class:`WorkerPool` to execute tasks on instead of forking a
    #: fresh ephemeral pool per verification.  A *resident* pool
    #: additionally requires ``case_ref`` so workers can rebuild the
    #: workload themselves (see :mod:`repro.engine.pool`)
    pool: Optional[WorkerPool] = None
    #: resident-mode rebuild recipe matching (program, specs) -- must
    #: describe the same workload ``verify`` is called with
    case_ref: Optional[CaseRef] = None
    #: a :class:`repro.engine.SharedResultCache` to read/write instead
    #: of opening a private per-directory cache; ``cache_dir`` is
    #: ignored when set
    shared_cache: Optional[SharedResultCache] = None
    #: polled between task results; truthy aborts the verification with
    #: :class:`JobCancelled` (the daemon's per-job cancellation)
    cancel: Optional[object] = None


class Engine:
    """Runs verifications; holds config and the last run's stats."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        self.last_stats: Optional[EngineStats] = None
        # a hook that raises is warned about once and disabled, rather
        # than killing a parallel verification mid-shard
        self._progress = guard_progress(self.config.progress)
        self._tracer = self.config.tracer or NULL_TRACER

    # -- phases ------------------------------------------------------------

    def _open_cache(
        self,
        problem_spec: Specification,
        correspondence: Correspondence,
        program_spec: Optional[Specification],
        stats: EngineStats,
    ) -> "Optional[ResultCache | SharedCacheView]":
        cfg = self.config
        if cfg.cache_dir is None and cfg.shared_cache is None:
            return None
        with PhaseTimer(stats, "cache-load", self._progress, self._tracer):
            key = spec_cache_key(
                problem_spec, correspondence, program_spec,
                cfg.temporal_mode,
                history_cap=(cfg.history_cap
                             if cfg.history_cap != DEFAULT_HISTORY_CAP
                             else None))
            if cfg.shared_cache is not None:
                cache: "ResultCache | SharedCacheView" = (
                    cfg.shared_cache.view(key))
            else:
                cache = ResultCache(cfg.cache_dir, key)
        stats.cache_enabled = True
        return cache

    def _gather(
        self,
        program: Program,
        state: WorkerState,
        stats: EngineStats,
    ) -> "tuple[List[TaskResult], bool]":
        """Explore-and-check: exhaustive shards, else sampling fallback."""
        cfg = self.config
        tracer = self._tracer
        with PhaseTimer(stats, "shard", self._progress, tracer):
            if tracer.enabled:
                # pinned, jobs-invariant: the shard plan (hence the task
                # list, hence the span tree) must not depend on --jobs
                # for traces to compare byte-for-byte across job counts
                target = cfg.shard_factor * 4
            else:
                target = cfg.jobs * cfg.shard_factor if cfg.jobs > 1 else 1
            # the planner's selector makes the plan partition the
            # *reduced* tree; its counters cover the branch points the
            # plan split through (workers count the rest, so the merged
            # totals cover each reduced-tree branch point exactly once)
            plan_selector = make_selector(cfg.por)
            shards = make_shards(program, target, cfg.max_steps,
                                 por=plan_selector)
        if plan_selector is not None:
            stats.por_nodes += plan_selector.nodes
            stats.por_reduced_nodes += plan_selector.reduced_nodes
            stats.por_pruned += plan_selector.pruned
            stats.por_proviso_expansions += plan_selector.proviso_expansions
        stats.shards = len(shards)
        stats.jobs = effective_jobs(cfg.jobs, len(shards))

        def absorb(task_results: List[TaskResult], parent) -> None:
            # shard order == task order: deterministic merged trace
            for tr in task_results:
                tracer.graft(tr.spans, parent)
                stats.metrics.merge_records(tr.metrics)

        with PhaseTimer(stats, "explore+check", self._progress,
                        tracer) as timer:
            tasks = [Task("explore", prefix=s.prefix) for s in shards]
            results = self._run_tasks(state, tasks)
            absorb(results, timer.span)
            total = sum(len(r.records) for r in results)
            capped = any(r.cap_exceeded for r in results)
            if not capped and total <= cfg.max_runs:
                return results, True
            # over the cap (detected inside one shard or across the sum):
            # fall back to seeded sampling, exactly like explore_or_sample
            sample_tasks = [
                Task("sample", seed=cfg.seed + i) for i in range(cfg.sample)
            ]
            sampled = self._run_tasks(state, sample_tasks)
            absorb(sampled, timer.span)
            # keep the aborted attempt's results too: their records are
            # empty but their fresh outcomes feed the merge lookup/cache
            return list(results) + sampled, False

    def _run_tasks(self, state: WorkerState, tasks) -> "List[TaskResult]":
        """Dispatch a task batch: the configured pool, or a one-shot."""
        cfg = self.config
        if cfg.pool is not None:
            return cfg.pool.run(state, tasks, progress=self._progress,
                                cancel=cfg.cancel)
        return run_tasks(state, tasks, cfg.jobs, self._progress,
                         cancel=cfg.cancel)

    def _merge(
        self,
        results: List[TaskResult],
        problem_spec: Specification,
        program_spec: Optional[Specification],
        exhaustive: bool,
        cache_snapshot: Dict[str, CheckOutcome],
        stats: EngineStats,
    ) -> VerificationReport:
        cfg = self.config
        report = VerificationReport(
            problem_name=problem_spec.name,
            exhaustive=exhaustive,
            allow_deadlock=cfg.allow_deadlock,
        )
        for r in problem_spec.all_restrictions():
            report.verdicts[r.name] = RestrictionVerdict(r.name)

        lookup: Dict[str, CheckOutcome] = dict(cache_snapshot)
        for tr in results:
            lookup.update(tr.fresh_outcomes)
            stats.checks_performed += tr.checks
            stats.cache_hits += tr.cache_hits
            stats.dedupe_hits += tr.dedupe_hits
            stats.por_nodes += tr.por_nodes
            stats.por_reduced_nodes += tr.por_reduced_nodes
            stats.por_pruned += tr.por_pruned
            stats.por_proviso_expansions += tr.por_proviso_expansions
            stats.slice_hits += tr.slice_hits
            stats.slice_fallbacks += tr.slice_fallbacks
            stats.dfa_probes += tr.dfa_probes
            stats.dfa_cuts += tr.dfa_cuts
            stats.dfa_accepts += tr.dfa_accepts
            stats.dfa_hits += tr.dfa_hits
            # inert is a property of the compiled plan, not of work
            # done, so tasks report the same figure: keep the max
            stats.dfa_inert = max(stats.dfa_inert, tr.dfa_inert)

        fingerprints = set()
        index = 0
        for tr in results:
            for rec in tr.records:
                outcome = lookup[rec.fingerprint]
                report.runs_checked += 1
                if rec.deadlocked:
                    report.deadlocks += 1
                if rec.truncated:
                    report.truncated += 1
                if program_spec is not None and not outcome.program_spec_ok:
                    report.program_spec_failures.append(index)
                    if len(report.program_spec_failures) == 1:
                        report.failing_run_choices[index] = rec.choices
                if not outcome.legality_ok:
                    report.legality_failures.append(index)
                    if len(report.legality_failures) == 1:
                        report.failing_run_choices[index] = rec.choices
                for name in outcome.failed_restrictions:
                    verdict = report.verdicts[name]
                    verdict.holds = False
                    verdict.failing_runs.append(index)
                    # provenance for witness replay: each restriction's
                    # *first* failing run can be re-driven from its
                    # choice sequence, no re-exploration required
                    if len(verdict.failing_runs) == 1:
                        report.failing_run_choices[index] = rec.choices
                fingerprints.add(rec.fingerprint)
                index += 1

        report.distinct_computations = len(fingerprints)
        report.dedupe_ratio = (
            report.runs_checked / len(fingerprints) if fingerprints else 1.0
        )
        stats.runs = report.runs_checked
        stats.distinct_computations = len(fingerprints)
        return report

    # -- entry point -------------------------------------------------------

    def verify(
        self,
        program: Program,
        problem_spec: Specification,
        correspondence: Correspondence,
        program_spec: Optional[Specification] = None,
        exploration: Optional[ExplorationResult] = None,
    ) -> VerificationReport:
        """The paper's proof obligation, through the engine.

        Pass ``exploration`` to reuse runs already gathered (checking
        still benefits from dedupe and the cache; nothing is explored).
        """
        cfg = self.config
        tracer = self._tracer
        stats = EngineStats()
        stats.por_enabled = cfg.por
        stats.slice_enabled = cfg.slice
        stats.dfa_enabled = cfg.dfa
        with tracer.span("verify", attrs={"problem": problem_spec.name},
                         meta={"jobs": cfg.jobs}) as root:
            cache = self._open_cache(problem_spec, correspondence,
                                     program_spec, stats)
            snapshot = cache.snapshot() if cache is not None else {}
            state = WorkerState(
                program=program,
                problem_spec=problem_spec,
                correspondence=correspondence,
                program_spec=program_spec,
                temporal_mode=cfg.temporal_mode,
                max_steps=cfg.max_steps,
                max_runs=cfg.max_runs,
                cache_snapshot=snapshot,
                trace=tracer.enabled,
                por=cfg.por,
                slice=cfg.slice,
                dfa=cfg.dfa,
                history_cap=cfg.history_cap,
                case_ref=cfg.case_ref,
            )

            if exploration is not None:
                stats.mode = "reused"
                stats.jobs = 1
                with PhaseTimer(stats, "explore+check", self._progress,
                                tracer):
                    results = self._check_reused(exploration, state,
                                                 stats.metrics, tracer)
                exhaustive = exploration.exhaustive
            else:
                results, exhaustive = self._gather(program, state, stats)
                stats.mode = "exhaustive" if exhaustive else "sampled"

            with PhaseTimer(stats, "merge", self._progress, tracer):
                report = self._merge(results, problem_spec, program_spec,
                                     exhaustive, snapshot, stats)

            if exploration is not None:
                # slice provenance rides on the exploration the caller
                # holds, so its describe() can say which temporal
                # verdicts were decided exactly on the slice
                exploration.record_slice(stats.slice_hits,
                                         stats.slice_fallbacks)
                exploration.record_dfa(stats.dfa_cuts, stats.dfa_accepts,
                                       stats.dfa_inert)

            if cache is not None:
                with PhaseTimer(stats, "cache-save", self._progress, tracer):
                    for tr in results:
                        cache.update(tr.fresh_outcomes)
                    cache.save()
            root.set_meta(mode=stats.mode, shards=stats.shards)

        self.last_stats = stats
        report.engine_stats = stats
        return report

    @staticmethod
    def _check_reused(
        exploration: ExplorationResult,
        state: WorkerState,
        metrics: Optional[object] = None,
        tracer: Optional[object] = None,
    ) -> List[TaskResult]:
        """Dedupe-and-check runs the caller already holds, in-process."""
        tracer = tracer or NULL_TRACER
        result = TaskResult()
        index = state.index
        seen_fps: set = set()
        for run in exploration.runs:
            fp = run_fingerprint(run)
            if tracer.enabled and fp not in seen_fps:
                seen_fps.add(fp)
                computed_before = index.computed
                with tracer.span("check", attrs={"fp": fp[:12]}) as span:
                    index.outcome_for(
                        fp,
                        lambda run=run: state.compute_outcome(
                            run, metrics=metrics))
                    span.set_meta(fresh=index.computed > computed_before)
            else:
                index.outcome_for(
                    fp,
                    lambda run=run: state.compute_outcome(
                        run, metrics=metrics))
            result.records.append(RunRecord(
                choices=run.choices,
                fingerprint=fp,
                deadlocked=run.deadlocked,
                truncated=run.truncated,
                events=len(run.computation),
            ))
        result.fresh_outcomes = dict(index.fresh)
        result.dedupe_hits = index.dedupe_hits
        result.cache_hits = index.cache_hits
        result.checks = index.computed
        result.slice_hits = sum(
            o.slice_hits for o in result.fresh_outcomes.values())
        result.slice_fallbacks = sum(
            o.slice_fallbacks for o in result.fresh_outcomes.values())
        result.dfa_hits = sum(
            o.dfa_hits for o in result.fresh_outcomes.values())
        result.dfa_inert = max(
            (o.dfa_inert for o in result.fresh_outcomes.values()), default=0)
        return [result]


def run_verification(
    program: Program,
    problem_spec: Specification,
    correspondence: Correspondence,
    program_spec: Optional[Specification] = None,
    config: Optional[EngineConfig] = None,
    exploration: Optional[ExplorationResult] = None,
) -> "tuple[VerificationReport, EngineStats]":
    """One-shot convenience: build an engine, verify, return report+stats."""
    engine = Engine(config)
    report = engine.verify(program, problem_spec, correspondence,
                           program_spec=program_spec, exploration=exploration)
    assert engine.last_stats is not None
    return report, engine.last_stats
