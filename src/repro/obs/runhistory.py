"""Persistent run history: one row per completed verification.

The serve daemon (and ``repro verify --history``) records every
finished job here -- what ran (case + flag set), what came out (ok,
mode, report-signature digest), how long it took, and the full engine
stats/metrics snapshot -- so ``repro history`` can answer the
operational questions counters alone cannot: *is this workload getting
slower*, *did the POR prune ratio collapse after that change*, *what
did run 412 actually report*.

Storage is stdlib :mod:`sqlite3` in WAL mode (concurrent daemon
executor threads write rows while the CLI reads), with the schema
version pinned in ``PRAGMA user_version``: an unknown version is a
:class:`HistorySchemaError`, never a silent misread.  Connections are
opened per operation -- history writes happen once per job, so
connection reuse would buy nothing and thread-affinity bugs cost real
debugging time.

Regression detection is deliberately simple and explainable: the
baseline for a ``(case, flags)`` series is the **median of the last
N** finished runs before the latest one, and the latest run regresses
when its wall time exceeds ``tolerance x`` that baseline, or its POR
prune ratio falls below ``baseline / tolerance``.  Medians over a
small window resist the one-off noise spike that means and single-run
baselines amplify; the tolerance is multiplicative so the same gate
works for millisecond and minute workloads.  ``repro history
regressions`` exits non-zero when anything regresses, so CI can
consume it directly.

Nothing in this module feeds back into verification: a history row is
written *after* a report is complete, and report signatures are
asserted byte-identical with history on and off.
"""

from __future__ import annotations

import json
import sqlite3
import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.errors import VerificationError

#: Bump on any incompatible change to the table shapes below.
HISTORY_SCHEMA_VERSION = 1

#: The default database file (shared by serve and the CLI).
DEFAULT_HISTORY_DB = "repro_history.sqlite"

#: Runs the regression baseline is the median of.
DEFAULT_BASELINE_RUNS = 5

#: Latest-over-baseline wall-time ratio that flags a regression.
DEFAULT_TOLERANCE = 1.5


class HistorySchemaError(VerificationError):
    """The database's schema version is not one this reader supports."""


def parse_tolerance(text: str) -> float:
    """``"1.5"`` or ``"10x"`` -> the multiplicative tolerance."""
    cleaned = str(text).strip().lower().rstrip("x")
    try:
        value = float(cleaned)
    except ValueError:
        raise VerificationError(
            f"bad tolerance {text!r}; want a ratio like 1.5 or 10x"
        ) from None
    if value < 1.0:
        raise VerificationError(
            f"tolerance {text!r} is below 1.0; a ratio of 1.0 means "
            "'any slowdown regresses'")
    return value


def flags_key(flags: Mapping[str, Any]) -> str:
    """Canonical JSON of a flag mapping -- the series key component."""
    return json.dumps(dict(flags), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunRow:
    """One recorded verification, as read back from the store."""

    id: int
    ts: float
    source: str
    case: str
    flags: Dict[str, Any]
    ok: bool
    mode: str
    signature: str
    wall_s: float
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def series(self) -> Tuple[str, str]:
        """(case, canonical flags) -- what baselines group by."""
        return (self.case, flags_key(self.flags))

    @property
    def prune_ratio(self) -> Optional[float]:
        """POR pruned branches over (pruned + runs); None when POR saw
        no branch points (nothing to regress)."""
        pruned = self.stats.get("por_pruned")
        runs = self.stats.get("runs")
        if not pruned or not runs:
            return None
        return pruned / (pruned + runs)


@dataclass(frozen=True)
class Regression:
    """One flagged series: what moved, by how much, against what."""

    case: str
    flags: Dict[str, Any]
    kind: str  # "wall_s" | "prune_ratio"
    latest: float
    baseline: float
    ratio: float
    run_id: int
    window: int

    def describe(self) -> str:
        flag_text = flags_key(self.flags)
        if self.kind == "wall_s":
            return (f"{self.case} {flag_text}: run #{self.run_id} took "
                    f"{self.latest:.4f}s, {self.ratio:.2f}x the median "
                    f"{self.baseline:.4f}s of the last {self.window} run(s)")
        return (f"{self.case} {flag_text}: run #{self.run_id} prune ratio "
                f"{self.latest:.3f} fell to {self.ratio:.2f}x the median "
                f"{self.baseline:.3f} of the last {self.window} run(s)")


_CREATE = """
CREATE TABLE IF NOT EXISTS runs (
    id        INTEGER PRIMARY KEY AUTOINCREMENT,
    ts        REAL NOT NULL,
    source    TEXT NOT NULL,
    case_name TEXT NOT NULL,
    flags     TEXT NOT NULL,
    ok        INTEGER NOT NULL,
    mode      TEXT NOT NULL,
    signature TEXT NOT NULL,
    wall_s    REAL NOT NULL,
    stats     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_series ON runs (case_name, flags, id);
"""


class RunHistory:
    """The store: record, list, and analyse verification runs."""

    def __init__(self, path: str) -> None:
        self.path = path
        with self._connect() as conn:
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                conn.executescript(_CREATE)
                conn.execute(
                    f"PRAGMA user_version = {HISTORY_SCHEMA_VERSION}")
            elif version != HISTORY_SCHEMA_VERSION:
                raise HistorySchemaError(
                    f"history db {path!r} has schema v{version}; this "
                    f"reader supports v{HISTORY_SCHEMA_VERSION}")

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        return conn

    # -- writing -----------------------------------------------------------

    def record(self, *, source: str, case: str, flags: Mapping[str, Any],
               ok: bool, mode: str, signature: Any, wall_s: float,
               stats: Optional[Mapping[str, Any]] = None,
               ts: Optional[float] = None) -> int:
        """Insert one completed run; returns its row id.

        ``signature`` may be the canonical-JSON signature list (stored
        verbatim) or any JSON-serialisable rendering of it; ``stats``
        is the engine's counter snapshot (runs, distinct computations,
        dedupe/cache hits, por/slice counters ...), stored as JSON.
        """
        with self._connect() as conn:
            cursor = conn.execute(
                "INSERT INTO runs (ts, source, case_name, flags, ok, mode,"
                " signature, wall_s, stats) VALUES (?,?,?,?,?,?,?,?,?)",
                (time.time() if ts is None else float(ts), source, case,
                 flags_key(flags), 1 if ok else 0, mode,
                 json.dumps(signature, sort_keys=True), float(wall_s),
                 json.dumps(dict(stats or {}), sort_keys=True)))
            return int(cursor.lastrowid)

    # -- reading -----------------------------------------------------------

    @staticmethod
    def _row(raw: Tuple) -> RunRow:
        return RunRow(id=int(raw[0]), ts=float(raw[1]), source=raw[2],
                      case=raw[3], flags=json.loads(raw[4]),
                      ok=bool(raw[5]), mode=raw[6], signature=raw[7],
                      wall_s=float(raw[8]), stats=json.loads(raw[9]))

    def runs(self, case: Optional[str] = None,
             limit: int = 50) -> List[RunRow]:
        """Latest runs first, optionally filtered to one case."""
        query = ("SELECT id, ts, source, case_name, flags, ok, mode,"
                 " signature, wall_s, stats FROM runs")
        params: Tuple = ()
        if case is not None:
            query += " WHERE case_name = ?"
            params = (case,)
        query += " ORDER BY id DESC LIMIT ?"
        with self._connect() as conn:
            rows = conn.execute(query, params + (int(limit),)).fetchall()
        return [self._row(r) for r in rows]

    def run(self, run_id: int) -> Optional[RunRow]:
        with self._connect() as conn:
            raw = conn.execute(
                "SELECT id, ts, source, case_name, flags, ok, mode,"
                " signature, wall_s, stats FROM runs WHERE id = ?",
                (int(run_id),)).fetchone()
        return self._row(raw) if raw is not None else None

    def series(self, case: Optional[str] = None,
               ) -> Dict[Tuple[str, str], List[RunRow]]:
        """Every (case, flags) series, rows oldest-first within each."""
        out: Dict[Tuple[str, str], List[RunRow]] = {}
        for row in reversed(self.runs(case=case, limit=1_000_000)):
            out.setdefault(row.series, []).append(row)
        return out

    def __len__(self) -> int:
        with self._connect() as conn:
            return int(conn.execute(
                "SELECT COUNT(*) FROM runs").fetchone()[0])

    # -- analysis ----------------------------------------------------------

    def trends(self, case: Optional[str] = None,
               window: int = DEFAULT_BASELINE_RUNS,
               ) -> List[Dict[str, Any]]:
        """Per-series timing summary: latest vs median of the last N."""
        out: List[Dict[str, Any]] = []
        for (case_name, flags), rows in sorted(self.series(case).items()):
            walls = [r.wall_s for r in rows]
            recent = walls[-window:]
            out.append({
                "case": case_name,
                "flags": json.loads(flags),
                "runs": len(rows),
                "latest_s": walls[-1],
                "median_s": statistics.median(recent),
                "min_s": min(walls),
                "max_s": max(walls),
                "last_id": rows[-1].id,
            })
        return out

    def regressions(self, case: Optional[str] = None,
                    baseline_runs: int = DEFAULT_BASELINE_RUNS,
                    tolerance: float = DEFAULT_TOLERANCE,
                    ) -> List[Regression]:
        """Latest run of each series vs its median-of-last-N baseline.

        A series with no prior runs has no baseline and cannot regress;
        a latest run that *failed* is not timed against the baseline
        (its wall time measures the failure, not the workload).
        """
        found: List[Regression] = []
        for (case_name, flags), rows in sorted(self.series(case).items()):
            if len(rows) < 2:
                continue
            latest, prior = rows[-1], rows[:-1][-baseline_runs:]
            if not latest.ok and latest.mode == "failed":
                continue
            flag_map = json.loads(flags)
            base_wall = statistics.median([r.wall_s for r in prior])
            if base_wall > 0 and latest.wall_s > tolerance * base_wall:
                found.append(Regression(
                    case=case_name, flags=flag_map, kind="wall_s",
                    latest=latest.wall_s, baseline=base_wall,
                    ratio=latest.wall_s / base_wall, run_id=latest.id,
                    window=len(prior)))
            prior_ratios = [r.prune_ratio for r in prior
                            if r.prune_ratio is not None]
            latest_ratio = latest.prune_ratio
            if prior_ratios and latest_ratio is not None:
                base_ratio = statistics.median(prior_ratios)
                if base_ratio > 0 and latest_ratio < base_ratio / tolerance:
                    found.append(Regression(
                        case=case_name, flags=flag_map, kind="prune_ratio",
                        latest=latest_ratio, baseline=base_ratio,
                        ratio=latest_ratio / base_ratio, run_id=latest.id,
                        window=len(prior)))
        return found


# -- engine/report plumbing --------------------------------------------------


def stats_snapshot(stats: Any) -> Dict[str, Any]:
    """The history row's stats payload from an :class:`EngineStats`."""
    if stats is None:
        return {}
    return {
        "mode": stats.mode,
        "jobs": stats.jobs,
        "shards": stats.shards,
        "runs": stats.runs,
        "distinct_computations": stats.distinct_computations,
        "dedupe_ratio": round(stats.dedupe_ratio, 4),
        "checks_performed": stats.checks_performed,
        "cache_hits": stats.cache_hits,
        "dedupe_hits": stats.dedupe_hits,
        "por_nodes": stats.por_nodes,
        "por_pruned": stats.por_pruned,
        "slice_hits": stats.slice_hits,
        "slice_fallbacks": stats.slice_fallbacks,
        "dfa_probes": stats.dfa_probes,
        "dfa_cuts": stats.dfa_cuts,
        "dfa_accepts": stats.dfa_accepts,
        "dfa_hits": stats.dfa_hits,
        "dfa_inert": stats.dfa_inert,
    }


def record_report(history: "RunHistory", *, source: str, case: str,
                  flags: Mapping[str, Any], report: Any,
                  wall_s: float) -> int:
    """Record a finished :class:`VerificationReport` (CLI-side helper)."""
    signature = json.loads(json.dumps(report.signature()))
    return history.record(
        source=source, case=case, flags=flags, ok=report.ok,
        mode=(report.engine_stats.mode
              if report.engine_stats is not None else "?"),
        signature=signature, wall_s=wall_s,
        stats=stats_snapshot(report.engine_stats))


# -- rendering (the ``repro history`` subcommands) ---------------------------


def render_list(rows: Iterable[RunRow]) -> str:
    lines = [f"{'id':>5}  {'when':19}  {'source':6}  {'ok':2}  "
             f"{'mode':10}  {'wall':>9}  case [flags]"]
    for row in rows:
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(row.ts))
        ok = "ok" if row.ok else "NO"
        lines.append(
            f"{row.id:>5}  {when:19}  {row.source:6}  {ok:2}  "
            f"{row.mode:10}  {row.wall_s:8.3f}s  {row.case} "
            f"{flags_key(row.flags)}")
    if len(lines) == 1:
        lines.append("(no runs recorded)")
    return "\n".join(lines)


def render_show(row: RunRow) -> str:
    payload = {
        "id": row.id, "ts": row.ts, "source": row.source, "case": row.case,
        "flags": row.flags, "ok": row.ok, "mode": row.mode,
        "wall_s": row.wall_s, "signature": json.loads(row.signature),
        "stats": row.stats,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_trends(trends: Iterable[Mapping[str, Any]]) -> str:
    lines = [f"{'runs':>5}  {'latest':>9}  {'median':>9}  {'min':>9}  "
             f"{'max':>9}  case [flags]"]
    for t in trends:
        lines.append(
            f"{t['runs']:>5}  {t['latest_s']:8.3f}s  {t['median_s']:8.3f}s  "
            f"{t['min_s']:8.3f}s  {t['max_s']:8.3f}s  {t['case']} "
            f"{flags_key(t['flags'])}")
    if len(lines) == 1:
        lines.append("(no runs recorded)")
    return "\n".join(lines)
