"""Prometheus exposition and background sampling for the serve daemon.

Two pieces, both dependency-free (stdlib + :mod:`repro.obs.metrics`
only) so the daemon, the CLI dashboard and the tests share one
implementation:

* :func:`render_prometheus` -- a :class:`MetricsRegistry` (or its
  :meth:`~MetricsRegistry.records` list) rendered in the Prometheus
  text exposition format (version 0.0.4): ``# TYPE`` lines per family,
  label escaping, counters as counters, gauges as gauges, histograms
  as ``summary`` families plus ``_min``/``_max`` gauge families.
  Metric names are mangled (``engine.runs`` -> ``repro_engine_runs``)
  because Prometheus names admit no dots.  :func:`parse_prometheus`
  is the matching reader -- ``repro top`` and the test suite consume
  scrapes through it, so the format is round-tripped, not just
  emitted.
* :class:`TelemetryHub` -- a background daemon thread that invokes a
  *sampler* callback against a registry on a fixed interval, so gauges
  describing live state (queue depth, jobs in flight, cache bytes,
  uptime) are refreshed off the request path: a ``GET /metrics``
  scrape only renders the registry, it never walks the pool or takes
  job locks.  A sampler that raises is warned about once and disabled
  (the same contract as engine progress hooks) -- telemetry must never
  take the service down.

Exposition is observability, not verification state: nothing here
feeds back into reports, and the serve test suite asserts report
signatures are byte-identical with telemetry on and off.
"""

from __future__ import annotations

import math
import re
import threading
import warnings
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Tuple, Union)

from .metrics import MetricsRegistry

#: Prefix every exposed metric family carries.
METRIC_PREFIX = "repro"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(name: str) -> str:
    """``engine.runs`` -> ``repro_engine_runs`` (Prometheus-legal)."""
    return f"{METRIC_PREFIX}_{_NAME_RE.sub('_', name)}"


def _label_name(name: str) -> str:
    mangled = _LABEL_RE.sub("_", name)
    if mangled and mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled or "_"


def _escape_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _unescape_value(value: str) -> str:
    return (value.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def _format_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_label_name(k)}="{_escape_value(str(v))}"'
        for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_prometheus(
    source: Union[MetricsRegistry, Iterable[Mapping[str, Any]]],
) -> str:
    """The Prometheus text-format body for one registry snapshot.

    Families are emitted in sorted name order, each preceded by its
    ``# TYPE`` line.  A family whose keys disagree on kind (possible:
    kinds are sticky per *key*, not per name) is exposed as
    ``untyped``.  Histograms become ``summary`` families (``_count`` +
    ``_sum`` samples) plus ``_min``/``_max`` gauge families, which is
    everything :class:`~repro.obs.metrics.HistogramStat` aggregates.
    """
    records = (source.records() if isinstance(source, MetricsRegistry)
               else list(source))
    # family name -> (kinds seen, scalar samples, histogram samples)
    scalars: Dict[str, List[Tuple[Mapping[str, str], float]]] = {}
    histograms: Dict[str, List[Tuple[Mapping[str, str],
                                     Mapping[str, float]]]] = {}
    kinds: Dict[str, set] = {}
    for rec in records:
        if rec.get("type") != "metric":
            continue
        family = metric_name(rec["name"])
        kinds.setdefault(family, set()).add(rec["kind"])
        if rec["kind"] == "histogram":
            histograms.setdefault(family, []).append(
                (rec.get("labels", {}),
                 {"count": float(rec["count"]), "sum": float(rec["sum"]),
                  "min": float(rec["min"]), "max": float(rec["max"])}))
        else:
            scalars.setdefault(family, []).append(
                (rec.get("labels", {}), float(rec["value"])))

    lines: List[str] = []
    for family in sorted(set(scalars) | set(histograms)):
        seen = kinds[family]
        if seen == {"counter"}:
            family_type = "counter"
        elif seen == {"gauge"}:
            family_type = "gauge"
        elif seen == {"histogram"}:
            family_type = "summary"
        else:
            family_type = "untyped"
        lines.append(f"# TYPE {family} {family_type}")
        for labels, value in scalars.get(family, ()):
            lines.append(
                f"{family}{_labels_text(labels)} {_format_number(value)}")
        if family in histograms:
            for labels, stat in histograms[family]:
                text = _labels_text(labels)
                lines.append(
                    f"{family}_count{text} {_format_number(stat['count'])}")
                lines.append(
                    f"{family}_sum{text} {_format_number(stat['sum'])}")
            for suffix in ("min", "max"):
                lines.append(f"# TYPE {family}_{suffix} gauge")
                for labels, stat in histograms[family]:
                    lines.append(
                        f"{family}_{suffix}{_labels_text(labels)} "
                        f"{_format_number(stat[suffix])}")
    return "\n".join(lines) + ("\n" if lines else "")


class PrometheusParseError(ValueError):
    """A line the text-format reader cannot interpret."""


#: One parsed sample: (family, ((label, value), ...)) -> float.
Sample = Tuple[str, Tuple[Tuple[str, str], ...]]


class PrometheusScrape:
    """A parsed ``/metrics`` body: samples plus family types."""

    def __init__(self) -> None:
        self.samples: Dict[Sample, float] = {}
        self.types: Dict[str, str] = {}

    def value(self, family: str, default: float = 0.0,
              **labels: str) -> float:
        key = (family, tuple(sorted(
            (k, str(v)) for k, v in labels.items())))
        return self.samples.get(key, default)

    def family(self, family: str) -> Dict[Tuple[Tuple[str, str], ...],
                                          float]:
        return {labels: v for (name, labels), v in self.samples.items()
                if name == family}

    def __len__(self) -> int:
        return len(self.samples)


def parse_prometheus(text: str) -> PrometheusScrape:
    """Parse a text-format exposition body (the subset we emit).

    Raises :class:`PrometheusParseError` on any line that is neither a
    comment, blank, nor a well-formed sample -- the tests use this to
    assert ``GET /metrics`` output *parses*, so leniency here would
    hollow out the acceptance criterion.
    """
    scrape = PrometheusScrape()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                scrape.types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise PrometheusParseError(f"line {lineno}: bad sample {line!r}")
        name, labels_text, value_text = match.groups()
        labels: List[Tuple[str, str]] = []
        if labels_text:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(labels_text):
                labels.append((pair.group(1),
                               _unescape_value(pair.group(2))))
                consumed = pair.end()
            rest = labels_text[consumed:].strip().strip(",")
            if rest:
                raise PrometheusParseError(
                    f"line {lineno}: bad labels {labels_text!r}")
        try:
            if value_text == "+Inf":
                value = float("inf")
            elif value_text == "-Inf":
                value = float("-inf")
            else:
                value = float(value_text)
        except ValueError:
            raise PrometheusParseError(
                f"line {lineno}: bad value {value_text!r}") from None
        scrape.samples[(name, tuple(sorted(labels)))] = value
    return scrape


#: A sampler sets gauges on the registry it is handed.
Sampler = Callable[[MetricsRegistry], None]


class TelemetryHub:
    """Runs a sampler against a registry on a background thread.

    The daemon's scrape path only *renders* the registry; everything
    that requires walking live state (pool, queue, cache) happens here,
    on this thread, at ``interval`` seconds -- so a slow or contended
    sample can delay gauge freshness but never a scrape or a job.
    """

    def __init__(self, registry: MetricsRegistry, sampler: Sampler,
                 interval: float = 0.5) -> None:
        self.registry = registry
        self.interval = max(0.05, float(interval))
        self._sampler: Optional[Sampler] = sampler
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: completed sample passes (also the readiness signal: a hub
        #: that has sampled at least once has seen the pool primed)
        self.samples = 0

    def sample_now(self) -> bool:
        """One guarded sample pass; False once the sampler is disabled."""
        if self._sampler is None:
            return False
        try:
            self._sampler(self.registry)
        except Exception as exc:  # noqa: BLE001 - never kill the daemon
            self._sampler = None
            warnings.warn(
                f"telemetry sampler raised {exc!r}; sampling disabled",
                RuntimeWarning, stacklevel=2)
            return False
        self.samples += 1
        return True

    def start(self) -> "TelemetryHub":
        if self._thread is not None:
            return self
        self.sample_now()  # prime the gauges before the first scrape

        def run() -> None:
            while not self._stop.wait(self.interval):
                if not self.sample_now():
                    return

        self._thread = threading.Thread(
            target=run, name="telemetry-hub", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
