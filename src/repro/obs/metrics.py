"""The metrics registry: labelled counters and histograms.

Observability's second leg (spans in :mod:`repro.obs.trace` are the
first): cheap numeric aggregates that survive process boundaries.  A
:class:`MetricsRegistry` holds *counters* (monotone or gauge-set
floats) and *histograms* (count/sum/min/max aggregates -- enough for
means and extremes without storing samples), both keyed by a metric
name plus a small label mapping, Prometheus-style::

    registry.inc("checker.evals", 42, restriction="mutex-rw")
    registry.observe("checker.seconds", 0.0031, restriction="mutex-rw")

Registries are designed to be **merged**: engine workers each populate
a private registry and ship :meth:`records` (plain dicts, picklable and
JSONL-ready) back to the parent, which folds them in with
:meth:`merge_records` -- counters add, histograms combine -- in shard
order, so the merged registry is deterministic for a deterministic
workload.  The same record format is what :func:`repro.obs.trace.write_trace`
emits as ``{"type": "metric", ...}`` lines.

This module is dependency-free (it imports nothing from the rest of
the package) so any layer -- core checker, engine, fuzzer -- can accept
a registry without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: (metric name, sorted (label, value) pairs) -- the storage key.
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, Any]) -> _Key:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


@dataclass
class HistogramStat:
    """Aggregate of observed values: count, sum, min, max."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def combine(self, other: "HistogramStat") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class MetricsRegistry:
    """Labelled counters and histograms with deterministic merge."""

    def __init__(self) -> None:
        self._counters: Dict[_Key, float] = {}
        self._histograms: Dict[_Key, HistogramStat] = {}

    # -- counters ----------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` to counter ``name{labels}``."""
        k = _key(name, labels)
        self._counters[k] = self._counters.get(k, 0.0) + value

    def set(self, name: str, value: float, **labels: Any) -> None:
        """Set counter ``name{labels}`` to ``value`` (gauge semantics)."""
        self._counters[_key(name, labels)] = float(value)

    def get(self, name: str, default: float = 0.0, **labels: Any) -> float:
        return self._counters.get(_key(name, labels), default)

    def by_label(self, name: str, label: str) -> Dict[str, float]:
        """Counter values of ``name`` grouped by one label's value."""
        out: Dict[str, float] = {}
        for (n, labels), value in self._counters.items():
            if n != name:
                continue
            for k, v in labels:
                if k == label:
                    out[v] = out.get(v, 0.0) + value
        return out

    # -- histograms --------------------------------------------------------

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one sample into histogram ``name{labels}``."""
        k = _key(name, labels)
        stat = self._histograms.get(k)
        if stat is None:
            stat = self._histograms[k] = HistogramStat()
        stat.observe(value)

    def histogram(self, name: str, **labels: Any) -> Optional[HistogramStat]:
        return self._histograms.get(_key(name, labels))

    def histograms_by_label(self, name: str,
                            label: str) -> Dict[str, HistogramStat]:
        """Histograms of ``name`` grouped (combined) by one label's value."""
        out: Dict[str, HistogramStat] = {}
        for (n, labels), stat in self._histograms.items():
            if n != name:
                continue
            for k, v in labels:
                if k == label:
                    agg = out.setdefault(v, HistogramStat())
                    agg.combine(stat)
        return out

    # -- transport ---------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """All metrics as plain dicts (picklable, JSONL-ready), sorted."""
        out: List[Dict[str, Any]] = []
        for (name, labels), value in sorted(self._counters.items()):
            out.append({"type": "metric", "kind": "counter", "name": name,
                        "labels": dict(labels), "value": value})
        for (name, labels), stat in sorted(self._histograms.items()):
            out.append({"type": "metric", "kind": "histogram", "name": name,
                        "labels": dict(labels), "count": stat.count,
                        "sum": stat.total, "min": stat.min, "max": stat.max})
        return out

    def merge_records(self, records: Iterable[Mapping[str, Any]]) -> None:
        """Fold serialized :meth:`records` in: counters add, histograms
        combine.  Merging the same registry's records twice double-counts
        -- callers merge each segment exactly once, in shard order."""
        for rec in records:
            if rec.get("type") != "metric":
                continue
            labels = dict(rec.get("labels", {}))
            if rec["kind"] == "counter":
                self.inc(rec["name"], float(rec["value"]), **labels)
            elif rec["kind"] == "histogram":
                k = _key(rec["name"], labels)
                stat = self._histograms.setdefault(k, HistogramStat())
                stat.combine(HistogramStat(
                    count=int(rec["count"]), total=float(rec["sum"]),
                    min=float(rec["min"]), max=float(rec["max"])))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (in-process convenience)."""
        for (name, labels), value in other._counters.items():
            self._counters[(name, labels)] = (
                self._counters.get((name, labels), 0.0) + value)
        for (name, labels), stat in other._histograms.items():
            agg = self._histograms.setdefault((name, labels), HistogramStat())
            agg.combine(stat)

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)
