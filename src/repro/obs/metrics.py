"""The metrics registry: labelled counters and histograms.

Observability's second leg (spans in :mod:`repro.obs.trace` are the
first): cheap numeric aggregates that survive process boundaries.  A
:class:`MetricsRegistry` holds *counters* (monotone, via ``inc``),
*gauges* (set-to-current, via ``set``) and *histograms*
(count/sum/min/max aggregates -- enough for means and extremes without
storing samples), all keyed by a metric name plus a small label
mapping, Prometheus-style::

    registry.inc("checker.evals", 42, restriction="mutex-rw")
    registry.observe("checker.seconds", 0.0031, restriction="mutex-rw")

Registries are designed to be **merged**: engine workers each populate
a private registry and ship :meth:`records` (plain dicts, picklable and
JSONL-ready) back to the parent, which folds them in with
:meth:`merge_records` -- counters add, histograms combine -- in shard
order, so the merged registry is deterministic for a deterministic
workload.  The same record format is what :func:`repro.obs.trace.write_trace`
emits as ``{"type": "metric", ...}`` lines.

This module is dependency-free (it imports nothing from the rest of
the package) so any layer -- core checker, engine, fuzzer -- can accept
a registry without import cycles.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: (metric name, sorted (label, value) pairs) -- the storage key.
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Distinct label sets allowed per metric name before the registry
#: folds further ones into a single ``{overflow="true"}`` series.
DEFAULT_LABEL_SET_LIMIT = 1024

#: The label set runaway-cardinality samples are folded into.
_OVERFLOW_LABELS: Tuple[Tuple[str, str], ...] = (("overflow", "true"),)


class MetricKindError(ValueError):
    """``inc``/``set``/``observe`` disagree about what a key is.

    A key is a *counter* (only ever ``inc``), a *gauge* (only ever
    ``set``) or a *histogram* (only ever ``observe``); the first write
    fixes the kind and a mismatching later write raises instead of
    silently giving last-writer-wins numbers.
    """


def _key(name: str, labels: Mapping[str, Any]) -> _Key:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


@dataclass
class HistogramStat:
    """Aggregate of observed values: count, sum, min, max."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def combine(self, other: "HistogramStat") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class MetricsRegistry:
    """Labelled counters, gauges and histograms with deterministic merge.

    Kinds are **sticky per key**: the first of ``inc`` (counter),
    ``set`` (gauge) or ``observe`` (histogram) on a ``(name, labels)``
    key fixes its kind, and a mismatching later write raises
    :class:`MetricKindError` -- no last-writer-wins.  A per-name
    **cardinality guard** caps distinct label sets at
    ``label_set_limit``: past it, the registry warns once per name and
    folds further label sets into one ``{overflow="true"}`` series, so
    a buggy high-cardinality label (a run index, a fingerprint) cannot
    grow the registry without bound.
    """

    def __init__(self,
                 label_set_limit: int = DEFAULT_LABEL_SET_LIMIT) -> None:
        self._counters: Dict[_Key, float] = {}
        self._histograms: Dict[_Key, HistogramStat] = {}
        #: key -> "counter" | "gauge" | "histogram" (sticky)
        self._kinds: Dict[_Key, str] = {}
        self._label_set_limit = max(1, int(label_set_limit))
        self._name_keys: Dict[str, int] = {}
        self._overflowed: set = set()

    def _admit(self, key: _Key, kind: str) -> _Key:
        """Kind bookkeeping + cardinality guard; may re-route ``key``."""
        held = self._kinds.get(key)
        if held is not None:
            if held != kind:
                raise MetricKindError(
                    f"metric {key[0]!r}{dict(key[1])} is a {held}; "
                    f"refusing a {kind} write")
            return key
        name = key[0]
        n = self._name_keys.get(name, 0)
        if n >= self._label_set_limit and key[1] != _OVERFLOW_LABELS:
            if name not in self._overflowed:
                self._overflowed.add(name)
                warnings.warn(
                    f"metric {name!r} exceeded {self._label_set_limit} "
                    f"distinct label sets; further label sets fold into "
                    f"{name}{{overflow=\"true\"}}",
                    RuntimeWarning, stacklevel=3)
            return self._admit((name, _OVERFLOW_LABELS), kind)
        self._name_keys[name] = n + 1
        self._kinds[key] = kind
        return key

    def kind(self, name: str, **labels: Any) -> Optional[str]:
        """The sticky kind of ``name{labels}``, or None if unwritten."""
        return self._kinds.get(_key(name, labels))

    # -- counters and gauges -----------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` to counter ``name{labels}``."""
        k = self._admit(_key(name, labels), "counter")
        self._counters[k] = self._counters.get(k, 0.0) + value

    def set(self, name: str, value: float, **labels: Any) -> None:
        """Set gauge ``name{labels}`` to ``value``."""
        k = self._admit(_key(name, labels), "gauge")
        self._counters[k] = float(value)

    def get(self, name: str, default: float = 0.0, **labels: Any) -> float:
        return self._counters.get(_key(name, labels), default)

    def by_label(self, name: str, label: str) -> Dict[str, float]:
        """Counter values of ``name`` grouped by one label's value."""
        out: Dict[str, float] = {}
        for (n, labels), value in self._counters.items():
            if n != name:
                continue
            for k, v in labels:
                if k == label:
                    out[v] = out.get(v, 0.0) + value
        return out

    # -- histograms --------------------------------------------------------

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one sample into histogram ``name{labels}``."""
        k = self._admit(_key(name, labels), "histogram")
        stat = self._histograms.get(k)
        if stat is None:
            stat = self._histograms[k] = HistogramStat()
        stat.observe(value)

    def histogram(self, name: str, **labels: Any) -> Optional[HistogramStat]:
        return self._histograms.get(_key(name, labels))

    def histograms_by_label(self, name: str,
                            label: str) -> Dict[str, HistogramStat]:
        """Histograms of ``name`` grouped (combined) by one label's value."""
        out: Dict[str, HistogramStat] = {}
        for (n, labels), stat in self._histograms.items():
            if n != name:
                continue
            for k, v in labels:
                if k == label:
                    agg = out.setdefault(v, HistogramStat())
                    agg.combine(stat)
        return out

    # -- transport ---------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """All metrics as plain dicts (picklable, JSONL-ready), sorted.

        The ``kind`` field carries the sticky key kind, so gauges
        survive transport: a merge applies them with set semantics
        rather than summing them like counters.
        """
        out: List[Dict[str, Any]] = []
        for (name, labels), value in sorted(self._counters.items()):
            kind = self._kinds.get((name, labels), "counter")
            out.append({"type": "metric", "kind": kind, "name": name,
                        "labels": dict(labels), "value": value})
        for (name, labels), stat in sorted(self._histograms.items()):
            out.append({"type": "metric", "kind": "histogram", "name": name,
                        "labels": dict(labels), "count": stat.count,
                        "sum": stat.total, "min": stat.min, "max": stat.max})
        return out

    def merge_records(self, records: Iterable[Mapping[str, Any]]) -> None:
        """Fold serialized :meth:`records` in: counters add, gauges set
        (the incoming value wins), histograms combine.  Merging the same
        registry's records twice double-counts the counters -- callers
        merge each segment exactly once, in shard order."""
        for rec in records:
            if rec.get("type") != "metric":
                continue
            labels = dict(rec.get("labels", {}))
            if rec["kind"] == "counter":
                self.inc(rec["name"], float(rec["value"]), **labels)
            elif rec["kind"] == "gauge":
                self.set(rec["name"], float(rec["value"]), **labels)
            elif rec["kind"] == "histogram":
                k = self._admit(_key(rec["name"], labels), "histogram")
                stat = self._histograms.setdefault(k, HistogramStat())
                stat.combine(HistogramStat(
                    count=int(rec["count"]), total=float(rec["sum"]),
                    min=float(rec["min"]), max=float(rec["max"])))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (in-process convenience)."""
        self.merge_records(other.records())

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)
