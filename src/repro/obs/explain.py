"""Subformula evaluation traces: *why* a restriction failed.

:mod:`repro.core.witness` answers "where" -- the failing history and
bindings.  This module answers "how the verdict was reached": the full
descent through the formula, recorded as a tree of
:class:`ExplainStep` nodes -- which quantifier binding was the
falsifying one, which history prefix a □ first failed at, which maximal
path never satisfied a ◇ body.  The descent mirrors
``witness._search_immediate`` / ``_search_temporal`` step for step (and
reuses their lattice-search helpers), so the explanation and the
witness always agree; the witness itself is attached to the trace.

Renderings: :meth:`ExplanationTrace.render_text` (indented, for
terminals), :meth:`ExplanationTrace.to_dot` (Graphviz, for posters and
bug reports), :meth:`ExplanationTrace.to_record` (the JSONL
``{"type": "explanation"}`` record of :mod:`repro.obs.trace`).

Cost: one extra check's worth of evaluation, paid only on failure --
the same bargain the witness machinery already makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.computation import Computation
from ..core.event import Event
from ..core.formula import (
    And,
    Eventually,
    Exists,
    ForAll,
    Formula,
    Henceforth,
    Iff,
    Implies,
    Not,
    Or,
    Restriction,
)
from ..core.history import History, empty_history, full_history
from ..core.witness import (
    Witness,
    _first_failing_history,
    _path_avoiding,
    find_witness,
)

#: Cap matching find_witness's default.
DEFAULT_EXPLAIN_CAP = 500_000


@dataclass
class ExplainStep:
    """One node of the failing descent.

    ``history`` is the (sorted, stringified) event set of the history at
    which this step's verdict was taken, when the step pinned one down
    -- □/◇ steps do, propositional steps inherit their parent's.
    """

    kind: str
    formula: str
    note: str
    history: Optional[Tuple[str, ...]] = None
    binding: Optional[str] = None
    children: List["ExplainStep"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "formula": self.formula,
                               "note": self.note}
        if self.history is not None:
            out["history"] = list(self.history)
        if self.binding is not None:
            out["binding"] = self.binding
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


@dataclass
class ExplanationTrace:
    """The full explanation for one failed restriction."""

    restriction: str
    formula: str
    root: ExplainStep
    witness: Optional[Witness] = None

    def render_text(self) -> str:
        lines = [f"explanation for restriction {self.restriction!r}:"]

        def walk(step: ExplainStep, depth: int) -> None:
            pad = "  " * (depth + 1)
            lines.append(f"{pad}{step.note}")
            if step.binding is not None:
                lines.append(f"{pad}  with {step.binding}")
            if step.history is not None:
                lines.append(
                    f"{pad}  at history {{{', '.join(step.history)}}}")
            for child in step.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        if self.witness is not None:
            lines.append("  witness:")
            lines.extend("    " + ln
                         for ln in self.witness.describe().splitlines())
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz rendering of the descent (one node per step)."""

        def esc(text: str) -> str:
            return text.replace("\\", "\\\\").replace('"', '\\"')

        lines = ["digraph explanation {",
                 "  rankdir=TB;",
                 '  node [shape=box, fontname="monospace", fontsize=10];',
                 f'  label="{esc(self.restriction)}";']
        counter = [0]

        def walk(step: ExplainStep, parent: Optional[int]) -> None:
            nid = counter[0]
            counter[0] += 1
            label_parts = [step.note]
            if step.binding is not None:
                label_parts.append(step.binding)
            if step.history is not None:
                label_parts.append(
                    "history {" + ", ".join(step.history) + "}")
            label = esc("\n".join(label_parts)).replace("\n", "\\l") + "\\l"
            lines.append(f'  n{nid} [label="{label}"];')
            if parent is not None:
                lines.append(f"  n{parent} -> n{nid};")
            for child in step.children:
                walk(child, nid)

        walk(self.root, None)
        lines.append("}")
        return "\n".join(lines)

    def to_record(self) -> Dict[str, Any]:
        """The JSONL ``explanation`` record (schema of repro.obs.trace)."""
        return {"type": "explanation", "restriction": self.restriction,
                "formula": self.formula, "text": self.render_text(),
                "dot": self.to_dot(), "steps": self.root.to_dict()}


def _hist(history: History) -> Tuple[str, ...]:
    return tuple(sorted(str(e) for e in history.events))


def explain_restriction(
    computation: Computation,
    restriction: Restriction,
    history_cap: int = DEFAULT_EXPLAIN_CAP,
) -> Optional[ExplanationTrace]:
    """Explain why ``restriction`` fails on ``computation``.

    Returns None when it actually holds (or the search cannot localise
    the failure under the cap) -- mirroring :func:`find_witness`.
    """
    from ..core.checker import LatticeChecker  # lazy: keeps layering one-way

    formula = restriction.formula
    if not formula.is_temporal():
        history = full_history(computation)
        if formula.holds_at(history, {}):
            return None
        root = _explain_immediate(formula, history, {})
    else:
        checker = LatticeChecker(computation, history_cap=history_cap)
        start = empty_history(computation)
        if checker.holds(formula, start):
            return None
        root = _explain_temporal(computation, formula, start, {}, checker,
                                 [0], history_cap)
    witness = find_witness(computation, restriction, history_cap=history_cap)
    return ExplanationTrace(restriction=restriction.name,
                            formula=formula.describe(), root=root,
                            witness=witness)


def _explain_immediate(formula: Formula, history: History,
                       env: Dict[str, Event]) -> ExplainStep:
    """Record the descent of ``witness._search_immediate``."""
    if isinstance(formula, ForAll):
        for ev in formula.dom.events(history.computation):
            env2 = dict(env)
            env2[formula.var] = ev
            if not formula.body.holds_at(history, env2):
                step = ExplainStep(
                    kind="forall", formula=formula.describe(),
                    note=f"∀{formula.var} fails",
                    binding=f"{formula.var} = {ev.describe()}")
                step.children.append(
                    _explain_immediate(formula.body, history, env2))
                return step
        return ExplainStep(kind="forall", formula=formula.describe(),
                           note="∀ fails (no falsifying binding located)",
                           history=_hist(history))
    if isinstance(formula, Exists):
        return ExplainStep(
            kind="exists", formula=formula.describe(),
            note=(f"∃{formula.var} fails: no event in "
                  f"{formula.dom.describe()} satisfies the body"),
            history=_hist(history))
    if isinstance(formula, Implies):
        step = ExplainStep(kind="implies", formula=formula.describe(),
                           note="⊃ fails: antecedent holds, consequent fails")
        step.children.append(
            _explain_immediate(formula.consequent, history, env))
        return step
    if isinstance(formula, And):
        for part in formula.parts:
            if not part.holds_at(history, env):
                step = ExplainStep(
                    kind="and", formula=formula.describe(),
                    note=f"∧ fails on conjunct: {part.describe()}")
                step.children.append(_explain_immediate(part, history, env))
                return step
    if isinstance(formula, Or):
        return ExplainStep(kind="or", formula=formula.describe(),
                           note="∨ fails: no disjunct holds",
                           history=_hist(history))
    if isinstance(formula, Not):
        return ExplainStep(
            kind="not", formula=formula.describe(),
            note=f"¬ fails: {formula.body.describe()} holds",
            history=_hist(history))
    if isinstance(formula, Iff):
        return ExplainStep(kind="iff", formula=formula.describe(),
                           note="≡ fails: sides disagree",
                           history=_hist(history))
    return ExplainStep(kind="atom", formula=formula.describe(),
                       note=f"fails: {formula.describe()}",
                       history=_hist(history))


def _explain_temporal(computation: Computation, formula: Formula,
                      history: History, env: Dict[str, Event],
                      checker: Any, visited: List[int],
                      cap: int) -> ExplainStep:
    """Record the descent of ``witness._search_temporal``."""
    if isinstance(formula, Henceforth):
        target = _first_failing_history(computation, formula.body, history,
                                        env, checker, visited, cap)
        step = ExplainStep(kind="henceforth", formula=formula.describe(),
                           note="□ fails at a reachable history",
                           history=_hist(target) if target is not None
                           else None)
        if target is not None:
            body = formula.body
            if body.is_temporal():
                step.children.append(_explain_temporal(
                    computation, body, target, env, checker, visited, cap))
            else:
                step.children.append(
                    _explain_immediate(body, target, env))
        return step
    if isinstance(formula, Eventually):
        terminal = _path_avoiding(computation, formula.body, history, env,
                                  checker, visited, cap)
        return ExplainStep(
            kind="eventually", formula=formula.describe(),
            note="◇ fails: a maximal path never satisfies the body "
                 "(shown: its final history)",
            history=_hist(terminal) if terminal is not None else None)
    if isinstance(formula, ForAll):
        for ev in formula.dom.events(computation):
            env2 = dict(env)
            env2[formula.var] = ev
            if not checker.holds(formula.body, history, env2):
                step = ExplainStep(
                    kind="forall", formula=formula.describe(),
                    note=f"∀{formula.var} fails",
                    binding=f"{formula.var} = {ev.describe()}")
                step.children.append(_explain_temporal(
                    computation, formula.body, history, env2, checker,
                    visited, cap))
                return step
    if isinstance(formula, Implies):
        step = ExplainStep(kind="implies", formula=formula.describe(),
                           note="⊃ fails: antecedent holds, consequent fails")
        step.children.append(_explain_temporal(
            computation, formula.consequent, history, env, checker, visited,
            cap))
        return step
    if isinstance(formula, And):
        for part in formula.parts:
            if not checker.holds(part, history, env):
                step = ExplainStep(
                    kind="and", formula=formula.describe(),
                    note=f"∧ fails on conjunct: {part.describe()}")
                step.children.append(_explain_temporal(
                    computation, part, history, env, checker, visited, cap))
                return step
    if formula.is_temporal():
        return ExplainStep(kind="temporal", formula=formula.describe(),
                           note=f"fails: {formula.describe()}",
                           history=_hist(history))
    return _explain_immediate(formula, history, env)
