"""Span-based tracing with versioned JSONL export.

A *span* is a named, timed region of work with two kinds of payload:

* ``attrs`` -- **structural** attributes: what the span *is* (the
  restriction name, the shard prefix, the case being verified).  Two
  traces of the same workload must agree on names, attrs, and tree
  shape regardless of ``--jobs``, wall time, or cache temperature; the
  test suite compares :func:`structure_dump` output byte-for-byte.
* ``meta`` -- non-structural annotations: timings, worker identity,
  whether a result came from cache.  Useful for profiling, explicitly
  excluded from structure comparison.

The default tracer is :data:`NULL_TRACER`, a no-op whose ``span`` hands
back one shared reusable context manager -- tracing disabled costs a
truthiness check and a method call, no allocation.  Every wiring point
in the stack takes ``tracer=None`` and substitutes the null tracer, so
the instrumented code path is identical either way.

Worker transport: each fork-pool worker records into its own
:class:`Tracer` and ships :meth:`Tracer.to_records` (plain dicts) back
with its ``TaskResult``; the parent re-attaches them under its own tree
with :meth:`Tracer.graft`, in shard order, which keeps the merged trace
deterministic.  Times are ``perf_counter`` values -- CLOCK_MONOTONIC on
Linux, shared across forked children, so worker timestamps are directly
comparable to the parent's -- and are normalised to the trace origin
only at :func:`write_trace` time.

File format (JSONL, schema version :data:`TRACE_SCHEMA_VERSION`): the
first line is a ``{"type": "meta"}`` record carrying the schema
version; the rest are ``span`` (pre-order, parent before child),
``metric`` (see :mod:`repro.obs.metrics`) and ``explanation`` (see
:mod:`repro.obs.explain`) records.  :func:`validate_record` rejects
anything else -- the schema is versioned precisely so that readers can
refuse traces they do not understand instead of misreading them.
"""

from __future__ import annotations

import json
import time
from typing import (Any, Dict, IO, Iterable, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from ..core.errors import VerificationError

#: Bump when the record shapes below change incompatibly.
TRACE_SCHEMA_VERSION = 1

_RECORD_TYPES = ("meta", "span", "metric", "explanation")


class TraceSchemaError(VerificationError):
    """A trace record does not conform to the schema."""


class Span:
    """One timed, named tree node.  See module docstring for the
    attrs/meta split."""

    __slots__ = ("name", "attrs", "meta", "children", "t_start", "t_end")

    def __init__(self, name: str,
                 attrs: Optional[Mapping[str, Any]] = None,
                 meta: Optional[Mapping[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.meta: Dict[str, Any] = dict(meta) if meta else {}
        self.children: List[Span] = []
        self.t_start: float = 0.0
        self.t_end: float = 0.0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def structure(self) -> Tuple:
        """The jobs-invariant shape: (name, sorted attrs, children)."""
        return (self.name,
                tuple(sorted((k, str(v)) for k, v in self.attrs.items())),
                tuple(c.structure() for c in self.children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, attrs={self.attrs}, "
                f"children={len(self.children)})")


class _NullSpanContext:
    """Reusable no-op context manager; also swallows attr writes."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None

    def set_meta(self, **meta: Any) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """The zero-overhead default: records nothing, allocates nothing."""

    enabled = False

    def span(self, name: str,
             attrs: Optional[Mapping[str, Any]] = None,
             meta: Optional[Mapping[str, Any]] = None) -> _NullSpanContext:
        return _NULL_SPAN

    def graft(self, records: Iterable[Mapping[str, Any]],
              parent: Optional[Any] = None) -> None:
        return None

    def to_records(self) -> List[Dict[str, Any]]:
        return []

    def add_explanation(self, record: Mapping[str, Any]) -> None:
        return None


#: Shared no-op instance; ``tracer or NULL_TRACER`` is the idiom.
NULL_TRACER = NullTracer()


class _SpanContext:
    """Context manager for one live span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> "_SpanContext":
        self._tracer._push(self.span)
        return self

    def __exit__(self, *exc: Any) -> None:
        self._tracer._pop(self.span)
        return None

    def set(self, **attrs: Any) -> None:
        self.span.attrs.update(attrs)

    def set_meta(self, **meta: Any) -> None:
        self.span.meta.update(meta)


class Tracer:
    """Records a forest of nested spans (usually a single root)."""

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        #: failure explanations collected along the way (see
        #: :mod:`repro.obs.explain`); written after metrics by write_trace
        self.explanations: List[Dict[str, Any]] = []

    def add_explanation(self, record: Mapping[str, Any]) -> None:
        self.explanations.append(dict(record))

    def span(self, name: str,
             attrs: Optional[Mapping[str, Any]] = None,
             meta: Optional[Mapping[str, Any]] = None) -> _SpanContext:
        """Context manager opening a child of the current span."""
        return _SpanContext(self, Span(name, attrs, meta))

    def _push(self, span: Span) -> None:
        span.t_start = time.perf_counter()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.t_end = time.perf_counter()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- worker transport --------------------------------------------------

    def to_records(self) -> List[Dict[str, Any]]:
        """Spans as pre-order dicts with synthetic ids (picklable)."""
        out: List[Dict[str, Any]] = []
        counter = [0]

        def emit(span: Span, parent: Optional[int]) -> None:
            sid = counter[0]
            counter[0] += 1
            out.append({"type": "span", "sid": sid, "parent": parent,
                        "name": span.name, "attrs": dict(span.attrs),
                        "meta": dict(span.meta),
                        "t_start": span.t_start, "t_end": span.t_end})
            for child in span.children:
                emit(child, sid)

        for root in self.roots:
            emit(root, None)
        return out

    def graft(self, records: Iterable[Mapping[str, Any]],
              parent: Optional[Union[Span, _SpanContext]] = None) -> None:
        """Re-attach serialised spans (from :meth:`to_records`) under
        ``parent`` (default: the current span).  Order is preserved, so
        grafting worker segments in shard order keeps the merged tree
        deterministic."""
        if isinstance(parent, _SpanContext):
            parent = parent.span
        if parent is None:
            parent = self.current
        by_sid: Dict[int, Span] = {}
        for rec in records:
            if rec.get("type") != "span":
                continue
            span = Span(rec["name"], rec.get("attrs"), rec.get("meta"))
            span.t_start = float(rec.get("t_start", 0.0))
            span.t_end = float(rec.get("t_end", 0.0))
            by_sid[int(rec["sid"])] = span
            parent_sid = rec.get("parent")
            if parent_sid is not None and int(parent_sid) in by_sid:
                by_sid[int(parent_sid)].children.append(span)
            elif parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)


# -- structure comparison ----------------------------------------------------


def structure_dump(spans: Sequence[Span]) -> str:
    """Canonical JSON of the span forest's structure (no timings, no
    meta); byte-equal across ``--jobs`` for a deterministic workload."""
    return json.dumps([s.structure() for s in spans],
                      sort_keys=True, separators=(",", ":"))


# -- JSONL export / import ---------------------------------------------------


def validate_record(rec: Mapping[str, Any]) -> None:
    """Raise :class:`TraceSchemaError` unless ``rec`` is schema-valid."""
    if not isinstance(rec, Mapping):
        raise TraceSchemaError(f"record is not an object: {rec!r}")
    rtype = rec.get("type")
    if rtype not in _RECORD_TYPES:
        raise TraceSchemaError(f"unknown record type {rtype!r}")
    if rtype == "meta":
        if rec.get("schema") != TRACE_SCHEMA_VERSION:
            raise TraceSchemaError(
                f"unsupported schema version {rec.get('schema')!r} "
                f"(reader supports {TRACE_SCHEMA_VERSION})")
    elif rtype == "span":
        for field in ("sid", "name", "attrs", "meta", "t_start", "t_end"):
            if field not in rec:
                raise TraceSchemaError(f"span record missing {field!r}")
        if "parent" not in rec:
            raise TraceSchemaError("span record missing 'parent'")
        if not isinstance(rec["name"], str):
            raise TraceSchemaError("span name must be a string")
        if not isinstance(rec["attrs"], Mapping) \
                or not isinstance(rec["meta"], Mapping):
            raise TraceSchemaError("span attrs/meta must be objects")
    elif rtype == "metric":
        kind = rec.get("kind")
        if kind in ("counter", "gauge"):
            required: Tuple[str, ...] = ("name", "labels", "value")
        elif kind == "histogram":
            required = ("name", "labels", "count", "sum", "min", "max")
        else:
            raise TraceSchemaError(f"unknown metric kind {kind!r}")
        for field in required:
            if field not in rec:
                raise TraceSchemaError(f"metric record missing {field!r}")
    elif rtype == "explanation":
        for field in ("restriction", "text", "steps"):
            if field not in rec:
                raise TraceSchemaError(
                    f"explanation record missing {field!r}")


def meta_record() -> Dict[str, Any]:
    """The schema-v1 meta header every trace stream starts with."""
    return {"type": "meta", "schema": TRACE_SCHEMA_VERSION, "tool": "repro",
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z")}


def trace_records(
    tracer: Tracer,
    metrics: Optional[Any] = None,
    explanations: Sequence[Mapping[str, Any]] = (),
) -> List[Dict[str, Any]]:
    """The full schema-v1 record list for one trace, meta header first.

    Span times are normalised so the earliest root starts at 0.0 --
    absolute ``perf_counter`` values are meaningless across reboots,
    deltas are what profiling needs.  :func:`write_trace` dumps exactly
    this list; the serve daemon streams it over HTTP instead.
    """
    spans = tracer.to_records()
    t0 = min((r["t_start"] for r in spans), default=0.0)
    records: List[Dict[str, Any]] = [meta_record()]
    for rec in spans:
        rec = dict(rec)
        rec["t_start"] = round(rec["t_start"] - t0, 9)
        rec["t_end"] = round(rec["t_end"] - t0, 9)
        records.append(rec)
    if metrics is not None:
        records.extend(metrics.records())
    if not explanations:
        explanations = getattr(tracer, "explanations", ())
    records.extend(dict(e) for e in explanations)
    return records


def write_trace(
    path_or_file: Union[str, IO[str]],
    tracer: Tracer,
    metrics: Optional[Any] = None,
    explanations: Sequence[Mapping[str, Any]] = (),
) -> int:
    """Write a schema-versioned JSONL trace; returns the record count."""
    records = trace_records(tracer, metrics, explanations)

    def dump(fh: IO[str]) -> None:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")

    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            dump(fh)
    else:
        dump(path_or_file)
    return len(records)


class TraceData:
    """A parsed trace: span forest + raw metric/explanation records.

    ``error`` is only populated by tolerant reads
    (``read_trace(..., strict=False)``): a structured description of
    the first malformed line, after which reading stopped -- the rest
    of the object is the valid prefix.  Strict reads either raise or
    leave it ``None``.
    """

    def __init__(self) -> None:
        self.meta: Dict[str, Any] = {}
        self.spans: List[Span] = []
        self.metric_records: List[Dict[str, Any]] = []
        self.explanations: List[Dict[str, Any]] = []
        self.error: Optional[str] = None
        #: records successfully parsed (the valid-prefix length)
        self.records_read: int = 0

    @property
    def truncated(self) -> bool:
        """True when a tolerant read stopped at a malformed line."""
        return self.error is not None


def read_trace(path_or_file: Union[str, IO[str]],
               strict: bool = True) -> TraceData:
    """Parse and validate a JSONL trace written by :func:`write_trace`.

    Every line is validated; the span tree is rebuilt from sid/parent
    links.  ``strict=True`` (the default) raises
    :class:`TraceSchemaError` on any malformed line -- a
    half-understood trace is worse than none when the question is
    whether a writer is schema-correct.

    ``strict=False`` is for streams a daemon may have died mid-write
    on: the first malformed line *after a valid meta header* stops
    reading and is reported on ``TraceData.error``, and the valid
    prefix is returned intact.  A stream whose header itself is missing
    or malformed still raises -- there is no prefix worth salvaging,
    and the writer-side contract (header first, before any payload
    record) makes a bad header corruption of a different kind.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = path_or_file.readlines()

    data = TraceData()
    by_sid: Dict[int, Span] = {}

    def bad(message: str) -> TraceData:
        if not data.meta or strict:
            raise TraceSchemaError(message)
        data.error = message
        return data

    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            return bad(f"line {lineno}: invalid JSON: {exc}")
        try:
            validate_record(rec)
        except TraceSchemaError as exc:
            return bad(f"line {lineno}: {exc}")
        if lineno == 1 and rec["type"] != "meta":
            return bad("first record must be the meta header")
        if rec["type"] == "meta":
            data.meta = dict(rec)
        elif rec["type"] == "span":
            span = Span(rec["name"], rec["attrs"], rec["meta"])
            span.t_start = float(rec["t_start"])
            span.t_end = float(rec["t_end"])
            parent = rec["parent"]
            if parent is None:
                data.spans.append(span)
            elif int(parent) in by_sid:
                by_sid[int(parent)].children.append(span)
            else:
                return bad(
                    f"line {lineno}: span {rec['sid']} references unknown "
                    f"parent {parent}")
            by_sid[int(rec["sid"])] = span
        elif rec["type"] == "metric":
            data.metric_records.append(rec)
        else:
            data.explanations.append(rec)
        data.records_read += 1
    if not data.meta:
        raise TraceSchemaError("trace has no meta header")
    return data


def iter_spans(spans: Sequence[Span]) -> Iterable[Span]:
    """Pre-order walk over a span forest."""
    stack = list(reversed(spans))
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(span.children))
