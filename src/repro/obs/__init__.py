"""``repro.obs`` -- observability for the verification stack.

Three legs, three modules (plus the offline analyser):

* :mod:`.trace` -- span-based tracing: nested, attributed spans with a
  zero-overhead no-op default, deterministic fork-pool merge, and a
  versioned JSONL export (``--trace FILE`` on the CLI);
* :mod:`.metrics` -- labelled counters and histograms (formula
  evaluations per restriction, lattice sizes, cache/dedupe hits,
  shrink steps), mergeable across worker processes; ``EngineStats`` is
  a view over this registry;
* :mod:`.explain` -- subformula evaluation traces for failed
  restrictions: which binding, which history prefix, which □/◇
  unrolling flipped the verdict, rendered as text and DOT;
* :mod:`.profile` -- ``repro profile TRACE.jsonl``: per-phase and
  per-span timing breakdowns, top restrictions by evaluation cost,
  worker utilisation;
* :mod:`.telemetry` -- Prometheus text exposition (render + parse)
  over a :class:`MetricsRegistry`, and the :class:`TelemetryHub`
  background sampler the serve daemon's ``GET /metrics`` rides on;
* :mod:`.runhistory` -- the persistent (sqlite, WAL) run-history
  store behind ``--history`` and ``repro history
  list/show/trends/regressions``;
* :mod:`.top` -- the ``repro top`` live dashboard over a daemon's
  ``/metrics`` + ``/stats`` + ``/jobs``.

Layering: ``obs.metrics`` and ``obs.trace`` import nothing above
:mod:`repro.core.errors`, so every layer (core checker, scheduler,
engine, fuzzer) can accept a tracer/registry without cycles;
``obs.explain`` builds on :mod:`repro.core.witness`.  Callers that were
handed no tracer use :data:`NULL_TRACER` and pay a truthiness check.
"""

from .explain import ExplainStep, ExplanationTrace, explain_restriction
from .metrics import HistogramStat, MetricKindError, MetricsRegistry
from .runhistory import (
    HistorySchemaError,
    Regression,
    RunHistory,
    RunRow,
    parse_tolerance,
    record_report,
    stats_snapshot,
)
from .telemetry import (
    PrometheusParseError,
    PrometheusScrape,
    TelemetryHub,
    metric_name,
    parse_prometheus,
    render_prometheus,
)
from .top import render_top, run_top
from .profile import (
    load_trace,
    phase_breakdown,
    render_profile,
    restriction_costs,
    serve_progress_events,
    span_aggregates,
    worker_utilisation,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_SCHEMA_VERSION,
    TraceData,
    TraceSchemaError,
    Tracer,
    iter_spans,
    meta_record,
    read_trace,
    structure_dump,
    trace_records,
    validate_record,
    write_trace,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "TraceData",
    "TraceSchemaError", "read_trace", "write_trace", "validate_record",
    "structure_dump", "iter_spans", "trace_records", "meta_record",
    "MetricsRegistry", "HistogramStat", "MetricKindError",
    "ExplanationTrace", "ExplainStep", "explain_restriction",
    "load_trace", "render_profile", "phase_breakdown", "span_aggregates",
    "restriction_costs", "worker_utilisation", "serve_progress_events",
    "render_prometheus", "parse_prometheus", "metric_name",
    "PrometheusScrape", "PrometheusParseError", "TelemetryHub",
    "RunHistory", "RunRow", "Regression", "HistorySchemaError",
    "parse_tolerance", "record_report", "stats_snapshot",
    "render_top", "run_top",
]
