"""``repro top`` -- a live text dashboard over a serve daemon.

Polls ``GET /metrics`` (Prometheus text), ``GET /stats`` and ``GET
/jobs`` and renders one compact screen: pool and queue occupancy,
shared-cache size, the engine/POR/slice counters of the work done so
far, and the most recent jobs with their wall times.  Rendering is a
pure function (:func:`render_top`) over the three snapshots so tests
can assert on the output without a terminal or a ticking clock; the
polling loop (:func:`run_top`) owns the clock, the ANSI clear, and the
exit code.

The dashboard reads the *exposition*, not the service internals --
``/metrics`` through :func:`repro.obs.telemetry.parse_prometheus` --
so it doubles as a continuous check that the daemon's Prometheus
output stays parseable.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Mapping, Optional, TextIO

from .telemetry import PrometheusScrape, parse_prometheus

#: ANSI: clear screen, cursor home.
_CLEAR = "\x1b[2J\x1b[H"


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GiB"


def render_top(scrape: PrometheusScrape, stats: Mapping[str, Any],
               jobs: List[Mapping[str, Any]], *, endpoint: str = "",
               max_jobs: int = 12) -> str:
    """One dashboard frame from the three polled snapshots."""
    val = scrape.value
    pool = stats.get("pool", {})
    counts = stats.get("jobs", {})
    cache = stats.get("cache", {})
    lines: List[str] = []

    uptime = val("repro_serve_uptime_seconds")
    lines.append(f"repro top -- {endpoint or 'serve daemon'}"
                 f"   uptime {uptime:8.1f}s")
    lines.append(
        f"pool   : {pool.get('workers', '?')} worker(s)"
        f"{' resident' if pool.get('resident') else ''}   "
        f"inflight {int(val('repro_serve_jobs_inflight'))}   "
        f"queued {int(val('repro_serve_queue_depth'))}   "
        f"utilisation {val('repro_serve_worker_utilisation'):.0%}")
    lines.append(
        f"jobs   : {counts.get('done', 0)} done, "
        f"{counts.get('running', 0)} running, "
        f"{counts.get('queued', 0)} queued, "
        f"{counts.get('failed', 0)} failed, "
        f"{counts.get('cancelled', 0)} cancelled")
    lines.append(
        f"cache  : {int(cache.get('entries', 0))} entries, "
        f"{_fmt_bytes(float(cache.get('bytes', 0)))}, "
        f"{int(val('repro_cache_evictions'))} eviction(s), "
        f"hits {int(cache.get('hits', 0))} / "
        f"misses {int(cache.get('misses', 0))}")
    lines.append(
        f"engine : runs {int(val('repro_engine_runs'))}   "
        f"distinct {int(val('repro_engine_distinct_computations'))}   "
        f"fresh checks {int(val('repro_engine_checks_performed'))}   "
        f"cache hits {int(val('repro_engine_cache_hits'))}   "
        f"dedupe {int(val('repro_engine_dedupe_hits'))}")
    lines.append(
        f"por    : nodes {int(val('repro_por_nodes'))}   "
        f"pruned {int(val('repro_por_pruned_interleavings'))}   "
        f"slice hits {int(val('repro_checker_slice_hits'))} / "
        f"fallbacks {int(val('repro_checker_slice_fallbacks'))}")
    lines.append(
        f"dfa    : probes {int(val('repro_dfa_probes'))}   "
        f"cuts {int(val('repro_dfa_cuts'))}   "
        f"accepts {int(val('repro_dfa_accepts'))}   "
        f"checks resolved {int(val('repro_checker_dfa_hits'))}")

    lines.append("")
    lines.append(f"latest job(s) (of {len(jobs)}):")
    if jobs:
        for job in jobs[-max_jobs:]:
            wall = job.get("wall_s")
            wall_text = f"{wall:8.3f}s" if wall is not None else "        -"
            lines.append(f"  {job.get('id', '?'):>5}  "
                         f"{job.get('state', '?'):9s}  {wall_text}  "
                         f"{job.get('label', '?')}")
    else:
        lines.append("  (no jobs submitted yet)")
    return "\n".join(lines)


def run_top(host: str = "127.0.0.1", port: int = 8642,
            interval: float = 1.0, once: bool = False,
            out: Optional[TextIO] = None) -> int:
    """Poll-and-render loop behind ``repro top``; Ctrl-C exits cleanly."""
    from ..serve.client import ServeClient, ServeError

    stream = out if out is not None else sys.stdout
    client = ServeClient(host, port, timeout=10.0)
    endpoint = f"http://{host}:{port}"
    try:
        while True:
            try:
                scrape = parse_prometheus(client.metrics_text())
                stats = client.stats()
                jobs = client.jobs_list()
            except (OSError, ServeError) as exc:
                print(f"repro top: cannot reach {endpoint}: {exc}",
                      file=sys.stderr)
                return 1
            frame = render_top(scrape, stats, jobs, endpoint=endpoint)
            if once:
                print(frame, file=stream)
                return 0
            print(_CLEAR + frame, file=stream, flush=True)
            time.sleep(max(0.1, interval))
    except KeyboardInterrupt:
        print("", file=stream)
        return 0
