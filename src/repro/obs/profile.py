"""``repro profile TRACE.jsonl`` -- offline analysis of a written trace.

Answers the questions ROADMAP's "fast as the hardware allows" goal
needs answered before anything can be optimised:

* **per-phase timings** -- where did the wall clock go (shard, explore,
  check, merge, cache I/O)?
* **span aggregates** -- how many of each span, with total/mean/max
  durations;
* **top restrictions by evaluation cost** -- the ``checker.evals`` /
  ``checker.seconds`` metrics grouped per restriction, most expensive
  first;
* **worker utilisation** -- per-worker busy time over the explore+check
  window, which shows shard imbalance directly.

Everything here is a pure function of the parsed
:class:`repro.obs.trace.TraceData`; the CLI wrapper just reads, renders
and prints.  Reading validates every record against the schema, so
``repro profile`` doubles as the trace validator CI uses.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .metrics import HistogramStat, MetricsRegistry
from .trace import Span, TraceData, iter_spans, read_trace


def load_trace(path: str) -> TraceData:
    """Read + validate a trace file (thin alias of :func:`read_trace`)."""
    return read_trace(path)


def phase_breakdown(data: TraceData) -> List[Tuple[str, float]]:
    """(phase name, accumulated seconds), longest first.

    Prefers ``phase:*`` spans; falls back to the ``engine.phase_seconds``
    metric so traces written without span detail still profile.
    """
    acc: Dict[str, float] = {}
    for span in iter_spans(data.spans):
        if span.name.startswith("phase:"):
            name = span.name[len("phase:"):]
            acc[name] = acc.get(name, 0.0) + span.duration
    if not acc:
        registry = MetricsRegistry()
        registry.merge_records(data.metric_records)
        acc = registry.by_label("engine.phase_seconds", "phase")
    return sorted(acc.items(), key=lambda kv: (-kv[1], kv[0]))


def span_aggregates(data: TraceData) -> List[Tuple[str, HistogramStat]]:
    """(span name, duration histogram), by total duration, longest first."""
    acc: Dict[str, HistogramStat] = {}
    for span in iter_spans(data.spans):
        stat = acc.setdefault(span.name, HistogramStat())
        stat.observe(span.duration)
    return sorted(acc.items(), key=lambda kv: (-kv[1].total, kv[0]))


def restriction_costs(data: TraceData) -> List[Tuple[str, float, float]]:
    """(restriction, formula evaluations, seconds), costliest first."""
    registry = MetricsRegistry()
    registry.merge_records(data.metric_records)
    evals = registry.by_label("checker.evals", "restriction")
    seconds = registry.histograms_by_label("checker.seconds", "restriction")
    names = sorted(set(evals) | set(seconds))
    rows = [(name, evals.get(name, 0.0),
             seconds[name].total if name in seconds else 0.0)
            for name in names]
    return sorted(rows, key=lambda r: (-r[2], -r[1], r[0]))


def worker_utilisation(data: TraceData) -> List[Tuple[str, int, float, float]]:
    """(worker, tasks, busy seconds, utilisation) from ``task`` spans.

    Utilisation is busy time over the whole explore+check window, so
    idle tail-latency (one slow shard pinning one worker) shows up as
    every *other* worker's low percentage.
    """
    tasks: Dict[str, List[Span]] = {}
    window_start, window_end = float("inf"), float("-inf")
    for span in iter_spans(data.spans):
        if span.name != "task":
            continue
        worker = str(span.meta.get("worker", "?"))
        tasks.setdefault(worker, []).append(span)
        window_start = min(window_start, span.t_start)
        window_end = max(window_end, span.t_end)
    window = max(window_end - window_start, 0.0)
    rows = []
    for worker in sorted(tasks):
        busy = sum(s.duration for s in tasks[worker])
        util = busy / window if window > 0 else 0.0
        rows.append((worker, len(tasks[worker]), busy, util))
    return rows


def render_profile(data: TraceData, top: int = 10) -> str:
    """The full ``repro profile`` report, one string."""
    lines: List[str] = []
    schema = data.meta.get("schema")
    created = data.meta.get("created", "?")
    n_spans = sum(1 for _ in iter_spans(data.spans))
    lines.append(f"trace: schema v{schema}, created {created}, "
                 f"{n_spans} span(s), {len(data.metric_records)} metric(s), "
                 f"{len(data.explanations)} explanation(s)")

    phases = phase_breakdown(data)
    lines.append("")
    lines.append("phases:")
    if phases:
        total = sum(secs for _, secs in phases)
        for name, secs in phases:
            share = secs / total if total > 0 else 0.0
            lines.append(f"  {name:16s} {secs:9.4f}s  {share:6.1%}")
        lines.append(f"  {'total':16s} {total:9.4f}s")
    else:
        lines.append("  (no phase spans or metrics)")

    aggs = span_aggregates(data)
    if aggs:
        lines.append("")
        lines.append("spans (by total duration):")
        for name, stat in aggs[:top]:
            lines.append(
                f"  {name:16s} {stat.count:6d}x  total {stat.total:9.4f}s  "
                f"mean {stat.mean:9.6f}s  max {stat.max:9.6f}s")

    costs = restriction_costs(data)
    lines.append("")
    lines.append("restrictions (by evaluation cost):")
    if costs:
        for name, evals, secs in costs[:top]:
            lines.append(f"  {name:32s} {int(evals):10d} evals  "
                         f"{secs:9.4f}s")
    else:
        lines.append("  (no checker metrics in trace)")

    workers = worker_utilisation(data)
    lines.append("")
    lines.append("workers:")
    if workers:
        for worker, n_tasks, busy, util in workers:
            lines.append(f"  {worker:24s} {n_tasks:4d} task(s)  "
                         f"busy {busy:9.4f}s  utilisation {util:6.1%}")
    else:
        lines.append("  (no task spans in trace)")

    if data.explanations:
        lines.append("")
        lines.append("explanations:")
        for exp in data.explanations:
            lines.append(f"  {exp.get('restriction', '?')}")

    return "\n".join(lines)
